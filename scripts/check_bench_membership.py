#!/usr/bin/env python3
"""Shape-gate a chaos_sweep --membership-sweep --json report.

Usage: check_bench_membership.py <report.json>

The membership sweep drives control-plane fault scenarios (gossip
blackout, churn-invisible leader crashes, in-flight record staling,
liveness-claim inflation) through the durability harness under three
recovery arms (random mix choice, plain biased, biased + the resilience
machinery). The gated shapes are the control-plane resilience claims
(DESIGN §9):

  1. off means off: both control runs — one with the membership knobs
     left at their defaults, one with every knob spelled out as off —
     reproduce the pre-PR chaos fingerprint byte for byte;
  2. the durability floor holds: in EVERY scenario the resilient arm's
     mean durability is at least the random arm's — staleness-aware
     degradation means the recovery machinery can fall back to admitted
     ignorance, so it must never do worse than starting there;
  3. the gate is non-vacuous under gossip blackout: the headline
     acceptance cell (gossip-blackout, resilient >= random) holds and
     the blackout actually dropped gossip datagrams;
  4. failover is load-bearing: under leader-crash the resilient arm
     both re-elects (elections > 0) and strictly beats the plain biased
     arm, whose dissemination starves under the zombie leader.

Exits 0 when all shapes hold, 1 otherwise.
"""

import json
import sys

SCENARIOS = ("gossip-blackout", "leader-crash", "stale-inject",
             "claim-inflate")


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("bench") != "chaos_membership_sweep":
        raise SystemExit(f"{path}: not a chaos_membership_sweep report")
    values = doc.get("values", {})
    rows = doc.get("sections", {}).get("durability")
    drops = doc.get("sections", {}).get("membership_drops")
    if not rows or not drops:
        raise SystemExit(
            f"{path}: missing 'durability' or 'membership_drops' section")
    return values, rows, drops


def durability(values, scenario, arm):
    key = f"durability_{scenario}_{arm}"
    if key not in values:
        raise SystemExit(f"missing value '{key}'")
    return float(values[key])


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    values, rows, drops = load(argv[1])
    failures = []

    # 1. Off means off: both control fingerprints match the committed
    # pre-PR baseline.
    expected = values.get("pre_pr_fingerprint")
    if not expected:
        failures.append("missing pre_pr_fingerprint")
    for key in ("control_fingerprint", "control_fingerprint_spelled"):
        if values.get(key) != expected:
            failures.append(
                f"{key} diverges from the pre-PR baseline: "
                f"{values.get(key)!r} != {expected!r}")
    if int(values.get("fingerprint_match", 0)) != 1:
        failures.append("fingerprint_match != 1")
    print(f"off-means-off: fingerprint_match="
          f"{values.get('fingerprint_match')}")

    # 2. Resilient >= random in every scenario.
    for scenario in SCENARIOS:
        random_floor = durability(values, scenario, "random")
        resilient = durability(values, scenario, "resilient")
        ok = resilient >= random_floor
        print(f"floor: {scenario:16s} resilient {resilient:8.1f}s "
              f">= random {random_floor:8.1f}s: {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{scenario}: resilient durability {resilient} below the "
                f"random floor {random_floor}")

    # 3. The blackout gate is non-vacuous: gossip datagrams were dropped
    # in the gossip-blackout cells.
    blackout_drops = sum(
        int(row["gossip-blackout"]) for row in drops
        if row["scenario"] == "gossip-blackout")
    print(f"non-vacuous: {blackout_drops} gossip datagrams dropped "
          f"under blackout")
    if blackout_drops == 0:
        failures.append("gossip-blackout scenario dropped no datagrams")

    # 4. Failover is load-bearing under leader-crash.
    crash_resilient = next(
        (row for row in rows if row["scenario"] == "leader-crash" and
         row["arm"] == "resilient"), None)
    if crash_resilient is None:
        failures.append("missing leader-crash/resilient durability row")
    else:
        elections = int(crash_resilient["elections"])
        print(f"failover: {elections} elections under leader-crash")
        if elections == 0:
            failures.append("leader-crash/resilient ran no elections")
    crash_biased = durability(values, "leader-crash", "biased")
    crash_resil = durability(values, "leader-crash", "resilient")
    if crash_resil <= crash_biased:
        failures.append(
            f"leader-crash: resilient {crash_resil} does not beat plain "
            f"biased {crash_biased} — failover is not load-bearing")

    if failures:
        print(f"\nFAIL: {len(failures)} membership gate(s) violated")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: all membership control-plane gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
