#!/usr/bin/env python3
"""Shape-gate a chaos_sweep --overload-sweep --json report.

Usage: check_bench_overload.py <report.json>

The overload sweep drives a deterministic workload engine (bulk /
interactive / streaming mixes) through three protocols under three load
shapes (steady, diurnal, flash crowd) and two relay arms:

  shed   bounded relay queues + priority-aware shedding + admission
         control + reverse-path backpressure + sender-side deferral;
  drop   the same bounded queues but blind tail drop — every class is
         dropped equally once the queue saturates (control is still
         never shed: acks and constructs are the invariant floor).

The gated shapes are the graceful-degradation claims (DESIGN §13):

  1. off means off: both control runs (defaults, and every knob spelled
     out as off) reproduce the pre-PR chaos fingerprint byte for byte;
  2. steady state is free: under the steady shape both arms ride below
     the drain rate and deliver >= 95% goodput with zero sheds;
  3. graceful degradation: under the flash crowd the shed arm keeps
     interactive goodput >= 0.75 and total goodput >= 0.60;
  4. collapse without it: the drop arm's flash interactive goodput
     falls to <= 0.80 and trails the shed arm by >= 0.15 — blind tail
     drop lets retransmission amplification eat the interactive class;
  5. the control plane is never shed: sheds_control == 0 in every cell
     of both arms (acks/constructs outrank saturation);
  6. priority ordering holds where the policy runs: in flash shed
     cells, relay interactive sheds stay below streaming sheds and
     below the drop arm's interactive sheds, and the sender-side
     machinery (backpressure signals, session sheds/deferrals) engaged;
  7. interactive latency is bounded: p99 <= 10 s at steady (both arms)
     and diurnal-shed, <= 90 s under the flash crowd with shedding on;
  8. accounting stays closed: violations == 0 in every cell (no
     unaccounted messages, leaks, or open segment ledgers — sheds are
     explained losses, not bookkeeping holes).

Exits 0 when all shapes hold, 1 otherwise.
"""

import json
import sys

PROTOCOLS = ("curmix", "simrep2", "simera4")
SHAPES = ("steady", "diurnal", "flash")
ARMS = ("shed", "drop")

STEADY_GOODPUT_FLOOR = 0.95
FLASH_SHED_INTERACTIVE_FLOOR = 0.75
FLASH_SHED_GOODPUT_FLOOR = 0.60
FLASH_DROP_INTERACTIVE_CEIL = 0.80
FLASH_INTERACTIVE_MARGIN = 0.15
STEADY_P99_BOUND_US = 10_000_000
FLASH_SHED_P99_BOUND_US = 90_000_000


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("bench") != "chaos_overload_sweep":
        raise SystemExit(f"{path}: not a chaos_overload_sweep report")
    return doc.get("values", {})


def cell(values, metric, proto, shape, arm):
    key = f"{metric}_{proto}_{shape}_{arm}"
    if key not in values:
        raise SystemExit(f"missing value '{key}'")
    return values[key]


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    values = load(argv[1])
    failures = []

    # 1. Off means off: both control fingerprints match the committed
    # pre-PR baseline.
    expected = values.get("pre_pr_fingerprint")
    if not expected:
        failures.append("missing pre_pr_fingerprint")
    for key in ("control_fingerprint", "control_fingerprint_spelled"):
        if values.get(key) != expected:
            failures.append(
                f"{key} diverges from the pre-PR baseline: "
                f"{values.get(key)!r} != {expected!r}")
    if int(values.get("fingerprint_match", 0)) != 1:
        failures.append("fingerprint_match != 1")
    print(f"off-means-off: fingerprint_match="
          f"{values.get('fingerprint_match')}")

    # 2. Steady state is free on both arms.
    for proto in PROTOCOLS:
        for arm in ARMS:
            goodput = float(cell(values, "goodput", proto, "steady", arm))
            sheds = sum(
                int(cell(values, f"sheds_{c}", proto, "steady", arm))
                for c in ("bulk", "streaming", "interactive"))
            ok = goodput >= STEADY_GOODPUT_FLOOR and sheds == 0
            print(f"steady: {proto:8s} {arm:4s} goodput {goodput:.3f} "
                  f"sheds {sheds}: {'ok' if ok else 'FAIL'}")
            if goodput < STEADY_GOODPUT_FLOOR:
                failures.append(
                    f"{proto}/steady/{arm}: goodput {goodput:.3f} < "
                    f"{STEADY_GOODPUT_FLOOR}")
            if sheds != 0:
                failures.append(
                    f"{proto}/steady/{arm}: {sheds} sheds at steady state")

    # 3 + 4. Graceful degradation with shedding, collapse without.
    for proto in PROTOCOLS:
        shed_inter = float(
            cell(values, "goodput_interactive", proto, "flash", "shed"))
        drop_inter = float(
            cell(values, "goodput_interactive", proto, "flash", "drop"))
        shed_total = float(cell(values, "goodput", proto, "flash", "shed"))
        margin = shed_inter - drop_inter
        print(f"flash: {proto:8s} interactive shed {shed_inter:.3f} vs "
              f"drop {drop_inter:.3f} (margin {margin:+.3f}), "
              f"shed total {shed_total:.3f}")
        if shed_inter < FLASH_SHED_INTERACTIVE_FLOOR:
            failures.append(
                f"{proto}/flash/shed: interactive goodput {shed_inter:.3f} "
                f"< floor {FLASH_SHED_INTERACTIVE_FLOOR}")
        if shed_total < FLASH_SHED_GOODPUT_FLOOR:
            failures.append(
                f"{proto}/flash/shed: total goodput {shed_total:.3f} < "
                f"floor {FLASH_SHED_GOODPUT_FLOOR}")
        if drop_inter > FLASH_DROP_INTERACTIVE_CEIL:
            failures.append(
                f"{proto}/flash/drop: interactive goodput {drop_inter:.3f} "
                f"did not collapse (> {FLASH_DROP_INTERACTIVE_CEIL})")
        if margin < FLASH_INTERACTIVE_MARGIN:
            failures.append(
                f"{proto}/flash: shed-vs-drop interactive margin "
                f"{margin:.3f} < {FLASH_INTERACTIVE_MARGIN}")

    # 5. Control/ack segments are NEVER shed, in any cell of any arm.
    control_sheds = 0
    for proto in PROTOCOLS:
        for shape in SHAPES:
            for arm in ARMS:
                control_sheds += int(
                    cell(values, "sheds_control", proto, shape, arm))
    print(f"control-plane: {control_sheds} control sheds across all cells")
    if control_sheds != 0:
        failures.append(
            f"{control_sheds} control-class segments were shed — the "
            f"control plane must outrank saturation")

    # 6. Priority ordering + sender-side machinery in the flash shed arm.
    for proto in PROTOCOLS:
        shed_i = int(cell(values, "sheds_interactive", proto, "flash",
                          "shed"))
        shed_s = int(cell(values, "sheds_streaming", proto, "flash", "shed"))
        drop_i = int(cell(values, "sheds_interactive", proto, "flash",
                          "drop"))
        bp = int(cell(values, "backpressure_signals", proto, "flash",
                      "shed"))
        sender = (int(cell(values, "session_sheds", proto, "flash", "shed"))
                  + int(cell(values, "segments_deferred", proto, "flash",
                             "shed")))
        ok = shed_i <= shed_s and shed_i < drop_i and bp > 0 and sender > 0
        print(f"priority: {proto:8s} interactive sheds {shed_i} <= "
              f"streaming {shed_s}, < drop-arm {drop_i}; bp {bp}, "
              f"sender-side {sender}: {'ok' if ok else 'FAIL'}")
        if shed_i > shed_s:
            failures.append(
                f"{proto}/flash/shed: interactive sheds {shed_i} exceed "
                f"streaming sheds {shed_s} — priority order inverted")
        if shed_i >= drop_i:
            failures.append(
                f"{proto}/flash: shed arm interactive sheds {shed_i} not "
                f"below drop arm {drop_i}")
        if bp == 0:
            failures.append(f"{proto}/flash/shed: no backpressure signals")
        if sender == 0:
            failures.append(
                f"{proto}/flash/shed: sender-side shedding never engaged")

    # 7. Interactive p99 bounds.
    for proto in PROTOCOLS:
        for arm in ARMS:
            p99 = int(cell(values, "interactive_p99_us", proto, "steady",
                           arm))
            if p99 > STEADY_P99_BOUND_US:
                failures.append(
                    f"{proto}/steady/{arm}: interactive p99 {p99} us > "
                    f"{STEADY_P99_BOUND_US}")
        diurnal = int(cell(values, "interactive_p99_us", proto, "diurnal",
                           "shed"))
        flash = int(cell(values, "interactive_p99_us", proto, "flash",
                         "shed"))
        print(f"latency: {proto:8s} shed p99 diurnal {diurnal / 1000:.0f} ms"
              f" flash {flash / 1000:.0f} ms")
        if diurnal > STEADY_P99_BOUND_US:
            failures.append(
                f"{proto}/diurnal/shed: interactive p99 {diurnal} us > "
                f"{STEADY_P99_BOUND_US}")
        if flash > FLASH_SHED_P99_BOUND_US:
            failures.append(
                f"{proto}/flash/shed: interactive p99 {flash} us > "
                f"{FLASH_SHED_P99_BOUND_US}")

    # 8. Accounting stays closed everywhere.
    violations = 0
    for proto in PROTOCOLS:
        for shape in SHAPES:
            for arm in ARMS:
                violations += int(
                    cell(values, "violations", proto, shape, arm))
    print(f"accounting: {violations} invariant violations across all cells")
    if violations != 0:
        failures.append(f"{violations} chaos invariant violations")

    if failures:
        print(f"\nFAIL: {len(failures)} overload gate(s) violated")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: all overload resilience gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
