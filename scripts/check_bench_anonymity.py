#!/usr/bin/env python3
"""Shape-gate a chaos_sweep --anonymity-sweep --json report.

Usage: check_bench_anonymity.py <report.json>

The anonymity sweep runs a passive global observer (LinkObserver) under
three protocols (CurMix k=1, SimRep k=2, SimEra k=4) and five arms (an
insider-fraction grid f in {0.05, 0.10, 0.20}, a cover-traffic arm, and a
churn arm), then replays the captured flow log through the offline attack
engine. The gated shapes are the empirical-anonymity claims (DESIGN §10):

  1. off means off: both control runs (defaults, and the null tap spelled
     out) reproduce the pre-PR chaos fingerprint byte for byte;
  2. the wire agrees with the protocol: the predecessor attack's
     compromise rate, computed purely from flow records, matches the
     session-layer ground truth in every cell;
  3. Eq. 4 / 1-(1-f)^k tracking: across the f grid the observed
     compromise rate tracks the closed-form multipath exposure within a
     small-sample tolerance, is monotone in f, and the attacker's
     realized success is at least the Eq. 4 closed form;
  4. cover traffic is load-bearing: it strictly cuts timing-correlation
     success in every protocol and widens the intersection set;
  5. entropy ordering is sane: more paths cost anonymity (SimEra's
     posterior entropy is below the single/dual-path protocols', its
     success above theirs), and no posterior ever beats the uniform
     no-information bound.

Exits 0 when all shapes hold, 1 otherwise.
"""

import json
import sys

PROTOCOLS = ("curmix", "simrep2", "simera4")
F_GRID = ("f05", "base", "f20")
ARMS = F_GRID + ("cover", "churn")

# |observed - closed form| bound on the f grid. 36 trials x a few seeds
# per cell with nested compromise sets: binomial noise alone gives a
# std-dev of ~0.05 at f20, and seeds share insiders across arms, so
# cells are correlated. Calibrated against the committed baseline, whose
# worst cell sits near 0.06.
TRACK_TOL = 0.12
# Wire-vs-protocol agreement: same events counted two ways, so only
# trial-bookkeeping skew (e.g. a teardown racing the window edge) is
# tolerated.
AGREE_TOL = 0.02


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("bench") != "chaos_anonymity_sweep":
        raise SystemExit(f"{path}: not a chaos_anonymity_sweep report")
    return doc.get("values", {})


def value(values, stem, proto, arm):
    key = f"{stem}_{proto}_{arm}"
    if key not in values:
        raise SystemExit(f"missing value '{key}'")
    return float(values[key])


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    values = load(argv[1])
    failures = []

    # 1. Off means off.
    expected = values.get("pre_pr_fingerprint")
    if not expected:
        failures.append("missing pre_pr_fingerprint")
    for key in ("control_fingerprint", "control_fingerprint_spelled"):
        if values.get(key) != expected:
            failures.append(
                f"{key} diverges from the pre-PR baseline: "
                f"{values.get(key)!r} != {expected!r}")
    if int(values.get("fingerprint_match", 0)) != 1:
        failures.append("fingerprint_match != 1")
    print(f"off-means-off: fingerprint_match="
          f"{values.get('fingerprint_match')}")

    # 2. Wire agrees with protocol ground truth on the clean f grid, and
    # the capture was non-vacuous in every cell. On the cover and churn
    # arms the wire legitimately sees MORE Case-1 events than the
    # session's own first relays — cover senders origin-send into
    # insiders, and churned constructions retry through fresh relays (the
    # predecessor-attack amplification DESIGN §10 documents) — so those
    # arms are gated directionally, never for equality.
    for proto in PROTOCOLS:
        for arm in ARMS:
            wire = value(values, "pred_compromise", proto, arm)
            truth = value(values, "gt_compromise", proto, arm)
            if arm in F_GRID and abs(wire - truth) > AGREE_TOL:
                failures.append(
                    f"{proto}/{arm}: wire compromise {wire:.3f} disagrees "
                    f"with ground truth {truth:.3f}")
            if arm not in F_GRID and wire + 1e-9 < truth:
                failures.append(
                    f"{proto}/{arm}: wire compromise {wire:.3f} below "
                    f"ground truth {truth:.3f} — the observer missed "
                    f"events the protocol recorded")
            if value(values, "flows", proto, arm) <= 0:
                failures.append(f"{proto}/{arm}: no flows captured")
            if value(values, "constructed", proto, arm) <= 0:
                failures.append(f"{proto}/{arm}: no trials constructed")
    print("wire-vs-protocol: f-grid compromise rates agree in all "
          f"{len(PROTOCOLS) * len(F_GRID)} cells (tol {AGREE_TOL}); "
          "cover/churn amplification is >= ground truth")

    # The churn arm's amplification must actually show: retries expose
    # strictly more than the pinned-up base arm records.
    for proto in PROTOCOLS:
        churn = value(values, "pred_compromise", proto, "churn")
        base = value(values, "pred_compromise", proto, "base")
        print(f"amplify: {proto:8s} churn {churn:.3f} vs base {base:.3f}")
        if churn <= base:
            failures.append(
                f"{proto}: churn arm compromise {churn:.3f} not above the "
                f"pinned base {base:.3f} — retry amplification missing")

    # 3. Closed-form tracking on the f grid.
    for proto in PROTOCOLS:
        prev = -1.0
        for arm in F_GRID:
            observed = value(values, "pred_compromise", proto, arm)
            closed = value(values, "exposure", proto, arm)
            ok = abs(observed - closed) <= TRACK_TOL
            print(f"track: {proto:8s} {arm:5s} observed {observed:.3f} "
                  f"vs 1-(1-f)^k {closed:.3f}: {'ok' if ok else 'FAIL'}")
            if not ok:
                failures.append(
                    f"{proto}/{arm}: compromise {observed:.3f} off the "
                    f"closed form {closed:.3f} by more than {TRACK_TOL}")
            if observed < prev - 1e-9:
                failures.append(
                    f"{proto}/{arm}: compromise not monotone in f "
                    f"({observed:.3f} < {prev:.3f})")
            prev = observed
            success = value(values, "pred_success", proto, arm)
            eq4 = value(values, "eq4", proto, arm)
            if success + 1e-9 < eq4:
                failures.append(
                    f"{proto}/{arm}: attack success {success:.4f} below "
                    f"the Eq. 4 closed form {eq4:.4f} — a global observer "
                    f"cannot do worse than the paper's bound")

    # 4. Cover traffic is load-bearing.
    for proto in PROTOCOLS:
        base = value(values, "corr_success", proto, "base")
        cover = value(values, "corr_success", proto, "cover")
        ok = cover < base
        print(f"cover: {proto:8s} correlation {base:.3f} -> {cover:.3f} "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{proto}: cover traffic did not reduce correlation "
                f"success ({cover:.3f} >= {base:.3f})")
        if value(values, "inter_set", proto, "cover") <= \
                value(values, "inter_set", proto, "base"):
            failures.append(
                f"{proto}: cover traffic did not widen the "
                f"intersection set")
        if value(values, "cover_messages", proto, "cover") <= 0:
            failures.append(f"{proto}: cover arm sent no cover messages")

    # 5. Entropy ordering: multipath costs anonymity, and nothing beats
    # the uniform bound.
    ent = {p: value(values, "pred_entropy", p, "base") for p in PROTOCOLS}
    suc = {p: value(values, "pred_success", p, "base") for p in PROTOCOLS}
    print(f"entropy@base: curmix {ent['curmix']:.2f} "
          f"simrep2 {ent['simrep2']:.2f} simera4 {ent['simera4']:.2f}")
    for single in ("curmix", "simrep2"):
        if ent[single] <= ent["simera4"]:
            failures.append(
                f"{single} posterior entropy {ent[single]:.2f} not above "
                f"simera4's {ent['simera4']:.2f} — multipath should cost "
                f"anonymity")
        if suc["simera4"] <= suc[single]:
            failures.append(
                f"simera4 success {suc['simera4']:.3f} not above "
                f"{single}'s {suc[single]:.3f}")
    for proto in PROTOCOLS:
        for arm in ARMS:
            bound = value(values, "uniform_entropy", proto, arm)
            got = value(values, "pred_entropy", proto, arm)
            if got > bound + 1e-6:
                failures.append(
                    f"{proto}/{arm}: posterior entropy {got:.3f} beats the "
                    f"uniform bound {bound:.3f} — impossible posterior")

    if failures:
        print(f"\nFAIL: {len(failures)} anonymity gate(s) violated")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: all anonymity gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
