#!/usr/bin/env python3
"""Shape-gate a table2_performance --json report (paper Table 2).

Usage: check_bench_table2.py <report.json>

Checks the *biased* column only -- the paper's §6.2 claim (and the
committed baseline) is about informed path selection:

  1. durability ordering: SimEra(k=4,r=4) > SimRep(r=2) > CurMix
  2. construction attempts ~= 1 for every biased cell (biased choice
     picks long-lived relays, so the first whole-set attempt succeeds)
  3. bandwidth ordering: CurMix <= SimRep <= SimEra (redundancy costs)

The random column is deliberately NOT gated: with few seeds its
durability is dominated by one Pareto draw (the committed 1-seed
baseline has SimRep.random > SimEra.random) and only the biased ordering
is a stable shape at CI scale.
"""

import json
import sys

CURMIX = "CurMix"
SIMREP = "SimRep(r=2)"
SIMERA = "SimEra(k=4,r=4)"
MAX_BIASED_ATTEMPTS = 1.5


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("bench") != "table2_performance":
        raise SystemExit(f"{path}: not a table2_performance report")
    return doc["values"]


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    values = load(argv[1])

    def biased(protocol, metric):
        key = f"{protocol}.biased.{metric}"
        if key not in values:
            raise SystemExit(f"{argv[1]}: missing {key}")
        return float(values[key])

    failures = []

    durability = {p: biased(p, "durability_s")
                  for p in (CURMIX, SIMREP, SIMERA)}
    print(f"biased durability: SimEra {durability[SIMERA]:.0f} s, "
          f"SimRep {durability[SIMREP]:.0f} s, CurMix "
          f"{durability[CURMIX]:.0f} s")
    if not durability[SIMERA] > durability[SIMREP] > durability[CURMIX]:
        failures.append(
            "biased durability ordering SimEra > SimRep > CurMix violated")

    for protocol in (CURMIX, SIMREP, SIMERA):
        attempts = biased(protocol, "construct_attempts")
        status = "ok" if attempts <= MAX_BIASED_ATTEMPTS else "FAIL"
        print(f"{protocol}.biased.construct_attempts: {attempts:.2f} "
              f"(ceiling {MAX_BIASED_ATTEMPTS}) -> {status}")
        if attempts > MAX_BIASED_ATTEMPTS:
            failures.append(
                f"{protocol} biased construction took {attempts:.2f} "
                f"attempts (> {MAX_BIASED_ATTEMPTS})")

    bandwidth = {p: biased(p, "bandwidth_kb")
                 for p in (CURMIX, SIMREP, SIMERA)}
    print(f"biased bandwidth: CurMix {bandwidth[CURMIX]:.1f} KB <= "
          f"SimRep {bandwidth[SIMREP]:.1f} KB <= SimEra "
          f"{bandwidth[SIMERA]:.1f} KB ?")
    if not bandwidth[CURMIX] <= bandwidth[SIMREP] <= bandwidth[SIMERA]:
        failures.append(
            "biased bandwidth ordering CurMix <= SimRep <= SimEra violated")

    if failures:
        print("FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("table2 report shape matches the paper's biased-column claims")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
