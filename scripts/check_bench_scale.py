#!/usr/bin/env python3
"""Gate the capacity scale probe (BENCH_scale.json / fresh CI runs).

Usage: check_bench_scale.py <scale.json> [<scale2.json> ...]

Each file is a scale_probe --json report (any size/scenario subset: the
committed full sweep or the CI smoke at N=1k/2k). Fails (exit 1) when:

  * any arm's event throughput is below EVENTS_PER_SEC_FLOOR -- the
    simulator must keep pushing events at scale, not just survive;
  * any arm's census bytes-per-node exceeds the linear-budget model
    PER_NODE_BASE + PER_NODE_PAIR * N (per-node state may grow linearly
    in N because of the known O(N^2) structures, but the per-pair
    coefficient is capped);
  * the largest arm's peak RSS exceeds RSS_FACTOR * its census total plus
    RSS_BASE of process slack -- actual process memory must stay
    explainable by the structures the census can see;
  * the superlinear-growth detector flags a subsystem NOT on the known
    O(N^2) list (latency_matrix, membership) -- a new quadratic structure
    must not sneak in silently;
  * the detector does NOT flag latency_matrix even though two network
    sizes are present -- i.e. the detector itself must demonstrably work;
  * any arm's measured profiler self-overhead is >= OVERHEAD_PCT_MAX of
    the measured wall time (the probe must stay cheap enough to leave on).
"""

import json
import sys

EVENTS_PER_SEC_FLOOR = 20_000.0   # conservative: 1-core CI boxes included
PER_NODE_BASE = 256 * 1024        # per-node budget: base ...
PER_NODE_PAIR = 150.0             # ... plus bytes per (node, peer) pair
RSS_FACTOR = 2.0                  # RSS explainable as 2x census ...
RSS_BASE = 500 * 1024 * 1024      # ... plus process slack (heap, code, libs)
SUPERLINEAR_SLACK = 1.30          # growth factor beyond proportional
EXPECTED_SUPERLINEAR = {"latency_matrix", "membership"}
OVERHEAD_PCT_MAX = 3.0


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("bench") != "scale_probe":
        raise SystemExit(f"{path}: not a scale_probe report")
    return doc


def arm_names(doc):
    return list(doc["sections"]["arms"])


def check_doc(path, doc, failures):
    values = doc["values"]
    arms = arm_names(doc)
    if not arms:
        failures.append(f"{path}: no arms recorded")
        return

    # Per-arm floors and ceilings.
    largest = None
    for arm in arms:
        nodes = int(values[f"{arm}_nodes"])
        eps = float(values[f"{arm}_events_per_sec"])
        per_node = float(values[f"{arm}_census_bytes_per_node"])
        overhead = float(values[f"{arm}_profiler_overhead_pct"])
        budget = PER_NODE_BASE + PER_NODE_PAIR * nodes

        status = "ok" if eps >= EVENTS_PER_SEC_FLOOR else "FAIL"
        print(f"{arm}: {eps:,.0f} events/sec "
              f"(floor {EVENTS_PER_SEC_FLOOR:,.0f}) [{status}]")
        if eps < EVENTS_PER_SEC_FLOOR:
            failures.append(f"{path}: {arm} events/sec {eps:,.0f} below "
                            f"floor {EVENTS_PER_SEC_FLOOR:,.0f}")

        status = "ok" if per_node <= budget else "FAIL"
        print(f"{arm}: {per_node:,.0f} census bytes/node "
              f"(budget {budget:,.0f} at N={nodes}) [{status}]")
        if per_node > budget:
            failures.append(f"{path}: {arm} census bytes/node {per_node:,.0f}"
                            f" over budget {budget:,.0f}")

        status = "ok" if overhead < OVERHEAD_PCT_MAX else "FAIL"
        print(f"{arm}: profiler self-overhead {overhead:.2f}% "
              f"(max {OVERHEAD_PCT_MAX}%) [{status}]")
        if overhead >= OVERHEAD_PCT_MAX:
            failures.append(f"{path}: {arm} profiler overhead {overhead:.2f}%"
                            f" >= {OVERHEAD_PCT_MAX}%")

        if largest is None or nodes > largest[1]:
            largest = (arm, nodes)

    # RSS sanity on the largest arm (peak RSS is a process-wide high-water
    # mark and arms run smallest-first, so the largest arm owns the peak).
    arm = largest[0]
    rss = float(values[f"{arm}_peak_rss_kb"]) * 1024.0
    census = float(values[f"{arm}_census_total_bytes"])
    ceiling = RSS_FACTOR * census + RSS_BASE
    status = "ok" if rss <= ceiling else "FAIL"
    print(f"{arm}: peak RSS {rss / 1e6:,.0f} MB vs ceiling "
          f"{ceiling / 1e6:,.0f} MB (2x census + slack) [{status}]")
    if rss > ceiling:
        failures.append(f"{path}: {arm} peak RSS {rss / 1e6:,.0f} MB over "
                        f"ceiling {ceiling / 1e6:,.0f} MB")

    # Superlinear growth detector, per scenario.
    scenarios = {}
    for arm in arms:
        nodes = int(values[f"{arm}_nodes"])
        scenario = arm.split("_", 1)[1]
        subsystems = {
            s["name"]: float(s["bytes"])
            for s in doc["sections"][f"{arm}_census"]["subsystems"]
        }
        scenarios.setdefault(scenario, []).append((nodes, subsystems))

    for scenario, series in scenarios.items():
        series.sort()
        if len(series) < 2:
            print(f"{scenario}: single size, superlinear detector skipped")
            continue
        (n1, sub1), (n2, sub2) = series[-2], series[-1]
        ratio_n = n2 / n1
        flagged = set()
        for name in sorted(set(sub1) & set(sub2)):
            if sub1[name] <= 0:
                continue
            growth = sub2[name] / sub1[name]
            if growth > SUPERLINEAR_SLACK * ratio_n:
                flagged.add(name)
                print(f"{scenario}: {name} superlinear "
                      f"(x{growth:.2f} for x{ratio_n:.0f} nodes)")
        unexpected = flagged - EXPECTED_SUPERLINEAR
        if unexpected:
            failures.append(f"{path}: {scenario} unexpected superlinear "
                            f"growth in {sorted(unexpected)}")
        if "latency_matrix" not in flagged:
            failures.append(f"{path}: {scenario} detector failed to flag "
                            f"the O(N^2) latency matrix "
                            f"(N {n1} -> {n2})")
        else:
            print(f"{scenario}: detector correctly flags latency_matrix; "
                  f"no unexpected superlinear subsystems")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for path in argv[1:]:
        check_doc(path, load(path), failures)
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nscale gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
