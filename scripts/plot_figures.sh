#!/usr/bin/env bash
# Regenerates the paper's figures as PNGs from the bench binaries, if
# gnuplot is installed. Usage: scripts/plot_figures.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-plots}"
mkdir -p "$out"

command -v gnuplot >/dev/null || {
  echo "gnuplot not found; the bench binaries print gnuplot-ready series" >&2
  exit 1
}

# Figure 1: lifetime CDF.
./build/bench/fig1_lifetime_cdf | sed -n '/^#/d;/^[0-9]/p' > "$out/fig1.dat"
gnuplot <<EOF
set terminal png size 800,600
set output "$out/fig1.png"
set xlabel "Node lifetimes (x10^4 sec)"
set ylabel "CDF"
set key bottom right
plot "$out/fig1.dat" using 1:2 with lines title "measured (stand-in)", \
     "$out/fig1.dat" using 1:3 with lines title "Pareto(0.83, 1560s)"
EOF

# Figure 2: observations (model columns: 3, 5, 7).
./build/bench/fig2_observations | sed -n '/^[0-9]/p' > "$out/fig2.dat"
gnuplot <<EOF
set terminal png size 800,600
set output "$out/fig2.png"
set xlabel "k (number of paths)"
set ylabel "P(k) (probability of success)"
set yrange [0:1]
set key bottom right
plot "$out/fig2.dat" using 1:3 with linespoints title "Obser. 3 (0.70)", \
     "$out/fig2.dat" using 1:5 with linespoints title "Obser. 2 (0.86)", \
     "$out/fig2.dat" using 1:7 with linespoints title "Obser. 1 (0.95)"
EOF

# Figure 3: replication factor.
./build/bench/fig3_replication_factor | sed -n '/^[0-9]/p' > "$out/fig3.dat"
gnuplot <<EOF
set terminal png size 800,600
set output "$out/fig3.png"
set xlabel "k (number of paths)"
set ylabel "P(k) (probability of success)"
set yrange [0:1]
plot "$out/fig3.dat" using 1:3 with linespoints title "r=2", \
     "$out/fig3.dat" using 1:5 with linespoints title "r=3", \
     "$out/fig3.dat" using 1:7 with linespoints title "r=4"
EOF

# Figure 4: bandwidth.
./build/bench/fig4_bandwidth | sed -n '/^[0-9]/p' > "$out/fig4.dat"
gnuplot <<EOF
set terminal png size 800,600
set output "$out/fig4.png"
set xlabel "k (number of paths)"
set ylabel "Bandwidth cost (KB)"
plot "$out/fig4.dat" using 1:2 with linespoints title "r=2", \
     "$out/fig4.dat" using 1:3 with linespoints title "r=3", \
     "$out/fig4.dat" using 1:4 with linespoints title "r=4"
EOF

echo "wrote $out/fig{1,2,3,4}.png"
echo "(fig5 prints one block per (mix, r); plot from its output manually)"
