#!/usr/bin/env bash
# Regenerates the paper's figures as PNGs, if gnuplot is installed.
#
# Data flows through the benches' --json exports (validated, provenance-
# stamped) rather than scraping stdout, so a formatting tweak in a bench's
# human-readable table can never silently corrupt a figure. The raw .json
# files are kept next to the .dat/.png outputs for auditing.
#
# Also renders an observability panel: per-cause drop rates and path-health
# gauges over sim time, from a chaos_sweep --timeseries CSV.
#
# Usage: scripts/plot_figures.sh [output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-plots}"
mkdir -p "$out"

command -v gnuplot >/dev/null || {
  echo "gnuplot not found; run the benches with --json and plot manually" >&2
  exit 1
}

# Extracts one section (a metrics::Series JSON array) from a --json report
# into whitespace-separated columns, first column = x, in label order.
section_to_dat() { # <report.json> <section> <out.dat>
  python3 - "$1" "$2" > "$3" <<'PY'
import json, sys
with open(sys.argv[1], encoding="utf-8") as fh:
    doc = json.load(fh)
rows = doc["sections"][sys.argv[2]]
if not rows:
    raise SystemExit(f"section {sys.argv[2]} is empty")
labels = list(rows[0].keys())  # x label first; insertion order preserved
print("# " + "\t".join(labels))
for row in rows:
    print("\t".join(str(row[label]) for label in labels))
PY
}

# Figure 1: lifetime CDF.
./build/bench/fig1_lifetime_cdf --json "$out/fig1.json" > /dev/null
section_to_dat "$out/fig1.json" cdf "$out/fig1.dat"
gnuplot <<EOF
set terminal png size 800,600
set output "$out/fig1.png"
set xlabel "Node lifetimes (x10^4 sec)"
set ylabel "CDF"
set key bottom right
plot "$out/fig1.dat" using 1:2 with lines title "measured (stand-in)", \
     "$out/fig1.dat" using 1:3 with lines title "Pareto(0.83, 1560s)"
EOF

# Figure 2: observations. Columns: k, then sim/model pairs for
# availability 0.70, 0.86, 0.95.
./build/bench/fig2_observations --json "$out/fig2.json" > /dev/null
section_to_dat "$out/fig2.json" pk_curves "$out/fig2.dat"
gnuplot <<EOF
set terminal png size 800,600
set output "$out/fig2.png"
set xlabel "k (number of paths)"
set ylabel "P(k) (probability of success)"
set yrange [0:1]
set key bottom right
plot "$out/fig2.dat" using 1:2 with linespoints title "Obser. 3 (0.70)", \
     "$out/fig2.dat" using 1:4 with linespoints title "Obser. 2 (0.86)", \
     "$out/fig2.dat" using 1:6 with linespoints title "Obser. 1 (0.95)"
EOF

# Figure 3: replication factor. Columns: k, sim/model pairs for r=2,3,4.
./build/bench/fig3_replication_factor --json "$out/fig3.json" > /dev/null
section_to_dat "$out/fig3.json" pk_curves "$out/fig3.dat"
gnuplot <<EOF
set terminal png size 800,600
set output "$out/fig3.png"
set xlabel "k (number of paths)"
set ylabel "P(k) (probability of success)"
set yrange [0:1]
plot "$out/fig3.dat" using 1:2 with linespoints title "r=2", \
     "$out/fig3.dat" using 1:4 with linespoints title "r=3", \
     "$out/fig3.dat" using 1:6 with linespoints title "r=4"
EOF

# Figure 4: bandwidth.
./build/bench/fig4_bandwidth --json "$out/fig4.json" > /dev/null
section_to_dat "$out/fig4.json" bandwidth_kb "$out/fig4.dat"
gnuplot <<EOF
set terminal png size 800,600
set output "$out/fig4.png"
set xlabel "k (number of paths)"
set ylabel "Bandwidth cost (KB)"
plot "$out/fig4.dat" using 1:2 with linespoints title "r=2", \
     "$out/fig4.dat" using 1:3 with linespoints title "r=3", \
     "$out/fig4.dat" using 1:4 with linespoints title "r=4"
EOF

# Observability panel: a small traced chaos run with the windowed sampler
# and health scoreboard on, then drop-rate + path-health trajectories from
# the time-series CSV (sim-time seconds on x).
./build/bench/chaos_sweep --nodes 64 --timeseries "$out/timeseries.csv" \
    --health --json "$out/chaos.json" > /dev/null
python3 - "$out/timeseries.csv" "$out" <<'PY'
import csv, sys
out_dir = sys.argv[2]
drops = {}   # cause -> {t_s: rate}; series may appear mid-run
health = {}  # gauge -> {t_s: value}
with open(sys.argv[1], newline="", encoding="utf-8") as fh:
    for row in csv.DictReader(fh):
        t_s = int(row["end_us"]) / 1e6
        series = row["series"].strip('"')
        if series.startswith("net_drops_total{cause="):
            cause = series[len("net_drops_total{cause="):-1]
            drops.setdefault(cause, {})[t_s] = float(row["rate_per_s"])
        elif series in ("health_stalled_paths",
                        "health_churn_transitions_window"):
            health.setdefault(series, {})[t_s] = float(row["value"])

def write_dat(path, columns, fmt):
    # First line is an uncommented header for gnuplot's columnheader().
    times = sorted({t for values in columns.values() for t in values})
    keys = sorted(columns)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("t_s\t" + "\t".join(keys) + "\n")
        for t in times:
            cells = "\t".join(fmt % columns[k].get(t, 0.0) for k in keys)
            fh.write(f"{t:.1f}\t{cells}\n")

if not drops or not health:
    raise SystemExit("timeseries CSV is missing drop or health series")
write_dat(f"{out_dir}/drop_rates.dat", drops, "%.6f")
write_dat(f"{out_dir}/path_health.dat", health, "%.1f")
print(f"drop causes: {sorted(drops)}; health gauges: {sorted(health)}")
PY
ncauses=$(head -1 "$out/drop_rates.dat" | awk '{print NF-1}')
gnuplot <<EOF
set terminal png size 1000,600
set output "$out/obs_panel.png"
set multiplot layout 2,1 title "Chaos run observability (64 nodes)"
set xlabel "sim time (s)"
set ylabel "drops/s (30 s windows)"
set key outside right
plot for [i=2:$((ncauses + 1))] "$out/drop_rates.dat" using 1:i \
     with lines title columnheader(i)
set ylabel "path health"
plot "$out/path_health.dat" using 1:2 with steps title columnheader(2), \
     "$out/path_health.dat" using 1:3 with steps title columnheader(3)
unset multiplot
EOF

# Overload panel: a 1-seed overload sweep, then per-class goodput under
# each load shape with shedding on vs blind tail drop. The clustered bars
# are the graceful-degradation claim at a glance: under the flash crowd
# the shed arm holds interactive goodput while the drop arm collapses.
./build/bench/chaos_sweep --overload-sweep --ovl-seeds 1 \
    --json "$out/overload.json" > /dev/null
python3 - "$out/overload.json" "$out" <<'PY'
import json, sys
with open(sys.argv[1], encoding="utf-8") as fh:
    rows = json.load(fh)["sections"]["overload"]
# One line per (protocol, shape): label, then shed/drop pairs of
# interactive and total goodput.
cells = {(r["protocol"], r["shape"], r["arm"]): r for r in rows}
protocols = list(dict.fromkeys(r["protocol"] for r in rows))
shapes = list(dict.fromkeys(r["shape"] for r in rows))
with open(f"{sys.argv[2]}/overload.dat", "w", encoding="utf-8") as fh:
    fh.write("label\tinter_shed\tinter_drop\ttotal_shed\ttotal_drop\n")
    for proto in protocols:
        for shape in shapes:
            shed, drop = cells[(proto, shape, "shed")], \
                         cells[(proto, shape, "drop")]
            fh.write(f"{proto}/{shape}\t{shed['inter_gp']}\t"
                     f"{drop['inter_gp']}\t{shed['goodput']}\t"
                     f"{drop['goodput']}\n")
PY
gnuplot <<EOF
set terminal png size 1000,600
set output "$out/overload_panel.png"
set title "Overload resilience: goodput by load shape (shed vs tail drop)"
set style data histograms
set style histogram clustered gap 1
set style fill solid 0.8 border -1
set yrange [0:1.05]
set ylabel "goodput (delivered / attempted)"
set xtics rotate by -30
set key outside right
plot "$out/overload.dat" using 2:xtic(1) title "interactive, shed", \
     "" using 3 title "interactive, drop", \
     "" using 4 title "total, shed", \
     "" using 5 title "total, drop"
EOF

echo "wrote $out/fig{1,2,3,4}.png, $out/obs_panel.png and $out/overload_panel.png"
echo "(fig5 prints one block per (mix, r); plot from its --json manually)"
