#!/usr/bin/env python3
"""Gate onion-crypto data-plane throughput against the committed baseline.

Usage: check_bench_crypto.py <fresh.json> <baseline.json>

Both files are micro_crypto --json reports. Fails (exit 1) when:
  * the dispatched ChaCha20 kernel is not at least MIN_SPEEDUP times the
    in-binary scalar reference measured in the same run (this is a
    same-host ratio, so it is safe to gate absolutely);
  * the pooled in-place relay path performed any heap allocations per
    segment (the zero-allocation acceptance gate; requires the counting
    alloc-probe hooks to be linked, asserted via alloc_probe_active);
  * any gated throughput metric drops below THRESHOLD times the committed
    baseline. Only relative regressions are gated -- absolute numbers vary
    across CI hosts, so the baseline is only meaningful when produced on
    comparable hardware; the 20% slack absorbs normal noise.
"""

import json
import sys

GATED_KEYS = [
    "chacha20_MBps",
    "aead_seal_MBps",
    "aead_open_MBps",
    "relay_layer_MBps",
]
THRESHOLD = 0.8
MIN_SPEEDUP = 3.0


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("bench") != "micro_crypto":
        raise SystemExit(f"{path}: not a micro_crypto report")
    return doc["values"]


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh = load(argv[1])
    base = load(argv[2])
    failures = []

    speedup = float(fresh.get("chacha20_speedup", 0.0))
    status = "ok" if speedup >= MIN_SPEEDUP else "FAIL"
    print(f"chacha20_speedup: {speedup:.2f}x vs scalar reference "
          f"(floor {MIN_SPEEDUP:.1f}x) -> {status}")
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"chacha20_speedup: {speedup:.2f} < {MIN_SPEEDUP:.1f}")

    if int(fresh.get("alloc_probe_active", 0)) != 1:
        failures.append("alloc_probe_active != 1: counting hooks not linked, "
                        "relay_path_allocs is meaningless")
    allocs = int(fresh.get("relay_path_allocs", -1))
    status = "ok" if allocs == 0 else "FAIL"
    print(f"relay_path_allocs: {allocs} per segment -> {status}")
    if allocs != 0:
        failures.append(f"relay_path_allocs: {allocs} != 0")

    for key in GATED_KEYS:
        if key not in fresh:
            failures.append(f"{key}: missing from {argv[1]}")
            continue
        if key not in base:
            print(f"{key}: not in baseline, skipping")
            continue
        got, want = float(fresh[key]), THRESHOLD * float(base[key])
        status = "ok" if got >= want else "REGRESSION"
        print(f"{key}: {got:.1f} MB/s vs floor {want:.1f} MB/s "
              f"(baseline {float(base[key]):.1f}) -> {status}")
        if got < want:
            failures.append(
                f"{key}: {got:.1f} < {THRESHOLD:.0%} of baseline "
                f"{float(base[key]):.1f}")
    if failures:
        print("FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("crypto bench throughput within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
