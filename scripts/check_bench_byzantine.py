#!/usr/bin/env python3
"""Shape-gate a chaos_sweep --byzantine-sweep --json report.

Usage: check_bench_byzantine.py <report.json>

The byzantine sweep reruns the corrupted-relay-quorum scenario across
per-datagram flip probabilities x protocols x defense arms and scores
every delivery against the bytes the sender actually sent. The gated
shapes are the integrity claims of the corruption-resilience extension:

  1. fail closed, always: every cell with segment auth on ("tags" and
     "tags+suspicion" arms) has delivered-wrong == 0 — at every swept
     corruption probability the responder either reconstructs the exact
     message or refuses, so the fail-closed rate of failures is 100%;
  2. the hazard is real: at least one seed-behavior ("off") cell has
     delivered-wrong > 0, i.e. the sweep actually drove corrupted bytes
     through the no-integrity codec and the comparison is non-vacuous;
  3. suspicion pays: aggregated over the sweep, SimEra with relay
     suspicion + biased mix delivers a strictly higher correct rate
     than SimEra with tags alone — quarantining the byzantine quorum
     out of rebuilt paths must recover deliveries, not just relabel
     failures;
  4. invariants hold: the violations column (conservation breaks +
     residual-state leaks + open segment ledgers) is 0 in every cell.

Exits 0 when all shapes hold, 1 otherwise.
"""

import json
import sys

TAG_ARMS = ("tags", "tags+suspicion")


def load_rows(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("bench") != "chaos_byzantine_sweep":
        raise SystemExit(f"{path}: not a chaos_byzantine_sweep report")
    rows = doc.get("sections", {}).get("byzantine")
    if not rows:
        raise SystemExit(f"{path}: missing 'byzantine' section")
    return rows


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    rows = load_rows(argv[1])
    failures = []

    # 1. Fail closed in every auth cell.
    for row in rows:
        if row["arm"] in TAG_ARMS and int(row["wrong"]) != 0:
            failures.append(
                f"p={row['p_corrupt']} {row['protocol']}/{row['arm']}: "
                f"delivered {row['wrong']} wrong messages (must be 0)")
    tagged = sum(1 for row in rows if row["arm"] in TAG_ARMS)
    print(f"fail-closed: {tagged} auth cells, "
          f"{'all wrong==0' if not failures else 'VIOLATED'}")

    # 2. The baseline hazard must be observable somewhere.
    baseline_wrong = sum(int(r["wrong"]) for r in rows if r["arm"] == "off")
    print(f"baseline hazard: {baseline_wrong} wrong deliveries in the "
          f"'off' arm")
    if baseline_wrong == 0:
        failures.append("no 'off' cell delivered wrong bytes; the sweep "
                        "never exercised the corruption hazard")

    # 3. Suspicion-biased beats suspicion-off for SimEra, sweep-aggregate.
    def aggregate(arm):
        accepted = correct = 0
        for row in rows:
            if row["protocol"].startswith("simera") and row["arm"] == arm:
                accepted += int(row["accepted"])
                correct += int(row["correct"])
        return correct / accepted if accepted else 0.0

    tags_rate = aggregate("tags")
    susp_rate = aggregate("tags+suspicion")
    print(f"simera correct rate: tags {tags_rate:.4f} vs "
          f"tags+suspicion {susp_rate:.4f}")
    if susp_rate <= tags_rate:
        failures.append(
            f"suspicion-biased ({susp_rate:.4f}) does not beat "
            f"suspicion-off ({tags_rate:.4f}) for simera")

    # 4. Chaos invariants.
    bad = [r for r in rows if int(r["violations"]) != 0]
    print(f"invariants: {len(rows)} cells, {len(bad)} with violations")
    for row in bad:
        failures.append(
            f"p={row['p_corrupt']} {row['protocol']}/{row['arm']}: "
            f"{row['violations']} invariant violations")

    if failures:
        print("FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("byzantine sweep shape ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
