#!/usr/bin/env bash
# Full local check: configure, build, test, and smoke-run every bench and
# example at reduced scale. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja for fresh configures when available; otherwise (or when
# build/ already holds a cache with some generator) use the default so
# this matches ROADMAP.md's tier-1 command everywhere.
if [ ! -f build/CMakeCache.txt ] && command -v ninja >/dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir build --output-on-failure

echo "== quick bench smoke (P2PANON_BENCH_SCALE=0.05) =="
export P2PANON_BENCH_SCALE=0.05
for bench in build/bench/*; do
  if [ -f "$bench" ] && [ -x "$bench" ]; then
    echo "--- $bench"
    case "$bench" in
      # Statistical churn benches get tiny configs for the smoke run.
      *table*|*fig5*) "$bench" --nodes 128 >/dev/null ;;
      *ablate_failure*) "$bench" --nodes 128 --seeds 1 >/dev/null ;;
      *sec_*) "$bench" --nodes 128 >/dev/null ;;
      # The scale probe's default sweep reaches N=16k (~11 GB); smoke small.
      *scale_probe*) "$bench" --sizes 256,512 >/dev/null ;;
      # Plain "0.01" (no unit suffix) parses on both old and new
      # google-benchmark; the "0.01s" form is rejected by older releases.
      *micro*) "$bench" --benchmark_min_time=0.01 >/dev/null ;;
      *) "$bench" >/dev/null ;;
    esac
  fi
done

echo "== examples =="
./build/examples/quickstart >/dev/null
./build/examples/allocation_planner >/dev/null
echo "all checks passed"
