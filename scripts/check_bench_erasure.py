#!/usr/bin/env python3
"""Gate erasure data-plane throughput against the committed baseline.

Usage: check_bench_erasure.py <fresh.json> <baseline.json>

Both files are micro_erasure --json reports. Fails (exit 1) if any gated
throughput metric in the fresh report drops below THRESHOLD times the
committed baseline. Only relative regressions are gated -- absolute
numbers vary across CI hosts, so the baseline is only meaningful when
produced on comparable hardware; the 20% slack absorbs normal noise.
"""

import json
import sys

GATED_KEYS = [
    "encode_MBps",
    "decode_parity_MBps",
    "decode_systematic_MBps",
]
THRESHOLD = 0.8


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("bench") != "micro_erasure":
        raise SystemExit(f"{path}: not a micro_erasure report")
    return doc["values"]


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh = load(argv[1])
    base = load(argv[2])
    failures = []
    for key in GATED_KEYS:
        if key not in fresh:
            failures.append(f"{key}: missing from {argv[1]}")
            continue
        if key not in base:
            print(f"{key}: not in baseline, skipping")
            continue
        got, want = float(fresh[key]), THRESHOLD * float(base[key])
        status = "ok" if got >= want else "REGRESSION"
        print(f"{key}: {got:.1f} MB/s vs floor {want:.1f} MB/s "
              f"(baseline {float(base[key]):.1f}) -> {status}")
        if got < want:
            failures.append(
                f"{key}: {got:.1f} < {THRESHOLD:.0%} of baseline "
                f"{float(base[key]):.1f}")
    if failures:
        print("FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("erasure bench throughput within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
