// Ablation: even vs weighted segment allocation (the paper's §7 future
// work: "more segments are allocated to the paths that are more likely to
// be stable").
//
// Monte-Carlo over the Bernoulli path model with HETEROGENEOUS per-path
// survival probabilities (the situation weighted allocation is for): k
// paths get survival probabilities spread around a mean, n segments are
// placed either round-robin (even) or by largest-remainder proportional to
// the survival estimate (weighted, spread-capped), and we measure the
// probability that >= m segments arrive.
#include <cstdio>

#include "anon/allocation.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::anon;

namespace {

double delivery_probability(const ErasureParams& params,
                            const std::vector<double>& path_survival,
                            const Allocation& alloc, std::size_t trials,
                            Rng& rng) {
  std::size_t wins = 0;
  std::vector<bool> alive(params.k);
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t j = 0; j < params.k; ++j) {
      alive[j] = rng.bernoulli(path_survival[j]);
    }
    if (segments_delivered(alloc, alive) >= params.m) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  auto& trials = flags.add_int("trials", 200000, "Monte-Carlo trials per cell");
  auto& seed = flags.add_int("seed", 1, "RNG seed");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto n_trials = static_cast<std::size_t>(
      static_cast<double>(trials) * bench_scale());

  Rng rng(static_cast<std::uint64_t>(seed));

  // SimEra-like setups with two segments per path so weighting has room.
  struct Scenario {
    const char* name;
    std::size_t m, n, k;
    std::vector<double> survival;
  };
  const Scenario scenarios[] = {
      {"homogeneous p=0.55", 4, 8, 4, {0.55, 0.55, 0.55, 0.55}},
      {"mild spread", 4, 8, 4, {0.75, 0.65, 0.45, 0.35}},
      {"strong spread", 4, 8, 4, {0.95, 0.85, 0.25, 0.15}},
      {"one dying path", 4, 8, 4, {0.80, 0.80, 0.80, 0.10}},
      {"k=6 spread", 6, 12, 6, {0.9, 0.8, 0.7, 0.5, 0.3, 0.2}},
  };

  std::printf("# Ablation: even vs weighted segment allocation "
              "(P[>= m of n segments arrive], %zu trials)\n", n_trials);
  metrics::Table table({"scenario", "even", "weighted(spread=1)",
                        "weighted(spread=2)", "delta best"});
  for (const Scenario& s : scenarios) {
    ErasureParams params;
    params.m = s.m;
    params.n = s.n;
    params.k = s.k;
    const auto even = allocate_even(params);
    const auto weighted1 = allocate_weighted(params, s.survival, 1);
    const auto weighted2 = allocate_weighted(params, s.survival, 2);
    const double p_even =
        delivery_probability(params, s.survival, even, n_trials, rng);
    const double p_w1 =
        delivery_probability(params, s.survival, weighted1, n_trials, rng);
    const double p_w2 =
        delivery_probability(params, s.survival, weighted2, n_trials, rng);
    table.add_row({s.name, format_double(p_even, 4), format_double(p_w1, 4),
                   format_double(p_w2, 4),
                   format_double(std::max(p_w1, p_w2) - p_even, 4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading (a real finding about the paper's future-work idea): "
      "weighted allocation is NOT a free win. Concentrating segments on "
      "the stablest paths creates correlated loss — when a favored path "
      "dies it takes several segments with it, which can more than cancel "
      "the gain (negative deltas at k = 4). With more paths relative to m "
      "(k = 6 row) the concentration is milder and weighting helps. A "
      "deployment should gate weighting on k/m headroom.\n");
  obs::BenchReport report("ablate_allocation");
  report.add("trials", static_cast<std::uint64_t>(n_trials));
  report.add_section("table", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
