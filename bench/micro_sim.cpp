// Microbenchmarks: event engine and membership substrate throughput.
#include <benchmark/benchmark.h>

#include "churn/churn_model.hpp"
#include "churn/distributions.hpp"
#include "membership/gossip.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.schedule(static_cast<SimTime>(rng.next_below(1000000)), [] {});
    }
    while (!queue.empty()) queue.pop();
    benchmark::DoNotOptimize(queue.scheduled_total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(65536);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t counter = 0;
    std::function<void()> tick = [&] {
      if (++counter < 10000) simulator.schedule_after(1, tick);
    };
    simulator.schedule_after(0, tick);
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_GossipMinuteOfSimulation(benchmark::State& state) {
  // One simulated minute of a churning gossip overlay.
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    auto latency = net::LatencyMatrix::synthetic(nodes, Rng(2));
    churn::ParetoLifetime dist = churn::ParetoLifetime::with_median(3600.0);
    churn::ChurnModel churn_model(simulator, nodes, dist, Rng(3), 0.5);
    net::SimTransport transport(
        simulator, latency,
        [&](NodeId node) { return churn_model.is_up(node); });
    net::Demux demux(transport, nodes);
    membership::GossipMembership gossip(simulator, demux, churn_model,
                                        membership::GossipConfig{}, Rng(4));
    gossip.start();
    churn_model.start();
    simulator.run_until(1 * kMinute);
    benchmark::DoNotOptimize(gossip.gossip_messages_sent());
  }
}
BENCHMARK(BM_GossipMinuteOfSimulation)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_LatencyMatrixSynthesis(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto matrix = net::LatencyMatrix::synthetic(nodes, Rng(5));
    benchmark::DoNotOptimize(matrix.mean_rtt());
  }
}
BENCHMARK(BM_LatencyMatrixSynthesis)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
