// Microbenchmarks: event engine and membership substrate throughput.
//
// Two modes (micro_crypto's pattern):
//   * plain google-benchmark run (default);
//   * --json <path>: hand-rolled event-queue / dispatch throughput report
//     at N = 10k events, with and without the capacity loop profiler
//     attached, so the profiler's dispatch-path cost is a committed
//     number rather than a claim.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "churn/churn_model.hpp"
#include "churn/distributions.hpp"
#include "membership/gossip.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "obs/capacity/loop_profiler.hpp"
#include "obs/export.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.schedule(static_cast<SimTime>(rng.next_below(1000000)), [] {});
    }
    while (!queue.empty()) queue.pop();
    benchmark::DoNotOptimize(queue.scheduled_total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(10240)->Arg(65536);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t counter = 0;
    std::function<void()> tick = [&] {
      if (++counter < 10000) simulator.schedule_after(1, tick);
    };
    simulator.schedule_after(0, tick);
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_SimulatorEventDispatchProfiled(benchmark::State& state) {
  // Same self-rescheduling chain with the capacity loop profiler attached;
  // the ratio to the plain variant is the profiler's dispatch-path cost.
  const auto stride = static_cast<std::uint32_t>(state.range(0));
  static const auto kTickEvent = obs::capacity::event_type("bench.tick");
  obs::capacity::LoopProfiler::Config config;
  config.sample_stride = stride;
  obs::capacity::LoopProfiler profiler(config);
  for (auto _ : state) {
    sim::Simulator simulator;
    simulator.set_profiler(&profiler);
    std::uint64_t counter = 0;
    std::function<void()> tick = [&] {
      if (++counter < 10000) simulator.schedule_after(1, tick, kTickEvent);
    };
    simulator.schedule_after(0, tick, kTickEvent);
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorEventDispatchProfiled)->Arg(16)->Arg(1);

void BM_GossipMinuteOfSimulation(benchmark::State& state) {
  // One simulated minute of a churning gossip overlay.
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    auto latency = net::LatencyMatrix::synthetic(nodes, Rng(2));
    churn::ParetoLifetime dist = churn::ParetoLifetime::with_median(3600.0);
    churn::ChurnModel churn_model(simulator, nodes, dist, Rng(3), 0.5);
    net::SimTransport transport(
        simulator, latency,
        [&](NodeId node) { return churn_model.is_up(node); });
    net::Demux demux(transport, nodes);
    membership::GossipMembership gossip(simulator, demux, churn_model,
                                        membership::GossipConfig{}, Rng(4));
    gossip.start();
    churn_model.start();
    simulator.run_until(1 * kMinute);
    benchmark::DoNotOptimize(gossip.gossip_messages_sent());
  }
}
BENCHMARK(BM_GossipMinuteOfSimulation)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_LatencyMatrixSynthesis(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto matrix = net::LatencyMatrix::synthetic(nodes, Rng(5));
    benchmark::DoNotOptimize(matrix.mean_rtt());
  }
}
BENCHMARK(BM_LatencyMatrixSynthesis)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// --- --json report mode ----------------------------------------------------

constexpr std::size_t kJsonEvents = 10000;  // N = 10k per measured run

template <class Fn>
double measure_events_per_sec(std::size_t events_per_call, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    std::size_t iters = 1;
    for (;;) {
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < iters; ++i) fn();
      const double secs =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (secs >= 0.05) {
        best = std::max(best, static_cast<double>(iters) *
                                  static_cast<double>(events_per_call) /
                                  secs);
        break;
      }
      iters = secs <= 0.0 ? iters * 8 : iters * 2;
    }
  }
  return best;
}

double dispatch_run(obs::capacity::LoopProfiler* profiler) {
  static const auto kTickEvent = obs::capacity::event_type("bench.tick");
  return measure_events_per_sec(kJsonEvents, [&] {
    sim::Simulator simulator;
    simulator.set_profiler(profiler);
    std::uint64_t counter = 0;
    std::function<void()> tick = [&] {
      if (++counter < kJsonEvents) {
        simulator.schedule_after(1, tick, kTickEvent);
      }
    };
    simulator.schedule_after(0, tick, kTickEvent);
    simulator.run();
  });
}

int run_json_report(const std::string& path) {
  obs::BenchReport report("micro_sim");
  report.add("events_per_run", static_cast<std::uint64_t>(kJsonEvents));

  // Raw queue throughput: schedule N then drain N.
  Rng rng(1);
  const double queue_eps = measure_events_per_sec(kJsonEvents, [&] {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < kJsonEvents; ++i) {
      queue.schedule(static_cast<SimTime>(rng.next_below(1000000)), [] {});
    }
    while (!queue.empty()) queue.pop();
  });
  report.add("queue_schedule_pop_events_per_sec", queue_eps);

  // Full dispatch loop, profiler detached / attached (stride 16 and 1).
  const double plain_eps = dispatch_run(nullptr);
  report.add("dispatch_events_per_sec", plain_eps);

  obs::capacity::LoopProfiler::Config sampled_config;
  sampled_config.sample_stride = 16;
  obs::capacity::LoopProfiler sampled(sampled_config);
  const double sampled_eps = dispatch_run(&sampled);
  report.add("dispatch_profiled_events_per_sec", sampled_eps);
  report.add("profiler_overhead_pct",
             plain_eps > 0 && sampled_eps > 0
                 ? 100.0 * (plain_eps - sampled_eps) / plain_eps
                 : 0.0);

  obs::capacity::LoopProfiler::Config full_config;
  full_config.sample_stride = 1;
  obs::capacity::LoopProfiler every(full_config);
  const double every_eps = dispatch_run(&every);
  report.add("dispatch_profiled_stride1_events_per_sec", every_eps);

  report.add_section("profiler", sampled.report_json());
  return report.write_if_requested(path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_json_report(json_path);

  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
