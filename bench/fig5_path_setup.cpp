// Figure 5: path setup success rates for SimEra with varying k and r,
// under (a) random and (b) biased mix choice — full churn simulation.
//
// 1024 nodes, Pareto churn (1 h median sessions), 1 h warm-up; nodes fire
// construction events and each event probes every (k, r, mix) spec with
// one whole-set attempt. Success = at least k/r of the k paths formed.
#include <cstdio>

#include "common/config.hpp"
#include "common/strings.hpp"
#include "harness/path_setup_experiment.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::harness;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 1024, "network size");
  auto& seed = flags.add_int("seed", 1, "RNG seed");
  auto& interarrival = flags.add_double(
      "interarrival", 928.0,
      "per-node event inter-arrival (s); 928 s gives ~2000 events");
  auto& k_max = flags.add_int("kmax", 20, "max number of paths");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);

  PathSetupConfig config;
  config.environment.num_nodes = static_cast<std::size_t>(nodes);
  config.environment.seed = static_cast<std::uint64_t>(seed);
  config.event_interarrival_seconds = interarrival / bench_scale();

  struct SpecIndex {
    std::size_t k;
    std::size_t r;
    anon::MixChoice mix;
    std::size_t index;
  };
  std::vector<SpecIndex> lookup;
  for (const auto mix : {anon::MixChoice::kRandom, anon::MixChoice::kBiased}) {
    for (const std::size_t r : {2u, 3u, 4u}) {
      for (std::size_t k = r; k <= static_cast<std::size_t>(k_max); k += r) {
        lookup.push_back(SpecIndex{k, r, mix, config.specs.size()});
        config.specs.push_back(anon::ProtocolSpec::simera(k, r, mix));
      }
    }
  }

  std::printf("# Figure 5: SimEra path setup success rate (%%) vs k, "
              "r in {2, 3, 4}; %lld nodes, Pareto median 1 h, L = 3\n",
              static_cast<long long>(nodes));
  const auto result = run_path_setup_experiment(config);
  std::printf("# events = %llu, measured availability = %.3f\n\n",
              static_cast<unsigned long long>(result.events),
              result.availability);

  for (const auto mix : {anon::MixChoice::kRandom, anon::MixChoice::kBiased}) {
    std::printf("## Figure 5(%s): %s mix choice (one series per r; k runs "
                "over multiples of r)\n",
                mix == anon::MixChoice::kRandom ? "a" : "b",
                anon::to_string(mix));
    for (const std::size_t r : {2u, 3u, 4u}) {
      metrics::Series series("k", {"r=" + std::to_string(r)});
      for (const auto& entry : lookup) {
        if (entry.mix != mix || entry.r != r) continue;
        series.add(static_cast<double>(entry.k),
                   {result.success[entry.index].percent()});
      }
      std::printf("%s\n", series.render(2).c_str());
    }
  }
  std::printf("Expected (paper): (a) random — a few percent, higher r "
              "better, decreasing in k; (b) biased — 90-100%%, nearly flat "
              "in k.\n");
  obs::BenchReport report("fig5_path_setup");
  report.add("events", result.events);
  report.add("availability", result.availability);
  metrics::Table success({"mix", "r", "k", "success_pct"});
  for (const auto& entry : lookup) {
    success.add_row({anon::to_string(entry.mix), std::to_string(entry.r),
                     std::to_string(entry.k),
                     format_double(result.success[entry.index].percent(), 2)});
  }
  report.add_section("success_rates", success.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
