// Table 4: SimEra(k = 4, r = 4) under different node lifetime
// distributions — Pareto (median 1 h), uniform (6 min..~2 h, mean 1 h) and
// exponential (mean 1 h). Cells are [random, biased]. Biased mix choice
// assumes Pareto; this table shows it still helps when that assumption is
// wrong.
#include <cstdio>

#include "common/config.hpp"
#include "harness/durability_experiment.hpp"
#include "harness/parallel.hpp"
#include "metrics/bootstrap.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::harness;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 1024, "network size");
  auto& seed = flags.add_int("seed", 1, "base RNG seed");
  auto& seeds = flags.add_int("seeds", 10, "runs to average");
  auto& threads = flags.add_int("threads", 0, "worker threads (0 = auto)");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  const std::size_t workers =
      threads > 0 ? static_cast<std::size_t>(threads)
                  : default_worker_threads();

  struct Row {
    const char* name;
    const char* spec;
  };
  const Row rows[] = {
      {"Pareto", "pareto:median=3600"},
      {"Uniform", "uniform:lo=360,hi=6840"},
      {"Exponential", "exp:mean=3600"},
  };

  std::printf("# Table 4: SimEra(k=4, r=4) vs lifetime distribution, %zu "
              "seeds (cells are [random, biased])\n", runs);

  std::string ci_lines;
  metrics::Table table({"Distribution", "Durability(sec)",
                        "Path construction attempts", "Latency(ms)",
                        "Bandwidth(KB)"});
  for (const Row& row : rows) {
    DurabilityAverages by_mix[2];
    for (int mix = 0; mix < 2; ++mix) {
      DurabilityConfig config;
      config.environment.num_nodes = static_cast<std::size_t>(nodes);
      config.environment.seed = static_cast<std::uint64_t>(seed);
      config.environment.session_distribution = row.spec;
      config.spec = anon::ProtocolSpec::simera(
          4, 4,
          mix == 0 ? anon::MixChoice::kRandom : anon::MixChoice::kBiased);
      by_mix[mix] = run_durability_average(config, runs, workers);
    }
    table.add_row(
        {row.name,
         metrics::pair_cell(by_mix[0].durability_seconds,
                            by_mix[1].durability_seconds),
         metrics::pair_cell(by_mix[0].construct_attempts,
                            by_mix[1].construct_attempts, 1),
         metrics::pair_cell(by_mix[0].latency_ms, by_mix[1].latency_ms),
         metrics::pair_cell(by_mix[0].bandwidth_kb, by_mix[1].bandwidth_kb,
                            1)});
    ci_lines += std::string("  ") + row.name +
                ": durability 95% bootstrap CI  random " +
                metrics::bootstrap_mean_ci(by_mix[0].durability_runs)
                    .to_string(0) +
                "  biased " +
                metrics::bootstrap_mean_ci(by_mix[1].durability_runs)
                    .to_string(0) +
                "\n";
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Durability uncertainty (percentile bootstrap over seeds):\n%s\n",
              ci_lines.c_str());
  std::printf(
      "Paper reference:\n"
      "  Pareto       [1377, 2472]  [2.4, 1]  [406, 231]  [8.8, 12.4]\n"
      "  Uniform      [284, 1467]   [2.2, 1]  [370, 219]  [8.4, 11.6]\n"
      "  Exponential  [1271, 2256]  [3.4, 1]  [415, 256]  [7.8, 11]\n"
      "Shape checks: Pareto gives the highest durability; uniform (old\n"
      "nodes die soon) the lowest; biased beats random under every\n"
      "distribution.\n");
  obs::BenchReport report("table4_distributions");
  report.add("runs", static_cast<std::uint64_t>(runs));
  report.add_section("table", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
