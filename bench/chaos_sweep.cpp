// Chaos sweep: delivered fraction under every scripted fault scenario,
// fixed 5 s timeouts (the paper's configuration) vs the adaptive
// RTO/backoff mode, averaged over seeds.
//
// A pinned SimEra(4,2) pair exchanges a 512 B message every 5 s through a
// 96-node network while the scenario's FaultPlan runs (see
// harness/chaos_experiment.hpp). Reported per scenario x mode:
//   * attempted delivery — delivered / send_message calls. Charges a mode
//     for refusing sends while its paths are down, so stalling cannot
//     hide behind a shrunken denominator;
//   * accepted delivery  — delivered / accepted (nonzero message id);
//   * retx               — adaptive-mode segment retransmissions;
//   * violations         — unaccounted messages + residual state leaks +
//     open segment ledgers across all runs (the chaos invariants; must
//     be 0).
#include <cstdio>

#include "common/config.hpp"
#include "common/strings.hpp"
#include "harness/chaos_experiment.hpp"
#include "harness/parallel.hpp"
#include "metrics/table.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

ChaosConfig sweep_config(ChaosScenario scenario, std::uint64_t seed,
                         bool adaptive, std::size_t nodes) {
  ChaosConfig config;
  config.environment.num_nodes = nodes;
  config.environment.seed = seed;
  config.scenario = scenario;
  config.warmup = 5 * kMinute;
  config.measure = scenario == ChaosScenario::kCorruptedRelayQuorum
                       ? 15 * kMinute   // byzantine construction is slow
                       : 10 * kMinute;
  config.send_interval = 5 * kSecond;
  config.adaptive = adaptive;
  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 96, "network size");
  auto& seed = flags.add_int("seed", 1, "base RNG seed");
  auto& seeds = flags.add_int("seeds", 6, "runs to average");
  auto& threads = flags.add_int("threads", 0, "worker threads (0 = auto)");
  flags.parse(argc, argv);
  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  const std::size_t workers =
      threads > 0 ? static_cast<std::size_t>(threads)
                  : default_worker_threads();

  const ChaosScenario scenarios[] = {
      ChaosScenario::kFlashCrowdCrash, ChaosScenario::kRollingPartition,
      ChaosScenario::kLossyLinkEpidemic, ChaosScenario::kCorruptedRelayQuorum,
      ChaosScenario::kMildLossDrizzle};

  std::printf("# Chaos sweep: SimEra(4,2)/random, %d nodes, 512 B every 5 s, "
              "fixed 5 s timeouts vs adaptive RTO+backoff, %zu seeds\n",
              static_cast<int>(nodes), runs);
  metrics::Table table({"scenario", "mode", "attempted delivery",
                        "accepted delivery", "retx", "violations"});
  // Per-cause accounting of every datagram that vanished: the transport's
  // own drop reasons plus the injected faults.
  metrics::Table drop_table({"scenario", "mode", "sender-dead",
                             "recv-dead", "link-loss", "crash", "partition",
                             "spike-loss", "corrupted", "duplicated"});
  for (const ChaosScenario scenario : scenarios) {
    for (const bool adaptive : {false, true}) {
      std::vector<ChaosResult> results(runs);
      parallel_for(runs, workers, [&](std::size_t i) {
        results[i] = run_chaos_experiment(sweep_config(
            scenario, static_cast<std::uint64_t>(seed) + i, adaptive,
            static_cast<std::size_t>(nodes)));
      });
      double attempted = 0;
      double accepted = 0;
      std::uint64_t retx = 0;
      std::uint64_t violations = 0;
      net::SimTransport::DropCounters drops;
      fault::FaultyTransport::Counters faults;
      for (const ChaosResult& result : results) {
        attempted += result.attempted_delivery_rate();
        accepted += result.delivery_rate();
        retx += result.segments_retransmitted;
        violations += result.messages_unaccounted + result.total_leaks() +
                      (result.ledger_closed() ? 0 : 1);
        drops.sender_dead += result.drops.sender_dead;
        drops.receiver_dead += result.drops.receiver_dead;
        drops.link_loss += result.drops.link_loss;
        faults.dropped_crash += result.faults.dropped_crash;
        faults.dropped_partition += result.faults.dropped_partition;
        faults.dropped_loss += result.faults.dropped_loss;
        faults.corrupted += result.faults.corrupted;
        faults.duplicated += result.faults.duplicated;
      }
      const double denom = static_cast<double>(runs);
      const char* mode_name = adaptive ? "adaptive" : "fixed";
      table.add_row({scenario_name(scenario), mode_name,
                     format_double(100.0 * attempted / denom, 1) + "%",
                     format_double(100.0 * accepted / denom, 1) + "%",
                     std::to_string(retx), std::to_string(violations)});
      drop_table.add_row({scenario_name(scenario), mode_name,
                          std::to_string(drops.sender_dead),
                          std::to_string(drops.receiver_dead),
                          std::to_string(drops.link_loss),
                          std::to_string(faults.dropped_crash),
                          std::to_string(faults.dropped_partition),
                          std::to_string(faults.dropped_loss),
                          std::to_string(faults.corrupted),
                          std::to_string(faults.duplicated)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("# Datagram loss by cause (summed over seeds)\n%s\n",
              drop_table.render().c_str());
  std::printf("Reading: the adaptive mode's RTT-tracked timeouts and "
              "retransmission over surviving paths recover individual "
              "datagram losses that fixed 5 s timeouts escalate into path "
              "teardowns, so it leads on the attempted ratio wherever "
              "links are lossy or relays corrupt traffic. Under pure "
              "crash/partition faults the tradeoff reverses: there "
              "retransmission cannot help (the path is dead, not lossy) "
              "and the fixed mode's unbounded rebuild-and-resend loop "
              "beats the adaptive mode's bounded retry budget. Violations "
              "must read 0 — every run also upholds the conservation, "
              "ledger, and no-leak invariants asserted by chaos_test.\n");
  return 0;
}
