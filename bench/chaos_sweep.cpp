// Chaos sweep: delivered fraction under every scripted fault scenario,
// fixed 5 s timeouts (the paper's configuration) vs the adaptive
// RTO/backoff mode, averaged over seeds.
//
// A pinned SimEra(4,2) pair exchanges a 512 B message every 5 s through a
// 96-node network while the scenario's FaultPlan runs (see
// harness/chaos_experiment.hpp). Reported per scenario x mode:
//   * attempted delivery — delivered / send_message calls. Charges a mode
//     for refusing sends while its paths are down, so stalling cannot
//     hide behind a shrunken denominator;
//   * accepted delivery  — delivered / accepted (nonzero message id);
//   * retx               — adaptive-mode segment retransmissions;
//   * violations         — unaccounted messages + residual state leaks +
//     open segment ledgers across all runs (the chaos invariants; must
//     be 0).
//
// With --trace <path> the sweep is skipped and ONE run of --trace-scenario
// executes with the span tracer on, writing Chrome trace-event JSON (opens
// in Perfetto / chrome://tracing; feed it to tools/trace_analyze for the
// offline causal report) and, with --jsonl, a sampled causal log. The
// traced run takes two more default-off observers: --timeseries <csv>
// attaches a windowed sampler (30 s windows over every registry series)
// and --health prints the rolling health scoreboard (churn storms,
// per-cause drop peaks, stalled paths) and adds its summary to --json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/strings.hpp"
#include "harness/anonymity_experiment.hpp"
#include "harness/chaos_experiment.hpp"
#include "harness/membership_chaos.hpp"
#include "harness/parallel.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

ChaosConfig sweep_config(ChaosScenario scenario, std::uint64_t seed,
                         bool adaptive, std::size_t nodes) {
  ChaosConfig config;
  config.environment.num_nodes = nodes;
  config.environment.seed = seed;
  config.scenario = scenario;
  config.warmup = 5 * kMinute;
  config.measure = scenario == ChaosScenario::kCorruptedRelayQuorum
                       ? 15 * kMinute   // byzantine construction is slow
                       : 10 * kMinute;
  config.send_interval = 5 * kSecond;
  config.adaptive = adaptive;
  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom);
  return config;
}

// --- byzantine sweep -------------------------------------------------------
//
// --byzantine-sweep replaces the scenario sweep with an integrity study:
// the corrupted-relay-quorum scenario is rerun across per-datagram flip
// probabilities, protocols, and three defense arms:
//
//   off             seed behavior — FastOnionCodec passes byte flips
//                   through, so corrupted reconstructions can DELIVER
//                   WRONG BYTES (the failure mode the tentpole removes);
//   tags            segment auth + verified decode + nack escalation —
//                   every delivery is tag/digest-checked, so a run either
//                   delivers the exact bytes or fails *closed*;
//   tags+suspicion  additionally files corruption/stall evidence into the
//                   node cache and biases mix choice away from suspects,
//                   so rebuilt paths route around the byzantine quorum.
struct ByzArm {
  const char* name;
  bool tags;       // segment_auth + verified_decode + corruption_escalation
  bool suspicion;  // relay_suspicion + suspicion-biased mix choice
};

constexpr double kByzProbs[] = {0.10, 0.25, 0.50};
constexpr ByzArm kByzArms[] = {{"off", false, false},
                               {"tags", true, false},
                               {"tags+suspicion", true, true}};
constexpr const char* kByzProtoNames[] = {"curmix", "simrep(2)",
                                          "simera(4,2)"};

anon::ProtocolSpec byz_spec(std::size_t proto, anon::MixChoice mix) {
  switch (proto) {
    case 0: return anon::ProtocolSpec::curmix(mix);
    case 1: return anon::ProtocolSpec::simrep(2, mix);
    default: return anon::ProtocolSpec::simera(4, 2, mix);
  }
}

int run_byzantine_sweep(std::uint64_t seed, std::size_t seeds,
                        std::size_t nodes, std::size_t workers,
                        const std::string& json_path) {
  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  constexpr std::size_t kProbCount = sizeof(kByzProbs) / sizeof(kByzProbs[0]);
  constexpr std::size_t kArmCount = sizeof(kByzArms) / sizeof(kByzArms[0]);
  constexpr std::size_t kProtoCount = 3;

  struct Job {
    std::size_t prob;
    std::size_t proto;
    std::size_t arm;
    std::size_t run;
  };
  std::vector<Job> jobs;
  for (std::size_t p = 0; p < kProbCount; ++p) {
    for (std::size_t proto = 0; proto < kProtoCount; ++proto) {
      for (std::size_t arm = 0; arm < kArmCount; ++arm) {
        for (std::size_t run = 0; run < runs; ++run) {
          jobs.push_back({p, proto, arm, run});
        }
      }
    }
  }

  std::printf("# Byzantine sweep: corrupted-relay-quorum, %zu nodes, "
              "512 B every 5 s, %zu seeds per cell\n",
              nodes, runs);

  std::vector<ChaosResult> results(jobs.size());
  parallel_for(jobs.size(), workers, [&](std::size_t i) {
    const Job& job = jobs[i];
    const ByzArm& arm = kByzArms[job.arm];
    const anon::MixChoice mix =
        arm.suspicion ? anon::MixChoice::kBiased : anon::MixChoice::kRandom;
    ChaosConfig config =
        sweep_config(ChaosScenario::kCorruptedRelayQuorum, seed + job.run,
                     /*adaptive=*/false, nodes);
    config.spec = byz_spec(job.proto, mix);
    config.byzantine_probability = kByzProbs[job.prob];
    config.segment_auth = arm.tags;
    config.verified_decode = arm.tags;
    config.corruption_escalation = arm.tags;
    config.relay_suspicion = arm.suspicion;
    results[i] = run_chaos_experiment(config);
  });

  struct Cell {
    std::uint64_t accepted = 0;
    std::uint64_t correct = 0;
    std::uint64_t wrong = 0;
    std::uint64_t auth_rejected = 0;
    std::uint64_t nacks = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t violations = 0;
  };
  Cell cells[kProbCount][kProtoCount][kArmCount];
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const ChaosResult& result = results[i];
    Cell& cell = cells[job.prob][job.proto][job.arm];
    cell.accepted += result.messages_accepted;
    cell.correct += result.messages_delivered_correct;
    cell.wrong += result.messages_delivered_wrong;
    cell.auth_rejected += result.auth_rejected;
    cell.nacks += result.auth_nacks;
    cell.quarantined += result.quarantined_nodes;
    cell.violations += result.messages_unaccounted + result.total_leaks() +
                       (result.ledger_closed() ? 0 : 1);
  }

  metrics::Table table({"p_corrupt", "protocol", "arm", "accepted", "correct",
                        "wrong", "failed_closed", "correct_rate",
                        "wrong_rate", "auth_rejected", "corrupt_nacks",
                        "quarantined", "violations"});
  for (std::size_t p = 0; p < kProbCount; ++p) {
    for (std::size_t proto = 0; proto < kProtoCount; ++proto) {
      for (std::size_t arm = 0; arm < kArmCount; ++arm) {
        const Cell& cell = cells[p][proto][arm];
        const std::uint64_t closed =
            cell.accepted - cell.correct - cell.wrong;
        const double denom =
            cell.accepted > 0 ? static_cast<double>(cell.accepted) : 1.0;
        table.add_row({format_double(kByzProbs[p], 2),
                       kByzProtoNames[proto], kByzArms[arm].name,
                       std::to_string(cell.accepted),
                       std::to_string(cell.correct),
                       std::to_string(cell.wrong), std::to_string(closed),
                       format_double(static_cast<double>(cell.correct) /
                                         denom, 4),
                       format_double(static_cast<double>(cell.wrong) / denom,
                                     4),
                       std::to_string(cell.auth_rejected),
                       std::to_string(cell.nacks),
                       std::to_string(cell.quarantined),
                       std::to_string(cell.violations)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: with the auth arms on, `wrong` must be 0 in every "
              "cell — a corrupted reconstruction is rejected at the "
              "responder (tag check) or by the digest-validated decode, so "
              "the message fails closed instead of delivering fabricated "
              "bytes. The seed arm shows the baseline hazard: FastOnionCodec "
              "has no integrity, so flips survive to the application. The "
              "suspicion arm routes rebuilds around quarantined relays, "
              "recovering deliveries the tags-only arm loses to the "
              "byzantine quorum.\n");

  obs::BenchReport report("chaos_byzantine_sweep");
  report.add("runs_per_cell", static_cast<std::uint64_t>(runs));
  report.add("nodes", static_cast<std::uint64_t>(nodes));
  report.add_section("byzantine", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}

// --- membership sweep ------------------------------------------------------
//
// --membership-sweep drives the *control plane* fault scenarios
// (harness/membership_chaos.hpp) through the durability harness: gossip
// blackout, leader crash, stale injection, and claim inflation, each under
// three arms — random mix choice (the liveness-ignorant floor), biased
// (Eq. 3 over the faulted membership), and resilient (biased + staleness-
// aware selection + anti-entropy repair + bounded trust + failover).
//
// Two committed gates ride on the JSON (scripts/check_bench_membership.py):
//   1. under gossip blackout, the resilient arm's mean durability must not
//      fall below the random arm's (staleness-aware bias >= the floor);
//   2. the control fingerprint: with every membership-resilience knob at
//      its default, a fixed chaos run must still produce the pre-PR
//      fingerprint below, byte for byte.

/// ChaosResult::fingerprint() of tiny_chaos(3) — 64 nodes, seed 3,
/// mild-loss-drizzle, warmup 5 min, measure 6 min, 1 KB every 10 s,
/// SimEra(4,2)/random — captured before the membership-resilience features
/// landed. The control section reruns that exact config and must reproduce
/// this string while every new knob sits at its default.
constexpr const char* kPrePrFingerprint =
    "1:35:19:17:4:13:0:26:20:1:5:6:60:0:0:0:0:0:0:0:171:0:0:0:0:173:0:0:0:"
    "12:45782:4:0:0:0:0:0:0";

ChaosConfig control_chaos_config() {
  ChaosConfig config;
  config.environment.num_nodes = 64;
  config.environment.seed = 3;
  config.scenario = ChaosScenario::kMildLossDrizzle;
  config.warmup = 5 * kMinute;
  config.measure = 6 * kMinute;
  config.send_interval = 10 * kSecond;
  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom);
  return config;
}

int run_membership_sweep(std::uint64_t seed, std::size_t seeds,
                         std::size_t workers, const std::string& json_path) {
  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  constexpr MembershipScenario kMemScenarios[] = {
      MembershipScenario::kGossipBlackout, MembershipScenario::kLeaderCrash,
      MembershipScenario::kStaleInject, MembershipScenario::kClaimInflate};
  constexpr MembershipArm kArms[] = {MembershipArm::kRandom,
                                     MembershipArm::kBiased,
                                     MembershipArm::kResilient};
  constexpr std::size_t kScenarioCount =
      sizeof(kMemScenarios) / sizeof(kMemScenarios[0]);
  constexpr std::size_t kArmCount = sizeof(kArms) / sizeof(kArms[0]);

  struct Job {
    std::size_t scenario;
    std::size_t arm;
    std::size_t run;
  };
  std::vector<Job> jobs;
  for (std::size_t s = 0; s < kScenarioCount; ++s) {
    for (std::size_t a = 0; a < kArmCount; ++a) {
      for (std::size_t r = 0; r < runs; ++r) jobs.push_back({s, a, r});
    }
  }

  std::printf("# Membership sweep: control-plane faults x recovery arms, "
              "64 nodes, SimEra(4,2), %zu seeds per cell\n",
              runs);

  std::vector<DurabilityResult> results(jobs.size());
  parallel_for(jobs.size(), workers, [&](std::size_t i) {
    const Job& job = jobs[i];
    MembershipChaosConfig config;
    config.scenario = kMemScenarios[job.scenario];
    config.arm = kArms[job.arm];
    config.seed = seed + job.run;
    results[i] = run_membership_chaos(config);
  });

  struct Cell {
    double durability = 0.0;
    double attempts = 0.0;
    double belief = 0.0;
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t stale_fallbacks = 0;
    std::uint64_t biased_selects = 0;
    std::uint64_t repair_accepted = 0;
    std::uint64_t elections = 0;
    fault::FaultyTransport::Counters faults;
  };
  std::vector<Cell> cells(kScenarioCount * kArmCount);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const DurabilityResult& r = results[i];
    Cell& cell = cells[job.scenario * kArmCount + job.arm];
    cell.durability += r.durability_seconds;
    cell.attempts += static_cast<double>(r.construct_attempts);
    cell.belief += r.belief_accuracy;
    cell.sent += r.messages_sent;
    cell.delivered += r.messages_delivered;
    cell.stale_fallbacks += r.mix_stale_fallbacks;
    cell.biased_selects += r.mix_biased_selects;
    cell.repair_accepted += r.control.repair_records_accepted;
    cell.elections += r.control.elections;
    cell.faults.dropped_gossip_blackout += r.faults.dropped_gossip_blackout;
    cell.faults.dropped_gossip_loss += r.faults.dropped_gossip_loss;
    cell.faults.stale_injected += r.faults.stale_injected;
    cell.faults.claims_inflated += r.faults.claims_inflated;
    cell.faults.dropped_crash += r.faults.dropped_crash;
  }

  const double denom = static_cast<double>(runs);
  metrics::Table table({"scenario", "arm", "durability_s", "attempts",
                        "delivery", "belief", "stale_fallbacks",
                        "repair_accepted", "elections"});
  metrics::Table drop_table({"scenario", "arm", "gossip-blackout",
                             "gossip-loss", "stale-inject", "claim-inflate",
                             "crash-drop"});
  obs::BenchReport report("chaos_membership_sweep");
  for (std::size_t s = 0; s < kScenarioCount; ++s) {
    for (std::size_t a = 0; a < kArmCount; ++a) {
      const Cell& cell = cells[s * kArmCount + a];
      const char* scenario = membership_scenario_name(kMemScenarios[s]);
      const char* arm = membership_arm_name(kArms[a]);
      const double durability = cell.durability / denom;
      table.add_row(
          {scenario, arm, format_double(durability, 1),
           format_double(cell.attempts / denom, 1),
           format_double(cell.sent > 0
                             ? 100.0 * static_cast<double>(cell.delivered) /
                                   static_cast<double>(cell.sent)
                             : 0.0,
                         1) +
               "%",
           format_double(100.0 * cell.belief / denom, 1) + "%",
           std::to_string(cell.stale_fallbacks) + "/" +
               std::to_string(cell.biased_selects),
           std::to_string(cell.repair_accepted),
           std::to_string(cell.elections)});
      drop_table.add_row(
          {scenario, arm,
           std::to_string(cell.faults.dropped_gossip_blackout),
           std::to_string(cell.faults.dropped_gossip_loss),
           std::to_string(cell.faults.stale_injected),
           std::to_string(cell.faults.claims_inflated),
           std::to_string(cell.faults.dropped_crash)});
      report.add(std::string("durability_") + scenario + "_" + arm,
                 durability);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("# Membership-plane injections (summed over seeds)\n%s\n",
              drop_table.render().c_str());
  std::printf("Reading: under gossip blackout the biased arms rank on "
              "fossils until repair heals the caches; the resilient arm's "
              "anti-entropy + staleness-aware degradation must keep its "
              "durability at or above the random floor (the CI gate). "
              "Under leader crash only the failover arm re-elects "
              "(elections > 0) and keeps dissemination alive; under claim "
              "inflation bounded trust caps the fake uptimes that would "
              "otherwise dominate the Eq. 3 ranking.\n");

  // Control fingerprint: the pre-PR chaos run, once with factory defaults
  // and once with every membership knob spelled out at its default value —
  // all three strings must agree or a default drifted.
  const ChaosResult control_default =
      run_chaos_experiment(control_chaos_config());
  ChaosConfig spelled = control_chaos_config();
  spelled.environment.membership_kind = MembershipKind::kGossip;
  spelled.environment.gossip.anti_entropy_interval = 0;
  spelled.environment.gossip.per_node_rng = false;
  spelled.environment.gossip.bounded_trust = false;
  spelled.environment.membership_obs_interval = 0;
  const ChaosResult control_spelled = run_chaos_experiment(spelled);
  const bool fingerprint_ok =
      control_default.fingerprint() == kPrePrFingerprint &&
      control_spelled.fingerprint() == kPrePrFingerprint;
  std::printf("control fingerprint: %s\n",
              fingerprint_ok ? "MATCHES pre-PR baseline"
                             : "MISMATCH vs pre-PR baseline");
  if (!fingerprint_ok) {
    std::printf("  pre-PR:  %s\n  default: %s\n  spelled: %s\n",
                kPrePrFingerprint, control_default.fingerprint().c_str(),
                control_spelled.fingerprint().c_str());
  }

  report.add("runs_per_cell", static_cast<std::uint64_t>(runs));
  report.add_text("pre_pr_fingerprint", kPrePrFingerprint);
  report.add_text("control_fingerprint", control_default.fingerprint());
  report.add_text("control_fingerprint_spelled",
                  control_spelled.fingerprint());
  report.add("fingerprint_match",
             static_cast<std::uint64_t>(fingerprint_ok ? 1 : 0));
  report.add_section("durability", table.to_json());
  report.add_section("membership_drops", drop_table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return fingerprint_ok ? 0 : 1;
}

// --- overload sweep --------------------------------------------------------
//
// --overload-sweep replaces the scenario sweep with a saturation study: the
// workload engine offers a bulk/interactive/streaming mix whose rate is
// shaped {steady, diurnal, flash} while every relay runs a bounded leaky-
// bucket queue, across 3 protocols x 2 arms:
//
//   shed   priority-aware load shedding (bulk before streaming before
//          interactive, control never) + admission control + reverse-path
//          backpressure + the session-side bounded send queue;
//   drop   the same bounded queue with priority-blind tail drop and no
//          admission/backpressure — what a naive bounded relay does.
//
// The committed gates (scripts/check_bench_overload.py): under the flash
// crowd the shed arm's goodput stays above a floor while the drop arm
// collapses below it, interactive p99 stays bounded, zero control-plane
// segments are ever shed, and the off-means-off control fingerprint
// reproduces byte for byte.

struct OverloadArm {
  const char* name;
  bool shed;
};

constexpr OverloadArm kOvlArms[] = {{"shed", true}, {"drop", false}};
constexpr workload::LoadShape kOvlShapes[] = {workload::LoadShape::kSteady,
                                              workload::LoadShape::kDiurnal,
                                              workload::LoadShape::kFlashCrowd};
constexpr std::size_t kOvlArmCount = sizeof(kOvlArms) / sizeof(kOvlArms[0]);
constexpr std::size_t kOvlShapeCount =
    sizeof(kOvlShapes) / sizeof(kOvlShapes[0]);
/// Short report-key slugs, shared with the anonymity sweep's protocols.
constexpr const char* kOvlProtoSlugs[] = {"curmix", "simrep2", "simera4"};

ChaosConfig overload_cell_config(std::size_t proto, workload::LoadShape shape,
                                 bool shed, std::uint64_t seed) {
  ChaosConfig config;
  config.environment.num_nodes = 64;
  config.environment.seed = seed;
  // Light background loss only: the stress under study is offered load,
  // not faults, so every shape/arm faces the same benign network.
  config.scenario = ChaosScenario::kMildLossDrizzle;
  config.warmup = 5 * kMinute;
  config.measure = 10 * kMinute;
  config.adaptive = true;  // retransmissions are the collapse fuel
  // At 4 msg/s the default threshold (3 consecutive timeouts) turns the
  // drizzle's ~1/3 ack-round-trip loss into perpetual rebuild churn;
  // raise it so retransmission absorbs background loss and offered load
  // stays the only stressor.
  config.path_fail_threshold = 40;
  config.spec = byz_spec(proto, anon::MixChoice::kRandom);
  config.workload.enabled = true;
  config.workload.shape = shape;
  // 4 msg/s (plus ~20% retransmit traffic from the drizzle) against a
  // 10/s relay drain: steady is ~0.5x load, the diurnal peak ~0.8x, and
  // the 4x flash ~2x — the overload regime the gate reasons about.
  config.workload.mean_interarrival = 250 * kMillisecond;
  config.environment.router.overload.enabled = true;
  config.environment.router.overload.relay_queue_capacity = 64;
  config.environment.router.overload.drain_rate_per_s = 10.0;
  if (shed) {
    config.environment.router.overload.shedding = true;
    config.environment.router.overload.admission_control = true;
    config.environment.router.overload.backpressure = true;
    config.max_inflight_segments = 256;
    config.shed_low_priority = true;
    config.session_backpressure = true;
  }
  return config;
}

int run_overload_sweep(std::uint64_t seed, std::size_t seeds,
                       std::size_t workers, const std::string& json_path) {
  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  constexpr std::size_t kProtoCount = 3;

  struct Job {
    std::size_t proto;
    std::size_t shape;
    std::size_t arm;
    std::size_t run;
  };
  std::vector<Job> jobs;
  for (std::size_t p = 0; p < kProtoCount; ++p) {
    for (std::size_t s = 0; s < kOvlShapeCount; ++s) {
      for (std::size_t a = 0; a < kOvlArmCount; ++a) {
        for (std::size_t r = 0; r < runs; ++r) jobs.push_back({p, s, a, r});
      }
    }
  }

  std::printf("# Overload sweep: workload shapes x shed/drop arms, 64 "
              "nodes, mixed traffic at 4 msg/s vs 5/s relay drain, %zu "
              "seeds per cell\n",
              runs);

  std::vector<ChaosResult> results(jobs.size());
  parallel_for(jobs.size(), workers, [&](std::size_t i) {
    const Job& job = jobs[i];
    results[i] = run_chaos_experiment(
        overload_cell_config(job.proto, kOvlShapes[job.shape],
                             kOvlArms[job.arm].shed, seed + job.run));
  });

  struct Cell {
    std::uint64_t attempts = 0;
    std::uint64_t accepted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t expired = 0;
    std::uint64_t retx = 0;
    std::uint64_t deferred = 0;
    ChaosResult::ClassStats per_class[3];
    std::uint64_t inter_p99_us = 0;  // worst run's p99
    std::uint64_t sheds_bulk = 0, sheds_streaming = 0;
    std::uint64_t sheds_interactive = 0, sheds_control = 0;
    std::uint64_t admission = 0, backpressure = 0;
    std::uint64_t session_shed = 0, stalls_suppressed = 0;
    std::uint64_t violations = 0;
  };
  std::vector<Cell> cells(kProtoCount * kOvlShapeCount * kOvlArmCount);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const ChaosResult& r = results[i];
    Cell& cell = cells[(job.proto * kOvlShapeCount + job.shape) *
                           kOvlArmCount +
                       job.arm];
    cell.attempts += r.send_attempts;
    cell.accepted += r.messages_accepted;
    cell.delivered += r.messages_delivered;
    cell.expired += r.segments_expired;
    cell.retx += r.segments_retransmitted;
    cell.deferred += r.session_segments_deferred;
    for (std::size_t c = 0; c < 3; ++c) {
      cell.per_class[c].attempts += r.per_class[c].attempts;
      cell.per_class[c].accepted += r.per_class[c].accepted;
      cell.per_class[c].delivered += r.per_class[c].delivered;
    }
    cell.inter_p99_us = std::max(cell.inter_p99_us, r.interactive_p99_us);
    cell.sheds_bulk += r.relay_sheds_bulk;
    cell.sheds_streaming += r.relay_sheds_streaming;
    cell.sheds_interactive += r.relay_sheds_interactive;
    cell.sheds_control += r.relay_sheds_control;
    cell.admission += r.admission_rejects;
    cell.backpressure += r.backpressure_signals;
    cell.session_shed += r.session_messages_shed;
    cell.stalls_suppressed += r.session_stalls_suppressed;
    cell.violations += r.messages_unaccounted + r.total_leaks() +
                       (r.ledger_closed() ? 0 : 1);
  }

  metrics::Table table({"protocol", "shape", "arm", "attempts", "accepted",
                        "goodput", "inter_gp", "bulk_gp", "inter_p99_ms",
                        "retx", "expired", "sheds b/s/i/c", "admission",
                        "bp", "violations"});
  obs::BenchReport report("chaos_overload_sweep");
  for (std::size_t p = 0; p < kProtoCount; ++p) {
    for (std::size_t s = 0; s < kOvlShapeCount; ++s) {
      for (std::size_t a = 0; a < kOvlArmCount; ++a) {
        const Cell& cell =
            cells[(p * kOvlShapeCount + s) * kOvlArmCount + a];
        const std::string key = std::string(kOvlProtoSlugs[p]) + "_" +
                                workload::load_shape_name(kOvlShapes[s]) +
                                "_" + kOvlArms[a].name;
        const double goodput =
            cell.attempts > 0 ? static_cast<double>(cell.delivered) /
                                    static_cast<double>(cell.attempts)
                              : 0.0;
        table.add_row(
            {kByzProtoNames[p], workload::load_shape_name(kOvlShapes[s]),
             kOvlArms[a].name, std::to_string(cell.attempts),
             std::to_string(cell.accepted),
             format_double(goodput, 3),
             format_double(cell.per_class[1].goodput(), 3),
             format_double(cell.per_class[0].goodput(), 3),
             std::to_string(cell.inter_p99_us / 1000),
             std::to_string(cell.retx), std::to_string(cell.expired),
             std::to_string(cell.sheds_bulk) + "/" +
                 std::to_string(cell.sheds_streaming) + "/" +
                 std::to_string(cell.sheds_interactive) + "/" +
                 std::to_string(cell.sheds_control),
             std::to_string(cell.admission),
             std::to_string(cell.backpressure),
             std::to_string(cell.violations)});
        report.add("attempts_" + key, cell.attempts);
        report.add("accepted_" + key, cell.accepted);
        report.add("delivered_" + key, cell.delivered);
        report.add("segments_retx_" + key, cell.retx);
        report.add("segments_expired_" + key, cell.expired);
        report.add("segments_deferred_" + key, cell.deferred);
        report.add("goodput_" + key, goodput);
        report.add("goodput_interactive_" + key,
                   cell.per_class[1].goodput());
        report.add("goodput_bulk_" + key, cell.per_class[0].goodput());
        report.add("goodput_streaming_" + key,
                   cell.per_class[2].goodput());
        report.add("interactive_p99_us_" + key, cell.inter_p99_us);
        report.add("sheds_bulk_" + key, cell.sheds_bulk);
        report.add("sheds_streaming_" + key, cell.sheds_streaming);
        report.add("sheds_interactive_" + key, cell.sheds_interactive);
        report.add("sheds_control_" + key, cell.sheds_control);
        report.add("admission_rejects_" + key, cell.admission);
        report.add("backpressure_signals_" + key, cell.backpressure);
        report.add("session_sheds_" + key, cell.session_shed);
        report.add("stalls_suppressed_" + key, cell.stalls_suppressed);
        report.add("violations_" + key, cell.violations);
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: `goodput` is delivered / attempted sends. Under the "
              "steady shape both arms ride well under the drain rate and "
              "tie. Under the flash crowd the drop arm tail-drops every "
              "class equally — retransmissions amplify the overload and "
              "interactive goodput collapses with the rest — while the "
              "shed arm sacrifices bulk first (sheds column: bulk >> "
              "interactive, control always 0), refuses new work at "
              "saturated relays, and backpressures the sender into "
              "deferring bulk, so interactive goodput and p99 stay "
              "serviceable through the spike.\n");

  // Off means off: factory defaults and every overload/workload knob
  // spelled at its default must reproduce the pre-PR fingerprint.
  const ChaosResult control_default =
      run_chaos_experiment(control_chaos_config());
  ChaosConfig spelled = control_chaos_config();
  spelled.workload = workload::WorkloadConfig{};
  spelled.environment.router.overload = anon::RouterConfig::OverloadConfig{};
  spelled.environment.router.pool_max_capacity = 0;
  spelled.environment.overload_obs_interval = 0;
  spelled.max_inflight_segments = 0;
  spelled.shed_low_priority = false;
  spelled.session_backpressure = false;
  const ChaosResult control_spelled = run_chaos_experiment(spelled);
  const bool fingerprint_ok =
      control_default.fingerprint() == kPrePrFingerprint &&
      control_spelled.fingerprint() == kPrePrFingerprint;
  std::printf("control fingerprint: %s\n",
              fingerprint_ok ? "MATCHES pre-PR baseline"
                             : "MISMATCH vs pre-PR baseline");
  if (!fingerprint_ok) {
    std::printf("  pre-PR:  %s\n  default: %s\n  spelled: %s\n",
                kPrePrFingerprint, control_default.fingerprint().c_str(),
                control_spelled.fingerprint().c_str());
  }

  report.add("runs_per_cell", static_cast<std::uint64_t>(runs));
  report.add_text("pre_pr_fingerprint", kPrePrFingerprint);
  report.add_text("control_fingerprint", control_default.fingerprint());
  report.add_text("control_fingerprint_spelled",
                  control_spelled.fingerprint());
  report.add("fingerprint_match",
             static_cast<std::uint64_t>(fingerprint_ok ? 1 : 0));
  report.add_section("overload", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return fingerprint_ok ? 0 : 1;
}

// --- anonymity sweep -------------------------------------------------------
//
// --anonymity-sweep taps a LinkObserver into the wire and replays the
// captured flow log through the offline attack engine (DESIGN §10):
// predecessor (paper §5 Case 1 with a planted fraction-f insider set),
// intersection over trial windows, and timing correlation at the
// responder. 3 protocols x 5 arms: a compromised-fraction grid
// {f=5%, 10%, 20%}, a cover-traffic arm, and a fast-churn arm.
//
// The committed gates (scripts/check_bench_anonymity.py):
//   1. empirical first-relay compromise tracks 1-(1-f)^k across the f
//      grid for every protocol;
//   2. cover traffic strictly lowers timing-correlation success;
//   3. the multipath anonymity cost is visible: predecessor success and
//      entropy order sanely across CurMix/SimRep/SimEra;
//   4. off means off: the pre-PR control fingerprint reproduces with the
//      observer left unconfigured.

struct AnonymityArm {
  const char* name;
  double fraction;
  bool cover;
  bool fast_churn;
};

constexpr AnonymityArm kAnonArms[] = {
    {"f05", 0.05, false, false},  {"base", 0.10, false, false},
    {"f20", 0.20, false, false},  {"cover", 0.10, true, false},
    {"churn", 0.10, false, true},
};
constexpr std::size_t kAnonArmCount =
    sizeof(kAnonArms) / sizeof(kAnonArms[0]);

/// Short report-key slugs for the three protocol arms.
constexpr const char* kAnonProtoSlugs[] = {"curmix", "simrep2", "simera4"};

AnonymityConfig anonymity_cell_config(std::size_t proto, std::size_t arm,
                                      std::uint64_t seed,
                                      std::size_t nodes) {
  const anon::ProtocolSpec specs[] = {
      anon::ProtocolSpec::curmix(anon::MixChoice::kRandom),
      anon::ProtocolSpec::simrep(2, anon::MixChoice::kRandom),
      anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom)};
  const AnonymityArm& a = kAnonArms[arm];
  AnonymityConfig config;
  config.environment.num_nodes = nodes;
  config.environment.seed = seed;
  config.spec = specs[proto];
  config.compromised_fraction = a.fraction;
  config.cover_traffic = a.cover;
  config.trials = 36;  // 24 default; more trials tighten the f-grid gate
  if (a.fast_churn) {
    config.environment.session_distribution = "pareto:median=900";
    config.pin_all_up = false;  // measure rebuild-driven exposure
  }
  return config;
}

int run_anonymity_sweep(std::uint64_t seed, std::size_t seeds,
                        std::size_t nodes, std::size_t workers,
                        const std::string& json_path,
                        const std::string& flow_log_path) {
  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  constexpr std::size_t kProtoCount = 3;

  struct Job {
    std::size_t proto;
    std::size_t arm;
    std::size_t run;
  };
  std::vector<Job> jobs;
  for (std::size_t p = 0; p < kProtoCount; ++p) {
    for (std::size_t a = 0; a < kAnonArmCount; ++a) {
      for (std::size_t r = 0; r < runs; ++r) jobs.push_back({p, a, r});
    }
  }

  std::printf("# Anonymity sweep: passive global observer + offline "
              "attacks, %zu nodes, %zu seeds per cell\n",
              nodes, runs);

  std::vector<AnonymityResult> results(jobs.size());
  parallel_for(jobs.size(), workers, [&](std::size_t i) {
    const Job& job = jobs[i];
    AnonymityConfig config =
        anonymity_cell_config(job.proto, job.arm, seed + job.run, nodes);
    // One representative capture (CurMix/base, first seed) as link-record
    // JSONL, for tools/trace_analyze --flows cross-referencing.
    if (!flow_log_path.empty() && job.proto == 0 && job.arm == 1 &&
        job.run == 0) {
      config.flow_log_path = flow_log_path;
    }
    results[i] = run_anonymity_experiment(config);
  });

  struct Cell {
    double pred_success = 0, pred_compromise = 0, pred_entropy = 0;
    double pred_set = 0, gt_compromise = 0;
    double inter_success = 0, inter_set = 0;
    double corr_success = 0, corr_entropy = 0, corr_set = 0;
    double eq4 = 0, exposure = 0, uniform_entropy = 0;
    std::uint64_t trials = 0, constructed = 0, cover_msgs = 0;
    std::uint64_t flows = 0, evicted = 0;
  };
  std::vector<Cell> cells(kProtoCount * kAnonArmCount);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const AnonymityResult& r = results[i];
    Cell& cell = cells[job.proto * kAnonArmCount + job.arm];
    cell.pred_success += r.predecessor.success_rate;
    cell.pred_compromise += r.predecessor.compromise_rate;
    cell.pred_entropy += r.predecessor.posterior_entropy_bits;
    cell.pred_set += r.predecessor.anonymity_set_mean;
    cell.gt_compromise += r.ground_truth_compromise_rate;
    cell.inter_success += r.intersection.success_rate;
    cell.inter_set += r.intersection.anonymity_set_mean;
    cell.corr_success += r.correlation.success_rate;
    cell.corr_entropy += r.correlation.posterior_entropy_bits;
    cell.corr_set += r.correlation.anonymity_set_mean;
    cell.eq4 += r.eq4_identification;
    cell.exposure += r.multipath_exposure;
    cell.uniform_entropy += r.uniform_entropy;
    cell.trials += r.trials_attempted;
    cell.constructed += r.trials_constructed;
    cell.cover_msgs += r.cover_messages;
    cell.flows += r.flows_recorded;
    cell.evicted += r.flows_evicted;
  }

  const double denom = static_cast<double>(runs);
  metrics::Table table({"protocol", "arm", "pred_succ", "eq4",
                        "compromise", "1-(1-f)^k", "pred_H", "corr_succ",
                        "inter_set", "flows"});
  obs::BenchReport report("chaos_anonymity_sweep");
  for (std::size_t p = 0; p < kProtoCount; ++p) {
    for (std::size_t a = 0; a < kAnonArmCount; ++a) {
      const Cell& cell = cells[p * kAnonArmCount + a];
      const std::string proto = kAnonProtoSlugs[p];
      const std::string arm = kAnonArms[a].name;
      const std::string key = proto + "_" + arm;
      table.add_row(
          {anonymity_cell_config(p, a, 0, nodes).spec.name(), arm,
           format_double(cell.pred_success / denom, 3),
           format_double(cell.eq4 / denom, 3),
           format_double(cell.pred_compromise / denom, 3),
           format_double(cell.exposure / denom, 3),
           format_double(cell.pred_entropy / denom, 2),
           format_double(cell.corr_success / denom, 3),
           format_double(cell.inter_set / denom, 1),
           std::to_string(cell.flows)});
      report.add("pred_success_" + key, cell.pred_success / denom);
      report.add("pred_compromise_" + key, cell.pred_compromise / denom);
      report.add("pred_entropy_" + key, cell.pred_entropy / denom);
      report.add("pred_set_" + key, cell.pred_set / denom);
      report.add("gt_compromise_" + key, cell.gt_compromise / denom);
      report.add("inter_success_" + key, cell.inter_success / denom);
      report.add("inter_set_" + key, cell.inter_set / denom);
      report.add("corr_success_" + key, cell.corr_success / denom);
      report.add("corr_entropy_" + key, cell.corr_entropy / denom);
      report.add("corr_set_" + key, cell.corr_set / denom);
      report.add("eq4_" + key, cell.eq4 / denom);
      report.add("exposure_" + key, cell.exposure / denom);
      report.add("uniform_entropy_" + key, cell.uniform_entropy / denom);
      report.add("trials_" + key, cell.trials);
      report.add("constructed_" + key, cell.constructed);
      report.add("cover_messages_" + key, cell.cover_msgs);
      report.add("flows_" + key, cell.flows);
      report.add("flows_evicted_" + key, cell.evicted);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: `compromise` is the wire-observed fraction of "
              "trials whose first relay was an insider; it must track the "
              "1-(1-f)^k column across the f grid (more paths, more "
              "exposure — the multipath anonymity cost). `pred_succ` vs "
              "`eq4` compares the attacker's realized posterior mass on "
              "the initiator with the paper's closed form. Cover traffic "
              "leaves the predecessor columns alone but dilutes "
              "`corr_succ`: timing correlation cannot tell the real sender "
              "from the dummies. Under churn the intersection set shrinks "
              "toward the persistent initiator.\n");

  // Off means off: the pre-PR chaos control run, once with factory
  // defaults and once with the observer hook explicitly nulled — the
  // fingerprints must match the committed baseline byte for byte.
  const ChaosResult control_default =
      run_chaos_experiment(control_chaos_config());
  ChaosConfig spelled = control_chaos_config();
  spelled.environment.link_tap = nullptr;
  const ChaosResult control_spelled = run_chaos_experiment(spelled);
  const bool fingerprint_ok =
      control_default.fingerprint() == kPrePrFingerprint &&
      control_spelled.fingerprint() == kPrePrFingerprint;
  std::printf("control fingerprint: %s\n",
              fingerprint_ok ? "MATCHES pre-PR baseline"
                             : "MISMATCH vs pre-PR baseline");
  if (!fingerprint_ok) {
    std::printf("  pre-PR:  %s\n  default: %s\n  spelled: %s\n",
                kPrePrFingerprint, control_default.fingerprint().c_str(),
                control_spelled.fingerprint().c_str());
  }

  report.add("runs_per_cell", static_cast<std::uint64_t>(runs));
  report.add("nodes", static_cast<std::uint64_t>(nodes));
  report.add_text("pre_pr_fingerprint", kPrePrFingerprint);
  report.add_text("control_fingerprint", control_default.fingerprint());
  report.add_text("control_fingerprint_spelled",
                  control_spelled.fingerprint());
  report.add("fingerprint_match",
             static_cast<std::uint64_t>(fingerprint_ok ? 1 : 0));
  report.add_section("anonymity", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return fingerprint_ok ? 0 : 1;
}

const ChaosScenario kScenarios[] = {
    ChaosScenario::kFlashCrowdCrash, ChaosScenario::kRollingPartition,
    ChaosScenario::kLossyLinkEpidemic, ChaosScenario::kCorruptedRelayQuorum,
    ChaosScenario::kMildLossDrizzle};

bool parse_scenario(const std::string& name, ChaosScenario& out) {
  for (const ChaosScenario scenario : kScenarios) {
    if (name == scenario_name(scenario)) {
      out = scenario;
      return true;
    }
  }
  return false;
}

/// One traced run: installs the trace sinks, executes the scenario, and
/// writes the Chrome JSON (plus the optional sampled JSONL causal log, the
/// optional time-series CSV, and the optional health scoreboard).
int run_traced(const std::string& trace_path, const std::string& jsonl_path,
               const std::string& scenario_flag, bool adaptive,
               double sample_rate, std::uint64_t seed, std::size_t nodes,
               const std::string& json_path,
               const std::string& timeseries_path, bool health) {
  ChaosScenario scenario;
  if (!parse_scenario(scenario_flag, scenario)) {
    std::fprintf(stderr, "chaos_sweep: unknown --trace-scenario '%s'\n",
                 scenario_flag.c_str());
    return 1;
  }

  obs::ChromeTraceSink chrome;
  obs::JsonlTraceSink jsonl(sample_rate, seed);
  auto& tracer = obs::Tracer::instance();
  tracer.add_sink(&chrome);
  if (!jsonl_path.empty()) tracer.add_sink(&jsonl);
  obs::install_log_decorator();

  obs::Registry run_metrics;
  obs::TimeseriesRecorder timeseries(run_metrics);
  ChaosConfig config = sweep_config(scenario, seed, adaptive, nodes);
  config.environment.metrics = &run_metrics;
  config.environment.obs_sample_interval = 30 * kSecond;
  if (!timeseries_path.empty()) {
    config.environment.timeseries = &timeseries;
    config.environment.timeseries_interval = 30 * kSecond;
  }
  if (health) config.health_interval = 30 * kSecond;
  const ChaosResult result = run_chaos_experiment(config);

  obs::uninstall_log_decorator();
  tracer.clear_sinks();

  if (!chrome.write_file(trace_path)) {
    std::fprintf(stderr, "chaos_sweep: cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("# Traced chaos run: %s, %s mode, seed %llu, %zu nodes\n",
              scenario_name(scenario), adaptive ? "adaptive" : "fixed",
              static_cast<unsigned long long>(seed), nodes);
  std::printf("trace: %zu events -> %s (open in Perfetto)\n",
              chrome.event_count(), trace_path.c_str());
  if (!jsonl_path.empty()) {
    if (!jsonl.write_file(jsonl_path)) {
      std::fprintf(stderr, "chaos_sweep: cannot write %s\n",
                   jsonl_path.c_str());
      return 1;
    }
    std::printf("causal log: %zu lines (sample rate %.3f) -> %s\n",
                jsonl.lines().size(), sample_rate, jsonl_path.c_str());
  }
  std::printf(
      "delivered %llu/%llu accepted, retx %llu, drops %llu, violations %llu\n",
      static_cast<unsigned long long>(result.messages_delivered),
      static_cast<unsigned long long>(result.messages_accepted),
      static_cast<unsigned long long>(result.segments_retransmitted),
      static_cast<unsigned long long>(result.drops.total()),
      static_cast<unsigned long long>(result.messages_unaccounted +
                                      result.total_leaks()));
  if (!timeseries_path.empty()) {
    if (!timeseries.write_csv(timeseries_path)) {
      std::fprintf(stderr, "chaos_sweep: cannot write %s\n",
                   timeseries_path.c_str());
      return 1;
    }
    std::printf("time series: %zu series x %zu samples -> %s\n",
                timeseries.series_count(), timeseries.sample_count(),
                timeseries_path.c_str());
  }
  if (health) {
    std::printf("# Health scoreboard (30 s windows)\n%s\n",
                result.health_table.c_str());
  }

  obs::BenchReport report("chaos_sweep_traced");
  report.add_text("scenario", scenario_name(scenario));
  report.add_text("mode", adaptive ? "adaptive" : "fixed");
  report.add("trace_events", static_cast<std::uint64_t>(chrome.event_count()));
  report.add("messages_delivered", result.messages_delivered);
  report.add("messages_accepted", result.messages_accepted);
  report.add("segments_retransmitted", result.segments_retransmitted);
  if (health) {
    report.add("health_windows",
               static_cast<std::uint64_t>(result.health.windows));
    report.add("health_churn_storm_windows",
               static_cast<std::uint64_t>(result.health.churn_storm_windows));
    report.add("health_stalled_path_windows",
               static_cast<std::uint64_t>(result.health.stalled_path_windows));
    report.add("health_max_transitions_per_window",
               result.health.max_transitions_per_window);
    report.add("health_max_drop_rate_per_s",
               result.health.max_drop_rate_per_s);
  }
  if (!report.write_if_requested(json_path, &run_metrics)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 96, "network size");
  auto& seed = flags.add_int("seed", 1, "base RNG seed");
  auto& seeds = flags.add_int("seeds", 6, "runs to average");
  auto& threads = flags.add_int("threads", 0, "worker threads (0 = auto)");
  auto& json_path = obs::add_json_flag(flags);
  auto& trace_path = flags.add_string(
      "trace", "", "write Chrome trace JSON of one traced run, skip sweep");
  auto& trace_scenario = flags.add_string(
      "trace-scenario", "lossy-link-epidemic", "scenario for the traced run");
  auto& trace_adaptive = flags.add_bool(
      "trace-adaptive", true,
      "traced run uses adaptive RTO + retransmission (exercises the "
      "segment_retransmit spans)");
  auto& jsonl_path = flags.add_string(
      "jsonl", "", "also write a JSONL causal log of the traced run");
  auto& sample = flags.add_double(
      "sample", 1.0, "JSONL sampling rate (whole correlation chains)");
  auto& timeseries_path = flags.add_string(
      "timeseries", "",
      "write a windowed time-series CSV of the traced run's registry");
  auto& health = flags.add_bool(
      "health", false,
      "run the rolling health scoreboard during the traced run");
  auto& byzantine = flags.add_bool(
      "byzantine-sweep", false,
      "sweep corruption probability x protocol x defense arm instead of "
      "the scenario sweep (delivered-correct / delivered-wrong / "
      "failed-closed accounting)");
  auto& byz_seeds = flags.add_int(
      "byz-seeds", 3, "seeds per byzantine sweep cell");
  auto& membership = flags.add_bool(
      "membership-sweep", false,
      "sweep control-plane fault scenarios (gossip blackout, leader crash, "
      "stale/claim poisoning) x recovery arms through the durability "
      "harness, plus the pre-PR control fingerprint guard");
  auto& mem_seeds = flags.add_int(
      "mem-seeds", 5, "seeds per membership sweep cell");
  auto& overload = flags.add_bool(
      "overload-sweep", false,
      "sweep workload shapes (steady/diurnal/flash) x protocols x "
      "shed-vs-drop arms through bounded relay queues, plus the pre-PR "
      "control fingerprint guard");
  auto& ovl_seeds = flags.add_int(
      "ovl-seeds", 2, "seeds per overload sweep cell");
  auto& anonymity = flags.add_bool(
      "anonymity-sweep", false,
      "tap a passive global observer into the wire and sweep protocol x "
      "{compromised-f grid, cover traffic, churn}, replaying the flow log "
      "through the predecessor/intersection/correlation attack engine");
  auto& anon_seeds = flags.add_int(
      "anon-seeds", 3, "seeds per anonymity sweep cell");
  auto& flow_log = flags.add_string(
      "flow-log", "",
      "anonymity sweep: dump one cell's captured flow log here as "
      "link-record JSONL (for trace_analyze --flows)");
  flags.parse(argc, argv);

  if (anonymity) {
    return run_anonymity_sweep(
        static_cast<std::uint64_t>(seed),
        static_cast<std::size_t>(anon_seeds),
        static_cast<std::size_t>(nodes),
        threads > 0 ? static_cast<std::size_t>(threads)
                    : default_worker_threads(),
        json_path, flow_log);
  }

  if (overload) {
    return run_overload_sweep(
        static_cast<std::uint64_t>(seed),
        static_cast<std::size_t>(ovl_seeds),
        threads > 0 ? static_cast<std::size_t>(threads)
                    : default_worker_threads(),
        json_path);
  }

  if (membership) {
    return run_membership_sweep(
        static_cast<std::uint64_t>(seed),
        static_cast<std::size_t>(mem_seeds),
        threads > 0 ? static_cast<std::size_t>(threads)
                    : default_worker_threads(),
        json_path);
  }

  if (byzantine) {
    return run_byzantine_sweep(
        static_cast<std::uint64_t>(seed),
        static_cast<std::size_t>(byz_seeds),
        static_cast<std::size_t>(nodes),
        threads > 0 ? static_cast<std::size_t>(threads)
                    : default_worker_threads(),
        json_path);
  }

  if (!trace_path.empty()) {
    return run_traced(trace_path, jsonl_path, trace_scenario, trace_adaptive,
                      sample, static_cast<std::uint64_t>(seed),
                      static_cast<std::size_t>(nodes), json_path,
                      timeseries_path, health);
  }

  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  const std::size_t workers =
      threads > 0 ? static_cast<std::size_t>(threads)
                  : default_worker_threads();

  std::printf("# Chaos sweep: SimEra(4,2)/random, %d nodes, 512 B every 5 s, "
              "fixed 5 s timeouts vs adaptive RTO+backoff, %zu seeds\n",
              static_cast<int>(nodes), runs);
  metrics::Table table({"scenario", "mode", "attempted delivery",
                        "accepted delivery", "retx", "violations"});
  // Per-cause accounting of every datagram that vanished. Each run counts
  // drops in its private registry (net_drops_total / fault_injections_total);
  // the sweep folds them into this aggregate registry, labeled by scenario
  // and mode, and the table below is rendered from it.
  obs::Registry sweep_metrics;
  metrics::Table drop_table({"scenario", "mode", "sender-dead",
                             "recv-dead", "link-loss", "crash", "partition",
                             "spike-loss", "corrupted", "duplicated"});
  for (const ChaosScenario scenario : kScenarios) {
    for (const bool adaptive : {false, true}) {
      std::vector<ChaosResult> results(runs);
      parallel_for(runs, workers, [&](std::size_t i) {
        results[i] = run_chaos_experiment(sweep_config(
            scenario, static_cast<std::uint64_t>(seed) + i, adaptive,
            static_cast<std::size_t>(nodes)));
      });
      double attempted = 0;
      double accepted = 0;
      std::uint64_t retx = 0;
      std::uint64_t violations = 0;
      const obs::Labels base{{"scenario", scenario_name(scenario)},
                             {"mode", adaptive ? "adaptive" : "fixed"}};
      auto cell = [&](const char* label_key, const char* name,
                      const char* value) {
        obs::Labels labels = base;
        labels[label_key] = value;
        return sweep_metrics.counter(name, labels);
      };
      obs::Counter* drop_cells[] = {
          cell("cause", "net_drops_total", "sender_dead"),
          cell("cause", "net_drops_total", "receiver_dead"),
          cell("cause", "net_drops_total", "link_loss"),
          cell("kind", "fault_injections_total", "dropped_crash"),
          cell("kind", "fault_injections_total", "dropped_partition"),
          cell("kind", "fault_injections_total", "dropped_loss"),
          cell("kind", "fault_injections_total", "corrupted"),
          cell("kind", "fault_injections_total", "duplicated")};
      for (const ChaosResult& result : results) {
        attempted += result.attempted_delivery_rate();
        accepted += result.delivery_rate();
        retx += result.segments_retransmitted;
        violations += result.messages_unaccounted + result.total_leaks() +
                      (result.ledger_closed() ? 0 : 1);
        drop_cells[0]->inc(result.drops.sender_dead);
        drop_cells[1]->inc(result.drops.receiver_dead);
        drop_cells[2]->inc(result.drops.link_loss);
        drop_cells[3]->inc(result.faults.dropped_crash);
        drop_cells[4]->inc(result.faults.dropped_partition);
        drop_cells[5]->inc(result.faults.dropped_loss);
        drop_cells[6]->inc(result.faults.corrupted);
        drop_cells[7]->inc(result.faults.duplicated);
      }
      const double denom = static_cast<double>(runs);
      const char* mode_name = adaptive ? "adaptive" : "fixed";
      table.add_row({scenario_name(scenario), mode_name,
                     format_double(100.0 * attempted / denom, 1) + "%",
                     format_double(100.0 * accepted / denom, 1) + "%",
                     std::to_string(retx), std::to_string(violations)});
      std::vector<std::string> drop_row{scenario_name(scenario), mode_name};
      for (const obs::Counter* counter : drop_cells) {
        drop_row.push_back(std::to_string(counter->value()));
      }
      drop_table.add_row(std::move(drop_row));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("# Datagram loss by cause (summed over seeds)\n%s\n",
              drop_table.render().c_str());
  std::printf("Reading: the adaptive mode's RTT-tracked timeouts and "
              "retransmission over surviving paths recover individual "
              "datagram losses that fixed 5 s timeouts escalate into path "
              "teardowns, so it leads on the attempted ratio wherever "
              "links are lossy or relays corrupt traffic. Under pure "
              "crash/partition faults the tradeoff reverses: there "
              "retransmission cannot help (the path is dead, not lossy) "
              "and the fixed mode's unbounded rebuild-and-resend loop "
              "beats the adaptive mode's bounded retry budget. Violations "
              "must read 0 — every run also upholds the conservation, "
              "ledger, and no-leak invariants asserted by chaos_test.\n");

  obs::BenchReport report("chaos_sweep");
  report.add("runs_per_cell", static_cast<std::uint64_t>(runs));
  report.add_section("delivery", table.to_json());
  report.add_section("drops_by_cause", drop_table.to_json());
  if (!report.write_if_requested(json_path, &sweep_metrics)) return 1;
  return 0;
}
