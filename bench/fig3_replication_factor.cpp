// Figure 3: P(k) vs k for replication factors r = 2, 3, 4 at node
// availability 0.70 and L = 3. A bigger r dramatically increases the
// probability of success.
#include <cstdio>

#include "analysis/path_model.hpp"
#include "common/config.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::analysis;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& trials = flags.add_int("trials", 200000, "Monte-Carlo trials per point");
  auto& seed = flags.add_int("seed", 1, "RNG seed");
  auto& pa = flags.add_double("availability", 0.70, "node availability");
  auto& L = flags.add_int("L", 3, "relays per path");
  auto& k_max = flags.add_int("kmax", 20, "max number of paths");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto mc_trials = static_cast<std::size_t>(
      static_cast<double>(trials) * bench_scale());

  Rng rng(static_cast<std::uint64_t>(seed));
  const double p = path_success_probability(pa, static_cast<std::size_t>(L));

  std::printf("# Figure 3: P(k) vs k for r in {2, 3, 4}, pa = %.2f, L = %lld"
              " (p = %.3f)\n", pa, static_cast<long long>(L), p);
  metrics::Series series("k", {"sim(r=2)", "model(r=2)", "sim(r=3)",
                               "model(r=3)", "sim(r=4)", "model(r=4)"});
  for (std::size_t k = 2; k <= static_cast<std::size_t>(k_max); k += 2) {
    std::vector<double> row;
    for (const std::size_t r : {2u, 3u, 4u}) {
      // Plot points only where k is a multiple of r (the paper's even
      // allocation requires it); reuse the nearest valid k otherwise.
      const std::size_t k_valid = (k / r) * r;
      if (k_valid == 0) {
        row.push_back(0.0);
        row.push_back(0.0);
        continue;
      }
      row.push_back(simera_success_monte_carlo(
          k_valid, static_cast<double>(r), p, mc_trials, rng));
      row.push_back(
          simera_success_probability(k_valid, static_cast<double>(r), p));
    }
    series.add(static_cast<double>(k), row);
  }
  std::printf("%s\n", series.render(4).c_str());
  std::printf("Expected (paper): success probability rises sharply with r; "
              "r = 4 approaches 1 for small k while r = 2 decays (Obs. 3 at "
              "pa = 0.70).\n");
  obs::BenchReport report("fig3_replication_factor");
  report.add("trials", static_cast<std::uint64_t>(mc_trials));
  report.add("path_success_p", p);
  report.add_section("pk_curves", series.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
