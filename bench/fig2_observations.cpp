// Figure 2: validation of the three observations — P(k) vs k for node
// availabilities 0.70 (Obs. 3), 0.86 (Obs. 2), 0.95 (Obs. 1), with r = 2
// and L = 3. Prints the Monte-Carlo simulated probability (the paper's
// "simulation") next to the closed form, and reports which observation
// regime each availability lands in.
#include <cstdio>

#include "analysis/observations.hpp"
#include "analysis/path_model.hpp"
#include "common/config.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::analysis;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& trials = flags.add_int("trials", 200000, "Monte-Carlo trials per point");
  auto& seed = flags.add_int("seed", 1, "RNG seed");
  auto& r = flags.add_int("r", 2, "replication factor");
  auto& L = flags.add_int("L", 3, "relays per path");
  auto& k_max = flags.add_int("kmax", 20, "max number of paths");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto mc_trials = static_cast<std::size_t>(
      static_cast<double>(trials) * bench_scale());

  const double availabilities[] = {0.70, 0.86, 0.95};
  Rng rng(static_cast<std::uint64_t>(seed));

  std::printf("# Figure 2: P(k) vs k, r = %lld, L = %lld "
              "(sim = Monte-Carlo, model = closed form)\n",
              static_cast<long long>(r), static_cast<long long>(L));
  metrics::Series series(
      "k", {"sim(0.70)", "model(0.70)", "sim(0.86)", "model(0.86)",
            "sim(0.95)", "model(0.95)"});
  for (std::size_t k = static_cast<std::size_t>(r);
       k <= static_cast<std::size_t>(k_max);
       k += static_cast<std::size_t>(r)) {
    std::vector<double> row;
    for (const double pa : availabilities) {
      const double p =
          path_success_probability(pa, static_cast<std::size_t>(L));
      row.push_back(simera_success_monte_carlo(
          k, static_cast<double>(r), p, mc_trials, rng));
      row.push_back(simera_success_probability(k, static_cast<double>(r), p));
    }
    series.add(static_cast<double>(k), row);
  }
  std::printf("%s\n", series.render(4).c_str());

  for (const double pa : availabilities) {
    const double p = path_success_probability(pa, static_cast<std::size_t>(L));
    const auto regime = observe_regime(p, static_cast<std::size_t>(r),
                                       static_cast<std::size_t>(k_max) * 2);
    std::printf("pa = %.2f: p = %.3f, p*r = %.3f -> %s", pa, p,
                p * static_cast<double>(r), to_string(regime));
    if (regime == ObservationRegime::kSplitIfLarge) {
      std::printf(" (dip recovers after k0 = %zu)",
                  crossover_k(p, static_cast<std::size_t>(r),
                              static_cast<std::size_t>(k_max) * 2));
    }
    std::printf("\n");
  }
  std::printf("\nExpected (paper): 0.95 rises monotonically (Obs. 1); 0.86 "
              "dips then rises around k = 4 (Obs. 2); 0.70 falls "
              "monotonically (Obs. 3).\n");
  obs::BenchReport report("fig2_observations");
  report.add("trials", static_cast<std::uint64_t>(mc_trials));
  report.add_section("pk_curves", series.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
