// Ablation: flat epidemic gossip vs OneHop-style hierarchical
// dissemination — the membership substrates behind biased mix choice.
//
// Same churn, same network: measure belief accuracy (fraction of
// (live observer, subject) pairs whose alive/dead belief matches ground
// truth) and the message/byte cost of maintaining it.
#include <cstdio>

#include "churn/churn_model.hpp"
#include "churn/distributions.hpp"
#include "common/config.hpp"
#include "common/strings.hpp"
#include "membership/gossip.hpp"
#include "membership/onehop.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"
#include "sim/simulator.hpp"

using namespace p2panon;

namespace {

struct Outcome {
  double accuracy = 0.0;
  double messages_per_node_second = 0.0;
  double bytes_per_node_second = 0.0;
};

template <typename Membership, typename Config>
Outcome run(std::size_t nodes, std::uint64_t seed, double median_seconds,
            SimDuration horizon, Config config) {
  sim::Simulator simulator;
  auto latency = net::LatencyMatrix::synthetic(nodes, Rng(seed));
  const auto dist = churn::ParetoLifetime::with_median(median_seconds);
  churn::ChurnModel churn_model(simulator, nodes, dist, Rng(seed + 1), 0.5);
  net::SimTransport transport(
      simulator, latency,
      [&](NodeId node) { return churn_model.is_up(node); });
  net::Demux demux(transport, nodes);
  Membership membership(simulator, demux, churn_model, config,
                        Rng(seed + 2));
  membership.start();
  churn_model.start();
  simulator.run_until(horizon);

  Outcome out;
  out.accuracy = membership.belief_accuracy();
  const double node_seconds =
      to_seconds(horizon) * static_cast<double>(nodes);
  if constexpr (requires { membership.gossip_messages_sent(); }) {
    out.messages_per_node_second =
        static_cast<double>(membership.gossip_messages_sent()) / node_seconds;
    out.bytes_per_node_second =
        static_cast<double>(membership.gossip_bytes_sent()) / node_seconds;
  } else {
    out.messages_per_node_second =
        static_cast<double>(membership.messages_sent()) / node_seconds;
    out.bytes_per_node_second =
        static_cast<double>(membership.bytes_sent()) / node_seconds;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 512, "network size");
  auto& seed = flags.add_int("seed", 1, "RNG seed");
  auto& minutes = flags.add_int("minutes", 30, "simulated minutes");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto horizon = static_cast<SimDuration>(
      static_cast<double>(minutes) * bench_scale()) * kMinute;

  std::printf("# Ablation: gossip vs OneHop dissemination, %lld nodes, "
              "%.0f simulated minutes\n", static_cast<long long>(nodes),
              to_seconds(horizon) / 60.0);

  metrics::Table table({"substrate", "churn median", "belief accuracy",
                        "msgs/node/s", "bytes/node/s"});
  for (const double median : {600.0, 3600.0}) {
    const auto gossip = run<membership::GossipMembership>(
        static_cast<std::size_t>(nodes), static_cast<std::uint64_t>(seed),
        median, horizon, membership::GossipConfig{});
    membership::OneHopConfig onehop_config;
    onehop_config.units = static_cast<std::size_t>(nodes) / 32;
    const auto onehop = run<membership::OneHopMembership>(
        static_cast<std::size_t>(nodes), static_cast<std::uint64_t>(seed),
        median, horizon, onehop_config);
    const std::string label = format_double(median / 60.0, 0) + " min";
    table.add_row({"gossip", label, format_double(gossip.accuracy, 4),
                   format_double(gossip.messages_per_node_second, 2),
                   format_double(gossip.bytes_per_node_second, 0)});
    table.add_row({"onehop", label, format_double(onehop.accuracy, 4),
                   format_double(onehop.messages_per_node_second, 2),
                   format_double(onehop.bytes_per_node_second, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: both substrates keep beliefs accurate enough for "
              "biased mix choice; the hierarchy concentrates load on "
              "leaders but spends fewer total messages, while flat gossip "
              "pays steady per-node anti-entropy bandwidth — the classic "
              "trade the paper inherits from OneHop.\n");
  obs::BenchReport report("ablate_dissemination");
  report.add("nodes", static_cast<std::uint64_t>(nodes));
  report.add("horizon_s", to_seconds(horizon));
  report.add_section("table", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
