// Figure 1: cumulative distribution of node lifetimes — the measured
// Gnutella trace (Saroiu et al.) against Pareto(alpha = 0.83, beta = 1560 s).
//
// The measured trace is not redistributable, so we regenerate a stand-in by
// sampling the fitted Pareto with multiplicative session-level noise
// (DESIGN.md "Substitutions"): the paper's point — that the empirical CDF
// is well-fit by that Pareto — is what the bench verifies, reporting the
// Kolmogorov–Smirnov distance between the two curves.
#include <cmath>
#include <cstdio>

#include "churn/distributions.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "metrics/cdf.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& samples = flags.add_int("samples", 50000, "trace samples");
  auto& seed = flags.add_int("seed", 1, "RNG seed");
  auto& noise = flags.add_double("noise", 0.15,
                                 "lognormal measurement noise (sigma)");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto n = static_cast<std::size_t>(
      static_cast<double>(samples) * bench_scale());

  const churn::ParetoLifetime pareto(0.83, 1560.0);
  Rng rng(static_cast<std::uint64_t>(seed));

  // Stand-in "measured" trace: fitted Pareto with per-session noise.
  metrics::EmpiricalCdf measured;
  for (std::size_t i = 0; i < n; ++i) {
    const double base = pareto.sample(rng);
    const double jitter =
        std::exp(noise * (rng.next_double() + rng.next_double() +
                          rng.next_double() - 1.5));  // ~lognormal
    measured.add(base * jitter);
  }

  std::printf("# Figure 1: node lifetime CDF, measured-trace stand-in vs "
              "Pareto(0.83, 1560 s)\n");
  std::printf("# x = lifetime (x10^4 sec), measured CDF, Pareto CDF\n");
  metrics::Series series("lifetime_x1e4s", {"measured", "pareto"});
  for (double t = 2000.0; t <= 70000.0; t += 2000.0) {
    series.add(t / 10000.0, {measured.at(t), pareto.cdf(t)});
  }
  std::printf("%s", series.render(4).c_str());

  const double ks =
      measured.ks_distance([&](double t) { return pareto.cdf(t); });
  std::printf("\nKS distance (measured vs fitted Pareto): %.4f "
              "(paper: curves 'closely match')\n", ks);
  obs::BenchReport report("fig1_lifetime_cdf");
  report.add("samples", static_cast<std::uint64_t>(n));
  report.add("ks_distance", ks);
  report.add_section("cdf", series.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
