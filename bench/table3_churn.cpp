// Table 3: SimEra(k = 4, r = 4) under varying churn — median node lifetime
// 20, 30, 60, 80, 120 minutes. Cells are [random, biased].
#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "harness/durability_experiment.hpp"
#include "harness/parallel.hpp"
#include "metrics/bootstrap.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::harness;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 1024, "network size");
  auto& seed = flags.add_int("seed", 1, "base RNG seed");
  auto& seeds = flags.add_int("seeds", 10, "runs to average");
  auto& threads = flags.add_int("threads", 0, "worker threads (0 = auto)");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  const std::size_t workers =
      threads > 0 ? static_cast<std::size_t>(threads)
                  : default_worker_threads();

  const int lifetimes_minutes[] = {20, 30, 60, 80, 120};

  std::printf("# Table 3: SimEra(k=4, r=4) vs median node lifetime, %zu "
              "seeds (cells are [random, biased])\n", runs);

  std::string ci_lines;
  metrics::Table table({"Lifetime(minutes)", "Durability(sec)",
                        "Path construction attempts", "Latency(ms)",
                        "Bandwidth(KB)"});
  for (const int minutes : lifetimes_minutes) {
    DurabilityAverages by_mix[2];
    for (int mix = 0; mix < 2; ++mix) {
      DurabilityConfig config;
      config.environment.num_nodes = static_cast<std::size_t>(nodes);
      config.environment.seed = static_cast<std::uint64_t>(seed);
      config.environment.session_distribution =
          "pareto:median=" + std::to_string(minutes * 60);
      config.spec = anon::ProtocolSpec::simera(
          4, 4,
          mix == 0 ? anon::MixChoice::kRandom : anon::MixChoice::kBiased);
      by_mix[mix] = run_durability_average(config, runs, workers);
    }
    table.add_row(
        {std::to_string(minutes),
         metrics::pair_cell(by_mix[0].durability_seconds,
                            by_mix[1].durability_seconds),
         metrics::pair_cell(by_mix[0].construct_attempts,
                            by_mix[1].construct_attempts, 1),
         metrics::pair_cell(by_mix[0].latency_ms, by_mix[1].latency_ms),
         metrics::pair_cell(by_mix[0].bandwidth_kb, by_mix[1].bandwidth_kb,
                            1)});
    ci_lines += std::string("  ") + std::to_string(minutes) + " min" +
                ": durability 95% bootstrap CI  random " +
                metrics::bootstrap_mean_ci(by_mix[0].durability_runs)
                    .to_string(0) +
                "  biased " +
                metrics::bootstrap_mean_ci(by_mix[1].durability_runs)
                    .to_string(0) +
                "\n";
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Durability uncertainty (percentile bootstrap over seeds):\n%s\n",
              ci_lines.c_str());
  std::printf(
      "Paper reference (minutes: durability / attempts / latency / KB):\n"
      "  20:  [987, 1263]   [27.4, 1]  [270, 262]  [7.4, 11]\n"
      "  30:  [1101, 1889]  [10, 1]    [371, 182]  [8.2, 12]\n"
      "  60:  [1377, 2472]  [2.4, 1]   [406, 231]  [8.8, 12.4]\n"
      "  80:  [2448, 3014]  [1.4, 1]   [365, 274]  [9.2, 12.6]\n"
      "  120: [2549, 3304]  [1, 1]     [288, 225]  [10.4, 12.8]\n"
      "Shape checks: durability grows with lifetime; random-mix attempts\n"
      "shrink sharply; biased stays at ~1 attempt and higher bandwidth.\n");
  obs::BenchReport report("table3_churn");
  report.add("runs", static_cast<std::uint64_t>(runs));
  report.add_section("table", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
