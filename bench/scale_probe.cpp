// Capacity scale probe: events/sec, memory footprint and event-type time
// shares across network sizes — the data behind BENCH_scale.json and the
// scripts/check_bench_scale.py CI gate (ROADMAP "push N toward 100k").
//
// One arm = (N, scenario). Per arm the probe builds a full Environment
// with the capacity loop profiler attached, runs a bounded number of
// events (warmup excluded from timing), and records:
//   * events/sec over the measured window (wall clock);
//   * a deterministic byte census of every big structure, total and
//     per-node, per subsystem (the O(N²) latency matrix shows up here as
//     a number, not a comment);
//   * alloc-probe live/peak bytes per subsystem tag (this binary links
//     the counting operator new/delete hooks);
//   * process peak RSS (also in the shared provenance block);
//   * the profiler's top event-type self-time shares and its measured
//     self-overhead (the gate holds it under 3% of the measured wall
//     time).
//
// Scenarios: "steady" (hour-scale median sessions — the gossip/anti-
// entropy steady state dominates) and "churn" (minutes-scale sessions —
// transition and detection events pile on top).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/alloc_probe.hpp"
#include "common/config.hpp"
#include "harness/environment.hpp"
#include "obs/capacity/census.hpp"
#include "obs/capacity/loop_profiler.hpp"
#include "obs/capacity/rusage.hpp"
#include "obs/export.hpp"

using namespace p2panon;

namespace {

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) sizes.push_back(std::stoul(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sizes;
}

/// Alloc-probe scope table rendered as one JSON object (scope -> stats).
std::string alloc_scopes_json() {
  std::string out = "{";
  bool first = true;
  for (std::uint32_t id = 0; id < alloc_probe::scope_count(); ++id) {
    const auto stats = alloc_probe::scope_stats(id);
    if (!first) out += ",";
    first = false;
    out += "\"" + std::string(alloc_probe::scope_name(id)) + "\":{";
    out += "\"allocs\":" + std::to_string(stats.allocs);
    out += ",\"frees\":" + std::to_string(stats.frees);
    out += ",\"live_bytes\":" + std::to_string(stats.live_bytes);
    out += ",\"peak_bytes\":" + std::to_string(stats.peak_bytes);
    out += "}";
  }
  out += "}";
  return out;
}

struct ArmResult {
  std::string name;
  double events_per_sec = 0;
  std::uint64_t events_executed = 0;
  double wall_seconds = 0;
  std::uint64_t census_total = 0;
  std::uint64_t census_matrix = 0;
  double profiler_overhead_pct = 0;
  std::uint64_t peak_rss_kb = 0;
  std::uint64_t current_rss_kb = 0;
  std::uint64_t live_bytes = 0;
  std::string census_json;
  std::string profiler_json;
  std::string alloc_json;
};

ArmResult run_arm(std::size_t nodes, const std::string& scenario,
                  std::size_t warmup_events, std::size_t measure_events,
                  std::uint32_t stride) {
  ArmResult arm;
  arm.name = "n" + std::to_string(nodes) + "_" + scenario;

  obs::capacity::LoopProfiler::Config profiler_config;
  profiler_config.sample_stride = stride;
  obs::capacity::LoopProfiler profiler(profiler_config);

  harness::EnvironmentConfig config;
  config.num_nodes = nodes;
  config.seed = 7;
  config.session_distribution =
      scenario == "churn" ? "pareto:median=600" : "pareto:median=3600";
  config.loop_profiler = &profiler;

  harness::Environment env(config);
  env.start();

  env.simulator().run_steps(warmup_events);
  profiler.reset();  // measured window only

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  arm.events_executed = env.simulator().run_steps(measure_events);
  arm.wall_seconds =
      std::chrono::duration<double>(clock::now() - t0).count();
  arm.events_per_sec =
      arm.wall_seconds > 0
          ? static_cast<double>(arm.events_executed) / arm.wall_seconds
          : 0;

  obs::capacity::ByteCensus census;
  env.byte_census(census);
  arm.census_total = census.total();
  arm.census_matrix = census.subsystem_total("latency_matrix");
  arm.census_json = census.to_json(nodes);

  const auto report = profiler.report();
  arm.profiler_overhead_pct =
      arm.wall_seconds > 0
          ? 100.0 * report.est_overhead_ns / (arm.wall_seconds * 1e9)
          : 0;
  arm.profiler_json = profiler.report_json();

  const auto usage = obs::capacity::sample_resource_usage();
  arm.peak_rss_kb = usage.max_rss_kb;
  arm.current_rss_kb = usage.current_rss_kb;
  arm.live_bytes = alloc_probe::live_bytes();
  arm.alloc_json = alloc_scopes_json();
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  auto& sizes_csv = flags.add_string(
      "sizes", "1024,2048,4096,8192,16384", "comma-separated network sizes");
  auto& scenarios_csv =
      flags.add_string("scenarios", "steady,churn", "steady and/or churn");
  auto& warmup = flags.add_int("warmup-events", 50000,
                               "events run before the measured window");
  auto& events = flags.add_int("events", 200000,
                               "events in the measured window (per arm)");
  auto& stride =
      flags.add_int("stride", 16, "profiler sampling stride (1 = every event)");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);

  const auto sizes = parse_sizes(sizes_csv);
  std::vector<std::string> scenario_names;
  {
    std::size_t pos = 0;
    const std::string& csv = scenarios_csv;
    while (pos < csv.size()) {
      const std::size_t comma = csv.find(',', pos);
      const std::string item = csv.substr(
          pos, comma == std::string::npos ? comma : comma - pos);
      if (!item.empty()) scenario_names.push_back(item);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const auto measure_events = std::max<std::size_t>(
      1000, static_cast<std::size_t>(static_cast<double>(events) *
                                     bench_scale()));
  const auto warmup_events = std::max<std::size_t>(
      100, static_cast<std::size_t>(static_cast<double>(warmup) *
                                    bench_scale()));

  std::printf("# Capacity scale probe (%zu sizes x %zu scenarios, "
              "%zu measured events/arm, stride %d)\n",
              sizes.size(), scenario_names.size(), measure_events,
              static_cast<int>(stride));
  std::printf("%-16s %14s %12s %14s %14s %10s\n", "arm", "events/sec",
              "census_MB", "census_B/node", "peak_rss_MB", "ovh_%");

  obs::BenchReport report("scale_probe");
  report.add("alloc_probe_active",
             static_cast<std::uint64_t>(alloc_probe::active() ? 1 : 0));
  report.add("sample_stride", static_cast<std::uint64_t>(stride));
  report.add("measure_events", static_cast<std::uint64_t>(measure_events));

  std::string arms_list = "[";
  bool first_arm = true;
  for (const std::size_t n : sizes) {
    for (const std::string& scenario : scenario_names) {
      const ArmResult arm =
          run_arm(n, scenario, warmup_events, measure_events,
                  static_cast<std::uint32_t>(std::max(1, (int)stride)));
      std::printf("%-16s %14.0f %12.1f %14.0f %14.1f %10.2f\n",
                  arm.name.c_str(), arm.events_per_sec,
                  static_cast<double>(arm.census_total) / 1e6,
                  static_cast<double>(arm.census_total) /
                      static_cast<double>(n),
                  static_cast<double>(arm.peak_rss_kb) / 1024.0,
                  arm.profiler_overhead_pct);

      report.add(arm.name + "_nodes", static_cast<std::uint64_t>(n));
      report.add(arm.name + "_events_per_sec", arm.events_per_sec);
      report.add(arm.name + "_events_executed", arm.events_executed);
      report.add(arm.name + "_wall_seconds", arm.wall_seconds);
      report.add(arm.name + "_census_total_bytes", arm.census_total);
      report.add(arm.name + "_census_bytes_per_node",
                 static_cast<double>(arm.census_total) /
                     static_cast<double>(n));
      report.add(arm.name + "_census_matrix_bytes", arm.census_matrix);
      report.add(arm.name + "_census_nonmatrix_bytes_per_node",
                 static_cast<double>(arm.census_total - arm.census_matrix) /
                     static_cast<double>(n));
      report.add(arm.name + "_peak_rss_kb", arm.peak_rss_kb);
      report.add(arm.name + "_current_rss_kb", arm.current_rss_kb);
      report.add(arm.name + "_live_bytes", arm.live_bytes);
      report.add(arm.name + "_profiler_overhead_pct",
                 arm.profiler_overhead_pct);
      report.add_section(arm.name + "_census", arm.census_json);
      report.add_section(arm.name + "_profiler", arm.profiler_json);
      report.add_section(arm.name + "_alloc", arm.alloc_json);

      if (!first_arm) arms_list += ",";
      first_arm = false;
      arms_list += "\"" + arm.name + "\"";
    }
  }
  arms_list += "]";
  report.add_section("arms", arms_list);

  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
