// Table 1: path setup success rates for the three anonymity protocols
// (CurMix, SimRep(r = 2), SimEra(k = 2, r = 2)) under random and biased
// mix choice. Full churn simulation per §6.2: 1024 nodes, Pareto median
// 1 h sessions, 1 h warm-up, ~16,000 construction events with exponential
// inter-arrival (mean 116 s).
#include <cstdio>

#include "common/config.hpp"
#include "common/strings.hpp"
#include "harness/path_setup_experiment.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::harness;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 1024, "network size");
  auto& seed = flags.add_int("seed", 1, "RNG seed");
  auto& interarrival =
      flags.add_double("interarrival", 116.0, "per-node inter-arrival (s)");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);

  PathSetupConfig config;
  config.environment.num_nodes = static_cast<std::size_t>(nodes);
  config.environment.seed = static_cast<std::uint64_t>(seed);
  config.event_interarrival_seconds = interarrival / bench_scale();

  // Row order matches the paper's table; each spec probed at every event.
  for (const auto mix : {anon::MixChoice::kRandom, anon::MixChoice::kBiased}) {
    config.specs.push_back(anon::ProtocolSpec::curmix(mix));
    config.specs.push_back(anon::ProtocolSpec::simrep(2, mix));
    config.specs.push_back(anon::ProtocolSpec::simera(2, 2, mix));
  }

  std::printf("# Table 1: path setup success rates (%lld nodes, Pareto "
              "median 1 h, L = 3)\n", static_cast<long long>(nodes));
  const auto result = run_path_setup_experiment(config);
  std::printf("# construction events = %llu, measured availability = %.3f\n\n",
              static_cast<unsigned long long>(result.events),
              result.availability);

  metrics::Table table(
      {"Mix choice", "CurMix", "SimRep(r=2)", "SimEra(k=2,r=2)"});
  const char* row_names[] = {"random", "biased"};
  for (int row = 0; row < 2; ++row) {
    std::vector<std::string> cells = {row_names[row]};
    for (int column = 0; column < 3; ++column) {
      const auto& ratio = result.success[static_cast<std::size_t>(
          row * 3 + column)];
      cells.push_back(format_double(ratio.percent(), 2) + "%");
    }
    table.add_row(cells);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference:      CurMix   SimRep(2)  SimEra(2,2)\n"
      "  random              2.64%%    4.98%%      4.98%%\n"
      "  biased              80.62%%   96.26%%     96.24%%\n"
      "Shape checks: redundancy roughly doubles the random-mix rate;\n"
      "SimRep(2) == SimEra(2,2) (identical conditions); biased >> random.\n"
      "(See EXPERIMENTS.md for the absolute-rate discrepancy between the\n"
      "paper's Table 1 and its own Table 2 attempt counts.)\n");
  obs::BenchReport report("table1_setup_rates");
  report.add("events", result.events);
  report.add("availability", result.availability);
  report.add_section("table", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
