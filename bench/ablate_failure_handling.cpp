// Ablation: the failure-handling ladder of §4.5 — what each mechanism buys
// on top of plain SimEra.
//
// A pinned initiator/responder pair exchanges a 1 KB message every 10 s
// for 30 minutes under harsh churn (median 10 min). Four configurations:
//   1. none        — SimEra(4, 2), no reaction to failures;
//   2. reconstruct — + ack-timeout detection with rebuild-and-resend;
//   3. proactive   — + predictor-threshold path replacement;
//   4. on-demand   — combined construction+payload per message (§4.2).
// Reported: fraction of messages the responder reconstructs.
#include <cstdio>

#include "anon/protocols.hpp"
#include "anon/session.hpp"
#include "common/config.hpp"
#include "common/strings.hpp"
#include "harness/environment.hpp"
#include "harness/parallel.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

struct Mode {
  const char* name;
  bool auto_reconstruct;
  double replace_threshold;
  bool on_demand;
};

double run_mode(const Mode& mode, std::uint64_t seed, std::size_t nodes) {
  EnvironmentConfig env_config;
  env_config.num_nodes = nodes;
  env_config.seed = seed;
  env_config.session_distribution = "pareto:median=600";
  Environment env(env_config);
  env.churn().pin_up(0);
  env.churn().pin_up(1);

  anon::SessionConfig session_config =
      anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kBiased)
          .session_config({});
  session_config.auto_reconstruct = mode.auto_reconstruct;
  session_config.replace_threshold = mode.replace_threshold;
  session_config.replace_check_interval = 20 * kSecond;

  anon::Session session(env.router(), env.membership().cache(0), 0, 1,
                        session_config, Rng(seed * 131));

  std::size_t sent = 0;
  std::size_t delivered = 0;
  env.router().set_message_handler([&](const anon::ReceivedMessage& msg) {
    if (msg.responder == 1) ++delivered;
  });

  const SimTime start = 30 * kMinute;
  const SimTime end = start + 30 * kMinute;
  auto sender = std::make_shared<std::function<void()>>();
  *sender = [&, sender] {
    if (env.simulator().now() > end) return;
    Bytes payload(1024, 0x5c);
    ++sent;  // application attempts count, delivered or not
    if (mode.on_demand) {
      session.send_message_on_demand(payload);
    } else {
      session.send_message(payload);
    }
    env.simulator().schedule_after(10 * kSecond, *sender);
  };

  env.simulator().schedule_at(start, [&] {
    if (mode.on_demand) {
      (*sender)();  // no up-front construction at all
    } else {
      session.construct([&](bool ok, std::size_t) {
        if (ok) (*sender)();
      });
    }
  });

  env.start();
  env.simulator().run_until(end + 30 * kSecond);
  return sent ? static_cast<double>(delivered) / static_cast<double>(sent)
              : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 512, "network size");
  auto& seed = flags.add_int("seed", 1, "base RNG seed");
  auto& seeds = flags.add_int("seeds", 6, "runs to average");
  auto& threads = flags.add_int("threads", 0, "worker threads (0 = auto)");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  const std::size_t workers =
      threads > 0 ? static_cast<std::size_t>(threads)
                  : default_worker_threads();

  const Mode modes[] = {
      {"none (static paths)", false, 0.0, false},
      {"reconstruct on ack timeout", true, 0.0, false},
      {"+ proactive replacement (q < 0.3)", true, 0.3, false},
      {"on-demand construct+payload", false, 0.0, true},
  };

  std::printf("# Ablation: §4.5 failure handling, SimEra(4,2)/biased, "
              "median 10 min churn, 30 min of 1 KB messages, %zu seeds\n",
              runs);
  metrics::Table table({"mode", "delivery rate"});
  for (const Mode& mode : modes) {
    std::vector<double> rates(runs);
    parallel_for(runs, workers, [&](std::size_t i) {
      rates[i] = run_mode(mode, static_cast<std::uint64_t>(seed) + i,
                          static_cast<std::size_t>(nodes));
    });
    double total = 0;
    for (double r : rates) total += r;
    table.add_row({mode.name,
                   format_double(100.0 * total / static_cast<double>(runs), 1) +
                       "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: static paths decay as relays churn away; reactive "
              "rebuilds recover most losses at the cost of one ack timeout "
              "per failure; proactive replacement trims the remaining "
              "gap; on-demand combined construction rebuilds continuously "
              "and pays asymmetric crypto per rebuild instead of up "
              "front.\n");
  obs::BenchReport report("ablate_failure_handling");
  report.add("runs", static_cast<std::uint64_t>(runs));
  report.add_section("table", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
