// Microbenchmarks: erasure coding throughput.
//
// Two modes:
//   * default: google-benchmark suite, including a per-kernel series for
//     every GF(256) row-kernel variant the host can run (ref = the old
//     branchy log/exp loop, scalar split-table, ssse3, avx2);
//   * --json <path>: hand-rolled timing harness that writes a BenchReport
//     document (same shape as every other bench's --json) with encode /
//     decode throughput at the paper's operating point (m=8, n=16, 8 KiB
//     messages) plus the speedup over an in-binary reproduction of the
//     pre-split-table scalar data plane. CI diffs this against the
//     committed BENCH_erasure.json baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "erasure/gf256.hpp"
#include "erasure/matrix.hpp"
#include "erasure/reed_solomon.hpp"
#include "erasure/replication.hpp"
#include "obs/export.hpp"

namespace {

using namespace p2panon;
using namespace p2panon::erasure;
using gf256_detail::Kernel;

// The paper's SimEra operating point for throughput acceptance.
constexpr std::size_t kOpM = 8;
constexpr std::size_t kOpN = 16;
constexpr std::size_t kOpMessageBytes = 8192;

// --- Scalar baseline -------------------------------------------------------
//
// Reproduction of the pre-split-table data plane: branchy log/exp kernel,
// per-call padded copy and allocations, greedy first-m decode with a fresh
// matrix inversion every call. Kept here (not in src/) purely so the bench
// can report an honest speedup ratio against the same build flags.

void baseline_mul_add_row(std::uint8_t c, ByteView src, MutableByteView dst) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] ^= src[i];
    return;
  }
  gf256_detail::mul_add_row(Kernel::kRef, c, src, dst);
}

class ScalarBaselineRs {
 public:
  ScalarBaselineRs(std::size_t m, std::size_t n)
      : m_(m), n_(n), encode_matrix_(ReedSolomonCodec(m, n).encoding_matrix()) {}

  std::size_t segment_size(std::size_t message_size) const {
    return (message_size + m_ - 1) / m_;
  }

  std::vector<Segment> encode(ByteView message) const {
    const std::size_t seg_size =
        std::max<std::size_t>(segment_size(message.size()), 1);
    Bytes padded(message.begin(), message.end());
    padded.resize(m_ * seg_size, 0);
    std::vector<Segment> out(n_);
    for (std::size_t r = 0; r < n_; ++r) {
      out[r].index = static_cast<std::uint32_t>(r);
      out[r].data.assign(seg_size, 0);
      for (std::size_t c = 0; c < m_; ++c) {
        baseline_mul_add_row(encode_matrix_.at(r, c),
                             ByteView(padded.data() + c * seg_size, seg_size),
                             out[r].data);
      }
    }
    return out;
  }

  Bytes decode(std::span<const Segment> segments,
               std::size_t original_size) const {
    std::vector<const Segment*> chosen;
    for (const Segment& seg : segments) {
      chosen.push_back(&seg);
      if (chosen.size() == m_) break;
    }
    const std::size_t seg_size = chosen.front()->data.size();
    std::vector<std::size_t> rows(m_);
    for (std::size_t i = 0; i < m_; ++i) rows[i] = chosen[i]->index;
    const Matrix decode_matrix = encode_matrix_.select_rows(rows).inverted();
    Bytes shards(m_ * seg_size, 0);
    for (std::size_t j = 0; j < m_; ++j) {
      MutableByteView dst(shards.data() + j * seg_size, seg_size);
      for (std::size_t i = 0; i < m_; ++i) {
        baseline_mul_add_row(decode_matrix.at(j, i), chosen[i]->data, dst);
      }
    }
    shards.resize(original_size);
    return shards;
  }

 private:
  std::size_t m_;
  std::size_t n_;
  Matrix encode_matrix_;
};

// --- google-benchmark suite ------------------------------------------------

void KernelRowArgs(benchmark::internal::Benchmark* b) {
  for (std::size_t k = 0; k < gf256_detail::kAllKernels.size(); ++k) {
    if (!gf256_detail::kernel_available(gf256_detail::kAllKernels[k])) {
      continue;
    }
    for (long size : {1024L, 65536L}) {
      b->Args({static_cast<long>(k), size});
    }
  }
}

void BM_Gf256MulAddRowKernel(benchmark::State& state) {
  const auto kernel =
      gf256_detail::kAllKernels[static_cast<std::size_t>(state.range(0))];
  const auto size = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  Bytes src(size), dst(size);
  rng.fill(src.data(), src.size());
  rng.fill(dst.data(), dst.size());
  for (auto _ : state) {
    gf256_detail::mul_add_row(kernel, 0x9c, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(gf256_detail::kernel_label(kernel));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Gf256MulAddRowKernel)->Apply(KernelRowArgs);

void BM_Gf256MulAddRow(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Bytes src(size), dst(size);
  rng.fill(src.data(), src.size());
  rng.fill(dst.data(), dst.size());
  for (auto _ : state) {
    GF256::mul_add_row(0x9c, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Gf256MulAddRow)->Arg(1024)->Arg(65536);

void BM_Gf256MulAddRowXorPath(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Bytes src(size), dst(size);
  rng.fill(src.data(), src.size());
  rng.fill(dst.data(), dst.size());
  for (auto _ : state) {
    GF256::mul_add_row(1, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Gf256MulAddRowXorPath)->Arg(65536);

void BM_Gf256MulRow(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Bytes src(size), dst(size);
  rng.fill(src.data(), src.size());
  for (auto _ : state) {
    GF256::mul_row(0x9c, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Gf256MulRow)->Arg(65536);

void BM_RsEncode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const ReedSolomonCodec codec(m, n);
  Rng rng(2);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  std::vector<Segment> segments;
  for (auto _ : state) {
    codec.encode_into(msg, segments);
    benchmark::DoNotOptimize(segments.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_RsEncode)
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({4, 16})
    ->Args({16, 32});

void BM_RsEncodeOperatingPoint(benchmark::State& state) {
  const ReedSolomonCodec codec(kOpM, kOpN);
  Rng rng(2);
  Bytes msg(kOpMessageBytes);
  rng.fill(msg.data(), msg.size());
  std::vector<Segment> segments;
  for (auto _ : state) {
    codec.encode_into(msg, segments);
    benchmark::DoNotOptimize(segments.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kOpMessageBytes));
}
BENCHMARK(BM_RsEncodeOperatingPoint);

void BM_RsDecodeParityOnly(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const ReedSolomonCodec codec(m, n);
  Rng rng(3);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  // Worst case topology, steady state: decode purely from parity; the
  // recurring loss pattern hits the decode-matrix cache after the first
  // iteration.
  std::vector<Segment> parity(segments.end() - static_cast<long>(m),
                              segments.end());
  for (auto _ : state) {
    auto decoded = codec.decode(parity, msg.size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_RsDecodeParityOnly)->Args({2, 4})->Args({4, 16})->Args({16, 32});

void BM_RsDecodeParityColdCache(benchmark::State& state) {
  // Every iteration uses a different loss pattern, cycling through more
  // patterns than the LRU holds: measures the inversion-included path.
  const ReedSolomonCodec codec(kOpM, kOpN);
  Rng rng(3);
  Bytes msg(kOpMessageBytes);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  std::vector<std::vector<Segment>> picks;
  for (std::size_t p = 0; p < 2 * ReedSolomonCodec::kDecodeCacheCapacity;
       ++p) {
    const auto idx = rng.sample_without_replacement(kOpN, kOpM);
    std::vector<Segment> pick;
    for (auto i : idx) pick.push_back(segments[i]);
    picks.push_back(std::move(pick));
  }
  std::size_t next = 0;
  for (auto _ : state) {
    auto decoded = codec.decode(picks[next], msg.size());
    benchmark::DoNotOptimize(decoded);
    next = (next + 1) % picks.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kOpMessageBytes));
}
BENCHMARK(BM_RsDecodeParityColdCache);

void BM_RsDecodeSystematic(benchmark::State& state) {
  const ReedSolomonCodec codec(4, 8);
  Rng rng(4);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  std::vector<Segment> systematic(segments.begin(), segments.begin() + 4);
  for (auto _ : state) {
    auto decoded = codec.decode(systematic, msg.size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_RsDecodeSystematic);

void BM_ReplicationEncode(benchmark::State& state) {
  const ReplicationCodec codec(4);
  Bytes msg(1024, 0x5a);
  std::vector<Segment> segments;
  for (auto _ : state) {
    codec.encode_into(msg, segments);
    benchmark::DoNotOptimize(segments.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_ReplicationEncode);

// --- --json report mode ----------------------------------------------------

template <class Fn>
double measure_bytes_per_sec(std::size_t bytes_per_call, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup (also primes tables and the decode cache)
  double best = 0.0;
  std::size_t iters = 1;
  for (int rep = 0; rep < 3; ++rep) {
    for (;;) {
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < iters; ++i) fn();
      const double secs =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (secs >= 0.05) {
        best = std::max(best, static_cast<double>(iters) *
                                  static_cast<double>(bytes_per_call) / secs);
        break;
      }
      iters = secs <= 0.0
                  ? iters * 8
                  : std::max(iters * 2,
                             static_cast<std::size_t>(
                                 static_cast<double>(iters) * 0.06 / secs) +
                                 1);
    }
  }
  return best;
}

int run_json_report(const std::string& path) {
  obs::BenchReport report("micro_erasure");
  report.add_text("active_kernel", GF256::kernel_name());
  report.add("m", static_cast<std::uint64_t>(kOpM));
  report.add("n", static_cast<std::uint64_t>(kOpN));
  report.add("message_bytes", static_cast<std::uint64_t>(kOpMessageBytes));

  Rng rng(42);
  const std::size_t row = kOpMessageBytes;
  Bytes src(row), dst(row);
  rng.fill(src.data(), src.size());
  rng.fill(dst.data(), dst.size());

  // Per-kernel row throughput (plus a size series for each variant).
  std::string series = "[";
  bool first_entry = true;
  for (Kernel kernel : gf256_detail::kAllKernels) {
    if (!gf256_detail::kernel_available(kernel)) continue;
    const std::string label = gf256_detail::kernel_label(kernel);
    const double mbps =
        measure_bytes_per_sec(row, [&] {
          gf256_detail::mul_add_row(kernel, 0x9c, src, dst);
          benchmark::DoNotOptimize(dst.data());
        }) /
        1e6;
    report.add("mul_add_row_MBps_" + label, mbps);
    for (std::size_t size : {64u, 512u, 4096u, 65536u}) {
      Bytes s(size), d(size);
      rng.fill(s.data(), s.size());
      const double series_bps = measure_bytes_per_sec(size, [&] {
        gf256_detail::mul_add_row(kernel, 0x9c, s, d);
        benchmark::DoNotOptimize(d.data());
      });
      if (!first_entry) series += ',';
      first_entry = false;
      series += "{\"kernel\":\"" + label +
                "\",\"size\":" + std::to_string(size) +
                ",\"MBps\":" + std::to_string(series_bps / 1e6) + "}";
    }
  }
  series += "]";
  report.add_section("kernel_series", std::move(series));

  report.add("mul_add_row_MBps_c1",
             measure_bytes_per_sec(row, [&] {
               GF256::mul_add_row(1, src, dst);
               benchmark::DoNotOptimize(dst.data());
             }) /
                 1e6);

  // Operating-point codec throughput.
  const ReedSolomonCodec codec(kOpM, kOpN);
  const ScalarBaselineRs baseline(kOpM, kOpN);
  Bytes msg(kOpMessageBytes);
  rng.fill(msg.data(), msg.size());

  std::vector<Segment> scratch;
  const double encode_bps = measure_bytes_per_sec(kOpMessageBytes, [&] {
    codec.encode_into(msg, scratch);
    benchmark::DoNotOptimize(scratch.data());
  });
  const double encode_base_bps = measure_bytes_per_sec(kOpMessageBytes, [&] {
    auto segments = baseline.encode(msg);
    benchmark::DoNotOptimize(segments.data());
  });

  const auto segments = codec.encode(msg);
  std::vector<Segment> parity(segments.end() - static_cast<long>(kOpM),
                              segments.end());
  std::vector<Segment> systematic(segments.begin(),
                                  segments.begin() + kOpM);
  const double decode_parity_bps = measure_bytes_per_sec(kOpMessageBytes, [&] {
    auto decoded = codec.decode(parity, msg.size());
    benchmark::DoNotOptimize(decoded);
  });
  const double decode_sys_bps = measure_bytes_per_sec(kOpMessageBytes, [&] {
    auto decoded = codec.decode(systematic, msg.size());
    benchmark::DoNotOptimize(decoded);
  });
  const double decode_base_bps = measure_bytes_per_sec(kOpMessageBytes, [&] {
    auto decoded = baseline.decode(parity, msg.size());
    benchmark::DoNotOptimize(decoded);
  });

  report.add("encode_MBps", encode_bps / 1e6);
  report.add("encode_scalar_baseline_MBps", encode_base_bps / 1e6);
  report.add("encode_speedup", encode_bps / encode_base_bps);
  report.add("decode_parity_MBps", decode_parity_bps / 1e6);
  report.add("decode_parity_scalar_baseline_MBps", decode_base_bps / 1e6);
  report.add("decode_parity_speedup", decode_parity_bps / decode_base_bps);
  report.add("decode_systematic_MBps", decode_sys_bps / 1e6);

  return report.write_if_requested(path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --json <path> / --json=<path>; everything else goes to
  // google-benchmark. When --json is given, only the report harness runs.
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_json_report(json_path);

  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
