// Microbenchmarks: erasure coding throughput (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "erasure/gf256.hpp"
#include "erasure/reed_solomon.hpp"
#include "erasure/replication.hpp"

namespace {

using namespace p2panon;
using namespace p2panon::erasure;

void BM_Gf256MulAddRow(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Bytes src(size), dst(size);
  rng.fill(src.data(), src.size());
  rng.fill(dst.data(), dst.size());
  for (auto _ : state) {
    GF256::mul_add_row(0x9c, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Gf256MulAddRow)->Arg(1024)->Arg(65536);

void BM_RsEncode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const ReedSolomonCodec codec(m, n);
  Rng rng(2);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  for (auto _ : state) {
    auto segments = codec.encode(msg);
    benchmark::DoNotOptimize(segments.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_RsEncode)
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({4, 16})
    ->Args({16, 32});

void BM_RsDecodeParityOnly(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const ReedSolomonCodec codec(m, n);
  Rng rng(3);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  // Worst case: decode purely from parity (matrix inversion every call).
  std::vector<Segment> parity(segments.end() - static_cast<long>(m),
                              segments.end());
  for (auto _ : state) {
    auto decoded = codec.decode(parity, msg.size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_RsDecodeParityOnly)->Args({2, 4})->Args({4, 16})->Args({16, 32});

void BM_RsDecodeSystematic(benchmark::State& state) {
  const ReedSolomonCodec codec(4, 8);
  Rng rng(4);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  std::vector<Segment> systematic(segments.begin(), segments.begin() + 4);
  for (auto _ : state) {
    auto decoded = codec.decode(systematic, msg.size());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_RsDecodeSystematic);

void BM_ReplicationEncode(benchmark::State& state) {
  const ReplicationCodec codec(4);
  Bytes msg(1024, 0x5a);
  for (auto _ : state) {
    auto segments = codec.encode(msg);
    benchmark::DoNotOptimize(segments.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_ReplicationEncode);

}  // namespace

BENCHMARK_MAIN();
