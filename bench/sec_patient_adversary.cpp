// Security experiment (paper §5 + §7 discussion): first-relay compromise
// under a *patient* adversary.
//
// A fraction f of nodes is malicious and never leaves (the paper's §7
// concern: "the attacker may attempt to stay longer in the system with the
// hope of being relay nodes of many paths"). Honest nodes churn normally.
// We measure, for random and biased mix choice, how often at least one of
// a path set's first relays is malicious (the event that lets the
// colluding attacker apply the paper's Case 1 guess), against the Eq. 4 /
// closed-form baselines for an attacker with no uptime advantage.
//
// Expected: random choice tracks the 1 - (1-f)^k baseline; biased choice
// is measurably worse because patient attackers accumulate uptime and the
// predictor rewards exactly that. Cover traffic (§4.6) and the incentive
// argument in §7 are the paper's mitigations.
#include <cstdio>

#include "adversary/attacks.hpp"
#include "adversary/link_observer.hpp"
#include "analysis/anonymity.hpp"
#include "anon/mix_selector.hpp"
#include "common/config.hpp"
#include "common/strings.hpp"
#include "harness/environment.hpp"
#include "metrics/table.hpp"
#include "net/demux.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::harness;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 512, "network size");
  auto& seed = flags.add_int("seed", 1, "RNG seed");
  auto& k = flags.add_int("k", 4, "paths per set");
  auto& L = flags.add_int("L", 3, "relays per path");
  auto& trials = flags.add_int("trials", 2000, "path sets per (f, mix)");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto n_trials = std::max<std::size_t>(
      50, static_cast<std::size_t>(static_cast<double>(trials) * bench_scale()));

  const double fractions[] = {0.05, 0.10, 0.20};

  std::printf("# Patient-adversary first-relay compromise, %lld nodes, "
              "k = %lld, L = %lld, %zu path sets per cell\n",
              static_cast<long long>(nodes), static_cast<long long>(k),
              static_cast<long long>(L), n_trials);

  metrics::Table table({"f (malicious)", "baseline 1-(1-f)^k",
                        "random mix", "biased mix"});
  for (const double f : fractions) {
    EnvironmentConfig config;
    config.num_nodes = static_cast<std::size_t>(nodes);
    config.seed = static_cast<std::uint64_t>(seed);
    Environment env(config);

    // Malicious nodes: a random fraction f, pinned up (patient).
    std::vector<bool> malicious(config.num_nodes, false);
    Rng mal_rng(static_cast<std::uint64_t>(seed) * 977 + 5);
    std::size_t planted = 0;
    const auto target =
        static_cast<std::size_t>(f * static_cast<double>(config.num_nodes));
    while (planted < target) {
      const auto node =
          static_cast<NodeId>(mal_rng.next_below(config.num_nodes));
      if (node < 2 || malicious[node]) continue;
      malicious[node] = true;
      env.churn().pin_up(node);
      ++planted;
    }

    env.start();
    env.simulator().run_until(1 * kHour);  // let attacker uptime accumulate

    // First-relay events are scored through the adversary pipeline: each
    // selected path set becomes synthetic origin-send flow records
    // (initiator -> first relay) in a LinkObserver, one 1 ms trial window
    // per set, and the predecessor attack's compromise_rate — the
    // fraction of windows where a compromised first relay saw an origin
    // send (Case 1) — is exactly the old "at least one malicious first
    // relay" event, now computed from the wire view.
    adversary::CompromiseModel model;
    model.compromised = malicious;
    model.fraction = f;
    double exposure[2] = {0.0, 0.0};
    for (int mix = 0; mix < 2; ++mix) {
      anon::MixSelector selector(
          mix == 0 ? anon::MixChoice::kRandom : anon::MixChoice::kBiased,
          Rng(static_cast<std::uint64_t>(seed) * 31 + mix));
      const SimTime now = env.simulator().now();
      adversary::ObserverConfig obs_config;
      obs_config.record_delivers = false;  // selection-time, nothing lands
      adversary::LinkObserver observer(obs_config);
      std::vector<adversary::TrialWindow> windows;
      for (std::size_t t = 0; t < n_trials; ++t) {
        const NodeId initiator =
            static_cast<NodeId>(2 + (t % (config.num_nodes - 2)));
        const auto paths = selector.select_paths(
            env.membership().cache(initiator), static_cast<std::size_t>(k),
            static_cast<std::size_t>(L), now, initiator, 1);
        if (!paths.has_value()) continue;
        const std::uint64_t base_us = t * 1000;
        net::LinkTapMeta meta;
        meta.protocol =
            static_cast<std::uint8_t>(net::Channel::kAnonForward);
        for (std::size_t p = 0; p < paths->size(); ++p) {
          meta.when_us = base_us + p;
          observer.on_send(initiator, (*paths)[p].front(), /*bytes=*/512,
                           meta);
        }
        windows.push_back({base_us, base_us + 999});
      }
      adversary::AttackScenario scenario;
      scenario.log = &observer.log();
      scenario.initiator = 2;  // varies per trial; only compromise_rate used
      scenario.responder = 1;
      scenario.num_nodes = config.num_nodes;
      const auto report =
          adversary::predecessor_attack(scenario, model, windows);
      exposure[mix] = report.compromise_rate;
    }

    table.add_row(
        {format_double(f, 2),
         format_double(analysis::multipath_first_relay_exposure(
                           f, static_cast<std::size_t>(k)), 3),
         format_double(exposure[0], 3),
         format_double(exposure[1], 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: biased > random > baseline confirms the paper's §7 "
              "caveat — a patient adversary gains selection probability "
              "under biased mix choice. Eq. 4 single-path identification "
              "bound at f = 0.10, L = %lld, N = %lld: %.4f\n",
              static_cast<long long>(L), static_cast<long long>(nodes),
              analysis::initiator_identification_probability(
                  static_cast<std::size_t>(nodes), 0.10,
                  static_cast<std::size_t>(L)));
  obs::BenchReport report("sec_patient_adversary");
  report.add("trials", static_cast<std::uint64_t>(n_trials));
  report.add_section("exposure", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
