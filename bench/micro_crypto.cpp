// Microbenchmarks: crypto substrate and onion-layer operations.
//
// Two modes:
//   * default: google-benchmark suite, including a per-kernel series for
//     every ChaCha20 keystream-kernel variant the host can run (ref =
//     one-block scalar, wide4, ssse3, avx2) and size arms at 64 B / 8 KiB /
//     64 KiB for the AEAD and onion-layer data plane;
//   * --json <path>: hand-rolled timing harness that writes a BenchReport
//     document (same shape as micro_erasure's --json) with ChaCha20 /
//     AEAD / onion-layer throughput, the speedup of the dispatched ChaCha20
//     kernel over the in-binary scalar reference, and the heap-allocation
//     count of the pooled in-place relay path (0 in steady state; the
//     counting operator new hooks are linked into this binary). CI diffs
//     this against the committed BENCH_crypto.json baseline.
//
// Benchmarks use the out-of-place chacha20_xor so every iteration sees the
// same plaintext (the old in-place loop re-encrypted its own output, so the
// input drifted every iteration), and SetBytesProcessed always derives from
// the actual buffer size.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "anon/buffer_pool.hpp"
#include "anon/onion.hpp"
#include "common/alloc_probe.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/sealed_box.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "obs/export.hpp"

namespace {

using namespace p2panon;
using namespace p2panon::crypto;
using crypto_detail::Kernel;

// The relay data plane's operating point: one 8 KiB erasure segment.
constexpr std::size_t kSegmentBytes = 8192;

void BM_Sha256(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Bytes data(size);
  rng.fill(data.data(), data.size());
  for (auto _ : state) {
    auto digest = Sha256::hash(data);
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ChaCha20(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  Bytes src(size), dst(size);
  rng.fill(src.data(), src.size());
  for (auto _ : state) {
    chacha20_xor(key, nonce_from_seq(1), 0, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(chacha20_kernel_name());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(1024)->Arg(8192)->Arg(65536);

void ChaChaKernelArgs(benchmark::internal::Benchmark* b) {
  for (std::size_t k = 0; k < crypto_detail::kAllKernels.size(); ++k) {
    if (!crypto_detail::kernel_available(crypto_detail::kAllKernels[k])) {
      continue;
    }
    for (long size : {1024L, 8192L, 65536L}) {
      b->Args({static_cast<long>(k), size});
    }
  }
}

void BM_ChaCha20Kernel(benchmark::State& state) {
  const auto kernel =
      crypto_detail::kAllKernels[static_cast<std::size_t>(state.range(0))];
  const auto size = static_cast<std::size_t>(state.range(1));
  Rng rng(2);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  Bytes src(size), dst(size);
  rng.fill(src.data(), src.size());
  for (auto _ : state) {
    crypto_detail::chacha20_xor(kernel, key, nonce_from_seq(1), 0, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(crypto_detail::kernel_label(kernel));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_ChaCha20Kernel)->Apply(ChaChaKernelArgs);

void BM_AeadSeal(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  Bytes data(size);
  rng.fill(data.data(), data.size());
  std::uint64_t seq = 0;
  for (auto _ : state) {
    auto sealed = aead_seal(key, nonce_from_seq(seq++), {}, data);
    benchmark::DoNotOptimize(sealed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_AeadSeal)->Arg(64)->Arg(8192)->Arg(65536);

void BM_AeadSealInto(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  Bytes plain(size);
  rng.fill(plain.data(), plain.size());
  Bytes buf(size + kAeadTagSize);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    std::copy(plain.begin(), plain.end(), buf.begin());
    aead_seal_into(key, nonce_from_seq(seq++), {}, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_AeadSealInto)->Arg(64)->Arg(8192)->Arg(65536);

void BM_X25519(benchmark::State& state) {
  Rng rng(4);
  const KeyPair a = KeyPair::generate(rng);
  const KeyPair b = KeyPair::generate(rng);
  for (auto _ : state) {
    auto shared = x25519(a.private_key, b.public_key);
    benchmark::DoNotOptimize(shared.data());
  }
}
BENCHMARK(BM_X25519);

void BM_SealedBoxSeal(benchmark::State& state) {
  Rng rng(5);
  const KeyPair recipient = KeyPair::generate(rng);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  for (auto _ : state) {
    auto sealed = sealed_box_seal(recipient.public_key, msg, rng);
    benchmark::DoNotOptimize(sealed.data());
  }
}
BENCHMARK(BM_SealedBoxSeal);

template <typename Codec>
void BM_BuildPathOnion(benchmark::State& state) {
  Rng rng(6);
  KeyDirectory directory;
  auto keys = directory.provision(8, rng);
  const Codec codec;
  const std::vector<NodeId> relays = {1, 2, 3};
  std::vector<anon::RelayKey> relay_keys;
  for (int i = 0; i < 3; ++i) relay_keys.push_back(random_symmetric_key(rng));
  for (auto _ : state) {
    auto onion = codec.build_path_onion(relays, relay_keys, 7, directory, rng);
    benchmark::DoNotOptimize(onion.data());
  }
}
BENCHMARK(BM_BuildPathOnion<anon::RealOnionCodec>)->Name("BM_BuildPathOnion/real");
BENCHMARK(BM_BuildPathOnion<anon::FastOnionCodec>)->Name("BM_BuildPathOnion/fast");

// The relay hot loop: pooled buffer, peel one layer in place, re-wrap.
template <typename Codec>
void BM_RelayLayerInPlace(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Codec codec;
  const anon::RelayKey key = random_symmetric_key(rng);
  Bytes segment(size);
  rng.fill(segment.data(), segment.size());
  const Bytes wire = codec.wrap_layer(key, 21, segment);
  anon::BufferPool pool;
  { anon::PooledBytes warm(pool, wire.size() + codec.layer_overhead()); }
  for (auto _ : state) {
    anon::PooledBytes buf(pool, wire.size() + codec.layer_overhead());
    buf->assign(wire.begin(), wire.end());
    const bool ok = codec.unwrap_layer_in_place(key, 21, *buf);
    benchmark::DoNotOptimize(ok);
    codec.wrap_layer_in_place(key, 21, *buf);
    benchmark::DoNotOptimize(buf->data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_RelayLayerInPlace<anon::RealOnionCodec>)
    ->Name("BM_RelayLayerInPlace/real")
    ->Arg(64)
    ->Arg(8192)
    ->Arg(65536);
BENCHMARK(BM_RelayLayerInPlace<anon::FastOnionCodec>)
    ->Name("BM_RelayLayerInPlace/fast")
    ->Arg(64)
    ->Arg(8192)
    ->Arg(65536);

// --- --json report mode ----------------------------------------------------

template <class Fn>
double measure_bytes_per_sec(std::size_t bytes_per_call, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup (also primes dispatch and pools)
  double best = 0.0;
  std::size_t iters = 1;
  for (int rep = 0; rep < 3; ++rep) {
    for (;;) {
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < iters; ++i) fn();
      const double secs =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (secs >= 0.05) {
        best = std::max(best, static_cast<double>(iters) *
                                  static_cast<double>(bytes_per_call) / secs);
        break;
      }
      iters = secs <= 0.0
                  ? iters * 8
                  : std::max(iters * 2,
                             static_cast<std::size_t>(
                                 static_cast<double>(iters) * 0.06 / secs) +
                                 1);
    }
  }
  return best;
}

int run_json_report(const std::string& path) {
  obs::BenchReport report("micro_crypto");
  report.add_text("active_kernel", chacha20_kernel_name());
  report.add("segment_bytes", static_cast<std::uint64_t>(kSegmentBytes));

  Rng rng(42);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  const ChaChaNonce nonce = nonce_from_seq(1);

  // Per-kernel keystream throughput (plus a size series for each variant).
  Bytes src(kSegmentBytes), dst(kSegmentBytes);
  rng.fill(src.data(), src.size());
  std::string series = "[";
  bool first_entry = true;
  double ref_bps = 0.0;
  for (Kernel kernel : crypto_detail::kAllKernels) {
    if (!crypto_detail::kernel_available(kernel)) continue;
    const std::string label = crypto_detail::kernel_label(kernel);
    const double mbps =
        measure_bytes_per_sec(kSegmentBytes, [&] {
          crypto_detail::chacha20_xor(kernel, key, nonce, 0, src, dst);
          benchmark::DoNotOptimize(dst.data());
        }) /
        1e6;
    if (kernel == Kernel::kRef) ref_bps = mbps * 1e6;
    report.add("chacha20_MBps_" + label, mbps);
    for (std::size_t size : {64u, 1024u, 8192u, 65536u}) {
      Bytes s(size), d(size);
      rng.fill(s.data(), s.size());
      const double series_bps = measure_bytes_per_sec(size, [&] {
        crypto_detail::chacha20_xor(kernel, key, nonce, 0, s, d);
        benchmark::DoNotOptimize(d.data());
      });
      if (!first_entry) series += ',';
      first_entry = false;
      series += "{\"kernel\":\"" + label +
                "\",\"size\":" + std::to_string(size) +
                ",\"MBps\":" + std::to_string(series_bps / 1e6) + "}";
    }
  }
  series += "]";
  report.add_section("kernel_series", std::move(series));

  // Dispatched-kernel throughput and speedup over the in-binary scalar
  // reference (the pre-batching data plane) at the operating point.
  const double chacha_bps = measure_bytes_per_sec(kSegmentBytes, [&] {
    chacha20_xor(key, nonce, 0, src, dst);
    benchmark::DoNotOptimize(dst.data());
  });
  report.add("chacha20_MBps", chacha_bps / 1e6);
  report.add("chacha20_scalar_baseline_MBps", ref_bps / 1e6);
  report.add("chacha20_speedup", chacha_bps / ref_bps);

  // AEAD data plane (plaintext restored every call so inputs never drift).
  Bytes plain(kSegmentBytes);
  rng.fill(plain.data(), plain.size());
  Bytes sealed_buf(kSegmentBytes + kAeadTagSize);
  const double seal_bps = measure_bytes_per_sec(kSegmentBytes, [&] {
    std::copy(plain.begin(), plain.end(), sealed_buf.begin());
    aead_seal_into(key, nonce, {}, sealed_buf);
    benchmark::DoNotOptimize(sealed_buf.data());
  });
  std::copy(plain.begin(), plain.end(), sealed_buf.begin());
  aead_seal_into(key, nonce, {}, sealed_buf);
  Bytes open_buf = sealed_buf;
  const double open_bps = measure_bytes_per_sec(kSegmentBytes, [&] {
    open_buf = sealed_buf;  // restore ciphertext (capacity is warm)
    const bool ok = aead_open_into(key, nonce, {}, open_buf);
    benchmark::DoNotOptimize(ok);
  });
  report.add("aead_seal_MBps", seal_bps / 1e6);
  report.add("aead_open_MBps", open_bps / 1e6);

  // Pooled in-place relay path: throughput plus the heap-allocation count
  // per relayed segment in steady state (the zero-alloc acceptance gate).
  anon::RealOnionCodec codec;
  const anon::RelayKey relay_key = random_symmetric_key(rng);
  Bytes segment(kSegmentBytes);
  rng.fill(segment.data(), segment.size());
  const Bytes wire = codec.wrap_layer(relay_key, 21, segment);
  anon::BufferPool pool;
  { anon::PooledBytes warm(pool, wire.size() + codec.layer_overhead()); }
  const auto relay_once = [&] {
    anon::PooledBytes buf(pool, wire.size() + codec.layer_overhead());
    buf->assign(wire.begin(), wire.end());
    const bool ok = codec.unwrap_layer_in_place(relay_key, 21, *buf);
    benchmark::DoNotOptimize(ok);
    codec.wrap_layer_in_place(relay_key, 21, *buf);
    benchmark::DoNotOptimize(buf->data());
  };
  const double relay_bps = measure_bytes_per_sec(kSegmentBytes, relay_once);
  report.add("relay_layer_MBps", relay_bps / 1e6);

  constexpr std::uint64_t kProbeRounds = 64;
  const std::uint64_t allocs_before = alloc_probe::allocations();
  for (std::uint64_t i = 0; i < kProbeRounds; ++i) relay_once();
  const std::uint64_t allocs_after = alloc_probe::allocations();
  report.add("alloc_probe_active",
             static_cast<std::uint64_t>(alloc_probe::active() ? 1 : 0));
  report.add("relay_path_allocs",
             (allocs_after - allocs_before) / kProbeRounds);

  return report.write_if_requested(path) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --json <path> / --json=<path>; everything else goes to
  // google-benchmark. When --json is given, only the report harness runs.
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_json_report(json_path);

  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
