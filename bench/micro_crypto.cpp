// Microbenchmarks: crypto substrate and onion-layer operations.
#include <benchmark/benchmark.h>

#include "anon/onion.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/sealed_box.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace {

using namespace p2panon;
using namespace p2panon::crypto;

void BM_Sha256(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Bytes data(size);
  rng.fill(data.data(), data.size());
  for (auto _ : state) {
    auto digest = Sha256::hash(data);
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ChaCha20(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  Bytes data(size);
  rng.fill(data.data(), data.size());
  for (auto _ : state) {
    chacha20_xor(key, nonce_from_seq(1), 0, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(65536);

void BM_AeadSeal(benchmark::State& state) {
  Rng rng(3);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  Bytes data(1024);
  rng.fill(data.data(), data.size());
  std::uint64_t seq = 0;
  for (auto _ : state) {
    auto sealed = aead_seal(key, nonce_from_seq(seq++), {}, data);
    benchmark::DoNotOptimize(sealed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_AeadSeal);

void BM_X25519(benchmark::State& state) {
  Rng rng(4);
  const KeyPair a = KeyPair::generate(rng);
  const KeyPair b = KeyPair::generate(rng);
  for (auto _ : state) {
    auto shared = x25519(a.private_key, b.public_key);
    benchmark::DoNotOptimize(shared.data());
  }
}
BENCHMARK(BM_X25519);

void BM_SealedBoxSeal(benchmark::State& state) {
  Rng rng(5);
  const KeyPair recipient = KeyPair::generate(rng);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  for (auto _ : state) {
    auto sealed = sealed_box_seal(recipient.public_key, msg, rng);
    benchmark::DoNotOptimize(sealed.data());
  }
}
BENCHMARK(BM_SealedBoxSeal);

template <typename Codec>
void BM_BuildPathOnion(benchmark::State& state) {
  Rng rng(6);
  KeyDirectory directory;
  auto keys = directory.provision(8, rng);
  const Codec codec;
  const std::vector<NodeId> relays = {1, 2, 3};
  std::vector<anon::RelayKey> relay_keys;
  for (int i = 0; i < 3; ++i) relay_keys.push_back(random_symmetric_key(rng));
  for (auto _ : state) {
    auto onion = codec.build_path_onion(relays, relay_keys, 7, directory, rng);
    benchmark::DoNotOptimize(onion.data());
  }
}
BENCHMARK(BM_BuildPathOnion<anon::RealOnionCodec>)->Name("BM_BuildPathOnion/real");
BENCHMARK(BM_BuildPathOnion<anon::FastOnionCodec>)->Name("BM_BuildPathOnion/fast");

}  // namespace

BENCHMARK_MAIN();
