// Table 2: performance comparison among CurMix, SimRep(r = 2) and
// SimEra(k = 4, r = 4) — durability, construction attempts, latency and
// bandwidth, each reported as [random, biased].
//
// §6.2 methodology: pinned initiator and responder, Pareto churn (median
// 1 h), 1 h warm-up, a 1 KB message every 10 s for an hour, durability
// capped at 3600 s, averaged over seeds (paper: 10 runs).
#include <cstdio>

#include "common/config.hpp"
#include "harness/durability_experiment.hpp"
#include "harness/parallel.hpp"
#include "metrics/bootstrap.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::harness;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& nodes = flags.add_int("nodes", 1024, "network size");
  auto& seed = flags.add_int("seed", 1, "base RNG seed");
  auto& seeds = flags.add_int("seeds", 10, "runs to average");
  auto& threads = flags.add_int("threads", 0, "worker threads (0 = auto)");
  auto& json_path = obs::add_json_flag(flags);
  auto& health = flags.add_bool(
      "health", false,
      "after the sweep, run one diagnostic SimEra biased run with the "
      "rolling health scoreboard (30 s windows) and print it");
  flags.parse(argc, argv);
  const auto runs = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(seeds) * bench_scale()));
  const std::size_t workers =
      threads > 0 ? static_cast<std::size_t>(threads)
                  : default_worker_threads();

  const anon::ProtocolSpec protocol_rows[][2] = {
      {anon::ProtocolSpec::curmix(anon::MixChoice::kRandom),
       anon::ProtocolSpec::curmix(anon::MixChoice::kBiased)},
      {anon::ProtocolSpec::simrep(2, anon::MixChoice::kRandom),
       anon::ProtocolSpec::simrep(2, anon::MixChoice::kBiased)},
      {anon::ProtocolSpec::simera(4, 4, anon::MixChoice::kRandom),
       anon::ProtocolSpec::simera(4, 4, anon::MixChoice::kBiased)},
  };
  const char* row_names[] = {"CurMix", "SimRep(r=2)", "SimEra(k=4,r=4)"};

  std::printf("# Table 2: performance comparison, %zu seeds, %lld nodes "
              "(cells are [random, biased])\n", runs,
              static_cast<long long>(nodes));

  std::string ci_lines;
  obs::BenchReport report("table2_performance");
  report.add("runs", static_cast<std::uint64_t>(runs));
  report.add("nodes", static_cast<std::uint64_t>(nodes));
  metrics::Table table({"Protocol", "Durability(sec)",
                        "Path construction attempts", "Latency(ms)",
                        "Bandwidth(KB)"});
  for (int row = 0; row < 3; ++row) {
    DurabilityAverages by_mix[2];
    for (int mix = 0; mix < 2; ++mix) {
      DurabilityConfig config;
      config.environment.num_nodes = static_cast<std::size_t>(nodes);
      config.environment.seed = static_cast<std::uint64_t>(seed);
      config.spec = protocol_rows[row][mix];
      by_mix[mix] = run_durability_average(config, runs, workers);
      const std::string prefix = std::string(row_names[row]) +
                                 (mix == 0 ? ".random." : ".biased.");
      report.add(prefix + "durability_s", by_mix[mix].durability_seconds);
      report.add(prefix + "construct_attempts",
                 by_mix[mix].construct_attempts);
      report.add(prefix + "latency_ms", by_mix[mix].latency_ms);
      report.add(prefix + "bandwidth_kb", by_mix[mix].bandwidth_kb);
    }
    table.add_row(
        {row_names[row],
         metrics::pair_cell(by_mix[0].durability_seconds,
                            by_mix[1].durability_seconds),
         metrics::pair_cell(by_mix[0].construct_attempts,
                            by_mix[1].construct_attempts, 1),
         metrics::pair_cell(by_mix[0].latency_ms, by_mix[1].latency_ms),
         metrics::pair_cell(by_mix[0].bandwidth_kb, by_mix[1].bandwidth_kb,
                            1)});
    ci_lines += std::string("  ") + row_names[row] +
                ": durability 95% bootstrap CI  random " +
                metrics::bootstrap_mean_ci(by_mix[0].durability_runs)
                    .to_string(0) +
                "  biased " +
                metrics::bootstrap_mean_ci(by_mix[1].durability_runs)
                    .to_string(0) +
                "\n";
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Durability uncertainty (percentile bootstrap over seeds):\n%s\n",
              ci_lines.c_str());
  std::printf(
      "Paper reference:\n"
      "  CurMix           [700, 1153]   [8.4, 1]  [374, 266]  [4, 4]\n"
      "  SimRep(r=2)      [1140, 1167]  [2.8, 1]  [270, 257]  [6.2, 6.8]\n"
      "  SimEra(k=4,r=4)  [1377, 2472]  [2.4, 1]  [406, 231]  [8.8, 10.4]\n"
      "Shape checks: redundancy and biased choice both raise durability;\n"
      "biased needs ~1 attempt; bandwidth ordering CurMix < SimRep < "
      "SimEra.\n");
  if (health) {
    // One diagnostic run outside the averaged cells: same setup as the
    // SimEra biased cell, base seed, scoreboard on.
    DurabilityConfig config;
    config.environment.num_nodes = static_cast<std::size_t>(nodes);
    config.environment.seed = static_cast<std::uint64_t>(seed);
    config.spec = anon::ProtocolSpec::simera(4, 4, anon::MixChoice::kBiased);
    config.health_interval = 30 * kSecond;
    const DurabilityResult diag = run_durability_experiment(config);
    std::printf("# Health scoreboard, SimEra(k=4,r=4)/biased, seed %lld "
                "(30 s windows)\n%s\n",
                static_cast<long long>(seed), diag.health_table.c_str());
    report.add("health_windows",
               static_cast<std::uint64_t>(diag.health.windows));
    report.add("health_churn_storm_windows",
               static_cast<std::uint64_t>(diag.health.churn_storm_windows));
    report.add("health_stalled_path_windows",
               static_cast<std::uint64_t>(diag.health.stalled_path_windows));
    report.add("health_max_transitions_per_window",
               diag.health.max_transitions_per_window);
  }
  report.add_section("table", table.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
