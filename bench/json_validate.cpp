// CLI front-end for the obs strict JSON validator: exits nonzero unless
// every argument is a readable file containing exactly one valid JSON
// value. CI runs it over emitted BENCH_*.json documents.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

int main(int argc, char** argv) {
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << path << ": unreadable\n";
      ++bad;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (!p2panon::obs::json_valid(text)) {
      std::cerr << path << ": INVALID JSON\n";
      ++bad;
    } else {
      std::cout << path << ": ok (" << text.size() << " bytes)\n";
    }
  }
  return bad == 0 ? 0 : 1;
}
