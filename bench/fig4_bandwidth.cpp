// Figure 4: total bandwidth cost (KB) to deliver a 1 KB message vs k, for
// r in {2, 3, 4} at pa = 0.70, L = 3.
//
// Methodology: Monte-Carlo over the Bernoulli path model using the real
// wire sizes of the protocol (per-hop framing, AEAD layer tags, sealed-core
// overhead — identical between RealOnionCodec and FastOnionCodec). A
// surviving path carries its segment across all L+1 hops; a path that died
// carries it part-way (uniform over hops). Costs are averaged over trials
// where the responder reconstructs (>= k/r paths alive), matching the
// paper's "bandwidth cost of successful routing". The curves grow with k
// because each extra path adds fixed per-message framing, and are ordered
// by r because the payload cost is |M| * r * (L + 1).
#include <cstdio>

#include "analysis/path_model.hpp"
#include "common/config.hpp"
#include "crypto/aead.hpp"
#include "crypto/sealed_box.hpp"
#include "metrics/summary.hpp"
#include "metrics/table.hpp"
#include "obs/export.hpp"

using namespace p2panon;
using namespace p2panon::analysis;

namespace {

// Wire size of one payload message as it leaves the initiator (see
// anon/router.cpp framing and anon/onion.cpp overheads): channel byte +
// type + sid + seq + L AEAD layers + sealed core around the serialized
// PayloadCore header (24 bytes + 32-byte responder key + 4-byte length).
double initiator_message_bytes(double segment_bytes, std::size_t L) {
  const double core_plain = 24.0 + 32.0 + 4.0 + segment_bytes;
  const double sealed = core_plain + crypto::kSealedBoxOverhead;
  const double layered =
      sealed + static_cast<double>(L) * crypto::kAeadTagSize;
  return 1.0 + 1.0 + 8.0 + 8.0 + layered;
}

// Total bytes across hops for one path: the message sheds one 16-byte
// layer per relay hop, and `hops_traversed` of the L+1 hops are taken.
double path_bytes(double segment_bytes, std::size_t L,
                  std::size_t hops_traversed) {
  double total = 0.0;
  double size = initiator_message_bytes(segment_bytes, L);
  for (std::size_t hop = 0; hop < hops_traversed; ++hop) {
    total += size;
    size -= crypto::kAeadTagSize;  // one layer stripped per relay
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  auto& trials = flags.add_int("trials", 100000, "Monte-Carlo trials per point");
  auto& seed = flags.add_int("seed", 1, "RNG seed");
  auto& pa = flags.add_double("availability", 0.70, "node availability");
  auto& L = flags.add_int("L", 3, "relays per path");
  auto& msg = flags.add_int("message", 1024, "message size (bytes)");
  auto& k_max = flags.add_int("kmax", 20, "max number of paths");
  auto& json_path = obs::add_json_flag(flags);
  flags.parse(argc, argv);
  const auto mc_trials = static_cast<std::size_t>(
      static_cast<double>(trials) * bench_scale());

  Rng rng(static_cast<std::uint64_t>(seed));
  const auto path_len = static_cast<std::size_t>(L);
  const double p = path_success_probability(pa, path_len);

  std::printf("# Figure 4: bandwidth cost (KB) vs k for r in {2, 3, 4}, "
              "pa = %.2f, L = %zu, |M| = %lld B\n",
              pa, path_len, static_cast<long long>(msg));
  metrics::Series series("k", {"r=2", "r=3", "r=4"});
  for (std::size_t k = 2; k <= static_cast<std::size_t>(k_max); k += 2) {
    std::vector<double> row;
    for (const std::size_t r : {2u, 3u, 4u}) {
      const std::size_t k_valid = (k / r) * r;
      if (k_valid == 0) {
        row.push_back(0.0);
        continue;
      }
      const std::size_t m = k_valid / r;  // SimEra(k, r): one segment/path
      const double segment_bytes =
          static_cast<double>(msg) / static_cast<double>(m);
      const std::size_t need = m;  // k/r paths
      metrics::Summary cost;
      for (std::size_t t = 0; t < mc_trials; ++t) {
        std::size_t alive = 0;
        double bytes = 0.0;
        for (std::size_t j = 0; j < k_valid; ++j) {
          if (rng.bernoulli(p)) {
            ++alive;
            bytes += path_bytes(segment_bytes, path_len, path_len + 1);
          } else {
            // Died part-way: uniform over the first L hops.
            const auto hops = static_cast<std::size_t>(
                rng.next_below(path_len + 1));
            bytes += path_bytes(segment_bytes, path_len, hops);
          }
        }
        if (alive >= need) cost.add(bytes);
      }
      row.push_back(cost.count() ? cost.mean() / 1024.0 : 0.0);
    }
    series.add(static_cast<double>(k), row);
  }
  std::printf("%s\n", series.render(3).c_str());
  std::printf("Expected (paper): curves ordered r = 4 > 3 > 2, growing "
              "mildly with k (per-path framing), r = 4 reaching ~11-12 KB "
              "at k = 20 for a 1 KB message.\n");
  obs::BenchReport report("fig4_bandwidth");
  report.add("trials", static_cast<std::uint64_t>(mc_trials));
  report.add_section("bandwidth_kb", series.to_json());
  if (!report.write_if_requested(json_path)) return 1;
  return 0;
}
