// trace_analyze — offline causal analysis of a trace written by the sim.
//
//   trace_analyze --in trace.json [--flows flows.jsonl] [--out report.json]
//                 [--top 10]
//
// --in accepts either sink format (Chrome trace-event document or JSONL
// causal log; the format is sniffed). --flows ingests a link-record JSONL
// dump from the adversary LinkObserver; the flows are cross-referenced
// against the span chains by correlation id and reported in a "flows"
// section. The report goes to --out, or stdout when --out is empty. See
// src/obs/trace_analysis.hpp for what the report contains; the output is
// byte-deterministic for a given trace, so reports can be committed as
// goldens and diffed across runs.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/config.hpp"
#include "obs/trace_analysis.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return static_cast<bool>(in) || in.eof();
}

}  // namespace

int main(int argc, char** argv) {
  p2panon::FlagSet flags;
  auto& in_path = flags.add_string(
      "in", "", "trace file to analyze (Chrome trace JSON or JSONL)");
  auto& flows_path = flags.add_string(
      "flows", "", "link-record JSONL (adversary FlowLog dump) to join in");
  auto& out_path = flags.add_string(
      "out", "", "write the report here (empty = stdout)");
  auto& top_n = flags.add_int("top", 10, "slowest chains to list in full");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), flags.usage(argv[0]).c_str());
    return 2;
  }
  if (in_path.empty()) {
    std::fprintf(stderr, "missing --in <trace file>\n%s",
                 flags.usage(argv[0]).c_str());
    return 2;
  }

  std::string text;
  if (!read_file(in_path, text)) {
    std::fprintf(stderr, "cannot read %s\n", in_path.c_str());
    return 1;
  }
  p2panon::obs::ParsedTrace trace = p2panon::obs::parse_trace(text);
  if (!flows_path.empty()) {
    std::string flow_text;
    if (!read_file(flows_path, flow_text)) {
      std::fprintf(stderr, "cannot read %s\n", flows_path.c_str());
      return 1;
    }
    p2panon::obs::parse_flows_jsonl(flow_text, trace);
  }
  if (trace.records.empty() && trace.flows.empty()) {
    std::fprintf(stderr,
                 "%s: no trace records or link flows recognized "
                 "(%zu skipped)\n",
                 in_path.c_str(), trace.skipped);
    return 1;
  }

  p2panon::obs::AnalyzerOptions options;
  options.top_n = top_n > 0 ? static_cast<std::size_t>(top_n) : 0;
  const std::string report = p2panon::obs::analyze_trace(trace, options);

  if (out_path.empty()) {
    std::fputs(report.c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << report << '\n';
  if (!out) {
    std::fprintf(stderr, "short write to %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "trace_analyze: %zu records -> %s\n",
               trace.records.size(), out_path.c_str());
  return 0;
}
