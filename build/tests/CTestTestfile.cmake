# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/erasure_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/churn_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")
include("/root/repo/build/tests/onion_test[1]_include.cmake")
include("/root/repo/build/tests/anon_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/rendezvous_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/loopback_integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
