# Empty dependencies file for loopback_integration_test.
# This may be replaced when dependencies are built.
