file(REMOVE_RECURSE
  "CMakeFiles/loopback_integration_test.dir/loopback_integration_test.cpp.o"
  "CMakeFiles/loopback_integration_test.dir/loopback_integration_test.cpp.o.d"
  "loopback_integration_test"
  "loopback_integration_test.pdb"
  "loopback_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loopback_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
