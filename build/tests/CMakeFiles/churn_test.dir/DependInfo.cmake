
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/churn_test.cpp" "tests/CMakeFiles/churn_test.dir/churn_test.cpp.o" "gcc" "tests/CMakeFiles/churn_test.dir/churn_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/churn/CMakeFiles/p2panon_churn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2panon_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2panon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
