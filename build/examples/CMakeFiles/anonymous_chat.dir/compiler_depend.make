# Empty compiler generated dependencies file for anonymous_chat.
# This may be replaced when dependencies are built.
