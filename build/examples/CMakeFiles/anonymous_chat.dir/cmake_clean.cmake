file(REMOVE_RECURSE
  "CMakeFiles/anonymous_chat.dir/anonymous_chat.cpp.o"
  "CMakeFiles/anonymous_chat.dir/anonymous_chat.cpp.o.d"
  "anonymous_chat"
  "anonymous_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
