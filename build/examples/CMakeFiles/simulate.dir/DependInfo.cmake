
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/simulate.cpp" "examples/CMakeFiles/simulate.dir/simulate.cpp.o" "gcc" "examples/CMakeFiles/simulate.dir/simulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/p2panon_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/p2panon_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p2panon_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/p2panon_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/p2panon_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2panon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/churn/CMakeFiles/p2panon_churn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/p2panon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2panon_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p2panon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
