file(REMOVE_RECURSE
  "CMakeFiles/fig5_path_setup.dir/fig5_path_setup.cpp.o"
  "CMakeFiles/fig5_path_setup.dir/fig5_path_setup.cpp.o.d"
  "fig5_path_setup"
  "fig5_path_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_path_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
