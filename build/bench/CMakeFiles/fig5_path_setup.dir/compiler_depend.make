# Empty compiler generated dependencies file for fig5_path_setup.
# This may be replaced when dependencies are built.
