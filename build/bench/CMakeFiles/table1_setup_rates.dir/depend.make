# Empty dependencies file for table1_setup_rates.
# This may be replaced when dependencies are built.
