# Empty dependencies file for fig3_replication_factor.
# This may be replaced when dependencies are built.
