file(REMOVE_RECURSE
  "CMakeFiles/fig3_replication_factor.dir/fig3_replication_factor.cpp.o"
  "CMakeFiles/fig3_replication_factor.dir/fig3_replication_factor.cpp.o.d"
  "fig3_replication_factor"
  "fig3_replication_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_replication_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
