# Empty compiler generated dependencies file for table3_churn.
# This may be replaced when dependencies are built.
