file(REMOVE_RECURSE
  "CMakeFiles/table3_churn.dir/table3_churn.cpp.o"
  "CMakeFiles/table3_churn.dir/table3_churn.cpp.o.d"
  "table3_churn"
  "table3_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
