file(REMOVE_RECURSE
  "CMakeFiles/ablate_failure_handling.dir/ablate_failure_handling.cpp.o"
  "CMakeFiles/ablate_failure_handling.dir/ablate_failure_handling.cpp.o.d"
  "ablate_failure_handling"
  "ablate_failure_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_failure_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
