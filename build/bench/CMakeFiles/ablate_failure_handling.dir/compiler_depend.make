# Empty compiler generated dependencies file for ablate_failure_handling.
# This may be replaced when dependencies are built.
