# Empty dependencies file for table4_distributions.
# This may be replaced when dependencies are built.
