file(REMOVE_RECURSE
  "CMakeFiles/table4_distributions.dir/table4_distributions.cpp.o"
  "CMakeFiles/table4_distributions.dir/table4_distributions.cpp.o.d"
  "table4_distributions"
  "table4_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
