# Empty compiler generated dependencies file for fig2_observations.
# This may be replaced when dependencies are built.
