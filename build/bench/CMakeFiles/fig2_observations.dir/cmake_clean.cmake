file(REMOVE_RECURSE
  "CMakeFiles/fig2_observations.dir/fig2_observations.cpp.o"
  "CMakeFiles/fig2_observations.dir/fig2_observations.cpp.o.d"
  "fig2_observations"
  "fig2_observations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
