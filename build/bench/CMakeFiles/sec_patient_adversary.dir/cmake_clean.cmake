file(REMOVE_RECURSE
  "CMakeFiles/sec_patient_adversary.dir/sec_patient_adversary.cpp.o"
  "CMakeFiles/sec_patient_adversary.dir/sec_patient_adversary.cpp.o.d"
  "sec_patient_adversary"
  "sec_patient_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_patient_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
