# Empty compiler generated dependencies file for sec_patient_adversary.
# This may be replaced when dependencies are built.
