# Empty dependencies file for ablate_dissemination.
# This may be replaced when dependencies are built.
