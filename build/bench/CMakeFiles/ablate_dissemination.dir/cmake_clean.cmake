file(REMOVE_RECURSE
  "CMakeFiles/ablate_dissemination.dir/ablate_dissemination.cpp.o"
  "CMakeFiles/ablate_dissemination.dir/ablate_dissemination.cpp.o.d"
  "ablate_dissemination"
  "ablate_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
