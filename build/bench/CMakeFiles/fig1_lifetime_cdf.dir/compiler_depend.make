# Empty compiler generated dependencies file for fig1_lifetime_cdf.
# This may be replaced when dependencies are built.
