file(REMOVE_RECURSE
  "CMakeFiles/fig1_lifetime_cdf.dir/fig1_lifetime_cdf.cpp.o"
  "CMakeFiles/fig1_lifetime_cdf.dir/fig1_lifetime_cdf.cpp.o.d"
  "fig1_lifetime_cdf"
  "fig1_lifetime_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_lifetime_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
