# Empty dependencies file for ablate_allocation.
# This may be replaced when dependencies are built.
