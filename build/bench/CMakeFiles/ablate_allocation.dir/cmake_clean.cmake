file(REMOVE_RECURSE
  "CMakeFiles/ablate_allocation.dir/ablate_allocation.cpp.o"
  "CMakeFiles/ablate_allocation.dir/ablate_allocation.cpp.o.d"
  "ablate_allocation"
  "ablate_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
