file(REMOVE_RECURSE
  "CMakeFiles/p2panon_crypto.dir/aead.cpp.o"
  "CMakeFiles/p2panon_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/p2panon_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/p2panon_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/p2panon_crypto.dir/hmac.cpp.o"
  "CMakeFiles/p2panon_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/p2panon_crypto.dir/keys.cpp.o"
  "CMakeFiles/p2panon_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/p2panon_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/p2panon_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/p2panon_crypto.dir/sealed_box.cpp.o"
  "CMakeFiles/p2panon_crypto.dir/sealed_box.cpp.o.d"
  "CMakeFiles/p2panon_crypto.dir/sha256.cpp.o"
  "CMakeFiles/p2panon_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/p2panon_crypto.dir/x25519.cpp.o"
  "CMakeFiles/p2panon_crypto.dir/x25519.cpp.o.d"
  "libp2panon_crypto.a"
  "libp2panon_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
