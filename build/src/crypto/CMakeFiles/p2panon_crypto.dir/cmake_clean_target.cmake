file(REMOVE_RECURSE
  "libp2panon_crypto.a"
)
