# Empty compiler generated dependencies file for p2panon_crypto.
# This may be replaced when dependencies are built.
