file(REMOVE_RECURSE
  "libp2panon_metrics.a"
)
