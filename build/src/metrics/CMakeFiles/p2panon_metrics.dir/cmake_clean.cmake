file(REMOVE_RECURSE
  "CMakeFiles/p2panon_metrics.dir/bootstrap.cpp.o"
  "CMakeFiles/p2panon_metrics.dir/bootstrap.cpp.o.d"
  "CMakeFiles/p2panon_metrics.dir/cdf.cpp.o"
  "CMakeFiles/p2panon_metrics.dir/cdf.cpp.o.d"
  "CMakeFiles/p2panon_metrics.dir/histogram.cpp.o"
  "CMakeFiles/p2panon_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/p2panon_metrics.dir/summary.cpp.o"
  "CMakeFiles/p2panon_metrics.dir/summary.cpp.o.d"
  "CMakeFiles/p2panon_metrics.dir/table.cpp.o"
  "CMakeFiles/p2panon_metrics.dir/table.cpp.o.d"
  "libp2panon_metrics.a"
  "libp2panon_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
