# Empty dependencies file for p2panon_erasure.
# This may be replaced when dependencies are built.
