file(REMOVE_RECURSE
  "libp2panon_erasure.a"
)
