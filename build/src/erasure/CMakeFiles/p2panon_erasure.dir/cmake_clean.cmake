file(REMOVE_RECURSE
  "CMakeFiles/p2panon_erasure.dir/codec.cpp.o"
  "CMakeFiles/p2panon_erasure.dir/codec.cpp.o.d"
  "CMakeFiles/p2panon_erasure.dir/gf256.cpp.o"
  "CMakeFiles/p2panon_erasure.dir/gf256.cpp.o.d"
  "CMakeFiles/p2panon_erasure.dir/matrix.cpp.o"
  "CMakeFiles/p2panon_erasure.dir/matrix.cpp.o.d"
  "CMakeFiles/p2panon_erasure.dir/reed_solomon.cpp.o"
  "CMakeFiles/p2panon_erasure.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/p2panon_erasure.dir/replication.cpp.o"
  "CMakeFiles/p2panon_erasure.dir/replication.cpp.o.d"
  "libp2panon_erasure.a"
  "libp2panon_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
