# Empty compiler generated dependencies file for p2panon_net.
# This may be replaced when dependencies are built.
