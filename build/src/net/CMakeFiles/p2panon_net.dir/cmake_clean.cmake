file(REMOVE_RECURSE
  "CMakeFiles/p2panon_net.dir/demux.cpp.o"
  "CMakeFiles/p2panon_net.dir/demux.cpp.o.d"
  "CMakeFiles/p2panon_net.dir/latency_matrix.cpp.o"
  "CMakeFiles/p2panon_net.dir/latency_matrix.cpp.o.d"
  "CMakeFiles/p2panon_net.dir/loopback_transport.cpp.o"
  "CMakeFiles/p2panon_net.dir/loopback_transport.cpp.o.d"
  "CMakeFiles/p2panon_net.dir/sim_transport.cpp.o"
  "CMakeFiles/p2panon_net.dir/sim_transport.cpp.o.d"
  "libp2panon_net.a"
  "libp2panon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
