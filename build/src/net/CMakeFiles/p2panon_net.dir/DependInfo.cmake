
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/demux.cpp" "src/net/CMakeFiles/p2panon_net.dir/demux.cpp.o" "gcc" "src/net/CMakeFiles/p2panon_net.dir/demux.cpp.o.d"
  "/root/repo/src/net/latency_matrix.cpp" "src/net/CMakeFiles/p2panon_net.dir/latency_matrix.cpp.o" "gcc" "src/net/CMakeFiles/p2panon_net.dir/latency_matrix.cpp.o.d"
  "/root/repo/src/net/loopback_transport.cpp" "src/net/CMakeFiles/p2panon_net.dir/loopback_transport.cpp.o" "gcc" "src/net/CMakeFiles/p2panon_net.dir/loopback_transport.cpp.o.d"
  "/root/repo/src/net/sim_transport.cpp" "src/net/CMakeFiles/p2panon_net.dir/sim_transport.cpp.o" "gcc" "src/net/CMakeFiles/p2panon_net.dir/sim_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2panon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
