file(REMOVE_RECURSE
  "CMakeFiles/p2panon_harness.dir/durability_experiment.cpp.o"
  "CMakeFiles/p2panon_harness.dir/durability_experiment.cpp.o.d"
  "CMakeFiles/p2panon_harness.dir/environment.cpp.o"
  "CMakeFiles/p2panon_harness.dir/environment.cpp.o.d"
  "CMakeFiles/p2panon_harness.dir/parallel.cpp.o"
  "CMakeFiles/p2panon_harness.dir/parallel.cpp.o.d"
  "CMakeFiles/p2panon_harness.dir/path_setup_experiment.cpp.o"
  "CMakeFiles/p2panon_harness.dir/path_setup_experiment.cpp.o.d"
  "libp2panon_harness.a"
  "libp2panon_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
