file(REMOVE_RECURSE
  "libp2panon_harness.a"
)
