file(REMOVE_RECURSE
  "libp2panon_common.a"
)
