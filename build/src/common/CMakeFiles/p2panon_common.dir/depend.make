# Empty dependencies file for p2panon_common.
# This may be replaced when dependencies are built.
