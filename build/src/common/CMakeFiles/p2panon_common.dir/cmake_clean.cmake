file(REMOVE_RECURSE
  "CMakeFiles/p2panon_common.dir/bytes.cpp.o"
  "CMakeFiles/p2panon_common.dir/bytes.cpp.o.d"
  "CMakeFiles/p2panon_common.dir/config.cpp.o"
  "CMakeFiles/p2panon_common.dir/config.cpp.o.d"
  "CMakeFiles/p2panon_common.dir/logging.cpp.o"
  "CMakeFiles/p2panon_common.dir/logging.cpp.o.d"
  "CMakeFiles/p2panon_common.dir/rng.cpp.o"
  "CMakeFiles/p2panon_common.dir/rng.cpp.o.d"
  "CMakeFiles/p2panon_common.dir/strings.cpp.o"
  "CMakeFiles/p2panon_common.dir/strings.cpp.o.d"
  "libp2panon_common.a"
  "libp2panon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
