file(REMOVE_RECURSE
  "CMakeFiles/p2panon_analysis.dir/anonymity.cpp.o"
  "CMakeFiles/p2panon_analysis.dir/anonymity.cpp.o.d"
  "CMakeFiles/p2panon_analysis.dir/bandwidth_model.cpp.o"
  "CMakeFiles/p2panon_analysis.dir/bandwidth_model.cpp.o.d"
  "CMakeFiles/p2panon_analysis.dir/observations.cpp.o"
  "CMakeFiles/p2panon_analysis.dir/observations.cpp.o.d"
  "CMakeFiles/p2panon_analysis.dir/path_model.cpp.o"
  "CMakeFiles/p2panon_analysis.dir/path_model.cpp.o.d"
  "libp2panon_analysis.a"
  "libp2panon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
