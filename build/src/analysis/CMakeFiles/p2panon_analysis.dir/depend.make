# Empty dependencies file for p2panon_analysis.
# This may be replaced when dependencies are built.
