file(REMOVE_RECURSE
  "libp2panon_analysis.a"
)
