
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/anonymity.cpp" "src/analysis/CMakeFiles/p2panon_analysis.dir/anonymity.cpp.o" "gcc" "src/analysis/CMakeFiles/p2panon_analysis.dir/anonymity.cpp.o.d"
  "/root/repo/src/analysis/bandwidth_model.cpp" "src/analysis/CMakeFiles/p2panon_analysis.dir/bandwidth_model.cpp.o" "gcc" "src/analysis/CMakeFiles/p2panon_analysis.dir/bandwidth_model.cpp.o.d"
  "/root/repo/src/analysis/observations.cpp" "src/analysis/CMakeFiles/p2panon_analysis.dir/observations.cpp.o" "gcc" "src/analysis/CMakeFiles/p2panon_analysis.dir/observations.cpp.o.d"
  "/root/repo/src/analysis/path_model.cpp" "src/analysis/CMakeFiles/p2panon_analysis.dir/path_model.cpp.o" "gcc" "src/analysis/CMakeFiles/p2panon_analysis.dir/path_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2panon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
