file(REMOVE_RECURSE
  "libp2panon_anon.a"
)
