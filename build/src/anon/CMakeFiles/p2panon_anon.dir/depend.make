# Empty dependencies file for p2panon_anon.
# This may be replaced when dependencies are built.
