file(REMOVE_RECURSE
  "CMakeFiles/p2panon_anon.dir/adaptive.cpp.o"
  "CMakeFiles/p2panon_anon.dir/adaptive.cpp.o.d"
  "CMakeFiles/p2panon_anon.dir/allocation.cpp.o"
  "CMakeFiles/p2panon_anon.dir/allocation.cpp.o.d"
  "CMakeFiles/p2panon_anon.dir/cover_traffic.cpp.o"
  "CMakeFiles/p2panon_anon.dir/cover_traffic.cpp.o.d"
  "CMakeFiles/p2panon_anon.dir/mix_selector.cpp.o"
  "CMakeFiles/p2panon_anon.dir/mix_selector.cpp.o.d"
  "CMakeFiles/p2panon_anon.dir/onion.cpp.o"
  "CMakeFiles/p2panon_anon.dir/onion.cpp.o.d"
  "CMakeFiles/p2panon_anon.dir/path_state.cpp.o"
  "CMakeFiles/p2panon_anon.dir/path_state.cpp.o.d"
  "CMakeFiles/p2panon_anon.dir/protocols.cpp.o"
  "CMakeFiles/p2panon_anon.dir/protocols.cpp.o.d"
  "CMakeFiles/p2panon_anon.dir/rendezvous.cpp.o"
  "CMakeFiles/p2panon_anon.dir/rendezvous.cpp.o.d"
  "CMakeFiles/p2panon_anon.dir/router.cpp.o"
  "CMakeFiles/p2panon_anon.dir/router.cpp.o.d"
  "CMakeFiles/p2panon_anon.dir/session.cpp.o"
  "CMakeFiles/p2panon_anon.dir/session.cpp.o.d"
  "libp2panon_anon.a"
  "libp2panon_anon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_anon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
