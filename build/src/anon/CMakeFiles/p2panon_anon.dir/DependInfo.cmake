
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anon/adaptive.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/adaptive.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/adaptive.cpp.o.d"
  "/root/repo/src/anon/allocation.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/allocation.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/allocation.cpp.o.d"
  "/root/repo/src/anon/cover_traffic.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/cover_traffic.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/cover_traffic.cpp.o.d"
  "/root/repo/src/anon/mix_selector.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/mix_selector.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/mix_selector.cpp.o.d"
  "/root/repo/src/anon/onion.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/onion.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/onion.cpp.o.d"
  "/root/repo/src/anon/path_state.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/path_state.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/path_state.cpp.o.d"
  "/root/repo/src/anon/protocols.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/protocols.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/protocols.cpp.o.d"
  "/root/repo/src/anon/rendezvous.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/rendezvous.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/rendezvous.cpp.o.d"
  "/root/repo/src/anon/router.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/router.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/router.cpp.o.d"
  "/root/repo/src/anon/session.cpp" "src/anon/CMakeFiles/p2panon_anon.dir/session.cpp.o" "gcc" "src/anon/CMakeFiles/p2panon_anon.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2panon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2panon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p2panon_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/p2panon_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/p2panon_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/p2panon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/churn/CMakeFiles/p2panon_churn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2panon_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
