file(REMOVE_RECURSE
  "libp2panon_churn.a"
)
