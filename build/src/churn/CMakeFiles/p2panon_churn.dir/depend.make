# Empty dependencies file for p2panon_churn.
# This may be replaced when dependencies are built.
