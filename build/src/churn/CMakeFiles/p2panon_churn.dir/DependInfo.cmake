
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/churn/churn_model.cpp" "src/churn/CMakeFiles/p2panon_churn.dir/churn_model.cpp.o" "gcc" "src/churn/CMakeFiles/p2panon_churn.dir/churn_model.cpp.o.d"
  "/root/repo/src/churn/distributions.cpp" "src/churn/CMakeFiles/p2panon_churn.dir/distributions.cpp.o" "gcc" "src/churn/CMakeFiles/p2panon_churn.dir/distributions.cpp.o.d"
  "/root/repo/src/churn/trace.cpp" "src/churn/CMakeFiles/p2panon_churn.dir/trace.cpp.o" "gcc" "src/churn/CMakeFiles/p2panon_churn.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p2panon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2panon_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
