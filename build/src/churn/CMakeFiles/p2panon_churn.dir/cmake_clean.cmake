file(REMOVE_RECURSE
  "CMakeFiles/p2panon_churn.dir/churn_model.cpp.o"
  "CMakeFiles/p2panon_churn.dir/churn_model.cpp.o.d"
  "CMakeFiles/p2panon_churn.dir/distributions.cpp.o"
  "CMakeFiles/p2panon_churn.dir/distributions.cpp.o.d"
  "CMakeFiles/p2panon_churn.dir/trace.cpp.o"
  "CMakeFiles/p2panon_churn.dir/trace.cpp.o.d"
  "libp2panon_churn.a"
  "libp2panon_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
