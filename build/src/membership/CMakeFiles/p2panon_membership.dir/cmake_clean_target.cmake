file(REMOVE_RECURSE
  "libp2panon_membership.a"
)
