# Empty dependencies file for p2panon_membership.
# This may be replaced when dependencies are built.
