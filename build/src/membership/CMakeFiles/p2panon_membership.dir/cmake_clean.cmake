file(REMOVE_RECURSE
  "CMakeFiles/p2panon_membership.dir/gossip.cpp.o"
  "CMakeFiles/p2panon_membership.dir/gossip.cpp.o.d"
  "CMakeFiles/p2panon_membership.dir/liveness.cpp.o"
  "CMakeFiles/p2panon_membership.dir/liveness.cpp.o.d"
  "CMakeFiles/p2panon_membership.dir/node_cache.cpp.o"
  "CMakeFiles/p2panon_membership.dir/node_cache.cpp.o.d"
  "CMakeFiles/p2panon_membership.dir/onehop.cpp.o"
  "CMakeFiles/p2panon_membership.dir/onehop.cpp.o.d"
  "libp2panon_membership.a"
  "libp2panon_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
