// Observability layer: registry label handling, HDR histogram percentiles
// against the metrics-layer reference, trace JSON well-formedness,
// deterministic JSONL sampling, and the "off means off" guarantee — a run
// with tracing enabled must be bit-identical to one without.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/link_observer.hpp"
#include "common/rng.hpp"
#include "harness/chaos_experiment.hpp"
#include "metrics/cdf.hpp"
#include "obs/capacity/loop_profiler.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace p2panon::obs {
namespace {

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, LabelsDistinguishSeries) {
  Registry reg;
  Counter* sent = reg.counter("segments_total", {{"event", "sent"}});
  Counter* acked = reg.counter("segments_total", {{"event", "acked"}});
  ASSERT_NE(sent, acked);
  sent->inc(3);
  acked->inc();
  EXPECT_EQ(reg.counter_value("segments_total", {{"event", "sent"}}), 3u);
  EXPECT_EQ(reg.counter_value("segments_total", {{"event", "acked"}}), 1u);
  EXPECT_EQ(reg.counter_total("segments_total"), 4u);
  // Unregistered series read as zero instead of registering.
  EXPECT_EQ(reg.counter_value("segments_total", {{"event", "expired"}}), 0u);
}

TEST(RegistryTest, LookupIsStable) {
  Registry reg;
  Counter* first = reg.counter("drops", {{"cause", "loss"}, {"dir", "fwd"}});
  // Same name + labels (insertion order of the map literal is irrelevant —
  // Labels is an ordered map) must return the same handle.
  Counter* again = reg.counter("drops", {{"dir", "fwd"}, {"cause", "loss"}});
  EXPECT_EQ(first, again);
  Gauge* depth = reg.gauge("queue_depth");
  depth->set(7);
  depth->add(-2);
  EXPECT_EQ(reg.gauge_value("queue_depth"), 5);
}

TEST(RegistryTest, SeriesKeyRendersLabels) {
  EXPECT_EQ(series_key("up", {}), "up");
  EXPECT_EQ(series_key("drops", {{"cause", "loss"}, {"dir", "fwd"}}),
            "drops{cause=loss,dir=fwd}");
}

TEST(RegistryTest, SnapshotIsValidJson) {
  Registry reg;
  reg.counter("net_drops_total", {{"cause", "link_loss"}})->inc(2);
  reg.gauge("sim_pending_events")->set(42);
  HdrHistogram* h = reg.histogram("rtt_us");
  h->record(100);
  h->record(2000);
  const std::string snapshot = reg.snapshot_json();
  EXPECT_TRUE(json_valid(snapshot)) << snapshot;
  EXPECT_NE(snapshot.find("\"name\":\"net_drops_total\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"cause\":\"link_loss\""), std::string::npos);
  EXPECT_NE(snapshot.find("sim_pending_events"), std::string::npos);
  EXPECT_NE(snapshot.find("rtt_us"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HdrHistogram vs the metrics-layer reference

TEST(HdrHistogramTest, ExactBelowSixtyFour) {
  HdrHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  // Small values get one bucket each, so percentiles are exact.
  EXPECT_EQ(h.percentile(0.5), 31u);
  EXPECT_EQ(h.percentile(1.0), 63u);
}

TEST(HdrHistogramTest, PercentilesTrackEmpiricalQuantiles) {
  // Log-linear bucketing bounds relative error by 1/32 per bucket; allow a
  // little extra because the reference interpolates and the histogram takes
  // bucket midpoints.
  constexpr double kTolerance = 0.06;
  HdrHistogram h;
  metrics::EmpiricalCdf reference;
  Rng rng(99);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    // Heavy-tailed spread across many powers of two, like latency data.
    const std::uint64_t value = 64 + (rng.next_u64() % (1u << (6 + i % 14)));
    h.record(value);
    reference.add(static_cast<double>(value));
    sum += static_cast<double>(value);
  }
  for (const double p : {0.10, 0.50, 0.90, 0.99}) {
    const double expected = reference.quantile(p);
    const double actual = static_cast<double>(h.percentile(p));
    EXPECT_NEAR(actual / expected, 1.0, kTolerance)
        << "p=" << p << " expected=" << expected << " actual=" << actual;
  }
  EXPECT_EQ(h.count(), 20000u);
  // The mean is computed from the exact running sum, not bucket midpoints.
  EXPECT_DOUBLE_EQ(h.mean(), sum / 20000.0);
}

TEST(HdrHistogramTest, BucketBoundsCoverValue) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t value = rng.next_u64() >> (i % 40);
    const std::size_t index = HdrHistogram::bucket_index(value);
    EXPECT_LE(HdrHistogram::bucket_lower_bound(index), value);
    EXPECT_GE(HdrHistogram::bucket_upper_bound(index), value);
  }
}

// ---------------------------------------------------------------------------
// Tracer + sinks

TEST(TracerTest, ChromeTraceJsonIsWellFormed) {
  ChromeTraceSink sink;
  Tracer& tracer = Tracer::instance();
  tracer.add_sink(&sink);
  ASSERT_TRUE(tracer.enabled());
  {
    CorrelationScope scope(0xabcd);
    TraceArgs args;
    args.add("path", std::uint64_t{2})
        .add("note", "quotes \"and\" back\\slash")
        .add("ratio", 0.5);
    tracer.span_begin("anon", "segment", current_correlation(), args);
    tracer.instant("net", "drop", current_correlation());
    tracer.span_end("anon", "segment", current_correlation());
  }
  tracer.clear_sinks();
  EXPECT_FALSE(tracer.enabled());

  EXPECT_EQ(sink.event_count(), 3u);
  const std::string doc = sink.json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  // Legacy async phases share the correlation id as the async id.
  EXPECT_NE(doc.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"n\""), std::string::npos);
  EXPECT_NE(doc.find("0xabcd"), std::string::npos);
}

TEST(TracerTest, OffMeansNoEventsAndNoEnableFlag) {
  Tracer& tracer = Tracer::instance();
  ASSERT_FALSE(tracer.enabled());
  ChromeTraceSink sink;
  // Emitting with no sink installed must be a no-op.
  tracer.span_begin("anon", "segment", 1);
  tracer.instant("anon", "x", 1);
  tracer.span_end("anon", "segment", 1);
  EXPECT_EQ(sink.event_count(), 0u);
  // Correlation scopes nest and restore regardless of tracer state.
  EXPECT_EQ(current_correlation(), 0u);
  {
    CorrelationScope outer(5);
    EXPECT_EQ(current_correlation(), 5u);
    {
      CorrelationScope inner(9);
      EXPECT_EQ(current_correlation(), 9u);
    }
    EXPECT_EQ(current_correlation(), 5u);
  }
  EXPECT_EQ(current_correlation(), 0u);
}

TEST(JsonlSinkTest, SamplingIsDeterministicAndPredictable) {
  const std::uint64_t seed = 1234;
  const double rate = 0.4;
  JsonlTraceSink sink(rate, seed);
  JsonlTraceSink twin(rate, seed);
  std::size_t kept = 0;
  for (CorrelationId corr = 1; corr <= 2000; ++corr) {
    // The decision is exactly the documented hash threshold.
    const std::uint64_t h = mix64(corr ^ seed);
    const double unit =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    EXPECT_EQ(sink.sampled(corr), unit < rate) << corr;
    EXPECT_EQ(sink.sampled(corr), twin.sampled(corr)) << corr;
    if (sink.sampled(corr)) ++kept;
  }
  // ~40% of chains survive; allow generous slack for a 2000-chain sample.
  EXPECT_GT(kept, 600u);
  EXPECT_LT(kept, 1000u);
  // Edge rates and the uncorrelated chain.
  EXPECT_TRUE(JsonlTraceSink(1.0, seed).sampled(77));
  EXPECT_FALSE(JsonlTraceSink(0.0, seed).sampled(77));
  EXPECT_TRUE(JsonlTraceSink(0.0, seed).sampled(0));
}

TEST(JsonlSinkTest, ChainsAreSampledAsAUnitAndLinesParse) {
  JsonlTraceSink sink(0.5, 42);
  Tracer& tracer = Tracer::instance();
  tracer.add_sink(&sink);
  for (CorrelationId corr = 1; corr <= 50; ++corr) {
    TraceArgs args;
    args.add("segment", corr);
    tracer.span_begin("anon", "segment", corr, args);
    tracer.instant("net", "send", corr);
    tracer.span_end("anon", "segment", corr);
  }
  tracer.clear_sinks();

  std::size_t expected_lines = 0;
  for (CorrelationId corr = 1; corr <= 50; ++corr) {
    if (sink.sampled(corr)) expected_lines += 3;  // whole chain or nothing
  }
  EXPECT_EQ(sink.lines().size(), expected_lines);
  for (const std::string& line : sink.lines()) {
    EXPECT_TRUE(json_valid(line)) << line;
  }
}

// ---------------------------------------------------------------------------
// Profiling scopes

TEST(ProfileTest, ScopedTimerRecordsOnlyWhenEnabled) {
  Registry reg;
  HdrHistogram* hist = reg.histogram("step_ns");
  ASSERT_FALSE(profiling_enabled());
  { ScopedTimer timer(hist); }
  EXPECT_EQ(hist->count(), 0u);
  set_profiling_enabled(true);
  { ScopedTimer timer(hist); }
  set_profiling_enabled(false);
  EXPECT_EQ(hist->count(), 1u);
}

// ---------------------------------------------------------------------------
// Off means off, end to end: a traced chaos run must produce the exact
// fingerprint of an untraced one — tracing may observe, never perturb.

harness::ChaosConfig tiny_chaos(std::uint64_t seed) {
  harness::ChaosConfig config;
  config.environment.num_nodes = 64;
  config.environment.seed = seed;
  config.scenario = harness::ChaosScenario::kMildLossDrizzle;
  config.warmup = 5 * kMinute;
  config.measure = 6 * kMinute;
  config.send_interval = 10 * kSecond;
  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom);
  return config;
}

TEST(OffMeansOffTest, TracedRunIsBitIdenticalToUntraced) {
  const auto baseline = harness::run_chaos_experiment(tiny_chaos(3));

  ChromeTraceSink chrome;
  JsonlTraceSink jsonl(1.0, 0);
  Tracer& tracer = Tracer::instance();
  tracer.add_sink(&chrome);
  tracer.add_sink(&jsonl);
  install_log_decorator();
  const auto traced = harness::run_chaos_experiment(tiny_chaos(3));
  uninstall_log_decorator();
  tracer.clear_sinks();

  // Determinism: identical fingerprints, so tracing changed no outcome.
  EXPECT_EQ(baseline.fingerprint(), traced.fingerprint());
  // And the traced run actually produced a parseable trace with the span
  // types the acceptance criteria name.
  EXPECT_GT(chrome.event_count(), 0u);
  const std::string doc = chrome.json();
  EXPECT_TRUE(json_valid(doc)) << "trace JSON must parse";
  EXPECT_NE(doc.find("path_construct"), std::string::npos);
  EXPECT_NE(doc.find("hop_relay"), std::string::npos);
  EXPECT_NE(doc.find("\"segment"), std::string::npos);
  EXPECT_NE(doc.find("reconstruct"), std::string::npos);
  EXPECT_FALSE(jsonl.lines().empty());
}

TEST(OffMeansOffTest, SamplerAndScoreboardPerturbNoOutcome) {
  const auto baseline = harness::run_chaos_experiment(tiny_chaos(3));

  // Same run with the time-series sampler and the health scoreboard on.
  // Both only add read-only sampling ticks to the event queue, so every
  // outcome counter must match; executed_events is the one legitimate
  // difference (the ticks themselves) and is normalised out.
  harness::ChaosConfig config = tiny_chaos(3);
  Registry sampled_registry;
  TimeseriesRecorder recorder(sampled_registry);
  config.environment.metrics = &sampled_registry;
  config.environment.timeseries = &recorder;
  config.environment.timeseries_interval = 30 * kSecond;
  config.health_interval = 30 * kSecond;
  auto observed = harness::run_chaos_experiment(config);

  EXPECT_GT(observed.executed_events, baseline.executed_events);
  observed.executed_events = baseline.executed_events;
  EXPECT_EQ(baseline.fingerprint(), observed.fingerprint());

  // And the observers actually observed: windows were recorded, and the
  // scoreboard counted them.
  EXPECT_GT(recorder.sample_count(), 0u);
  EXPECT_GT(recorder.series_count(), 0u);
  EXPECT_GT(observed.health.windows, 0u);
  EXPECT_FALSE(observed.health_table.empty());
}

// The capacity loop profiler is pure observation: it reads wall clocks
// and writes only its own slots, never scheduling events or touching RNG
// streams. A run with the profiler attached must therefore be
// byte-identical to the detached baseline — and the profiler must still
// have observed every dispatch.
TEST(OffMeansOffTest, LoopProfilerAttachedIsByteIdentical) {
  const auto baseline = harness::run_chaos_experiment(tiny_chaos(3));

  harness::ChaosConfig config = tiny_chaos(3);
  obs::capacity::LoopProfiler profiler;
  config.environment.loop_profiler = &profiler;
  const auto profiled = harness::run_chaos_experiment(config);

  EXPECT_EQ(baseline.fingerprint(), profiled.fingerprint());

  // The profiler saw the run: every executed event was dispatched through
  // it, and the type table attributed named subsystem events.
  const auto report = profiler.report();
  EXPECT_EQ(report.dispatches_total, profiled.executed_events);
  EXPECT_GT(report.samples_total, 0u);
  EXPECT_GE(report.types.size(), 2u);
}

// The corruption-resilience features (segment auth, verified decode, relay
// suspicion, nack escalation) ship default OFF. A run that leaves every
// toggle at its default — even under the byzantine scenario their code
// paths exist for — must be byte-identical to the baseline, with the new
// evidence series all flat at zero.
TEST(OffMeansOffTest, CorruptionDefensesOffAreByteIdentical) {
  harness::ChaosConfig config = tiny_chaos(7);
  config.scenario = harness::ChaosScenario::kCorruptedRelayQuorum;
  config.measure = 8 * kMinute;
  const auto baseline = harness::run_chaos_experiment(config);

  // Spell every toggle out at its default and attach a registry so the
  // evidence series can be audited after the run.
  harness::ChaosConfig spelled = config;
  spelled.segment_auth = false;
  spelled.verified_decode = false;
  spelled.relay_suspicion = false;
  spelled.corruption_escalation = false;
  Registry registry;
  spelled.environment.metrics = &registry;
  const auto off = harness::run_chaos_experiment(spelled);

  EXPECT_EQ(baseline.fingerprint(), off.fingerprint());
  // No evidence series moved: nothing was tagged, rejected, nacked,
  // suspected, or quarantined.
  EXPECT_EQ(registry.counter_value("anon_segment_auth_total",
                                   {{"result", "verified"}}), 0u);
  EXPECT_EQ(registry.counter_value("anon_segment_auth_total",
                                   {{"result", "rejected"}}), 0u);
  EXPECT_EQ(registry.counter_value("anon_segment_auth_nacks_total"), 0u);
  EXPECT_EQ(registry.counter_value("session_corrupt_nacks_total"), 0u);
  EXPECT_EQ(registry.counter_value("membership_suspicion_reports_total",
                                   {{"evidence", "corrupt"}}), 0u);
  EXPECT_EQ(registry.counter_value("membership_suspicion_reports_total",
                                   {{"evidence", "stall"}}), 0u);
  EXPECT_EQ(off.auth_verified + off.auth_rejected + off.auth_nacks +
                off.suspicion_reports + off.quarantined_nodes, 0u);
  // Delivery scoring is observational: it partitions deliveries without
  // changing them.
  EXPECT_EQ(off.messages_delivered_correct + off.messages_delivered_wrong,
            off.messages_delivered);

  // And the toggles are not dead: the same schedule with segment auth on
  // produces tag verdicts (the fingerprint is free to differ — the wire
  // format legitimately changes).
  harness::ChaosConfig on = config;
  on.segment_auth = true;
  on.verified_decode = true;
  Registry on_registry;
  on.environment.metrics = &on_registry;
  const auto tagged = harness::run_chaos_experiment(on);
  EXPECT_GT(tagged.auth_verified, 0u);
  EXPECT_EQ(tagged.messages_delivered_wrong, 0u);
}

// Control-plane resilience (DESIGN §9) rides the same discipline: with
// every membership knob spelled out at its default, a run is byte-identical
// to the unspelled baseline and no membership health series ever registers.
TEST(OffMeansOffTest, MembershipResilienceOffIsByteIdentical) {
  const auto baseline = harness::run_chaos_experiment(tiny_chaos(3));

  harness::ChaosConfig spelled = tiny_chaos(3);
  spelled.environment.membership_kind = harness::MembershipKind::kGossip;
  spelled.environment.gossip.anti_entropy_interval = 0;
  spelled.environment.gossip.per_node_rng = false;
  spelled.environment.gossip.bounded_trust = false;
  spelled.environment.membership_obs_interval = 0;
  Registry registry;
  spelled.environment.metrics = &registry;
  const auto off = harness::run_chaos_experiment(spelled);

  EXPECT_EQ(baseline.fingerprint(), off.fingerprint());
  // The sampler never ran and the repair machinery never moved.
  EXPECT_EQ(registry.counter_value("membership_cache_updates_total",
                                   {{"rule", "direct"}}), 0u);
  EXPECT_EQ(registry.counter_value("membership_anti_entropy_rounds_total"),
            0u);
  EXPECT_EQ(registry.counter_value("membership_repair_records_sent_total"),
            0u);
  EXPECT_EQ(registry.counter_value("membership_elections_total"), 0u);
  EXPECT_EQ(registry.counter_value("fault_injections_total",
                                   {{"kind", "gossip_blackout"}}), 0u);
  EXPECT_EQ(registry.counter_value("fault_injections_total",
                                   {{"kind", "stale_injected"}}), 0u);

  // The knobs are not dead: the same schedule with anti-entropy and the
  // membership sampler on produces repair rounds and cache-health series
  // (the fingerprint is free to differ — repair legitimately adds traffic).
  harness::ChaosConfig on = tiny_chaos(3);
  on.environment.gossip.anti_entropy_interval = 15 * kSecond;
  on.environment.membership_obs_interval = 30 * kSecond;
  Registry on_registry;
  on.environment.metrics = &on_registry;
  harness::run_chaos_experiment(on);
  EXPECT_GT(on_registry.counter_value("membership_anti_entropy_rounds_total"),
            0u);
  EXPECT_GT(on_registry.counter_value("membership_cache_updates_total",
                                      {{"rule", "direct"}}), 0u);
}

// The adversary capture layer (DESIGN §10) is off unless an experiment
// installs a LinkTap: spelling the null tap out changes nothing, and —
// stronger — installing a real observer still changes nothing, because the
// tap only records (own RNG stream, no scheduling, no protocol writes).
TEST(OffMeansOffTest, LinkObserverOffIsByteIdenticalAndOnIsPassive) {
  const auto baseline = harness::run_chaos_experiment(tiny_chaos(3));

  harness::ChaosConfig spelled = tiny_chaos(3);
  spelled.environment.link_tap = nullptr;
  Registry registry;
  spelled.environment.metrics = &registry;
  const auto off = harness::run_chaos_experiment(spelled);
  EXPECT_EQ(baseline.fingerprint(), off.fingerprint());
  EXPECT_EQ(registry.counter_value("adversary_flows_total",
                                   {{"dir", "send"}}), 0u);

  harness::ChaosConfig tapped = tiny_chaos(3);
  adversary::LinkObserver observer;
  tapped.environment.link_tap = &observer;
  const auto on = harness::run_chaos_experiment(tapped);
  EXPECT_EQ(baseline.fingerprint(), on.fingerprint());
  EXPECT_GT(observer.log().appended(), 0u);
}

// The overload-resilience stack (DESIGN §13) — workload engine, bounded
// relay queues, shedding, admission control, backpressure, session send
// bound, pool cap, overload sampler — ships default OFF. Spelling every
// knob out at its default must be byte-identical to the baseline, with all
// overload series flat at zero.
TEST(OffMeansOffTest, WorkloadAndOverloadKnobsOffAreByteIdentical) {
  const auto baseline = harness::run_chaos_experiment(tiny_chaos(3));

  harness::ChaosConfig spelled = tiny_chaos(3);
  spelled.workload = workload::WorkloadConfig{};
  spelled.max_inflight_segments = 0;
  spelled.shed_low_priority = false;
  spelled.session_backpressure = false;
  spelled.path_fail_threshold = 0;
  spelled.environment.router.overload = anon::RouterConfig::OverloadConfig{};
  spelled.environment.router.pool_max_capacity = 0;
  spelled.environment.overload_obs_interval = 0;
  Registry registry;
  spelled.environment.metrics = &registry;
  const auto off = harness::run_chaos_experiment(spelled);

  EXPECT_EQ(baseline.fingerprint(), off.fingerprint());
  // Nothing was shed, refused, signalled, or deferred anywhere.
  for (const char* cls : {"bulk", "streaming", "interactive", "control"}) {
    EXPECT_EQ(registry.counter_value("anon_overload_sheds_total",
                                     {{"class", cls}}), 0u) << cls;
  }
  EXPECT_EQ(registry.counter_value("anon_admission_rejects_total"), 0u);
  EXPECT_EQ(registry.counter_value("anon_backpressure_signals_total"), 0u);
  for (const char* cause : {"queue_full", "bulk_headroom", "congested_path"}) {
    EXPECT_EQ(registry.counter_value("session_sheds_total",
                                     {{"cause", cause}}), 0u) << cause;
  }
  EXPECT_EQ(registry.counter_value("session_backpressure_total",
                                   {{"event", "received"}}), 0u);
  EXPECT_EQ(registry.counter_value("session_backpressure_total",
                                   {{"event", "stall_suppressed"}}), 0u);
  EXPECT_EQ(off.relay_sheds_bulk + off.relay_sheds_streaming +
                off.relay_sheds_interactive + off.relay_sheds_control +
                off.admission_rejects + off.backpressure_signals +
                off.session_messages_shed + off.session_segments_deferred +
                off.session_backpressure_rx + off.session_stalls_suppressed,
            0u);

  // The knobs are not dead: the same seed with the workload engine, tight
  // relay queues, shedding, and the overload sampler on actually sheds and
  // samples (the fingerprint is free to differ — the traffic changes).
  harness::ChaosConfig on = tiny_chaos(1);  // seed 3 constructs slowly here
  on.measure = 10 * kMinute;
  on.path_fail_threshold = 40;
  on.workload.enabled = true;
  on.workload.shape = workload::LoadShape::kFlashCrowd;
  on.workload.mean_interarrival = 250 * kMillisecond;
  on.environment.router.overload.enabled = true;
  on.environment.router.overload.relay_queue_capacity = 64;
  on.environment.router.overload.drain_rate_per_s = 10.0;
  on.environment.router.overload.shedding = true;
  on.environment.overload_obs_interval = 30 * kSecond;
  Registry on_registry;
  on.environment.metrics = &on_registry;
  const auto shed = harness::run_chaos_experiment(on);
  EXPECT_GT(shed.relay_sheds_bulk + shed.relay_sheds_streaming +
                shed.relay_sheds_interactive,
            0u);
  EXPECT_EQ(shed.relay_sheds_control, 0u);
}

}  // namespace
}  // namespace p2panon::obs
