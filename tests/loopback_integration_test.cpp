// Substrate independence: the full anonymity protocol running over the
// in-process LoopbackTransport instead of the simulated network. Message
// delivery is pumped manually; the simulator only serves the router's
// timers. This is the configuration an embedding application would use
// for in-process testing.
#include <gtest/gtest.h>

#include "anon/protocols.hpp"
#include "anon/router.hpp"
#include "anon/session.hpp"
#include "membership/node_cache.hpp"
#include "net/demux.hpp"
#include "net/loopback_transport.hpp"
#include "sim/simulator.hpp"

namespace p2panon::anon {
namespace {

struct LoopbackFixture {
  static constexpr std::size_t kNodes = 16;
  sim::Simulator simulator;  // timers only; transport is not simulated
  net::LoopbackTransport transport{kNodes};
  net::Demux demux{transport, kNodes};
  crypto::KeyDirectory directory;
  RealOnionCodec onion;
  std::unique_ptr<AnonRouter> router;
  membership::NodeCache cache{kNodes};

  LoopbackFixture() {
    Rng key_rng(80);
    auto keys = directory.provision(kNodes, key_rng);
    router = std::make_unique<AnonRouter>(
        simulator, demux, onion, directory, std::move(keys),
        [this](NodeId n) { return transport.is_up(n); },
        RouterConfig{}, Rng(81));
    router->start();
    for (NodeId node = 0; node < kNodes; ++node) {
      cache.heard_directly(node, 100 * kSecond, 0);
    }
  }

  /// Pumps queued datagrams and due timers until both are idle.
  void pump() {
    for (int round = 0; round < 64; ++round) {
      const std::size_t delivered = transport.deliver_all();
      if (delivered == 0) break;
    }
  }
};

TEST(LoopbackIntegrationTest, ConstructAndDeliverWithoutSimulatedNetwork) {
  LoopbackFixture fx;
  SessionConfig config =
      ProtocolSpec::simera(2, 2, MixChoice::kRandom).session_config({});
  Session session(*fx.router, fx.cache, 0, 1, config, Rng(82));

  ReceivedMessage received;
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });

  bool constructed = false;
  session.construct([&](bool ok, std::size_t) { constructed = ok; });
  fx.pump();  // all construction round trips happen synchronously
  ASSERT_TRUE(constructed);
  ASSERT_TRUE(session.ready());

  const Bytes message = bytes_of("loopback onion routing");
  const MessageId id = session.send_message(message);
  fx.pump();
  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(received.data, message);
  EXPECT_EQ(session.acks_received(), 2u);
}

TEST(LoopbackIntegrationTest, FailureInjectionViaNodeDown) {
  LoopbackFixture fx;
  SessionConfig config =
      ProtocolSpec::curmix(MixChoice::kRandom).session_config({});
  Session session(*fx.router, fx.cache, 0, 1, config, Rng(83));
  session.construct([&](bool, std::size_t) {});
  fx.pump();
  ASSERT_TRUE(session.ready());

  fx.transport.set_up(session.paths()[0].relays[1], false);
  bool delivered = false;
  fx.router->set_message_handler(
      [&](const ReceivedMessage&) { delivered = true; });
  session.send_message(bytes_of("into the void"));
  fx.pump();
  EXPECT_FALSE(delivered);
  // The ack timeout lives on the simulator clock; advancing it fires the
  // failure detection even though no network time passed.
  fx.simulator.run_until(fx.simulator.now() + 10 * kSecond);
  EXPECT_EQ(session.path_failures_detected(), 1u);
  EXPECT_EQ(session.paths()[0].state, PathState::kFailed);
}

}  // namespace
}  // namespace p2panon::anon
