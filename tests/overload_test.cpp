// Overload resilience: the deterministic workload engine, bounded relay
// queues with priority-aware shedding, reverse-path backpressure, admission
// control, and the session-side send bound (DESIGN §13). Each mechanism is
// exercised through the chaos harness under a flash-crowd workload, and the
// invariant floor — control/ack traffic is NEVER shed, accounting stays
// closed — is asserted in every run.
#include <gtest/gtest.h>

#include <set>

#include "anon/buffer_pool.hpp"
#include "harness/chaos_experiment.hpp"
#include "workload/workload.hpp"

namespace p2panon::harness {
namespace {

// ---------------------------------------------------------------------------
// Workload engine: deterministic, shaped, correctly folded flash window.

workload::WorkloadConfig mixed_workload() {
  workload::WorkloadConfig config;
  config.enabled = true;
  config.mean_interarrival = kSecond;
  return config;
}

TEST(WorkloadEngineTest, SameSeedEmitsSameArrivalSequence) {
  const SimTime start = 5 * kMinute;
  const SimDuration span = 10 * kMinute;
  workload::WorkloadEngine a(mixed_workload(), start, span, Rng(42));
  workload::WorkloadEngine b(mixed_workload(), start, span, Rng(42));

  SimTime now_a = start, now_b = start;
  for (int i = 0; i < 500; ++i) {
    const auto arr_a = a.next(now_a);
    const auto arr_b = b.next(now_b);
    ASSERT_EQ(arr_a.wait, arr_b.wait) << "draw " << i;
    ASSERT_EQ(arr_a.cls, arr_b.cls) << "draw " << i;
    ASSERT_EQ(arr_a.size, arr_b.size) << "draw " << i;
    now_a += arr_a.wait;
    now_b += arr_b.wait;
  }
  // A different stream diverges immediately-ish.
  workload::WorkloadEngine c(mixed_workload(), start, span, Rng(43));
  SimTime now_c = start;
  bool diverged = false;
  for (int i = 0; i < 16 && !diverged; ++i) {
    const auto arr = c.next(now_c);
    now_c += arr.wait;
    workload::WorkloadEngine probe(mixed_workload(), start, span, Rng(42));
    diverged = probe.next(start).wait != arr.wait || i > 0;
  }
  EXPECT_TRUE(diverged);
}

TEST(WorkloadEngineTest, ClassMixAndSizesFollowTheConfig) {
  workload::WorkloadConfig config = mixed_workload();
  config.bulk_weight = 0.0;
  config.interactive_weight = 1.0;
  config.streaming_weight = 0.0;
  workload::WorkloadEngine engine(config, 0, 10 * kMinute, Rng(7));
  SimTime now = 0;
  for (int i = 0; i < 200; ++i) {
    const auto arrival = engine.next(now);
    ASSERT_EQ(arrival.cls, workload::TrafficClass::kInteractive);
    ASSERT_EQ(arrival.size, config.interactive_size);
    ASSERT_GT(arrival.wait, 0);
    now += arrival.wait;
  }

  // With all three classes weighted, all three appear with their sizes.
  workload::WorkloadEngine mixed(mixed_workload(), 0, 10 * kMinute, Rng(7));
  std::set<std::size_t> sizes;
  now = 0;
  for (int i = 0; i < 500; ++i) {
    const auto arrival = mixed.next(now);
    sizes.insert(arrival.size);
    now += arrival.wait;
  }
  EXPECT_EQ(sizes.size(), 3u);
}

// The flash window is defined exactly once — flash_crowd_window() — and is
// shared by the workload engine and the kFlashCrowdCrash scenario planner,
// so the load spike and the scripted crash wave land on the same interval.
TEST(WorkloadEngineTest, FlashWindowIsTheSharedFoldedDefinition) {
  const SimTime start = 5 * kMinute;
  const SimDuration span = 8 * kMinute;
  const auto window = workload::flash_crowd_window(start, span);
  EXPECT_EQ(window.begin, start + span / 4);
  EXPECT_EQ(window.end, start + span / 2);

  workload::WorkloadConfig config = mixed_workload();
  config.shape = workload::LoadShape::kFlashCrowd;
  config.flash_multiplier = 4.0;
  workload::WorkloadEngine engine(config, start, span, Rng(1));
  EXPECT_EQ(engine.flash_window().begin, window.begin);
  EXPECT_EQ(engine.flash_window().end, window.end);
  EXPECT_DOUBLE_EQ(engine.rate_multiplier(window.begin - 1), 1.0);
  EXPECT_DOUBLE_EQ(engine.rate_multiplier(window.begin), 4.0);
  EXPECT_DOUBLE_EQ(engine.rate_multiplier(window.end - 1), 4.0);
  EXPECT_DOUBLE_EQ(engine.rate_multiplier(window.end), 1.0);
}

TEST(WorkloadEngineTest, DiurnalMultiplierSwingsAroundTheMean) {
  workload::WorkloadConfig config = mixed_workload();
  config.shape = workload::LoadShape::kDiurnal;
  config.diurnal_period = 10 * kMinute;
  config.diurnal_amplitude = 0.6;
  const SimTime start = kMinute;
  workload::WorkloadEngine engine(config, start, 20 * kMinute, Rng(1));
  EXPECT_NEAR(engine.rate_multiplier(start), 1.0, 1e-9);
  EXPECT_NEAR(engine.rate_multiplier(start + config.diurnal_period / 4), 1.6,
              1e-9);
  EXPECT_NEAR(engine.rate_multiplier(start + 3 * config.diurnal_period / 4),
              0.4, 1e-9);
}

// ---------------------------------------------------------------------------
// Buffer pool: burst regrowth is visible (high-water) and boundable (cap).

TEST(BufferPoolTest, HighWaterTracksBurstRegrowth) {
  anon::BufferPool pool;
  { anon::PooledBytes lease(pool, 1024); }
  EXPECT_EQ(pool.high_water(), anon::BufferPool::kDefaultCapacity);
  { anon::PooledBytes lease(pool, 3 * anon::BufferPool::kDefaultCapacity); }
  EXPECT_GE(pool.high_water(), 3 * anon::BufferPool::kDefaultCapacity);
  // Uncapped: the oversized buffer stays warm on the freelist.
  EXPECT_GE(pool.memory_bytes(), 3 * anon::BufferPool::kDefaultCapacity);
}

TEST(BufferPoolTest, MaxCapacityFreesOversizedBuffersOnRelease) {
  anon::BufferPool pool(anon::BufferPool::kDefaultCapacity,
                        /*max_capacity=*/anon::BufferPool::kDefaultCapacity);
  { anon::PooledBytes lease(pool, 1024); }
  EXPECT_EQ(pool.idle(), 1u);  // normal buffers still pool

  // A burst can grow past the cap (correctness over the cap)...
  const std::size_t burst = 4 * anon::BufferPool::kDefaultCapacity;
  { anon::PooledBytes lease(pool, burst); }
  // ...but the oversized buffer is freed on release, not kept warm.
  EXPECT_GE(pool.high_water(), burst);
  EXPECT_LE(pool.memory_bytes(),
            pool.idle() * (anon::BufferPool::kDefaultCapacity +
                           sizeof(Bytes)) +
                64 * sizeof(Bytes));
}

// ---------------------------------------------------------------------------
// End-to-end overload behavior through the chaos harness.

// A small flash-crowd cell: 64 nodes under mild link drizzle, Poisson
// mixed-class arrivals at 4 msg/s spiking 4x, relays bounded at 64 segments
// draining 10/s. path_fail_threshold is raised so retransmission absorbs the
// background loss and offered load stays the only stressor. Seed matters:
// under drizzle an unlucky seed (e.g. 3) burns minutes of sim time in 5 s
// construct timeouts before the pump starts, starving the workload.
ChaosConfig overload_chaos(std::uint64_t seed) {
  ChaosConfig config;
  config.environment.num_nodes = 64;
  config.environment.seed = seed;
  config.scenario = ChaosScenario::kMildLossDrizzle;
  config.warmup = 5 * kMinute;
  config.measure = 6 * kMinute;
  config.send_interval = 10 * kSecond;
  config.adaptive = true;
  config.path_fail_threshold = 40;
  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom);
  config.workload.enabled = true;
  config.workload.shape = workload::LoadShape::kFlashCrowd;
  config.workload.mean_interarrival = 250 * kMillisecond;
  config.environment.router.overload.enabled = true;
  config.environment.router.overload.relay_queue_capacity = 64;
  config.environment.router.overload.drain_rate_per_s = 10.0;
  return config;
}

void expect_accounting_closed(const ChaosResult& result) {
  ASSERT_TRUE(result.constructed);
  EXPECT_EQ(result.messages_unaccounted, 0u);
  EXPECT_TRUE(result.ledger_closed())
      << "sent=" << result.segments_sent << " matched=" << result.acks_matched
      << " expired=" << result.segments_expired
      << " retransmitted=" << result.segments_retransmitted
      << " pending=" << result.leaked_pending_segments;
  EXPECT_EQ(result.total_leaks(), 0u);
}

TEST(OverloadTest, ShedPriorityOrderNeverTouchesControl) {
  ChaosConfig config = overload_chaos(1);
  config.environment.router.overload.shedding = true;
  const auto result = run_chaos_experiment(config);
  expect_accounting_closed(result);

  const auto total_sheds = result.relay_sheds_bulk +
                           result.relay_sheds_streaming +
                           result.relay_sheds_interactive;
  // The flash crowd saturated relays and the policy shed in priority
  // order: interactive is the most protected payload class...
  EXPECT_GT(total_sheds, 0u);
  EXPECT_LE(result.relay_sheds_interactive, result.relay_sheds_streaming);
  // ...and control/ack segments are NEVER shed, at any occupancy.
  EXPECT_EQ(result.relay_sheds_control, 0u);
  // All three classes were offered and interactive fared best.
  for (const auto& cls : result.per_class) EXPECT_GT(cls.attempts, 0u);
  const auto& bulk =
      result.per_class[static_cast<int>(workload::TrafficClass::kBulk)];
  const auto& interactive = result.per_class[static_cast<int>(
      workload::TrafficClass::kInteractive)];
  EXPECT_GE(interactive.goodput(), bulk.goodput());
}

TEST(OverloadTest, TailDropArmStillNeverShedsControl) {
  ChaosConfig config = overload_chaos(1);
  // shedding=false: a saturated relay tail-drops every payload class
  // indiscriminately — the collapse arm. The control-plane immunity is not
  // part of the policy knob; it is the invariant floor.
  const auto result = run_chaos_experiment(config);
  expect_accounting_closed(result);
  EXPECT_GT(result.relay_sheds_bulk + result.relay_sheds_streaming +
                result.relay_sheds_interactive,
            0u);
  EXPECT_EQ(result.relay_sheds_control, 0u);
}

TEST(OverloadTest, BackpressurePropagatesAndStallsStaySuspicionNeutral) {
  ChaosConfig config = overload_chaos(1);
  config.environment.router.overload.shedding = true;
  config.environment.router.overload.backpressure = true;
  config.session_backpressure = true;
  const auto result = run_chaos_experiment(config);
  expect_accounting_closed(result);

  // Sheds were signalled upstream, the initiator heard them, and timeouts
  // that backpressure explains were NOT filed as path suspicion — an
  // overloaded-but-honest relay must not be treated as byzantine.
  EXPECT_GT(result.backpressure_signals, 0u);
  EXPECT_GT(result.session_backpressure_rx, 0u);
  EXPECT_GT(result.session_stalls_suppressed, 0u);
}

TEST(OverloadTest, SessionSendBoundShedsAtTheSource) {
  ChaosConfig config = overload_chaos(1);
  config.environment.router.overload.shedding = true;
  config.max_inflight_segments = 24;  // tight: n=6 segments per message
  config.shed_low_priority = true;
  const auto result = run_chaos_experiment(config);
  expect_accounting_closed(result);

  // The bounded send queue refused messages at the source instead of
  // letting the ledger grow without bound...
  EXPECT_GT(result.session_messages_shed, 0u);
  // ...and refusals are accounted (attempts - accepted), not vanished.
  std::uint64_t attempts = 0, accepted = 0;
  for (const auto& cls : result.per_class) {
    attempts += cls.attempts;
    accepted += cls.accepted;
  }
  EXPECT_EQ(attempts - accepted, result.session_messages_shed);
  EXPECT_GT(accepted, 0u);
}

TEST(OverloadTest, AdmissionControlRefusesConstructionsAtSaturatedRelays) {
  ChaosConfig config = overload_chaos(1);
  config.environment.router.overload.shedding = true;
  config.environment.router.overload.admission_control = true;
  // Slow-draining, low-threshold relays: any relay that recently carried
  // traffic refuses new constructions for a while. Leave the session's
  // default failure threshold so paths DO fail during the flash and the
  // rebuilds probe those still-loaded relays.
  config.environment.router.overload.relay_queue_capacity = 16;
  config.environment.router.overload.drain_rate_per_s = 0.5;
  config.environment.router.overload.admission_threshold = 0.1;
  config.path_fail_threshold = 0;
  const auto result = run_chaos_experiment(config);
  ASSERT_TRUE(result.constructed);
  EXPECT_EQ(result.messages_unaccounted, 0u);

  // Saturated relays refused constructions, yet the initiator recovered:
  // construction retries found admissible relays and delivery continued.
  EXPECT_GT(result.admission_rejects, 0u);
  EXPECT_GT(result.messages_delivered, 0u);
  EXPECT_EQ(result.relay_sheds_control, 0u);
}

// Determinism: the whole overload stack — workload engine, shedding,
// backpressure, admission — is driven by forked RNG streams, so the same
// seed reproduces the same run, counters and all.
TEST(OverloadTest, OverloadRunsAreDeterministic) {
  ChaosConfig config = overload_chaos(1);
  config.environment.router.overload.shedding = true;
  config.environment.router.overload.backpressure = true;
  config.session_backpressure = true;
  const auto a = run_chaos_experiment(config);
  const auto b = run_chaos_experiment(config);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.relay_sheds_bulk, b.relay_sheds_bulk);
  EXPECT_EQ(a.relay_sheds_streaming, b.relay_sheds_streaming);
  EXPECT_EQ(a.relay_sheds_interactive, b.relay_sheds_interactive);
  EXPECT_EQ(a.backpressure_signals, b.backpressure_signals);
  EXPECT_EQ(a.session_backpressure_rx, b.session_backpressure_rx);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.per_class[i].attempts, b.per_class[i].attempts);
    EXPECT_EQ(a.per_class[i].delivered, b.per_class[i].delivered);
  }
}

}  // namespace
}  // namespace p2panon::harness
