// Parameterized end-to-end sweep over protocol configurations: every spec
// must deliver, use exactly its (m, n, k) segment budget, tolerate exactly
// k(1 - 1/r) path failures, and match the analytic bandwidth model.
#include <gtest/gtest.h>

#include "analysis/bandwidth_model.hpp"
#include "anon/protocols.hpp"
#include "anon/router.hpp"
#include "anon/session.hpp"
#include "membership/node_cache.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"

namespace p2panon::anon {
namespace {

struct SweepCase {
  ProtocolSpec spec;
  std::size_t expected_m;
  std::size_t expected_n;
  std::size_t expected_k;
};

class ProtocolSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static constexpr std::size_t kNodes = 96;
  sim::Simulator simulator;
  net::LatencyMatrix latency = net::LatencyMatrix::synthetic(kNodes, Rng(60));
  std::vector<bool> up = std::vector<bool>(kNodes, true);
  net::SimTransport transport{simulator, latency,
                              [this](NodeId n) { return up[n]; }};
  net::Demux demux{transport, kNodes};
  crypto::KeyDirectory directory;
  FastOnionCodec onion;  // size-identical to the real codec (tested)
  std::unique_ptr<AnonRouter> router;
  membership::NodeCache cache{kNodes};

  ProtocolSweepTest() {
    Rng key_rng(61);
    auto keys = directory.provision(kNodes, key_rng);
    router = std::make_unique<AnonRouter>(
        simulator, demux, onion, directory, std::move(keys),
        [this](NodeId n) { return up[n]; }, RouterConfig{}, Rng(62));
    router->start();
    for (NodeId node = 0; node < kNodes; ++node) {
      cache.heard_directly(node, 100 * kSecond, 0);
    }
  }
};

TEST_P(ProtocolSweepTest, ParametersLowerCorrectly) {
  const SweepCase& c = GetParam();
  const SessionConfig config = c.spec.session_config({});
  EXPECT_EQ(config.erasure.m, c.expected_m);
  EXPECT_EQ(config.erasure.n, c.expected_n);
  EXPECT_EQ(config.erasure.k, c.expected_k);
  config.erasure.validate();
}

TEST_P(ProtocolSweepTest, DeliversAndCountsSegments) {
  const SweepCase& c = GetParam();
  Session session(*router, cache, 0, 1, c.spec.session_config({}), Rng(63));

  ReceivedMessage received;
  router->set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });

  session.construct([&](bool ok, std::size_t) { ASSERT_TRUE(ok); });
  simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());
  ASSERT_EQ(session.established_paths(), c.expected_k);

  Bytes message(1024);
  Rng(64).fill(message.data(), message.size());
  const MessageId id = session.send_message(message);
  simulator.run_until(30 * kSecond);

  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(received.data, message);
  EXPECT_EQ(session.segments_sent(), c.expected_n);
  EXPECT_EQ(session.acks_received(), c.expected_n);
}

TEST_P(ProtocolSweepTest, ToleratesExactlyTheAdvertisedFailures) {
  const SweepCase& c = GetParam();
  const SessionConfig config = c.spec.session_config({});
  const std::size_t tolerated = config.erasure.tolerated_path_failures();

  Session session(*router, cache, 0, 1, config, Rng(65));
  std::size_t reconstructions = 0;
  router->set_message_handler(
      [&](const ReceivedMessage&) { ++reconstructions; });
  session.construct([&](bool, std::size_t) {});
  simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());

  // Kill exactly the tolerated number of paths: still delivers.
  for (std::size_t j = 0; j < tolerated; ++j) {
    up[session.paths()[j].relays[0]] = false;
  }
  session.send_message(Bytes(512, 0x11));
  simulator.run_until(40 * kSecond);
  EXPECT_EQ(reconstructions, 1u) << "with " << tolerated << " paths dead";

  // One more failure: the message must be lost.
  if (tolerated + 1 <= c.expected_k) {
    up[session.paths()[tolerated].relays[0]] = false;
    session.send_message(Bytes(512, 0x22));
    simulator.run_until(80 * kSecond);
    EXPECT_EQ(reconstructions, 1u) << "message should be lost";
  }
}

TEST_P(ProtocolSweepTest, BandwidthTracksAnalyticModel) {
  const SweepCase& c = GetParam();
  Session session(*router, cache, 0, 1, c.spec.session_config({}), Rng(66));
  session.construct([&](bool, std::size_t) {});
  simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());

  const std::uint64_t before = router->payload_bytes();
  session.send_message(Bytes(1024, 0x33));
  simulator.run_until(30 * kSecond);
  const double measured =
      static_cast<double>(router->payload_bytes() - before);

  analysis::BandwidthModel model;
  model.message_size = 1024;
  model.path_length = 3;
  const double ideal = model.full_delivery_cost(
      c.expected_k, static_cast<double>(c.expected_n) /
                        static_cast<double>(c.expected_m));
  // Measured includes framing + layer tags + sealed-core overhead: at
  // most ~200 bytes per hop-message on top of the payload-only model
  // (k * (L + 1) hop-messages per delivery), never below it.
  EXPECT_GE(measured, ideal);
  const double overhead_allowance =
      200.0 * static_cast<double>(c.expected_k) * 4.0;
  EXPECT_LE(measured, ideal + overhead_allowance);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolSweepTest,
    ::testing::Values(
        SweepCase{ProtocolSpec::curmix(MixChoice::kRandom), 1, 1, 1},
        SweepCase{ProtocolSpec::curmix(MixChoice::kBiased), 1, 1, 1},
        SweepCase{ProtocolSpec::simrep(2, MixChoice::kRandom), 1, 2, 2},
        SweepCase{ProtocolSpec::simrep(3, MixChoice::kBiased), 1, 3, 3},
        SweepCase{ProtocolSpec::simrep(4, MixChoice::kRandom), 1, 4, 4},
        SweepCase{ProtocolSpec::simera(2, 2, MixChoice::kRandom), 1, 2, 2},
        SweepCase{ProtocolSpec::simera(4, 2, MixChoice::kRandom), 2, 4, 4},
        SweepCase{ProtocolSpec::simera(4, 4, MixChoice::kBiased), 1, 4, 4},
        SweepCase{ProtocolSpec::simera(6, 2, MixChoice::kRandom), 3, 6, 6},
        SweepCase{ProtocolSpec::simera(6, 3, MixChoice::kBiased), 2, 6, 6},
        SweepCase{ProtocolSpec::simera(8, 2, MixChoice::kRandom), 4, 8, 8},
        SweepCase{ProtocolSpec::simera(12, 3, MixChoice::kRandom), 4, 12,
                  12}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      std::string name = param_info.param.spec.name();
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(WeightedAllocationSessionTest, DeliversWithWeightedSpread) {
  // End-to-end with the future-work weighted allocation enabled.
  sim::Simulator simulator;
  const auto latency = net::LatencyMatrix::synthetic(64, Rng(70));
  net::SimTransport transport(simulator, latency, [](NodeId) { return true; });
  net::Demux demux(transport, 64);
  crypto::KeyDirectory directory;
  Rng key_rng(71);
  auto keys = directory.provision(64, key_rng);
  FastOnionCodec onion;
  AnonRouter router(simulator, demux, onion, directory, std::move(keys),
                    [](NodeId) { return true; }, RouterConfig{}, Rng(72));
  router.start();
  membership::NodeCache cache(64);
  const SimTime now = 0;
  // Heterogeneous predictors: half old nodes, half young.
  for (NodeId node = 0; node < 64; ++node) {
    cache.heard_directly(node,
                         (node % 2 ? 2000 : 50) * kSecond, now);
  }

  SessionConfig config =
      ProtocolSpec::simera(4, 2, MixChoice::kBiased).session_config({});
  config.erasure.m = 2;
  config.erasure.n = 8;
  config.erasure.k = 4;
  config.weighted_allocation = true;
  Session session(router, cache, 0, 1, config, Rng(73));

  ReceivedMessage received;
  router.set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });
  session.construct([&](bool, std::size_t) {});
  simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());
  Bytes message(1024, 0x77);
  const MessageId id = session.send_message(message);
  simulator.run_until(30 * kSecond);
  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(received.data, message);
  EXPECT_EQ(session.segments_sent(), 8u);
}

}  // namespace
}  // namespace p2panon::anon
