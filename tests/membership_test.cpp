// Tests for liveness prediction, the node cache merge rules, gossip
// dissemination and the OneHop variant.
#include <gtest/gtest.h>

#include <cmath>

#include "churn/churn_model.hpp"
#include "churn/distributions.hpp"
#include "membership/gossip.hpp"
#include "membership/liveness.hpp"
#include "membership/node_cache.hpp"
#include "membership/onehop.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"

namespace p2panon::membership {
namespace {

// --- liveness predictor (Eqs. 1-3) ----------------------------------------------

TEST(LivenessTest, PredictorEquation2) {
  EXPECT_DOUBLE_EQ(liveness_predictor(100, 100), 0.5);
  EXPECT_DOUBLE_EQ(liveness_predictor(300, 100), 0.75);
  EXPECT_DOUBLE_EQ(liveness_predictor(0, 100), 0.0);   // never seen alive
  EXPECT_DOUBLE_EQ(liveness_predictor(100, 0), 1.0);   // just heard
  EXPECT_DOUBLE_EQ(liveness_predictor(100, -5), 1.0);  // clamped
}

TEST(LivenessTest, PredictorEquation3AddsStaleness) {
  // q = alive / (alive + since + (now - last)).
  EXPECT_DOUBLE_EQ(liveness_predictor(100, 50, 1000, 1050), 0.5);
  // Fresher local record -> higher q.
  EXPECT_GT(liveness_predictor(100, 0, 1000, 1001),
            liveness_predictor(100, 0, 1000, 2000));
}

TEST(LivenessTest, AliveProbabilityEquation1) {
  EXPECT_NEAR(alive_probability(0.5, 0.83), std::pow(0.5, 0.83), 1e-12);
  EXPECT_DOUBLE_EQ(alive_probability(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(alive_probability(1.0, 1.0), 1.0);
  // Monotone in q, as the paper's biased choice relies on.
  EXPECT_LT(alive_probability(0.3, 0.83), alive_probability(0.7, 0.83));
}

// --- node cache merge rules -------------------------------------------------------

TEST(NodeCacheTest, DirectObservationResetsSince) {
  NodeCache cache(8);
  cache.heard_directly(3, 500 * kSecond, 1000 * kSecond);
  const auto* entry = cache.find(3);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->alive);
  EXPECT_EQ(entry->dt_alive, 500 * kSecond);
  EXPECT_EQ(entry->dt_since, 0);
  EXPECT_EQ(entry->t_last, 1000 * kSecond);
}

TEST(NodeCacheTest, IndirectAcceptedOnlyIfFresher) {
  NodeCache cache(8);
  // Record at t = 1000 s with dt_since 100 s.
  cache.merge_indirect(3, LivenessInfo{200 * kSecond, 100 * kSecond, true},
                       1000 * kSecond);
  // At t = 1050 s the effective staleness is 150 s. A report with
  // dt_since 200 s is older -> rejected.
  EXPECT_FALSE(cache.merge_indirect(
      3, LivenessInfo{900 * kSecond, 200 * kSecond, true}, 1050 * kSecond));
  EXPECT_EQ(cache.find(3)->dt_alive, 200 * kSecond);
  // A report with dt_since 50 s is fresher -> accepted.
  EXPECT_TRUE(cache.merge_indirect(
      3, LivenessInfo{900 * kSecond, 50 * kSecond, true}, 1050 * kSecond));
  EXPECT_EQ(cache.find(3)->dt_alive, 900 * kSecond);
}

TEST(NodeCacheTest, UnknownNodeAlwaysAccepted) {
  NodeCache cache(8);
  EXPECT_TRUE(cache.merge_indirect(
      5, LivenessInfo{10 * kSecond, 99999 * kSecond, true}, 0));
  EXPECT_EQ(cache.known_count(), 1u);
}

TEST(NodeCacheTest, ObservationFoldsLocalStaleness) {
  NodeCache cache(8);
  cache.heard_directly(2, 100 * kSecond, 1000 * kSecond);
  const auto obs = cache.observation(2, 1030 * kSecond);
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->dt_since, 30 * kSecond);  // saved 0 + 30 s local age
  EXPECT_FALSE(cache.observation(7, 0).has_value());
}

TEST(NodeCacheTest, PredictorZeroForDeadOrUnknown) {
  NodeCache cache(8);
  EXPECT_EQ(cache.predictor(1, 0), 0.0);
  cache.heard_left_directly(1, 100 * kSecond);
  EXPECT_EQ(cache.predictor(1, 200 * kSecond), 0.0);
  cache.heard_directly(2, 300 * kSecond, 100 * kSecond);
  EXPECT_GT(cache.predictor(2, 200 * kSecond), 0.0);
}

TEST(NodeCacheTest, TopByPredictorOrdersByQ) {
  NodeCache cache(16);
  const SimTime now = 1000 * kSecond;
  // Node 1: long uptime, fresh; node 2: short uptime; node 3: stale.
  cache.heard_directly(1, 900 * kSecond, now);
  cache.heard_directly(2, 10 * kSecond, now);
  cache.merge_indirect(3, LivenessInfo{900 * kSecond, 500 * kSecond, true},
                       now);
  const auto top = cache.top_by_predictor(3, now, {});
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  // Too few known nodes -> empty result.
  EXPECT_TRUE(cache.top_by_predictor(4, now, {}).empty());
}

TEST(NodeCacheTest, SampleKnownExcludes) {
  NodeCache cache(8);
  for (NodeId node = 0; node < 6; ++node) {
    cache.heard_directly(node, 0, 0);
  }
  Rng rng(1);
  const auto picks = cache.sample_known(4, rng, {0, 1});
  ASSERT_EQ(picks.size(), 4u);
  for (NodeId node : picks) EXPECT_GE(node, 2u);
  EXPECT_TRUE(cache.sample_known(5, rng, {0, 1}).empty());  // only 4 left
}

TEST(NodeCacheTest, RandomSamplingIgnoresLiveness) {
  // The paper's random mix choice doesn't consult liveness: dead-believed
  // nodes must be sampled too.
  NodeCache cache(4);
  cache.heard_left_directly(1, 0);
  cache.heard_left_directly(2, 0);
  cache.heard_left_directly(3, 0);
  Rng rng(2);
  EXPECT_EQ(cache.sample_known(3, rng, {}).size(), 3u);
}

// --- behavioral suspicion (corruption resilience extension) ---------------

TEST(SuspicionTest, DisabledIsInertAndByteIdentical) {
  NodeCache cache(8);
  for (NodeId node = 0; node < 6; ++node) cache.heard_directly(node, 0, 0);
  // Reporting without enable_suspicion is a no-op.
  cache.report_suspicion(2, 100.0, 0);
  EXPECT_FALSE(cache.suspicion_enabled());
  EXPECT_EQ(cache.suspicion(2, 0), 0.0);
  EXPECT_FALSE(cache.quarantined(2, 0));
  EXPECT_EQ(cache.quarantined_count(0), 0u);
  // The clock-aware overload draws identically to the legacy one while
  // suspicion is off — same RNG stream, same picks.
  Rng legacy(7);
  Rng aware(7);
  EXPECT_EQ(cache.sample_known(4, legacy, {}),
            cache.sample_known(4, aware, {}, 123 * kSecond, true));
}

TEST(SuspicionTest, ScoreDecaysExponentially) {
  NodeCache cache(8);
  cache.heard_directly(3, 0, 0);
  SuspicionConfig config;
  config.half_life = 5 * kMinute;
  cache.enable_suspicion(config);
  cache.report_suspicion(3, 2.0, 0);
  EXPECT_DOUBLE_EQ(cache.suspicion(3, 0), 2.0);
  // One half-life -> half the score; two -> a quarter.
  EXPECT_NEAR(cache.suspicion(3, 5 * kMinute), 1.0, 1e-9);
  EXPECT_NEAR(cache.suspicion(3, 10 * kMinute), 0.5, 1e-9);
  // Repeated evidence accrues on top of the decayed score.
  cache.report_suspicion(3, 1.0, 5 * kMinute);
  EXPECT_NEAR(cache.suspicion(3, 5 * kMinute), 2.0, 1e-9);
}

TEST(SuspicionTest, QuarantineExcludesFromSelectionUntilDecayedClean) {
  NodeCache cache(8);
  const SimTime now = 1000 * kSecond;
  for (NodeId node = 0; node < 5; ++node) {
    cache.heard_directly(node, 900 * kSecond, now);
  }
  SuspicionConfig config;
  config.half_life = 5 * kMinute;
  config.quarantine_threshold = 2.0;
  cache.enable_suspicion(config);
  cache.report_suspicion(1, 4.0, now);
  ASSERT_TRUE(cache.quarantined(1, now));
  EXPECT_EQ(cache.quarantined_count(now), 1u);

  // Random mix choice honoring quarantine never picks node 1...
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    for (NodeId pick : cache.sample_known(3, rng, {}, now, true)) {
      EXPECT_NE(pick, 1u);
    }
  }
  // ...and neither does the biased choice, regardless of its predictor.
  const auto top = cache.top_by_predictor(4, now, {});
  ASSERT_EQ(top.size(), 4u);
  for (NodeId pick : top) EXPECT_NE(pick, 1u);

  // Two half-lives later the score is 1.0 < threshold: readmitted.
  const SimTime later = now + 10 * kMinute;
  EXPECT_FALSE(cache.quarantined(1, later));
  EXPECT_EQ(cache.quarantined_count(later), 0u);
  bool seen = false;
  for (int i = 0; i < 50 && !seen; ++i) {
    for (NodeId pick : cache.sample_known(3, rng, {}, later, true)) {
      seen = seen || pick == 1u;
    }
  }
  EXPECT_TRUE(seen);
}

TEST(SuspicionTest, BiasedChoiceDemotesSuspectedButCleanNodes) {
  NodeCache cache(8);
  const SimTime now = 1000 * kSecond;
  // Two equally-live candidates plus a clearly worse third.
  cache.heard_directly(1, 900 * kSecond, now);
  cache.heard_directly(2, 900 * kSecond, now);
  cache.heard_directly(3, 1 * kSecond, now);
  SuspicionConfig config;
  config.quarantine_threshold = 100.0;  // never quarantine in this test
  config.bias_penalty = 1.0;
  cache.enable_suspicion(config);
  // Sub-quarantine suspicion on node 1 drops it below its equally-live
  // peer: q/(1+s) ranks node 2 first.
  cache.report_suspicion(1, 1.0, now);
  const auto top = cache.top_by_predictor(2, now, {});
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
}

TEST(SuspicionTest, ClearResetsSuspicion) {
  NodeCache cache(4);
  cache.heard_directly(1, 0, 0);
  cache.enable_suspicion({});
  cache.report_suspicion(1, 10.0, 0);
  EXPECT_TRUE(cache.quarantined(1, 0));
  cache.clear();
  EXPECT_EQ(cache.suspicion(1, 0), 0.0);
  EXPECT_FALSE(cache.quarantined(1, 0));
}

// --- gossip dissemination ----------------------------------------------------------

struct GossipFixture {
  static constexpr std::size_t kNodes = 64;
  sim::Simulator simulator;
  net::LatencyMatrix latency = net::LatencyMatrix::synthetic(kNodes, Rng(3));
  churn::ExponentialLifetime dist{3600.0};
  churn::ChurnModel churn_model{simulator, kNodes, dist, Rng(4), 1.0};
  net::SimTransport transport{simulator, latency,
                              [this](NodeId n) { return churn_model.is_up(n); }};
  net::Demux demux{transport, kNodes};
};

TEST(GossipTest, LeaveDisseminatesToMostNodes) {
  GossipFixture fx;
  GossipConfig config;
  GossipMembership gossip(fx.simulator, fx.demux, fx.churn_model, config,
                          Rng(5));
  gossip.start();
  fx.churn_model.start();
  fx.simulator.run_until(10 * kSecond);

  // Kill node 7 via the churn model's own machinery: force by... the model
  // has no kill API, so instead verify accuracy under natural churn with a
  // fast-churn fixture below; here check initial seeding correctness.
  EXPECT_GT(gossip.belief_accuracy(), 0.99);
}

TEST(GossipTest, BeliefAccuracyStaysHighUnderChurn) {
  sim::Simulator simulator;
  const std::size_t n = 96;
  auto latency = net::LatencyMatrix::synthetic(n, Rng(6));
  churn::ExponentialLifetime dist(600.0);  // 10 min sessions: heavy churn
  churn::ChurnModel churn_model(simulator, n, dist, Rng(7), 0.5);
  net::SimTransport transport(simulator, latency,
                              [&](NodeId id) { return churn_model.is_up(id); });
  net::Demux demux(transport, n);
  GossipConfig config;
  GossipMembership gossip(simulator, demux, churn_model, config, Rng(8));
  gossip.start();
  churn_model.start();
  simulator.run_until(20 * kMinute);
  // With 10-minute sessions and second-scale dissemination, live nodes
  // should believe correctly about the vast majority of peers.
  EXPECT_GT(gossip.belief_accuracy(), 0.9);
  EXPECT_GT(gossip.gossip_messages_sent(), 0u);
}

TEST(GossipTest, UptimeEstimatesReachOtherCaches) {
  GossipFixture fx;
  GossipConfig config;
  GossipMembership gossip(fx.simulator, fx.demux, fx.churn_model, config,
                          Rng(9));
  gossip.start();
  fx.churn_model.start();
  fx.simulator.run_until(5 * kMinute);
  // Node 0 has been up ~5 minutes (pinned by no-churn distribution); some
  // other node's cache should reflect a predictor well above zero with
  // dt_alive near 5 minutes.
  std::size_t informed = 0;
  for (NodeId owner = 1; owner < GossipFixture::kNodes; ++owner) {
    const auto* entry = gossip.cache(owner).find(0);
    if (entry != nullptr && entry->alive &&
        entry->dt_alive > 3 * kMinute) {
      ++informed;
    }
  }
  EXPECT_GT(informed, GossipFixture::kNodes / 2);
}

TEST(GossipTest, PredictorRanksLongLivedNodesHigher) {
  // Two nodes with very different uptimes; after gossip, a third node's
  // biased choice should prefer the older one.
  sim::Simulator simulator;
  const std::size_t n = 16;
  auto latency = net::LatencyMatrix::synthetic(n, Rng(10));
  churn::ExponentialLifetime dist(1e9);
  churn::ChurnModel churn_model(simulator, n, dist, Rng(11), 1.0);
  net::SimTransport transport(simulator, latency,
                              [&](NodeId id) { return churn_model.is_up(id); });
  net::Demux demux(transport, n);
  GossipConfig config;
  config.seed_full_membership = true;
  GossipMembership gossip(simulator, demux, churn_model, config, Rng(12));
  gossip.start();
  churn_model.start();
  simulator.run_until(10 * kMinute);
  // All nodes have equal uptime here; predictor values should be close to
  // 1 for everyone (fresh gossip, growing dt_alive).
  const auto& cache = gossip.cache(5);
  double min_q = 1.0;
  for (NodeId node = 0; node < n; ++node) {
    if (node == 5) continue;
    min_q = std::min(min_q, cache.predictor(node, simulator.now()));
  }
  EXPECT_GT(min_q, 0.5);
}

TEST(GossipTest, RejoinResetsPerceivedUptime) {
  // A node that cycles down and back up must be seen with a small
  // dt_alive afterwards — biased mix choice depends on this reset.
  sim::Simulator simulator;
  const std::size_t n = 48;
  auto latency = net::LatencyMatrix::synthetic(n, Rng(20));
  // Custom churn: everyone stable except node 7, which we flip by using a
  // churn model with enormous sessions and driving node 7's state through
  // subscription... ChurnModel has no external kill, so approximate with
  // a short-session model where we observe *some* node cycling.
  churn::ParetoLifetime dist = churn::ParetoLifetime::with_median(300.0);
  churn::ChurnModel churn_model(simulator, n, dist, Rng(21), 1.0);
  net::SimTransport transport(simulator, latency,
                              [&](NodeId id) { return churn_model.is_up(id); });
  net::Demux demux(transport, n);
  membership::GossipMembership gossip(simulator, demux, churn_model,
                                      membership::GossipConfig{}, Rng(22));

  // Track a node that leaves and rejoins during the run.
  NodeId cycled = kInvalidNode;
  SimTime rejoin_time = 0;
  std::vector<bool> left(n, false);
  churn_model.subscribe([&](NodeId node, bool up, SimTime when) {
    if (!up) {
      left[node] = true;
    } else if (left[node] && cycled == kInvalidNode &&
               when > 10 * kMinute) {
      cycled = node;
      rejoin_time = when;
    }
  });

  gossip.start();
  churn_model.start();
  simulator.run_until(25 * kMinute);
  ASSERT_NE(cycled, kInvalidNode) << "no node cycled in 25 minutes";
  if (!churn_model.is_up(cycled)) return;  // left again; nothing to check

  // Pick a live observer and compare its view of the cycled node's uptime
  // with ground truth: it must reflect the rejoin, not the total history.
  const double truth =
      churn_model.alive_seconds(cycled, simulator.now());
  for (NodeId observer = 0; observer < n; ++observer) {
    if (!churn_model.is_up(observer) || observer == cycled) continue;
    const auto* entry = gossip.cache(observer).find(cycled);
    if (entry == nullptr || !entry->alive) continue;
    EXPECT_LT(to_seconds(entry->dt_alive), truth + 120.0)
        << "observer " << observer << " sees stale pre-cycle uptime";
  }
}

// --- OneHop variant -------------------------------------------------------------------

TEST(OneHopTest, UnitLeaderIsLowestLiveId) {
  GossipFixture fx;
  OneHopConfig config;
  config.units = 8;
  OneHopMembership onehop(fx.simulator, fx.demux, fx.churn_model, config,
                          Rng(13));
  EXPECT_EQ(onehop.unit_of(0), 0u);
  EXPECT_EQ(onehop.unit_of(63), 7u);
  EXPECT_EQ(onehop.unit_leader(0), 0u);  // all up in this fixture
}

TEST(OneHopTest, MaintainsAccuracyUnderChurn) {
  sim::Simulator simulator;
  const std::size_t n = 96;
  auto latency = net::LatencyMatrix::synthetic(n, Rng(14));
  churn::ExponentialLifetime dist(600.0);
  churn::ChurnModel churn_model(simulator, n, dist, Rng(15), 0.5);
  net::SimTransport transport(simulator, latency,
                              [&](NodeId id) { return churn_model.is_up(id); });
  net::Demux demux(transport, n);
  OneHopConfig config;
  config.units = 12;
  OneHopMembership onehop(simulator, demux, churn_model, config, Rng(16));
  onehop.start();
  churn_model.start();
  simulator.run_until(20 * kMinute);
  EXPECT_GT(onehop.belief_accuracy(), 0.85);
  EXPECT_GT(onehop.messages_sent(), 0u);
}

// --- wire helpers ----------------------------------------------------------------------

TEST(GossipWireTest, RecordRoundTrip) {
  Bytes buffer;
  LivenessInfo info;
  info.alive = true;
  info.dt_alive = 123 * kSecond;
  info.dt_since = 45 * kSecond;
  encode_record(buffer, 42, info);
  EXPECT_EQ(buffer.size(), kRecordWireSize);
  std::vector<DecodedRecord> decoded;
  ASSERT_TRUE(decode_records(buffer, 0, 1, decoded));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].subject, 42u);
  EXPECT_TRUE(decoded[0].info.alive);
  EXPECT_EQ(decoded[0].info.dt_alive, 123 * kSecond);
  EXPECT_EQ(decoded[0].info.dt_since, 45 * kSecond);
  // Truncated input rejected.
  std::vector<DecodedRecord> out;
  EXPECT_FALSE(decode_records(buffer, 0, 2, out));
}

}  // namespace
}  // namespace p2panon::membership
