// Tests for the post-paper extensions: bootstrap confidence intervals,
// churn trace record/replay, and the adaptive (k, r) controller.
#include <gtest/gtest.h>

#include <functional>

#include "anon/adaptive.hpp"
#include "anon/protocols.hpp"
#include "churn/churn_model.hpp"
#include "churn/distributions.hpp"
#include "churn/trace.hpp"
#include "membership/node_cache.hpp"
#include "metrics/bootstrap.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"

namespace p2panon {
namespace {

// --- bootstrap ---------------------------------------------------------------------

TEST(BootstrapTest, CiCoversTrueMeanOfNormalishData) {
  Rng rng(1);
  std::vector<double> samples(200);
  for (auto& s : samples) {
    s = 10.0 + rng.uniform(-1, 1) + rng.uniform(-1, 1);  // mean 10
  }
  const auto ci = metrics::bootstrap_mean_ci(samples);
  EXPECT_GT(ci.mean, 9.7);
  EXPECT_LT(ci.mean, 10.3);
  EXPECT_LE(ci.lo, ci.mean);
  EXPECT_GE(ci.hi, ci.mean);
  EXPECT_LE(ci.lo, 10.0);
  EXPECT_GE(ci.hi, 10.0);
  // Interval is tight for 200 near-uniform samples.
  EXPECT_LT(ci.hi - ci.lo, 0.5);
}

TEST(BootstrapTest, WiderIntervalsForHeavyTails) {
  Rng rng(2);
  std::vector<double> light(30), heavy(30);
  for (auto& s : light) s = rng.uniform(900, 1100);
  for (auto& s : heavy) s = rng.pareto(1.1, 300.0);  // infinite-ish variance
  const auto light_ci = metrics::bootstrap_mean_ci(light);
  const auto heavy_ci = metrics::bootstrap_mean_ci(heavy);
  EXPECT_GT((heavy_ci.hi - heavy_ci.lo) / heavy_ci.mean,
            (light_ci.hi - light_ci.lo) / light_ci.mean);
}

TEST(BootstrapTest, DegenerateInputs) {
  EXPECT_EQ(metrics::bootstrap_mean_ci({}).mean, 0.0);
  const auto single = metrics::bootstrap_mean_ci({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.lo, 5.0);
  EXPECT_DOUBLE_EQ(single.hi, 5.0);
}

TEST(BootstrapTest, ProbabilityGreaterSeparatesClearCases) {
  std::vector<double> high = {10, 11, 12, 9, 10, 11};
  std::vector<double> low = {1, 2, 1, 3, 2, 1};
  EXPECT_GT(metrics::bootstrap_probability_greater(high, low), 0.99);
  EXPECT_LT(metrics::bootstrap_probability_greater(low, high), 0.01);
  // Identical sets: about a coin flip.
  const double p = metrics::bootstrap_probability_greater(high, high);
  EXPECT_GT(p, 0.3);
  EXPECT_LT(p, 0.7);
}

// --- churn trace ----------------------------------------------------------------------

TEST(ChurnTraceTest, SerializeParseRoundTrip) {
  std::vector<churn::ChurnEvent> events = {
      {1000, 3, false}, {2000, 5, true}, {2000, 3, true}, {9000, 5, false}};
  const auto parsed = churn::parse_trace(churn::serialize_trace(events));
  EXPECT_EQ(parsed, events);
}

TEST(ChurnTraceTest, ParseRejectsMalformed) {
  EXPECT_THROW(churn::parse_trace("12 three 1\n"), std::invalid_argument);
  EXPECT_THROW(churn::parse_trace("12 3 7\n"), std::invalid_argument);
  EXPECT_THROW(churn::parse_trace("100 1 0\n50 2 1\n"),  // out of order
               std::invalid_argument);
  // Comments and blanks are fine.
  EXPECT_TRUE(churn::parse_trace("# header\n\n10 1 0\n").size() == 1);
}

TEST(ChurnTraceTest, RecordThenReplayReproducesChurnExactly) {
  // Record a live churn model...
  std::vector<churn::ChurnEvent> recorded;
  std::vector<bool> initial_state;
  {
    sim::Simulator simulator;
    const auto dist = churn::ParetoLifetime::with_median(300.0);
    churn::ChurnModel model(simulator, 32, dist, Rng(7), 0.5);
    initial_state.resize(32);
    for (NodeId node = 0; node < 32; ++node) {
      initial_state[node] = model.is_up(node);
    }
    churn::TraceRecorder recorder;
    model.subscribe(recorder.listener());
    model.start();
    simulator.run_until(20 * kMinute);
    recorded = recorder.events();
  }
  ASSERT_GT(recorded.size(), 20u);

  // ...then replay and check the sequence of states matches event-for-event.
  sim::Simulator simulator;
  churn::TraceChurn replay(simulator, 32, recorded, initial_state);
  std::vector<churn::ChurnEvent> replayed;
  replay.subscribe([&](NodeId node, bool up, SimTime when) {
    replayed.push_back({when, node, up});
    EXPECT_EQ(replay.is_up(node), up);
  });
  replay.start();
  simulator.run_until(20 * kMinute);
  EXPECT_EQ(replayed, recorded);
}

TEST(ChurnTraceTest, FromTraceInfersInitialState) {
  sim::Simulator simulator;
  // Node 0's first event is a leave -> starts up; node 1's first event is
  // a join -> starts down; node 2 has no events -> starts up.
  std::vector<churn::ChurnEvent> events = {{100, 0, false}, {200, 1, true}};
  auto replay = churn::TraceChurn::from_trace(simulator, 3, events);
  EXPECT_TRUE(replay.is_up(0));
  EXPECT_FALSE(replay.is_up(1));
  EXPECT_TRUE(replay.is_up(2));
  replay.start();
  simulator.run();
  EXPECT_FALSE(replay.is_up(0));
  EXPECT_TRUE(replay.is_up(1));
  EXPECT_EQ(replay.up_count(), 2u);
}

// --- adaptive controller ----------------------------------------------------------------

struct AdaptiveFixture {
  static constexpr std::size_t kNodes = 64;
  sim::Simulator simulator;
  net::LatencyMatrix latency = net::LatencyMatrix::synthetic(kNodes, Rng(90));
  std::vector<bool> up = std::vector<bool>(kNodes, true);
  net::SimTransport transport{simulator, latency,
                              [this](NodeId n) { return up[n]; }};
  net::Demux demux{transport, kNodes};
  crypto::KeyDirectory directory;
  anon::FastOnionCodec onion;
  std::unique_ptr<anon::AnonRouter> router;
  membership::NodeCache cache{kNodes};
  Rng rng{91};

  AdaptiveFixture() {
    Rng key_rng(92);
    auto keys = directory.provision(kNodes, key_rng);
    router = std::make_unique<anon::AnonRouter>(
        simulator, demux, onion, directory, std::move(keys),
        [this](NodeId n) { return up[n]; }, anon::RouterConfig{}, rng.fork());
    router->start();
    for (NodeId node = 0; node < kNodes; ++node) {
      cache.heard_directly(node, 100 * kSecond, 0);
    }
  }

  anon::AdaptiveConfig adaptive_config() {
    anon::AdaptiveConfig config;
    config.session =
        anon::ProtocolSpec::simera(2, 2, anon::MixChoice::kRandom)
            .session_config({});
    config.session.ack_timeout = 2 * kSecond;
    config.evaluation_interval = 30 * kSecond;
    config.min_observations = 8;
    config.target_success = 0.99;
    return config;
  }
};

TEST(AdaptiveControllerTest, StaysPutWhenHealthy) {
  AdaptiveFixture fx;
  anon::AdaptiveSessionController controller(
      *fx.router, fx.cache, 0, 1, fx.adaptive_config(), Rng(93));
  bool ready = false;
  controller.start([&](bool ok) { ready = ok; });
  fx.simulator.run_until(10 * kSecond);
  ASSERT_TRUE(ready);

  for (int i = 0; i < 20; ++i) {
    fx.simulator.schedule_at((10 + 10 * i) * kSecond, [&] {
      controller.send_message(Bytes(256, 0x1a));
    });
  }
  fx.simulator.run_until(5 * kMinute);
  // Everything acked -> estimated success ~1 -> cheapest advice is the
  // smallest r, which the starting (2, 2) already satisfies... the
  // advisor may still suggest r = 1 (no redundancy); accept either no
  // change or a downgrade, but never an escalation.
  EXPECT_LE(controller.current_parameters().n /
                std::max<std::size_t>(1, controller.current_parameters().m),
            2u);
  EXPECT_GT(controller.estimated_path_success(), 0.9);
}

TEST(AdaptiveControllerTest, EscalatesRedundancyUnderLoss) {
  AdaptiveFixture fx;
  anon::AdaptiveSessionController controller(
      *fx.router, fx.cache, 0, 1, fx.adaptive_config(), Rng(94));
  controller.start([](bool) {});
  fx.simulator.run_until(5 * kSecond);

  std::vector<std::pair<anon::ErasureParams, anon::ErasureParams>> changes;
  controller.set_reconfigure_handler(
      [&](const anon::ErasureParams& from, const anon::ErasureParams& to,
          double) { changes.emplace_back(from, to); });

  // Rolling churn: kill 6% of the live relays every 25 s for 5 minutes.
  // (A one-shot kill would be filtered out immediately — reconstruction
  // only ever builds over live relays — so ongoing deaths are what the
  // redundancy has to absorb, exactly like real churn.)
  // The killer closure lives in this frame (alive through run_until), so
  // event copies capture it by reference — a shared self-holding closure
  // would be a refcount cycle LeakSanitizer flags.
  Rng kill_rng(95);
  std::function<void()> killer;
  killer = [&] {
    if (to_seconds(fx.simulator.now()) > 300.0) return;
    for (NodeId node = 2; node < AdaptiveFixture::kNodes; ++node) {
      if (fx.up[node] && kill_rng.bernoulli(0.06)) fx.up[node] = false;
    }
    fx.simulator.schedule_after(25 * kSecond, killer);
  };
  fx.simulator.schedule_at(10 * kSecond, killer);

  for (int i = 0; i < 55; ++i) {
    fx.simulator.schedule_at((12 + 10 * i) * kSecond, [&] {
      controller.send_message(Bytes(256, 0x2b));
    });
  }
  fx.simulator.run_until(10 * kMinute);

  EXPECT_LT(controller.estimated_path_success(), 0.85);
  ASSERT_GE(controller.reconfigurations(), 1u);
  const auto& final_params = controller.current_parameters();
  const double final_r = static_cast<double>(final_params.n) /
                         static_cast<double>(final_params.m);
  EXPECT_GT(final_r, 1.0) << "should run with redundancy under churn";
}

TEST(AdaptiveControllerTest, MigrationIsMakeBeforeBreak) {
  AdaptiveFixture fx;
  anon::AdaptiveSessionController controller(
      *fx.router, fx.cache, 0, 1, fx.adaptive_config(), Rng(96));
  controller.start([](bool) {});
  fx.simulator.run_until(5 * kSecond);

  // Force loss, then watch: at every reconfiguration the new session is
  // already constructed (ready) when the handler fires.
  for (NodeId node = 2; node < AdaptiveFixture::kNodes; ++node) {
    if (node % 3 == 0) fx.up[node] = false;
  }
  bool saw_ready_new_session = true;
  controller.set_reconfigure_handler(
      [&](const anon::ErasureParams&, const anon::ErasureParams&, double) {
        saw_ready_new_session =
            saw_ready_new_session && controller.active_session()->ready();
      });
  for (int i = 0; i < 40; ++i) {
    fx.simulator.schedule_at((10 + 10 * i) * kSecond, [&] {
      controller.send_message(Bytes(256, 0x3c));
    });
  }
  fx.simulator.run_until(10 * kMinute);
  EXPECT_TRUE(saw_ready_new_session);
}

}  // namespace
}  // namespace p2panon
