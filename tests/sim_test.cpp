// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace p2panon::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(30, [&] { fired.push_back(3); });
  queue.schedule(10, [&] { fired.push_back(1); });
  queue.schedule(20, [&] { fired.push_back(2); });
  while (!queue.empty()) {
    auto ready = queue.pop();
    ready.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeFiresInScheduleOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const EventId id = queue.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(queue.pending(id));
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.pending(id));
  EXPECT_FALSE(queue.cancel(id));  // double-cancel is a no-op
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_time(), kNeverTime);
}

TEST(EventQueueTest, CancelAfterFireIsNoOp) {
  EventQueue queue;
  const EventId id = queue.schedule(1, [] {});
  queue.pop().fn();
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue queue;
  const EventId a = queue.schedule(1, [] {});
  queue.schedule(2, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1u);
  queue.pop();
  EXPECT_TRUE(queue.empty());
}

TEST(SimulatorTest, TimeAdvancesWithEvents) {
  Simulator simulator;
  SimTime seen = -1;
  simulator.schedule_at(100, [&] { seen = simulator.now(); });
  simulator.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(simulator.now(), 100);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int count = 0;
  simulator.schedule_at(50, [&] { ++count; });
  simulator.schedule_at(150, [&] { ++count; });
  simulator.run_until(100);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(simulator.now(), 100);  // clock lands on the deadline
  EXPECT_EQ(simulator.pending_events(), 1u);
  simulator.run();
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, ScheduleInPastThrows) {
  Simulator simulator;
  simulator.schedule_at(10, [] {});
  simulator.run();
  EXPECT_THROW(simulator.schedule_at(5, [] {}), std::invalid_argument);
  // Negative delays clamp instead.
  bool ran = false;
  simulator.schedule_after(-100, [&] { ran = true; });
  simulator.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StopInterruptsRun) {
  Simulator simulator;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    simulator.schedule_at(i, [&] {
      ++count;
      if (count == 3) simulator.stop();
    });
  }
  simulator.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(simulator.pending_events(), 7u);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator simulator;
  std::vector<SimTime> times;
  std::function<void()> chain = [&] {
    times.push_back(simulator.now());
    if (times.size() < 5) simulator.schedule_after(10, chain);
  };
  simulator.schedule_at(0, chain);
  simulator.run();
  EXPECT_EQ(times, (std::vector<SimTime>{0, 10, 20, 30, 40}));
}

TEST(SimulatorTest, RunStepsBounded) {
  Simulator simulator;
  int count = 0;
  for (int i = 1; i <= 5; ++i) simulator.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(simulator.run_steps(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, ResetClearsEverything) {
  Simulator simulator;
  simulator.schedule_at(10, [] {});
  simulator.run();
  simulator.schedule_at(20, [] {});
  simulator.reset();
  EXPECT_EQ(simulator.now(), 0);
  EXPECT_EQ(simulator.pending_events(), 0u);
  EXPECT_EQ(simulator.executed_events(), 0u);
}

TEST(PeriodicTaskTest, FiresRepeatedly) {
  Simulator simulator;
  int count = 0;
  PeriodicTask task(simulator, 10, [&] { ++count; });
  task.start();
  simulator.run_until(55);
  EXPECT_EQ(count, 5);  // t = 10, 20, 30, 40, 50
}

TEST(PeriodicTaskTest, CancelStopsFiring) {
  Simulator simulator;
  int count = 0;
  PeriodicTask task(simulator, 10, [&] {
    ++count;
    if (count == 2) task.cancel();
  });
  task.start();
  simulator.run_until(1000);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTaskTest, DestructorCancels) {
  Simulator simulator;
  int count = 0;
  {
    PeriodicTask task(simulator, 10, [&] { ++count; });
    task.start();
    simulator.run_until(25);
  }
  simulator.run_until(1000);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, StartAtAbsoluteTime) {
  Simulator simulator;
  std::vector<SimTime> times;
  PeriodicTask task(simulator, 10, [&] { times.push_back(simulator.now()); });
  task.start_at(7);
  simulator.run_until(40);
  EXPECT_EQ(times, (std::vector<SimTime>{7, 17, 27, 37}));
}

}  // namespace
}  // namespace p2panon::sim
