// Unit tests for metrics: summaries, histograms, CDFs, tables.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "metrics/cdf.hpp"
#include "metrics/histogram.hpp"
#include "metrics/summary.hpp"
#include "metrics/table.hpp"

namespace p2panon::metrics {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(SummaryTest, EmptyIsZero) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, MergeMatchesCombinedStream) {
  Rng rng(1);
  Summary all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RatioTest, RateAndMerge) {
  Ratio r;
  for (int i = 0; i < 10; ++i) r.record(i < 3);
  EXPECT_DOUBLE_EQ(r.rate(), 0.3);
  EXPECT_DOUBLE_EQ(r.percent(), 30.0);
  Ratio other;
  other.record(true);
  r.merge(other);
  EXPECT_EQ(r.trials(), 11u);
  EXPECT_EQ(r.successes(), 4u);
  EXPECT_DOUBLE_EQ(Ratio().rate(), 0.0);
}

TEST(HistogramTest, PercentilesOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.median(), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.percentile(0.1), 10.0, 1.5);
}

TEST(HistogramTest, OutOfRangeSaturates) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
}

TEST(EmpiricalCdfTest, StepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(EmpiricalCdfTest, QuantileInterpolates) {
  EmpiricalCdf cdf({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
  EXPECT_THROW(EmpiricalCdf().quantile(0.5), std::logic_error);
}

TEST(EmpiricalCdfTest, KsOfSelfIsSmall) {
  Rng rng(2);
  EmpiricalCdf cdf;
  for (int i = 0; i < 10000; ++i) cdf.add(rng.next_double());
  const double ks = cdf.ks_distance([](double x) {
    return std::clamp(x, 0.0, 1.0);
  });
  EXPECT_LT(ks, 0.02);
}

TEST(EmpiricalCdfTest, TwoSampleKsSeparatesDistributions) {
  Rng rng(3);
  EmpiricalCdf a, b, c;
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.next_double());
    b.add(rng.next_double());
    c.add(rng.next_double() + 0.5);  // shifted
  }
  EXPECT_LT(EmpiricalCdf::ks_distance(a, b), 0.05);
  EXPECT_GT(EmpiricalCdf::ks_distance(a, c), 0.4);
}

TEST(EmpiricalCdfTest, CurveIsMonotone) {
  Rng rng(4);
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.exponential(5.0));
  const auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GT(curve[i].first, curve[i - 1].first);
  }
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"proto", "rate"});
  table.add_row({"CurMix", "2.64%"});
  table.add_row({"SimEra(k=2,r=2)", "4.98%"});
  const std::string out = table.render();
  EXPECT_NE(out.find("proto"), std::string::npos);
  EXPECT_NE(out.find("SimEra(k=2,r=2)"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "many", "cells"}),
               std::invalid_argument);
}

TEST(SeriesTest, RendersHeaderAndRows) {
  Series series("k", {"r=2", "r=3"});
  series.add(2, {0.5, 0.6});
  series.add(4, {0.4, 0.7});
  const std::string out = series.render(2);
  EXPECT_NE(out.find("# k\tr=2\tr=3"), std::string::npos);
  EXPECT_NE(out.find("2.00\t0.50\t0.60"), std::string::npos);
  EXPECT_THROW(series.add(6, {0.1}), std::invalid_argument);
}

TEST(PairCellTest, PaperFormat) {
  EXPECT_EQ(pair_cell(700, 1153), "[700, 1153]");
  EXPECT_EQ(pair_cell(8.4, 1.0, 1), "[8.4, 1.0]");
}

}  // namespace
}  // namespace p2panon::metrics
