// Integration tests: the assembled environment and the experiment drivers
// at reduced scale, including determinism across identical seeds.
#include <gtest/gtest.h>

#include "harness/durability_experiment.hpp"
#include "harness/environment.hpp"
#include "harness/parallel.hpp"
#include "harness/path_setup_experiment.hpp"

namespace p2panon::harness {
namespace {

EnvironmentConfig small_environment(std::uint64_t seed) {
  EnvironmentConfig config;
  config.num_nodes = 96;
  config.seed = seed;
  return config;
}

TEST(EnvironmentTest, AssemblesAndRuns) {
  Environment env(small_environment(5));
  env.start();
  env.simulator().run_until(5 * kMinute);
  // Symmetric churn -> availability near one half.
  EXPECT_NEAR(env.churn().measured_availability(env.simulator().now()), 0.5,
              0.15);
  // Gossip flowed and beliefs track ground truth.
  EXPECT_GT(env.membership().messages_sent(), 100u);
  EXPECT_GT(env.membership().belief_accuracy(), 0.9);
  // The PKI covers every node.
  EXPECT_EQ(env.directory().size(), 96u);
}

TEST(EnvironmentTest, RandomUpNodeRespectsLivenessAndExclusion) {
  Environment env(small_environment(6));
  env.start();
  env.simulator().run_until(1 * kMinute);
  for (int i = 0; i < 100; ++i) {
    const NodeId node = env.random_up_node(3);
    ASSERT_NE(node, kInvalidNode);
    EXPECT_NE(node, 3u);
    EXPECT_TRUE(env.churn().is_up(node));
  }
}

TEST(PathSetupExperimentTest, BiasedBeatsRandomAndRedundancyHelps) {
  PathSetupConfig config;
  config.environment = small_environment(7);
  config.warmup = 10 * kMinute;
  config.measure = 20 * kMinute;
  config.event_interarrival_seconds = 120.0;
  config.specs = {
      anon::ProtocolSpec::curmix(anon::MixChoice::kRandom),
      anon::ProtocolSpec::simrep(2, anon::MixChoice::kRandom),
      anon::ProtocolSpec::curmix(anon::MixChoice::kBiased),
  };
  const auto result = run_path_setup_experiment(config);
  ASSERT_GT(result.events, 100u);

  const double curmix_random = result.success[0].rate();
  const double simrep_random = result.success[1].rate();
  const double curmix_biased = result.success[2].rate();
  // Redundancy roughly doubles the random-mix rate (1 - (1-p)^2 ~ 2p).
  EXPECT_GT(simrep_random, 1.4 * curmix_random);
  // Biased mix choice dominates everything.
  EXPECT_GT(curmix_biased, 0.8);
  EXPECT_GT(curmix_biased, 3 * curmix_random);
}

TEST(PathSetupExperimentTest, RandomMixTracksBernoulliModel) {
  // Cross-validation of the two levels of the reproduction: in the full
  // churn simulation, a random-mix single-path construction should
  // succeed with probability ~ availability^L (the Bernoulli path model
  // Figures 2-4 are built on), modulo the small loss from relays dying
  // during the construction round trips.
  PathSetupConfig config;
  config.environment = small_environment(11);
  config.warmup = 15 * kMinute;
  config.measure = 45 * kMinute;
  config.event_interarrival_seconds = 60.0;
  config.specs = {anon::ProtocolSpec::curmix(anon::MixChoice::kRandom)};
  const auto result = run_path_setup_experiment(config);
  ASSERT_GT(result.events, 500u);
  const double predicted = result.availability * result.availability *
                           result.availability;
  EXPECT_NEAR(result.success[0].rate(), predicted, 0.04)
      << "availability " << result.availability;
}

TEST(DurabilityExperimentTest, ProducesSaneMetrics) {
  DurabilityConfig config;
  config.environment = small_environment(8);
  config.warmup = 10 * kMinute;
  config.measure = 20 * kMinute;
  config.spec = anon::ProtocolSpec::simera(4, 4, anon::MixChoice::kBiased);
  const auto result = run_durability_experiment(config);
  ASSERT_TRUE(result.constructed);
  EXPECT_GE(result.construct_attempts, 1u);
  EXPECT_GT(result.durability_seconds, 0.0);
  EXPECT_LE(result.durability_seconds, to_seconds(config.measure) + 1.0);
  EXPECT_GT(result.messages_sent, 0u);
  EXPECT_GT(result.messages_delivered, 0u);
  EXPECT_LE(result.messages_delivered, result.messages_sent);
  // Latency of a 4-hop path on a ~152 ms RTT matrix: tens to hundreds ms.
  EXPECT_GT(result.latency_ms.mean(), 10.0);
  EXPECT_LT(result.latency_ms.mean(), 2000.0);
  // Bandwidth per delivery: at least |M| * (L + 1), at most r * that * 2.
  EXPECT_GT(result.bandwidth_bytes.mean(), 4.0 * 1024.0);
  EXPECT_LT(result.bandwidth_bytes.mean(), 40.0 * 1024.0);
}

TEST(DurabilityExperimentTest, DeterministicForSameSeed) {
  DurabilityConfig config;
  config.environment = small_environment(9);
  config.warmup = 5 * kMinute;
  config.measure = 10 * kMinute;
  config.spec = anon::ProtocolSpec::simrep(2, anon::MixChoice::kBiased);
  const auto a = run_durability_experiment(config);
  const auto b = run_durability_experiment(config);
  EXPECT_EQ(a.constructed, b.constructed);
  EXPECT_EQ(a.construct_attempts, b.construct_attempts);
  EXPECT_DOUBLE_EQ(a.durability_seconds, b.durability_seconds);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_DOUBLE_EQ(a.latency_ms.mean(), b.latency_ms.mean());
}

TEST(DurabilityExperimentTest, BiasedNeedsFarFewerAttempts) {
  // The robust headline at test scale: biased construction succeeds first
  // try; random needs many whole-set retries (half the candidates are
  // dead). Durability means under Pareto churn are too heavy-tailed to
  // compare over a handful of seeds — the residual-lifetime mechanism is
  // asserted directly in BiasedRelaysHaveLongerResidualLifetimes.
  DurabilityConfig config;
  config.environment = small_environment(10);
  config.warmup = 30 * kMinute;
  config.measure = 30 * kMinute;
  config.environment.session_distribution = "pareto:median=600";
  config.spec = anon::ProtocolSpec::curmix(anon::MixChoice::kRandom);
  const auto random_avg = run_durability_average(config, 6, 2);
  config.spec = anon::ProtocolSpec::curmix(anon::MixChoice::kBiased);
  const auto biased_avg = run_durability_average(config, 6, 2);
  EXPECT_LT(biased_avg.construct_attempts, 1.5);
  EXPECT_GT(random_avg.construct_attempts,
            3.0 * biased_avg.construct_attempts);
  // Guard against a selection regression: biased must stay in the same
  // ballpark even on an unlucky seed set.
  EXPECT_GT(biased_avg.durability_seconds,
            0.5 * random_avg.durability_seconds);
}

TEST(DurabilityExperimentTest, BiasedRelaysHaveLongerResidualLifetimes) {
  // The paper's §4.9 mechanism, asserted directly on ground truth: the
  // minimum residual lifetime of the top-q relay triple beats that of a
  // uniformly chosen alive triple, averaged over enough trials to beat the
  // Pareto tail noise.
  double top_q_total = 0.0;
  double random_total = 0.0;
  const int trials = 24;
  for (int trial = 0; trial < trials; ++trial) {
    EnvironmentConfig env_config = small_environment(100 + trial);
    env_config.session_distribution = "pareto:median=600";
    Environment env(env_config);
    env.start();
    env.simulator().run_until(30 * kMinute);
    const SimTime t0 = env.simulator().now();

    const auto top = env.membership().cache(0).top_by_predictor(3, t0, {0, 1});
    ASSERT_EQ(top.size(), 3u);
    std::vector<NodeId> alive;
    for (NodeId node = 2; node < 96; ++node) {
      if (env.churn().is_up(node)) alive.push_back(node);
    }
    Rng pick_rng(static_cast<std::uint64_t>(trial) * 17 + 5);
    std::vector<NodeId> random_pick;
    for (int i = 0; i < 3; ++i) {
      random_pick.push_back(alive[pick_rng.next_below(alive.size())]);
    }

    std::vector<SimTime> first_leave(96, kNeverTime);
    env.churn().subscribe([&](NodeId node, bool up, SimTime when) {
      if (!up && first_leave[node] == kNeverTime) first_leave[node] = when;
    });
    env.simulator().run_until(t0 + 2 * kHour);
    auto min_residual = [&](const std::vector<NodeId>& nodes) {
      double min_r = to_seconds(2 * kHour);
      for (NodeId node : nodes) {
        if (first_leave[node] != kNeverTime) {
          min_r = std::min(min_r, to_seconds(first_leave[node] - t0));
        }
      }
      return min_r;
    };
    top_q_total += min_residual(top);
    random_total += min_residual(random_pick);
  }
  EXPECT_GT(top_q_total, 1.2 * random_total)
      << "top-q avg " << top_q_total / trials << "s vs random-alive avg "
      << random_total / trials << "s";
}

TEST(ParallelForTest, CoversAllIndicesOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), 4, [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
  // Inline path.
  std::vector<int> inline_hits(10, 0);
  parallel_for(inline_hits.size(), 1, [&](std::size_t i) { inline_hits[i]++; });
  for (int h : inline_hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_for(8, 4,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

}  // namespace
}  // namespace p2panon::harness
