// Known-answer and property tests for the crypto substrate.
//
// KATs come from FIPS 180-4 / RFC 4231 / RFC 5869 / RFC 8439 / RFC 7748;
// property tests check round-trips, tamper detection and key separation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/poly1305.hpp"
#include "crypto/sealed_box.hpp"
#include "crypto/segment_auth.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace p2panon::crypto {
namespace {

std::string hex_of_digest(const Sha256Digest& d) {
  return to_hex(ByteView(d.data(), d.size()));
}

template <std::size_t N>
std::array<std::uint8_t, N> array_from_hex(std::string_view hex) {
  const Bytes b = from_hex(hex);
  EXPECT_EQ(b.size(), N);
  std::array<std::uint8_t, N> out{};
  std::memcpy(out.data(), b.data(), N);
  return out;
}

// --- SHA-256 -----------------------------------------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hex_of_digest(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hex_of_digest(Sha256::hash(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hex_of_digest(Sha256::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_of_digest(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  Rng rng(42);
  for (std::size_t len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 1000u}) {
    Bytes data(len);
    rng.fill(data.data(), data.size());
    const auto oneshot = Sha256::hash(data);
    Sha256 streaming;
    // Feed in irregular chunks.
    std::size_t offset = 0;
    std::size_t step = 1;
    while (offset < data.size()) {
      const std::size_t take = std::min(step, data.size() - offset);
      streaming.update(ByteView(data).subspan(offset, take));
      offset += take;
      step = step * 2 + 1;
    }
    EXPECT_EQ(streaming.finish(), oneshot) << "len=" << len;
  }
}

// --- HMAC / HKDF ---------------------------------------------------------------

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(hex_of_digest(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const auto mac = hmac_sha256(bytes_of("Jefe"),
                               bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(hex_of_digest(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const auto mac = hmac_sha256(key, data);
  EXPECT_EQ(hex_of_digest(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HkdfTest, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, Rfc5869Case3NoSaltNoInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

// RFC 4231 cases 6 and 7: 131-byte keys, longer than the SHA-256 block, so
// HMAC must hash the key first — the long-key path the short-key cases
// above never reach.
TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_of_digest(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key,
      bytes_of("This is a test using a larger than block-size key and a "
               "larger than block-size data. The key needs to be hashed "
               "before being used by the HMAC algorithm."));
  EXPECT_EQ(hex_of_digest(mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// RFC 5869 case 2: maximum-length inputs with multi-block expand (L = 82
// spans three HMAC rounds).
TEST(HkdfTest, Rfc5869Case2LongInputs) {
  Bytes ikm, salt, info;
  for (int b = 0x00; b <= 0x4f; ++b) ikm.push_back(static_cast<std::uint8_t>(b));
  for (int b = 0x60; b <= 0xaf; ++b) salt.push_back(static_cast<std::uint8_t>(b));
  for (int b = 0xb0; b <= 0xff; ++b) info.push_back(static_cast<std::uint8_t>(b));
  const Sha256Digest prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(hex_of_digest(prk),
            "06a6b88c5853361a06104c9ceb35b45cef760014904671014a193f40c15fc244");
  const Bytes okm = hkdf(salt, ikm, info, 82);
  EXPECT_EQ(to_hex(okm),
            "b11e398dc80327a1c8e7f78c596a4934"
            "4f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09"
            "da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f"
            "1d87");
}

// --- ChaCha20 --------------------------------------------------------------------

TEST(ChaCha20Test, Rfc8439BlockFunction) {
  const auto key = array_from_hex<32>(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = array_from_hex<12>("000000090000004a00000000");
  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(to_hex(ByteView(block.data(), block.size())),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, Rfc8439Encryption) {
  const auto key = array_from_hex<32>(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = array_from_hex<12>("000000000000004a00000000");
  const Bytes plaintext = bytes_of(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes ciphertext = chacha20_encrypt(key, nonce, 1, plaintext);
  EXPECT_EQ(to_hex(ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d");
}

TEST(ChaCha20Test, XorRoundTrips) {
  Rng rng(7);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  ChaChaNonce nonce;
  rng.fill(nonce.data(), nonce.size());
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 129u, 4096u}) {
    Bytes data(len);
    rng.fill(data.data(), data.size());
    Bytes round = chacha20_encrypt(key, nonce, 0, data);
    chacha20_xor(key, nonce, 0, round);
    EXPECT_EQ(round, data) << "len=" << len;
  }
}

TEST(ChaCha20Test, OutOfPlaceMatchesInPlaceAndPreservesSource) {
  Rng rng(8);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  ChaChaNonce nonce;
  rng.fill(nonce.data(), nonce.size());
  Bytes src(1000);
  rng.fill(src.data(), src.size());
  const Bytes src_copy = src;
  Bytes dst(src.size(), 0xcc);
  chacha20_xor(key, nonce, 5, src, dst);
  EXPECT_EQ(src, src_copy);  // the drift bug: src must not be consumed
  Bytes in_place = src;
  chacha20_xor(key, nonce, 5, in_place);
  EXPECT_EQ(dst, in_place);
  EXPECT_THROW(
      chacha20_xor(key, nonce, 0, src, MutableByteView(dst.data(), 999)),
      std::invalid_argument);
}

// Regression for the counter-wrap keystream-reuse bug: the keystream block
// index used to be incremented as a 32-bit state word and silently wrapped
// to block 0 after 256 GiB under one (key, nonce). Running up to the
// boundary must match per-block outputs exactly; running past it must
// throw, never reuse keystream.
TEST(ChaCha20Test, CounterBoundaryMatchesBlockFunction) {
  Rng rng(15);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  ChaChaNonce nonce;
  rng.fill(nonce.data(), nonce.size());
  // Last 4 blocks of the counter space, ending exactly at 2^32.
  const std::uint32_t start = 0xfffffffcu;
  Bytes zeros(4 * 64, 0);
  const Bytes keystream = chacha20_encrypt(key, nonce, start, zeros);
  for (int b = 0; b < 4; ++b) {
    const auto expect = chacha20_block(key, nonce, start + b);
    const Bytes got(keystream.begin() + b * 64, keystream.begin() + (b + 1) * 64);
    EXPECT_EQ(got, Bytes(expect.begin(), expect.end())) << "block " << b;
  }
}

TEST(ChaCha20Test, ThrowsInsteadOfWrappingCounter) {
  Rng rng(16);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  ChaChaNonce nonce;
  rng.fill(nonce.data(), nonce.size());
  Bytes data(5 * 64);
  // 5 blocks needed, only 4 left in the 32-bit space: must throw.
  EXPECT_THROW(chacha20_xor(key, nonce, 0xfffffffcu, data),
               std::length_error);
  // A partial fifth block also spills: 4 blocks + 1 byte.
  Bytes partial(4 * 64 + 1);
  EXPECT_THROW(chacha20_xor(key, nonce, 0xfffffffcu, partial),
               std::length_error);
  // Exactly fitting is fine.
  Bytes fits(4 * 64);
  EXPECT_NO_THROW(chacha20_xor(key, nonce, 0xfffffffcu, fits));
  // Every forced kernel enforces the same contract.
  for (const auto k : crypto_detail::kAllKernels) {
    if (!crypto_detail::kernel_available(k)) continue;
    Bytes out(data.size());
    EXPECT_THROW(
        crypto_detail::chacha20_xor(k, key, nonce, 0xfffffffcu, data, out),
        std::length_error)
        << crypto_detail::kernel_label(k);
  }
}

// --- ChaCha20 kernel golden vectors ------------------------------------------------
//
// Every kernel variant (ref / wide4 / ssse3 / avx2) must be byte-identical
// to the reference across sizes straddling every batch width (64-byte
// block, 256-byte 4-block batch, 512-byte 8-block batch) and across
// counter positions including the top of the 32-bit space. Mirrors the
// gf256_detail golden-vector pattern.
TEST(ChaCha20KernelTest, AllKernelsMatchReferenceAcrossSizes) {
  Rng rng(17);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  ChaChaNonce nonce;
  rng.fill(nonce.data(), nonce.size());
  std::vector<std::size_t> sizes;
  for (std::size_t n = 0; n <= 130; ++n) sizes.push_back(n);
  for (std::size_t n : {192u, 255u, 256u, 257u, 319u, 320u, 511u, 512u, 513u,
                        768u, 1023u, 1024u, 2048u, 4095u, 4096u}) {
    sizes.push_back(n);
  }
  Bytes src(4096 + 1);
  rng.fill(src.data(), src.size());
  for (const std::size_t len : sizes) {
    const ByteView input = ByteView(src).first(len);
    Bytes expect(len);
    crypto_detail::chacha20_xor(crypto_detail::Kernel::kRef, key, nonce, 1,
                                input, expect);
    for (const auto k : crypto_detail::kAllKernels) {
      if (!crypto_detail::kernel_available(k)) continue;
      Bytes got(len, 0xa5);
      crypto_detail::chacha20_xor(k, key, nonce, 1, input, got);
      EXPECT_EQ(got, expect)
          << "kernel=" << crypto_detail::kernel_label(k) << " len=" << len;
    }
  }
}

TEST(ChaCha20KernelTest, AllKernelsMatchReferenceAtCounterBoundary) {
  Rng rng(18);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  ChaChaNonce nonce;
  rng.fill(nonce.data(), nonce.size());
  Bytes src(16 * 64);
  rng.fill(src.data(), src.size());
  // Starting counters that make the batched kernels' lane counters span
  // the very top of the 32-bit space.
  for (const std::uint32_t start :
       {0u, 1u, 0xfffffff0u, 0xfffffff7u, 0xfffffff9u}) {
    const std::size_t blocks_left =
        static_cast<std::size_t>((std::uint64_t{1} << 32) - start);
    const std::size_t len = std::min<std::size_t>(src.size(), blocks_left * 64);
    const ByteView input = ByteView(src).first(len);
    Bytes expect(len);
    crypto_detail::chacha20_xor(crypto_detail::Kernel::kRef, key, nonce,
                                start, input, expect);
    for (const auto k : crypto_detail::kAllKernels) {
      if (!crypto_detail::kernel_available(k)) continue;
      Bytes got(len, 0x5a);
      crypto_detail::chacha20_xor(k, key, nonce, start, input, got);
      EXPECT_EQ(got, expect)
          << "kernel=" << crypto_detail::kernel_label(k)
          << " counter=" << start;
    }
  }
}

TEST(ChaCha20KernelTest, DispatchedKernelIsAvailableAndLabeled) {
  const std::string name = chacha20_kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "ssse3" || name == "wide4") << name;
  EXPECT_TRUE(crypto_detail::kernel_available(crypto_detail::Kernel::kRef));
  EXPECT_TRUE(crypto_detail::kernel_available(crypto_detail::Kernel::kWide4));
  for (const auto k : crypto_detail::kAllKernels) {
    EXPECT_STRNE(crypto_detail::kernel_label(k), "?");
  }
}

// --- Poly1305 ---------------------------------------------------------------------

TEST(Poly1305Test, Rfc8439Vector) {
  const auto key = array_from_hex<32>(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const auto tag =
      poly1305(key, bytes_of("Cryptographic Forum Research Group"));
  EXPECT_EQ(to_hex(ByteView(tag.data(), tag.size())),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305Test, VerifyRejectsTamper) {
  Rng rng(9);
  PolyKey key;
  rng.fill(key.data(), key.size());
  Bytes msg(100);
  rng.fill(msg.data(), msg.size());
  const PolyTag tag = poly1305(key, msg);
  EXPECT_TRUE(poly1305_verify(tag, key, msg));
  msg[50] ^= 1;
  EXPECT_FALSE(poly1305_verify(tag, key, msg));
}

// Edge cases around the 16-byte block boundary.
class Poly1305LengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Poly1305LengthTest, TagChangesWithAnyBitFlip) {
  Rng rng(11 + GetParam());
  PolyKey key;
  rng.fill(key.data(), key.size());
  Bytes msg(GetParam());
  rng.fill(msg.data(), msg.size());
  const PolyTag tag = poly1305(key, msg);
  if (!msg.empty()) {
    Bytes tampered = msg;
    tampered[GetParam() / 2] ^= 0x80;
    EXPECT_NE(poly1305(key, tampered), tag);
  }
  // Appending a zero byte must also change the tag (length binding).
  Bytes extended = msg;
  extended.push_back(0);
  EXPECT_NE(poly1305(key, extended), tag);
}

INSTANTIATE_TEST_SUITE_P(BlockBoundaries, Poly1305LengthTest,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 64,
                                           255));

// The incremental Poly1305 class must match the one-shot function no matter
// how the message is chunked across update() calls.
TEST(Poly1305IncrementalTest, MatchesOneShotAcrossChunkings) {
  Rng rng(21);
  PolyKey key;
  rng.fill(key.data(), key.size());
  for (const std::size_t len : {0u, 1u, 15u, 16u, 17u, 63u, 64u, 65u, 300u}) {
    Bytes msg(len);
    rng.fill(msg.data(), msg.size());
    const PolyTag oneshot = poly1305(key, msg);
    for (const std::size_t chunk : {1u, 3u, 16u, 17u, 64u, 1000u}) {
      Poly1305 mac(key);
      for (std::size_t off = 0; off < msg.size(); off += chunk) {
        mac.update(ByteView(msg).subspan(off, std::min(chunk, msg.size() - off)));
      }
      EXPECT_EQ(mac.finish(), oneshot) << "len=" << len << " chunk=" << chunk;
    }
  }
}

// pad16() must be equivalent to feeding explicit zero padding to the next
// 16-byte boundary — the property the AEAD mac construction relies on to
// avoid materializing aad || pad || ct || pad.
TEST(Poly1305IncrementalTest, Pad16MatchesExplicitZeroPadding) {
  Rng rng(22);
  PolyKey key;
  rng.fill(key.data(), key.size());
  for (const std::size_t a_len : {0u, 1u, 12u, 16u, 17u, 40u}) {
    Bytes a(a_len), b(33);
    rng.fill(a.data(), a.size());
    rng.fill(b.data(), b.size());
    Poly1305 inc(key);
    inc.update(a);
    inc.pad16();
    inc.update(b);
    Bytes flat = a;
    flat.resize((a.size() + 15) / 16 * 16, 0);
    flat.insert(flat.end(), b.begin(), b.end());
    EXPECT_EQ(inc.finish(), poly1305(key, flat)) << "a_len=" << a_len;
  }
}

// --- AEAD -------------------------------------------------------------------------

TEST(AeadTest, Rfc8439Vector) {
  const auto key = array_from_hex<32>(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const auto nonce = array_from_hex<12>("070000004041424344454647");
  const Bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");
  const Bytes plaintext = bytes_of(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes sealed = aead_seal(key, nonce, aad, plaintext);
  ASSERT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
  EXPECT_EQ(to_hex(ByteView(sealed).subspan(plaintext.size())),
            "1ae10b594f09e26a7e902ecbd0600691");
  EXPECT_EQ(to_hex(ByteView(sealed).first(16)),
            "d31a8d34648e60db7b86afbc53ef7ec2");

  const auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(AeadTest, RejectsTamperedCiphertext) {
  Rng rng(12);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  const ChaChaNonce nonce = nonce_from_seq(3);
  Bytes sealed = aead_seal(key, nonce, {}, bytes_of("secret payload"));
  sealed[3] ^= 0x40;
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

TEST(AeadTest, RejectsWrongAad) {
  Rng rng(13);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  const ChaChaNonce nonce = nonce_from_seq(4);
  const Bytes sealed = aead_seal(key, nonce, bytes_of("aad-a"), bytes_of("m"));
  EXPECT_FALSE(aead_open(key, nonce, bytes_of("aad-b"), sealed).has_value());
  EXPECT_TRUE(aead_open(key, nonce, bytes_of("aad-a"), sealed).has_value());
}

TEST(AeadTest, RejectsTruncation) {
  Rng rng(14);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  const ChaChaNonce nonce = nonce_from_seq(5);
  Bytes sealed = aead_seal(key, nonce, {}, bytes_of("hello"));
  sealed.resize(kAeadTagSize - 1);
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

// --- In-place AEAD ----------------------------------------------------------------

// The zero-allocation forms must produce byte-identical output to the
// allocating ones across message sizes (including empty).
TEST(AeadInPlaceTest, SealIntoMatchesAeadSeal) {
  Rng rng(23);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  const ChaChaNonce nonce = nonce_from_seq(9);
  const Bytes aad = bytes_of("layer-aad");
  for (const std::size_t len : {0u, 1u, 15u, 16u, 63u, 64u, 65u, 1024u}) {
    Bytes plaintext(len);
    rng.fill(plaintext.data(), plaintext.size());
    const Bytes expect = aead_seal(key, nonce, aad, plaintext);
    Bytes buf = plaintext;
    buf.resize(buf.size() + kAeadTagSize);
    aead_seal_into(key, nonce, aad, buf);
    EXPECT_EQ(buf, expect) << "len=" << len;
  }
}

TEST(AeadInPlaceTest, OpenIntoRoundTripsRfc8439Vector) {
  const auto key = array_from_hex<32>(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const auto nonce = array_from_hex<12>("070000004041424344454647");
  const Bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");
  const Bytes plaintext = bytes_of(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  Bytes buf = plaintext;
  buf.resize(buf.size() + kAeadTagSize);
  aead_seal_into(key, nonce, aad, buf);
  EXPECT_EQ(to_hex(ByteView(buf).subspan(plaintext.size())),
            "1ae10b594f09e26a7e902ecbd0600691");
  ASSERT_TRUE(aead_open_into(key, nonce, aad, buf));
  EXPECT_EQ(Bytes(buf.begin(), buf.end() - kAeadTagSize), plaintext);
}

TEST(AeadInPlaceTest, OpenIntoLeavesBufferUnchangedOnFailure) {
  Rng rng(24);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  const ChaChaNonce nonce = nonce_from_seq(10);
  Bytes buf = bytes_of("attack at dawn");
  buf.resize(buf.size() + kAeadTagSize);
  aead_seal_into(key, nonce, {}, buf);
  Bytes tampered = buf;
  tampered[0] ^= 0x01;
  const Bytes before = tampered;
  EXPECT_FALSE(aead_open_into(key, nonce, {}, tampered));
  EXPECT_EQ(tampered, before);  // no partial decrypt on auth failure
  // Wrong AAD also fails; correct inputs still open.
  Bytes wrong_aad = buf;
  EXPECT_FALSE(aead_open_into(key, nonce, bytes_of("x"), wrong_aad));
  EXPECT_TRUE(aead_open_into(key, nonce, {}, buf));
}

TEST(AeadInPlaceTest, RejectsBufferSmallerThanTag) {
  Rng rng(25);
  ChaChaKey key;
  rng.fill(key.data(), key.size());
  const ChaChaNonce nonce = nonce_from_seq(11);
  Bytes tiny(kAeadTagSize - 1);
  EXPECT_THROW(aead_seal_into(key, nonce, {}, tiny), std::invalid_argument);
  EXPECT_FALSE(aead_open_into(key, nonce, {}, tiny));
}

// --- X25519 -------------------------------------------------------------------------

TEST(X25519Test, Rfc7748Vector1) {
  const auto scalar = array_from_hex<32>(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto point = array_from_hex<32>(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  const auto out = x25519(scalar, point);
  EXPECT_EQ(to_hex(ByteView(out.data(), out.size())),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519Test, Rfc7748DiffieHellman) {
  const auto alice_priv = array_from_hex<32>(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_priv = array_from_hex<32>(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const auto alice_pub = x25519_base(alice_priv);
  const auto bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(to_hex(ByteView(alice_pub.data(), alice_pub.size())),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(to_hex(ByteView(bob_pub.data(), bob_pub.size())),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const auto shared_a = x25519(alice_priv, bob_pub);
  const auto shared_b = x25519(bob_priv, alice_pub);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_EQ(to_hex(ByteView(shared_a.data(), shared_a.size())),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519Test, Rfc7748IteratedVector) {
  // RFC 7748 §5.2: iterate k, u = X25519(k, u), k_new = old u.
  auto k = array_from_hex<32>(
      "0900000000000000000000000000000000000000000000000000000000000000");
  auto u = k;
  for (int i = 0; i < 1; ++i) {
    const auto out = x25519(k, u);
    u = k;
    k = out;
  }
  EXPECT_EQ(to_hex(ByteView(k.data(), k.size())),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
  // Continue to 1000 iterations (the RFC's second checkpoint).
  for (int i = 1; i < 1000; ++i) {
    const auto out = x25519(k, u);
    u = k;
    k = out;
  }
  EXPECT_EQ(to_hex(ByteView(k.data(), k.size())),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

TEST(X25519Test, SharedSecretAgreesForRandomKeys) {
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    const KeyPair a = KeyPair::generate(rng);
    const KeyPair b = KeyPair::generate(rng);
    EXPECT_EQ(x25519(a.private_key, b.public_key),
              x25519(b.private_key, a.public_key));
  }
}

// --- Sealed box + keys -------------------------------------------------------------

TEST(SealedBoxTest, RoundTrip) {
  Rng rng(21);
  const KeyPair recipient = KeyPair::generate(rng);
  const Bytes msg = bytes_of("onion layer: next hop 42, key deadbeef");
  const Bytes sealed = sealed_box_seal(recipient.public_key, msg, rng);
  EXPECT_EQ(sealed.size(), msg.size() + kSealedBoxOverhead);
  const auto opened = sealed_box_open(recipient, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(SealedBoxTest, WrongRecipientFails) {
  Rng rng(22);
  const KeyPair recipient = KeyPair::generate(rng);
  const KeyPair other = KeyPair::generate(rng);
  const Bytes sealed =
      sealed_box_seal(recipient.public_key, bytes_of("secret"), rng);
  EXPECT_FALSE(sealed_box_open(other, sealed).has_value());
}

TEST(SealedBoxTest, TamperFails) {
  Rng rng(23);
  const KeyPair recipient = KeyPair::generate(rng);
  Bytes sealed = sealed_box_seal(recipient.public_key, bytes_of("secret"), rng);
  sealed[sealed.size() - 1] ^= 1;
  EXPECT_FALSE(sealed_box_open(recipient, sealed).has_value());
  sealed[sealed.size() - 1] ^= 1;
  sealed[0] ^= 1;  // corrupt the ephemeral public key
  EXPECT_FALSE(sealed_box_open(recipient, sealed).has_value());
}

TEST(SealedBoxTest, SealingIsRandomized) {
  Rng rng(24);
  const KeyPair recipient = KeyPair::generate(rng);
  const Bytes a = sealed_box_seal(recipient.public_key, bytes_of("m"), rng);
  const Bytes b = sealed_box_seal(recipient.public_key, bytes_of("m"), rng);
  EXPECT_NE(a, b);
}

TEST(SealedBoxTest, EmptyPlaintext) {
  Rng rng(25);
  const KeyPair recipient = KeyPair::generate(rng);
  const Bytes sealed = sealed_box_seal(recipient.public_key, {}, rng);
  const auto opened = sealed_box_open(recipient, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(KeyDirectoryTest, ProvisionRegistersAllNodes) {
  Rng rng(31);
  KeyDirectory directory;
  const auto pairs = directory.provision(16, rng);
  ASSERT_EQ(pairs.size(), 16u);
  for (NodeId node = 0; node < 16; ++node) {
    ASSERT_TRUE(directory.has_key(node));
    EXPECT_EQ(directory.public_key(node), pairs[node].public_key);
  }
  EXPECT_FALSE(directory.has_key(16));
  EXPECT_THROW(directory.public_key(16), std::out_of_range);
}

// --- segment authentication --------------------------------------------------------

ChaChaKey test_responder_key(std::uint8_t fill) {
  ChaChaKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(fill + i);
  }
  return key;
}

TEST(SegmentAuthTest, KeyDerivationIsDeterministicAndKeyed) {
  const SegmentAuthKey a = derive_segment_auth_key(test_responder_key(1));
  const SegmentAuthKey b = derive_segment_auth_key(test_responder_key(1));
  const SegmentAuthKey c = derive_segment_auth_key(test_responder_key(2));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SegmentAuthTest, DigestIsTruncatedSha256) {
  const Bytes msg = {'s', 'e', 'g'};
  const auto full = Sha256::hash(msg);
  const MessageDigest digest = message_digest(msg);
  EXPECT_TRUE(std::equal(digest.begin(), digest.end(), full.begin()));
}

TEST(SegmentAuthTest, TagCoversEveryAuthenticatedField) {
  const SegmentAuthKey key = derive_segment_auth_key(test_responder_key(7));
  const Bytes segment = {1, 2, 3, 4, 5};
  const MessageDigest digest = message_digest(segment);
  const SegmentTag tag = segment_tag(key, 42, 3, 512, 2, 4, digest, segment);

  // Deterministic.
  EXPECT_TRUE(segment_tag_equal(
      tag, segment_tag(key, 42, 3, 512, 2, 4, digest, segment)));
  // Any authenticated field changing changes the tag: key, message id,
  // index, size, m, n, digest, segment bytes.
  const SegmentAuthKey other_key =
      derive_segment_auth_key(test_responder_key(8));
  EXPECT_FALSE(segment_tag_equal(
      tag, segment_tag(other_key, 42, 3, 512, 2, 4, digest, segment)));
  EXPECT_FALSE(segment_tag_equal(
      tag, segment_tag(key, 43, 3, 512, 2, 4, digest, segment)));
  EXPECT_FALSE(segment_tag_equal(
      tag, segment_tag(key, 42, 2, 512, 2, 4, digest, segment)));
  EXPECT_FALSE(segment_tag_equal(
      tag, segment_tag(key, 42, 3, 513, 2, 4, digest, segment)));
  EXPECT_FALSE(segment_tag_equal(
      tag, segment_tag(key, 42, 3, 512, 3, 4, digest, segment)));
  EXPECT_FALSE(segment_tag_equal(
      tag, segment_tag(key, 42, 3, 512, 2, 5, digest, segment)));
  MessageDigest flipped_digest = digest;
  flipped_digest[0] ^= 1;
  EXPECT_FALSE(segment_tag_equal(
      tag, segment_tag(key, 42, 3, 512, 2, 4, flipped_digest, segment)));
  Bytes flipped_segment = segment;
  flipped_segment[4] ^= 0x80;
  EXPECT_FALSE(segment_tag_equal(
      tag, segment_tag(key, 42, 3, 512, 2, 4, digest, flipped_segment)));
}

TEST(SegmentAuthTest, TagEqualIsExact) {
  SegmentTag a{};
  SegmentTag b{};
  EXPECT_TRUE(segment_tag_equal(a, b));
  b[kSegmentTagSize - 1] = 1;
  EXPECT_FALSE(segment_tag_equal(a, b));
}

}  // namespace
}  // namespace p2panon::crypto
