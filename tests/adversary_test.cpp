// Adversary capture layer + offline attack engine (DESIGN §10).
//
// The attack tests run against a hand-built five-node scenario whose
// closed-form outcomes are known exactly: initiator 0, responder 1,
// relays {2, 3}, optional cover sender 4, one onion hop chain
// 0 -> 2 -> 3 -> 1 per trial. Every flow is fed through the LinkObserver
// tap (not appended to the log directly) so origin classification — the
// hold-window heuristic separating initiators from relays — is exercised
// end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "adversary/attacks.hpp"
#include "adversary/link_observer.hpp"
#include "net/demux.hpp"
#include "net/loopback_transport.hpp"
#include "obs/metrics.hpp"

namespace p2panon::adversary {
namespace {

constexpr std::uint8_t kFwd =
    static_cast<std::uint8_t>(net::Channel::kAnonForward);

net::LinkTapMeta fwd_meta(std::uint64_t when_us) {
  net::LinkTapMeta meta;
  meta.when_us = when_us;
  meta.protocol = kFwd;
  return meta;
}

/// One 0 -> 2 -> 3 -> 1 message at base time `t0`, through the tap: the
/// origin send, then each relay hop as deliver + immediate forward send
/// (relays in this codebase forward at the delivery instant), then the
/// responder ingress at t0 + 300.
void emit_chain(LinkObserver& observer, std::uint64_t t0,
                NodeId initiator = 0) {
  observer.on_send(initiator, 2, 512, fwd_meta(t0));
  observer.on_deliver(initiator, 2, 512, fwd_meta(t0 + 100));
  observer.on_send(2, 3, 512, fwd_meta(t0 + 100));
  observer.on_deliver(2, 3, 512, fwd_meta(t0 + 200));
  observer.on_send(3, 1, 512, fwd_meta(t0 + 200));
  observer.on_deliver(3, 1, 512, fwd_meta(t0 + 300));
}

AttackScenario scenario_for(const LinkObserver& observer) {
  AttackScenario s;
  s.log = &observer.log();
  s.initiator = 0;
  s.responder = 1;
  s.num_nodes = 5;
  return s;
}

// --- FlowLog ring ----------------------------------------------------------

TEST(FlowLogTest, RingEvictsOldestAndKeepsAccounting) {
  FlowLog log(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    FlowRecord r;
    r.time_us = 100 * (i + 1);
    r.from = static_cast<NodeId>(i);
    log.append(r);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.appended(), 6u);
  EXPECT_EQ(log.evicted(), 2u);
  // Oldest-first reads start at the third record ever appended.
  EXPECT_EQ(log.at(0).time_us, 300u);
  EXPECT_EQ(log.at(3).time_us, 600u);
  EXPECT_EQ(log.earliest_us(), 300u);
  EXPECT_EQ(log.latest_us(), 600u);
}

TEST(FlowLogTest, JsonlLineIsExact) {
  FlowLog log(8);
  FlowRecord r;
  r.dir = FlowDir::kSend;
  r.from = 4;
  r.to = 9;
  r.bytes = 512;
  r.time_us = 120;
  r.corr = 7;
  r.channel = 2;
  log.append(r);
  EXPECT_EQ(log.to_jsonl(),
            "{\"flow\":\"send\",\"sim_us\":120,\"from\":4,\"to\":9,"
            "\"bytes\":512,\"chan\":2,\"corr\":7}\n");
}

// --- CompromiseModel -------------------------------------------------------

TEST(CompromiseModelTest, PlantsRoundedCountAndHonorsProtection) {
  const auto model = CompromiseModel::plant(100, 0.1, 42, {0, 1});
  EXPECT_EQ(model.count(), 10u);
  EXPECT_EQ(model.honest_count(), 90u);
  EXPECT_FALSE(model.is_compromised(0));
  EXPECT_FALSE(model.is_compromised(1));
  // Out-of-range ids are never compromised.
  EXPECT_FALSE(model.is_compromised(100));
}

TEST(CompromiseModelTest, FullCompromiseIsCappedByEligiblePool) {
  const auto model = CompromiseModel::plant(10, 1.0, 7, {0, 1});
  EXPECT_EQ(model.count(), 8u);  // everyone but the protected endpoints
  EXPECT_THROW(CompromiseModel::plant(10, -0.1, 7), std::invalid_argument);
  EXPECT_THROW(CompromiseModel::plant(10, 1.1, 7), std::invalid_argument);
}

// --- Observer capture ------------------------------------------------------

TEST(LinkObserverTest, ZeroSampleRateRecordsNothing) {
  ObserverConfig config;
  config.sample_rate = 0.0;
  LinkObserver observer(config);
  for (std::uint64_t i = 0; i < 50; ++i) {
    observer.on_send(0, 1, 64, fwd_meta(i));
  }
  EXPECT_EQ(observer.log().size(), 0u);
  EXPECT_EQ(observer.sampled_out(), 50u);
}

TEST(LinkObserverTest, RegistersCountersOnlyWhenRegistryGiven) {
  obs::Registry registry;
  LinkObserver observer({}, &registry);
  observer.on_send(0, 1, 64, fwd_meta(10));
  observer.on_deliver(0, 1, 64, fwd_meta(20));
  EXPECT_EQ(registry.counter_value("adversary_flows_total",
                                   {{"dir", "send"}}), 1u);
  EXPECT_EQ(registry.counter_value("adversary_flows_total",
                                   {{"dir", "deliver"}}), 1u);
  EXPECT_EQ(registry.counter_value("adversary_flow_bytes_total"), 128u);
}

TEST(ObservedTransportTest, DecoratorMirrorsSendAndDeliverIntoTap) {
  net::LoopbackTransport inner(3);
  LinkObserver observer;
  ObservedTransport transport(inner, observer);
  std::size_t handled = 0;
  transport.register_handler(1, [&](NodeId, NodeId, const Bytes&) {
    ++handled;
  });
  transport.send(0, 1, Bytes{kFwd, 0xaa, 0xbb});
  EXPECT_EQ(inner.deliver_all(), 1u);
  EXPECT_EQ(handled, 1u);
  ASSERT_EQ(observer.log().size(), 2u);
  EXPECT_EQ(observer.log().at(0).dir, FlowDir::kSend);
  EXPECT_EQ(observer.log().at(1).dir, FlowDir::kDeliver);
  EXPECT_EQ(observer.log().at(0).channel, kFwd);
  EXPECT_EQ(observer.log().at(0).bytes, 3u);
  EXPECT_EQ(observer.log().at(1).from, 0u);
  EXPECT_EQ(observer.log().at(1).to, 1u);
}

// --- Origin classification -------------------------------------------------

TEST(AttackIndexTest, HoldWindowSeparatesOriginsFromRelays) {
  // Node 2 receives at t=1000 and forwards at t=1500 (inside the 1000 us
  // hold window: relay). Node 0 sends cold at t=100 and again at t=5000,
  // 4000 us after the last delivery into it (origin both times).
  LinkObserver observer;
  observer.on_send(0, 2, 512, fwd_meta(100));
  observer.on_deliver(0, 2, 512, fwd_meta(1000));
  observer.on_send(2, 1, 512, fwd_meta(1500));
  observer.on_deliver(2, 1, 512, fwd_meta(1600));
  observer.on_deliver(3, 0, 512, fwd_meta(1000));
  observer.on_send(0, 2, 512, fwd_meta(5000));

  CompromiseModel model;
  model.compromised = {false, false, true, false, false};
  const auto report = predecessor_attack(scenario_for(observer), model,
                                         {{0, 10000}});
  // Both origin sends from 0 went into compromised relay 2; the relay
  // forward from 2 is not an origin and never pollutes the posterior.
  EXPECT_EQ(report.trials, 1u);
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.compromise_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.anonymity_set_mean, 1.0);
  EXPECT_DOUBLE_EQ(report.posterior_entropy_bits, 0.0);
}

// --- Predecessor attack ----------------------------------------------------

TEST(PredecessorAttackTest, Case1NamesTheInitiatorExactly) {
  LinkObserver observer;
  emit_chain(observer, 1000);
  emit_chain(observer, 20000);
  CompromiseModel model;
  model.compromised = {false, false, true, false, false};  // first relay
  const auto report = predecessor_attack(
      scenario_for(observer), model, {{0, 9999}, {19000, 29999}});
  EXPECT_EQ(report.trials, 2u);
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.compromise_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.posterior_entropy_bits, 0.0);
}

TEST(PredecessorAttackTest, Case2FallsBackToUniformHonestPool) {
  LinkObserver observer;
  emit_chain(observer, 1000);
  CompromiseModel model;
  // Only the second relay is compromised: it sees relay 2 as its
  // predecessor, never an origin send, so no Case-1 observation exists.
  model.compromised = {false, false, false, true, false};
  const auto report =
      predecessor_attack(scenario_for(observer), model, {{0, 9999}});
  EXPECT_EQ(report.trials, 1u);
  EXPECT_DOUBLE_EQ(report.compromise_rate, 0.0);
  // Uniform over the 4 honest nodes.
  EXPECT_DOUBLE_EQ(report.success_rate, 0.25);
  EXPECT_DOUBLE_EQ(report.anonymity_set_mean, 4.0);
  EXPECT_DOUBLE_EQ(report.posterior_entropy_bits, 2.0);
}

TEST(PredecessorAttackTest, EvictedWindowsAreSkippedNotMisscored) {
  ObserverConfig config;
  config.max_records = 6;  // exactly one chain: the first falls off whole
  LinkObserver observer(config);
  emit_chain(observer, 1000);
  emit_chain(observer, 20000);
  CompromiseModel model;
  model.compromised = {false, false, true, false, false};
  const auto report = predecessor_attack(
      scenario_for(observer), model, {{0, 9999}, {20000, 29999}});
  EXPECT_EQ(report.trials_skipped, 1u);
  EXPECT_EQ(report.trials, 1u);
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);
}

// --- Intersection attack ---------------------------------------------------

TEST(IntersectionAttackTest, PersistentSenderSurvivesChurnedCover) {
  LinkObserver observer;
  // Window 1: the initiator plus cover sender 4 are active.
  emit_chain(observer, 1000);
  observer.on_send(4, 3, 512, fwd_meta(1500));
  observer.on_deliver(4, 3, 512, fwd_meta(1600));
  // Window 2: the cover sender has churned away; only the initiator.
  emit_chain(observer, 20000);
  const auto report = intersection_attack(scenario_for(observer),
                                          {{0, 9999}, {19000, 29999}});
  EXPECT_EQ(report.trials, 2u);
  EXPECT_DOUBLE_EQ(report.anonymity_set_mean, 1.0);  // {0}
  EXPECT_DOUBLE_EQ(report.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.posterior_entropy_bits, 0.0);
}

TEST(IntersectionAttackTest, NoResponderTrafficMeansUniformPrior) {
  LinkObserver observer;
  // Forward traffic exists but never reaches the responder.
  observer.on_send(0, 2, 512, fwd_meta(1000));
  observer.on_deliver(0, 2, 512, fwd_meta(1100));
  const auto report =
      intersection_attack(scenario_for(observer), {{0, 9999}});
  EXPECT_EQ(report.trials, 0u);
  // Uniform over everyone but the responder (4 of 5 nodes).
  EXPECT_DOUBLE_EQ(report.success_rate, 0.25);
  EXPECT_DOUBLE_EQ(report.anonymity_set_mean, 4.0);
}

// --- Timing correlation ----------------------------------------------------

TEST(CorrelationAttackTest, CoverSendsDiluteThePosterior) {
  // Without cover: the only origin send within the lag of the responder
  // ingress is the initiator's — posterior mass 1.0.
  LinkObserver alone;
  emit_chain(alone, 1000);
  const auto clean = correlation_attack(scenario_for(alone), {{0, 9999}},
                                        /*max_lag_us=*/2000);
  EXPECT_EQ(clean.trials, 1u);
  EXPECT_DOUBLE_EQ(clean.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(clean.posterior_entropy_bits, 0.0);

  // With a cover send inside the lag window the posterior splits 50/50.
  LinkObserver covered;
  emit_chain(covered, 1000);
  covered.on_send(4, 2, 512, fwd_meta(900));
  const auto diluted = correlation_attack(scenario_for(covered), {{0, 9999}},
                                          /*max_lag_us=*/2000);
  EXPECT_EQ(diluted.trials, 1u);
  EXPECT_DOUBLE_EQ(diluted.success_rate, 0.5);
  EXPECT_DOUBLE_EQ(diluted.posterior_entropy_bits, 1.0);
  EXPECT_DOUBLE_EQ(diluted.anonymity_set_mean, 2.0);
}

TEST(CorrelationAttackTest, LagTooSmallFallsBackToUniform) {
  LinkObserver observer;
  emit_chain(observer, 1000);  // origin at 1000, ingress at 1300
  const auto report = correlation_attack(scenario_for(observer), {{0, 9999}},
                                         /*max_lag_us=*/100);
  EXPECT_EQ(report.trials, 1u);
  EXPECT_DOUBLE_EQ(report.success_rate, 0.25);  // uniform over 4
  EXPECT_DOUBLE_EQ(report.anonymity_set_mean, 4.0);
}

// --- Entropy helper --------------------------------------------------------

TEST(EntropyTest, MatchesClosedForms) {
  EXPECT_DOUBLE_EQ(entropy_bits({}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy_bits({1.0, 1.0}), 1.0);
  EXPECT_NEAR(entropy_bits({1.0, 1.0, 1.0, 1.0}), 2.0, 1e-12);
  // Weights need not be normalized.
  EXPECT_NEAR(entropy_bits({3.0, 1.0}),
              -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25)), 1e-12);
}

}  // namespace
}  // namespace p2panon::adversary
