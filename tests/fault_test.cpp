// Unit tests for the fault-injection layer: FaultPlan rule semantics and
// the FaultyTransport decorator over a LoopbackTransport.
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "net/demux.hpp"
#include "net/loopback_transport.hpp"

namespace p2panon::fault {
namespace {

TEST(FaultPlanTest, CrashWindows) {
  FaultPlan plan;
  plan.crash(3, 10 * kSecond, 20 * kSecond).crash(4, 5 * kSecond);
  EXPECT_FALSE(plan.is_crashed(3, 9 * kSecond));
  EXPECT_TRUE(plan.is_crashed(3, 10 * kSecond));
  EXPECT_TRUE(plan.is_crashed(3, 19 * kSecond));
  EXPECT_FALSE(plan.is_crashed(3, 20 * kSecond));  // recovered
  EXPECT_TRUE(plan.is_crashed(4, kNeverTime - 1));  // never recovers
  EXPECT_FALSE(plan.is_crashed(5, 15 * kSecond));
}

TEST(FaultPlanTest, PartitionSemantics) {
  FaultPlan plan;
  plan.partition({1, 2}, {3}, 0, 10 * kSecond);
  EXPECT_TRUE(plan.partitioned(1, 3, 5 * kSecond));
  EXPECT_TRUE(plan.partitioned(3, 2, 5 * kSecond));  // bidirectional
  EXPECT_FALSE(plan.partitioned(1, 2, 5 * kSecond));  // same side
  EXPECT_FALSE(plan.partitioned(1, 4, 5 * kSecond));  // 4 on neither side
  EXPECT_FALSE(plan.partitioned(1, 3, 10 * kSecond));  // window over

  FaultPlan rest;  // empty side_b = everyone not in side_a
  rest.partition({1}, {}, 0, kNeverTime);
  EXPECT_TRUE(rest.partitioned(1, 7, 0));
  EXPECT_FALSE(rest.partitioned(5, 7, 0));
}

TEST(FaultPlanTest, ValidationRejectsBadRules) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash(1, 10, 10), std::invalid_argument);
  EXPECT_THROW(plan.duplicate(1.5, 0, 1), std::invalid_argument);
  EXPECT_THROW(plan.partition({}, {}, 0, 1), std::invalid_argument);
  EXPECT_THROW(plan.corrupt(-0.1, 0, 1), std::invalid_argument);
}

TEST(FaultyTransportTest, EmptyPlanForwardsUntouched) {
  net::LoopbackTransport loopback(4);
  FaultPlan plan;
  FaultyTransport faulty(loopback, plan, 7);

  Bytes seen;
  loopback.register_handler(1, [&](NodeId, NodeId, ByteView payload) {
    seen.assign(payload.begin(), payload.end());
  });
  const Bytes sent = {0x02, 0xaa, 0xbb};
  faulty.send(0, 1, sent);
  loopback.deliver_all();
  EXPECT_EQ(seen, sent);
  EXPECT_EQ(faulty.counters().total_dropped(), 0u);
  EXPECT_EQ(faulty.messages_sent(), 1u);
}

TEST(FaultyTransportTest, CrashAndPartitionDropWithAttribution) {
  net::LoopbackTransport loopback(4);
  FaultPlan plan;
  plan.crash(2, 0).partition({3}, {}, 0, kNeverTime);
  FaultyTransport faulty(loopback, plan, 7);

  std::size_t delivered = 0;
  for (NodeId node = 0; node < 4; ++node) {
    loopback.register_handler(node,
                              [&](NodeId, NodeId, ByteView) { ++delivered; });
  }
  faulty.send(0, 2, {0x01});  // receiver crashed
  faulty.send(2, 0, {0x01});  // sender crashed
  faulty.send(0, 3, {0x01});  // receiver partitioned off
  faulty.send(0, 1, {0x01});  // clean
  loopback.deliver_all();
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(faulty.counters().dropped_crash, 2u);
  EXPECT_EQ(faulty.counters().dropped_partition, 1u);
}

TEST(FaultyTransportTest, CorruptionOnlyTouchesForwardChannel) {
  net::LoopbackTransport loopback(2);
  FaultPlan plan;
  plan.corrupt(1.0, 0, kNeverTime);
  FaultyTransport faulty(loopback, plan, 7);

  std::vector<Bytes> seen;
  loopback.register_handler(1, [&](NodeId, NodeId, ByteView payload) {
    seen.emplace_back(payload.begin(), payload.end());
  });
  const Bytes forward = {
      static_cast<std::uint8_t>(net::Channel::kAnonForward), 0x10, 0x20};
  const Bytes gossip = {0x00, 0x10, 0x20};
  faulty.send(0, 1, forward);
  faulty.send(0, 1, gossip);
  loopback.deliver_all();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_NE(seen[0], forward);           // one byte flipped
  EXPECT_EQ(seen[0][0], forward[0]);     // never the channel id itself
  EXPECT_EQ(seen[1], gossip);            // other channels untouched
  EXPECT_EQ(faulty.counters().corrupted, 1u);
}

TEST(FaultyTransportTest, CorruptionAttributedPerSender) {
  net::LoopbackTransport loopback(4);
  FaultPlan plan;
  plan.corrupt(1.0, 0, kNeverTime, {1, 2});  // only nodes 1 and 2 byzantine
  obs::Registry registry;
  FaultyTransport faulty(loopback, plan, 7, nullptr, &registry);

  for (NodeId node = 0; node < 4; ++node) {
    loopback.register_handler(node, [](NodeId, NodeId, ByteView) {});
  }
  const Bytes forward = {
      static_cast<std::uint8_t>(net::Channel::kAnonForward), 0x10, 0x20};
  faulty.send(1, 3, forward);
  faulty.send(1, 3, forward);
  faulty.send(2, 3, forward);
  faulty.send(0, 3, forward);  // honest sender: untouched
  loopback.deliver_all();

  // Ground truth per corrupting sender, both in the accessor and as
  // fault_corruptions_total{node=...} series in the registry.
  const auto& by_node = faulty.corruptions_by_node();
  ASSERT_EQ(by_node.size(), 2u);
  EXPECT_EQ(by_node.at(1), 2u);
  EXPECT_EQ(by_node.at(2), 1u);
  EXPECT_EQ(registry.counter_value("fault_corruptions_total",
                                   {{"node", "1"}}), 2u);
  EXPECT_EQ(registry.counter_value("fault_corruptions_total",
                                   {{"node", "2"}}), 1u);
  // The honest sender registered no series at all (lazy registration).
  EXPECT_EQ(registry.counter_value("fault_corruptions_total",
                                   {{"node", "0"}}), 0u);
  EXPECT_EQ(faulty.counters().corrupted, 3u);
}

TEST(FaultyTransportTest, DuplicationDeliversTwice) {
  net::LoopbackTransport loopback(2);
  FaultPlan plan;
  plan.duplicate(1.0, 0, kNeverTime);
  FaultyTransport faulty(loopback, plan, 7);

  std::size_t delivered = 0;
  loopback.register_handler(1, [&](NodeId, NodeId, ByteView) { ++delivered; });
  faulty.send(0, 1, {0x01, 0x02});
  loopback.deliver_all();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(faulty.counters().duplicated, 1u);
}

TEST(FaultyTransportTest, DeterministicAcrossRuns) {
  const auto run = [] {
    net::LoopbackTransport loopback(2);
    FaultPlan plan;
    LinkSpikeRule spike;
    spike.loss_rate = 0.5;
    plan.link_spike(spike);
    FaultyTransport faulty(loopback, plan, 99);
    std::size_t delivered = 0;
    loopback.register_handler(1,
                              [&](NodeId, NodeId, ByteView) { ++delivered; });
    for (int i = 0; i < 200; ++i) faulty.send(0, 1, {0x01});
    loopback.deliver_all();
    return std::make_pair(delivered, faulty.counters().dropped_loss);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.second, 0u);
  EXPECT_GT(first.first, 0u);
}

}  // namespace
}  // namespace p2panon::fault
