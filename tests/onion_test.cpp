// Tests for onion construction/stripping, both codecs, and the guarantee
// that the fast codec is byte-size-identical to the real one.
#include <gtest/gtest.h>

#include "anon/buffer_pool.hpp"
#include "anon/onion.hpp"
#include "common/alloc_probe.hpp"
#include "common/rng.hpp"

namespace p2panon::anon {
namespace {

struct CodecFixture {
  Rng rng{77};
  crypto::KeyDirectory directory;
  std::vector<crypto::KeyPair> keys;

  CodecFixture() { keys = directory.provision(8, rng); }

  std::vector<RelayKey> relay_keys(std::size_t count) {
    std::vector<RelayKey> out;
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(crypto::random_symmetric_key(rng));
    }
    return out;
  }
};

class OnionCodecTest : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<OnionCodec> make_codec() const {
    if (GetParam()) return std::make_unique<RealOnionCodec>();
    return std::make_unique<FastOnionCodec>();
  }
};

TEST_P(OnionCodecTest, PathOnionPeelsHopByHop) {
  CodecFixture fx;
  const auto codec = make_codec();
  const std::vector<NodeId> relays = {2, 4, 6};
  const auto keys = fx.relay_keys(3);
  Bytes onion =
      codec->build_path_onion(relays, keys, 7, fx.directory, fx.rng);

  // Relay 2 peels first.
  auto peel1 = codec->peel_path_onion(fx.keys[2], onion);
  ASSERT_TRUE(peel1.has_value());
  EXPECT_EQ(peel1->hop.next, 4u);
  EXPECT_FALSE(peel1->hop.last);
  EXPECT_EQ(peel1->hop.relay_key, keys[0]);

  auto peel2 = codec->peel_path_onion(fx.keys[4], peel1->rest);
  ASSERT_TRUE(peel2.has_value());
  EXPECT_EQ(peel2->hop.next, 6u);
  EXPECT_FALSE(peel2->hop.last);

  auto peel3 = codec->peel_path_onion(fx.keys[6], peel2->rest);
  ASSERT_TRUE(peel3.has_value());
  EXPECT_EQ(peel3->hop.next, 7u);  // the responder
  EXPECT_TRUE(peel3->hop.last);
  EXPECT_TRUE(peel3->rest.empty());
}

TEST_P(OnionCodecTest, SingleRelayPath) {
  CodecFixture fx;
  const auto codec = make_codec();
  const auto keys = fx.relay_keys(1);
  Bytes onion = codec->build_path_onion({3}, keys, 5, fx.directory, fx.rng);
  auto peeled = codec->peel_path_onion(fx.keys[3], onion);
  ASSERT_TRUE(peeled.has_value());
  EXPECT_EQ(peeled->hop.next, 5u);
  EXPECT_TRUE(peeled->hop.last);
}

TEST_P(OnionCodecTest, PayloadCoreRoundTrip) {
  CodecFixture fx;
  const auto codec = make_codec();
  PayloadCore core;
  core.message_id = 0xdeadbeefcafef00dULL;
  core.segment_index = 3;
  core.original_size = 1024;
  core.needed_segments = 2;
  core.total_segments = 8;
  core.segment = Bytes(512, 0x5a);
  core.responder_key = crypto::random_symmetric_key(fx.rng);

  const Bytes sealed =
      codec->seal_payload_core(core, fx.keys[5].public_key, fx.rng);
  const auto opened = codec->open_payload_core(fx.keys[5], sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->message_id, core.message_id);
  EXPECT_EQ(opened->segment_index, core.segment_index);
  EXPECT_EQ(opened->original_size, core.original_size);
  EXPECT_EQ(opened->needed_segments, core.needed_segments);
  EXPECT_EQ(opened->total_segments, core.total_segments);
  EXPECT_EQ(opened->segment, core.segment);
  EXPECT_EQ(opened->responder_key, core.responder_key);
}

TEST_P(OnionCodecTest, LayerWrapUnwrapRoundTrip) {
  CodecFixture fx;
  const auto codec = make_codec();
  const RelayKey key = crypto::random_symmetric_key(fx.rng);
  const Bytes inner = bytes_of("payload through the mix");
  const Bytes outer = codec->wrap_layer(key, 9, inner);
  EXPECT_EQ(outer.size(), inner.size() + codec->layer_overhead());
  const auto unwrapped = codec->unwrap_layer(key, 9, outer);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(*unwrapped, inner);
}

TEST_P(OnionCodecTest, NestedLayersStripInOrder) {
  CodecFixture fx;
  const auto codec = make_codec();
  const auto keys = fx.relay_keys(3);
  const Bytes core = bytes_of("innermost");
  Bytes blob = core;
  for (std::size_t i = keys.size(); i-- > 0;) {
    blob = codec->wrap_layer(keys[i], 4, blob);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto inner = codec->unwrap_layer(keys[i], 4, blob);
    ASSERT_TRUE(inner.has_value());
    blob = std::move(*inner);
  }
  EXPECT_EQ(blob, core);
}

// The in-place wrap/unwrap forms are the relay fast path; they must be
// byte-identical to the allocating forms for both codecs.
TEST_P(OnionCodecTest, InPlaceFormsMatchAllocatingForms) {
  CodecFixture fx;
  const auto codec = make_codec();
  const RelayKey key = crypto::random_symmetric_key(fx.rng);
  for (const std::size_t len : {0u, 1u, 64u, 1024u, 8192u}) {
    Bytes inner(len);
    fx.rng.fill(inner.data(), inner.size());
    const Bytes outer = codec->wrap_layer(key, 11, inner);
    Bytes buf = inner;
    codec->wrap_layer_in_place(key, 11, buf);
    EXPECT_EQ(buf, outer) << "len=" << len;
    ASSERT_TRUE(codec->unwrap_layer_in_place(key, 11, buf));
    EXPECT_EQ(buf, inner) << "len=" << len;
  }
  // Tamper and truncation still fail through the in-place path (Real only;
  // the Fast codec is deliberately unauthenticated).
  if (GetParam()) {
    Bytes buf = bytes_of("segment");
    codec->wrap_layer_in_place(key, 12, buf);
    Bytes tampered = buf;
    tampered[1] ^= 0x10;
    EXPECT_FALSE(codec->unwrap_layer_in_place(key, 12, tampered));
    Bytes wrong_seq = buf;
    EXPECT_FALSE(codec->unwrap_layer_in_place(key, 13, wrong_seq));
  }
  Bytes tiny(codec->layer_overhead() - 1);
  EXPECT_FALSE(codec->unwrap_layer_in_place(key, 12, tiny));
}

INSTANTIATE_TEST_SUITE_P(RealAndFast, OnionCodecTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Real" : "Fast";
                         });

// --- Zero-allocation relay path ----------------------------------------------------

// Steady-state relaying (acquire pooled buffer, peel or wrap a layer in
// place) must perform zero heap allocations per segment. onion_test links
// the strong alloc_probe hooks, so allocations() counts operator new for
// the whole binary.
TEST(ZeroAllocRelayTest, PooledInPlaceRelayPathDoesNotAllocate) {
  ASSERT_TRUE(alloc_probe::active())
      << "alloc_probe_hooks.cpp must be linked into onion_test";
  Rng rng(99);
  RealOnionCodec codec;
  const RelayKey key = crypto::random_symmetric_key(rng);
  BufferPool pool;
  Bytes segment(8192);
  rng.fill(segment.data(), segment.size());
  const Bytes wire = codec.wrap_layer(key, 21, segment);

  // Warm the pool: first lease may grow the freelist entry.
  { PooledBytes warm(pool, wire.size() + codec.layer_overhead()); }

  for (int round = 0; round < 4; ++round) {
    const std::uint64_t before = alloc_probe::allocations();
    {
      // Receive: copy the wire blob into a pooled buffer, peel in place
      // (forward direction), then re-wrap in place (reverse direction) —
      // the two relay data-plane operations.
      PooledBytes buf(pool, wire.size() + codec.layer_overhead());
      buf->assign(wire.begin(), wire.end());
      ASSERT_TRUE(codec.unwrap_layer_in_place(key, 21, *buf));
      codec.wrap_layer_in_place(key, 21, *buf);
    }
    const std::uint64_t after = alloc_probe::allocations();
    EXPECT_EQ(after - before, 0u) << "round " << round;
  }
}

TEST(ZeroAllocRelayTest, PoolReusesCapacity) {
  BufferPool pool(1024);
  Bytes first = pool.acquire(4096);
  const std::size_t cap = first.capacity();
  EXPECT_GE(cap, 4096u);
  pool.release(std::move(first));
  EXPECT_EQ(pool.idle(), 1u);
  const Bytes second = pool.acquire();
  EXPECT_EQ(second.capacity(), cap);  // same warm buffer came back
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(RealOnionCodecTest, WrongKeyOrTamperRejected) {
  CodecFixture fx;
  RealOnionCodec codec;
  const auto keys = fx.relay_keys(2);
  Bytes onion = codec.build_path_onion({1, 2}, keys, 3, fx.directory, fx.rng);
  // Wrong relay cannot peel.
  EXPECT_FALSE(codec.peel_path_onion(fx.keys[5], onion).has_value());
  // Tampered onion rejected by the right relay.
  onion[40] ^= 1;
  EXPECT_FALSE(codec.peel_path_onion(fx.keys[1], onion).has_value());

  const RelayKey key = crypto::random_symmetric_key(fx.rng);
  Bytes layered = codec.wrap_layer(key, 1, bytes_of("x"));
  // Wrong seq (nonce) fails authentication.
  EXPECT_FALSE(codec.unwrap_layer(key, 2, layered).has_value());
  layered[0] ^= 1;
  EXPECT_FALSE(codec.unwrap_layer(key, 1, layered).has_value());
}

TEST(OnionSizeTest, FastMatchesRealByteForByte) {
  // The statistical benches rely on FastOnionCodec producing identical
  // message sizes to the real crypto, so bandwidth numbers carry over.
  CodecFixture fx;
  RealOnionCodec real;
  FastOnionCodec fast;
  EXPECT_EQ(real.layer_overhead(), fast.layer_overhead());
  EXPECT_EQ(real.core_overhead(), fast.core_overhead());

  for (std::size_t relays : {1u, 3u, 5u}) {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < relays; ++i) ids.push_back(static_cast<NodeId>(i));
    const auto keys = fx.relay_keys(relays);
    const Bytes a =
        real.build_path_onion(ids, keys, 7, fx.directory, fx.rng);
    const Bytes b =
        fast.build_path_onion(ids, keys, 7, fx.directory, fx.rng);
    EXPECT_EQ(a.size(), b.size()) << "relays=" << relays;
  }

  PayloadCore core;
  core.segment = Bytes(777, 1);
  const Bytes sealed_real =
      real.seal_payload_core(core, fx.keys[0].public_key, fx.rng);
  const Bytes sealed_fast =
      fast.seal_payload_core(core, fx.keys[0].public_key, fx.rng);
  EXPECT_EQ(sealed_real.size(), sealed_fast.size());

  const RelayKey key = crypto::random_symmetric_key(fx.rng);
  EXPECT_EQ(real.wrap_layer(key, 0, Bytes(100, 0)).size(),
            fast.wrap_layer(key, 0, Bytes(100, 0)).size());
}

TEST(PathHopWireTest, ParseRejectsMalformed) {
  // Too short.
  EXPECT_FALSE(parse_path_hop(Bytes(10, 0)).has_value());
  // Bad last flag.
  Bytes bad(4 + 1 + 32, 0);
  bad[4] = 7;
  EXPECT_FALSE(parse_path_hop(bad).has_value());
  // last = 1 but trailing bytes present.
  Bytes trailing(4 + 1 + 32 + 3, 0);
  trailing[4] = 1;
  EXPECT_FALSE(parse_path_hop(trailing).has_value());
  // last = 0 but no nested onion.
  Bytes empty_rest(4 + 1 + 32, 0);
  empty_rest[4] = 0;
  EXPECT_FALSE(parse_path_hop(empty_rest).has_value());
}

TEST(PayloadCoreWireTest, ParseRejectsLengthMismatch) {
  PayloadCore core;
  core.segment = Bytes(10, 2);
  Bytes plain = serialize_payload_core(core);
  EXPECT_TRUE(parse_payload_core(plain).has_value());
  plain.push_back(0);
  EXPECT_FALSE(parse_payload_core(plain).has_value());
  plain.pop_back();
  plain.pop_back();
  EXPECT_FALSE(parse_payload_core(plain).has_value());
}

// The auth trailer admits exactly three wire shapes: legacy (no trailer),
// digest ([flags=1][digest]), and tagged ([flags=3][digest][tag]). The
// flags byte and the serialized size must agree; any other combination is
// a parse failure, not a fallback.
TEST(PayloadCoreWireTest, AuthTrailerShapesRoundTrip) {
  PayloadCore core;
  core.message_id = 77;
  core.segment_index = 2;
  core.needed_segments = 2;
  core.total_segments = 4;
  core.segment = Bytes(32, 0xab);
  for (std::uint8_t i = 0; i < crypto::kMessageDigestSize; ++i) {
    core.message_digest[i] = i;
  }
  for (std::uint8_t i = 0; i < crypto::kSegmentTagSize; ++i) {
    core.auth_tag[i] = static_cast<std::uint8_t>(0xf0 + i);
  }

  const Bytes legacy = serialize_payload_core(core);  // kAuthNone default

  core.auth_flags = PayloadCore::kAuthDigest;
  const Bytes digest = serialize_payload_core(core);
  EXPECT_EQ(digest.size(), legacy.size() + 1 + crypto::kMessageDigestSize);

  core.auth_flags = PayloadCore::kAuthTagged;
  const Bytes tagged = serialize_payload_core(core);
  EXPECT_EQ(tagged.size(),
            digest.size() + crypto::kSegmentTagSize);

  const auto parsed_legacy = parse_payload_core(legacy);
  ASSERT_TRUE(parsed_legacy.has_value());
  EXPECT_EQ(parsed_legacy->auth_flags, PayloadCore::kAuthNone);

  const auto parsed_digest = parse_payload_core(digest);
  ASSERT_TRUE(parsed_digest.has_value());
  EXPECT_EQ(parsed_digest->auth_flags, PayloadCore::kAuthDigest);
  EXPECT_EQ(parsed_digest->message_digest, core.message_digest);

  const auto parsed_tagged = parse_payload_core(tagged);
  ASSERT_TRUE(parsed_tagged.has_value());
  EXPECT_EQ(parsed_tagged->auth_flags, PayloadCore::kAuthTagged);
  EXPECT_EQ(parsed_tagged->message_digest, core.message_digest);
  EXPECT_EQ(parsed_tagged->auth_tag, core.auth_tag);
}

TEST(PayloadCoreWireTest, AuthTrailerRejectsFlagSizeMismatch) {
  PayloadCore core;
  core.needed_segments = 1;
  core.total_segments = 1;
  core.segment = Bytes(16, 0x11);
  core.auth_flags = PayloadCore::kAuthTagged;
  Bytes tagged = serialize_payload_core(core);

  // Flip the flags byte (it sits right after the segment bytes) to the
  // digest shape: the size now claims tagged but the flags claim digest.
  const std::size_t flags_at =
      tagged.size() - 1 - crypto::kMessageDigestSize - crypto::kSegmentTagSize;
  ASSERT_EQ(tagged[flags_at], PayloadCore::kAuthTagged);
  tagged[flags_at] = PayloadCore::kAuthDigest;
  EXPECT_FALSE(parse_payload_core(tagged).has_value());
  // Unknown flags value: rejected outright.
  tagged[flags_at] = 2;
  EXPECT_FALSE(parse_payload_core(tagged).has_value());
  tagged[flags_at] = PayloadCore::kAuthTagged;
  EXPECT_TRUE(parse_payload_core(tagged).has_value());

  // Truncating the tag (tagged shape, digest-sized buffer with flags=3)
  // is also a mismatch.
  core.auth_flags = PayloadCore::kAuthDigest;
  Bytes digest_shape = serialize_payload_core(core);
  digest_shape[flags_at] = PayloadCore::kAuthTagged;
  EXPECT_FALSE(parse_payload_core(digest_shape).has_value());
}

}  // namespace
}  // namespace p2panon::anon
