// Unit tests for lifetime distributions and the churn model.
#include <gtest/gtest.h>

#include <cmath>

#include "churn/churn_model.hpp"
#include "churn/distributions.hpp"
#include "metrics/cdf.hpp"
#include "sim/simulator.hpp"

namespace p2panon::churn {
namespace {

// Samples from each distribution should match its own CDF (one-sample KS).
class DistributionKsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DistributionKsTest, SamplesMatchCdf) {
  const auto dist = parse_distribution(GetParam());
  Rng rng(42);
  metrics::EmpiricalCdf cdf;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) cdf.add(dist->sample(rng));
  const double ks =
      cdf.ks_distance([&](double t) { return dist->cdf(t); });
  // KS critical value at alpha = 0.001 is ~1.95 / sqrt(n) ~ 0.0138.
  EXPECT_LT(ks, 0.015) << dist->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionKsTest,
    ::testing::Values("pareto:median=3600", "pareto:shape=0.83,scale=1560",
                      "exp:mean=3600", "uniform:lo=360,hi=6840",
                      "weibull:shape=0.7,scale=1800"));

TEST(ParetoTest, MedianMatchesConstruction) {
  const auto pareto = ParetoLifetime::with_median(3600.0);
  EXPECT_NEAR(pareto.median(), 3600.0, 1e-9);
  EXPECT_NEAR(pareto.scale(), 1800.0, 1e-9);  // alpha = 1: scale = median/2
  EXPECT_NEAR(pareto.cdf(3600.0), 0.5, 1e-12);
  EXPECT_TRUE(std::isinf(pareto.mean()));  // shape 1: infinite mean
}

TEST(ParetoTest, Figure1Parameters) {
  // The paper's Gnutella fit: alpha = 0.83, beta = 1560 s.
  const ParetoLifetime gnutella(0.83, 1560.0);
  EXPECT_EQ(gnutella.cdf(1000.0), 0.0);  // below scale
  EXPECT_NEAR(gnutella.cdf(1560.0), 0.0, 1e-12);
  EXPECT_GT(gnutella.cdf(10000.0), 0.7);
  EXPECT_LT(gnutella.cdf(70000.0), 1.0);
}

TEST(ParetoTest, ConditionalSurvivalIsEquation1) {
  const ParetoLifetime pareto(0.83, 1560.0);
  // p = (alive / (alive + since))^alpha.
  EXPECT_NEAR(pareto.conditional_survival(1000.0, 1000.0),
              std::pow(0.5, 0.83), 1e-12);
  EXPECT_NEAR(pareto.conditional_survival(5000.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(pareto.conditional_survival(0.0, 100.0), 0.0, 1e-12);
  // Longer-alive nodes are likelier to survive the same gap (heavy tail).
  EXPECT_GT(pareto.conditional_survival(10000.0, 600.0),
            pareto.conditional_survival(100.0, 600.0));
}

TEST(ExponentialTest, Moments) {
  const ExponentialLifetime exp_dist(3600.0);
  EXPECT_NEAR(exp_dist.mean(), 3600.0, 1e-9);
  EXPECT_NEAR(exp_dist.median(), 3600.0 * std::log(2.0), 1e-9);
  EXPECT_NEAR(exp_dist.cdf(3600.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(UniformTest, PaperDefaultHasMeanOneHour) {
  const auto uniform = UniformLifetime::paper_default();
  EXPECT_NEAR(uniform.mean(), 3600.0, 1e-9);
  EXPECT_NEAR(uniform.median(), 3600.0, 1e-9);
  EXPECT_EQ(uniform.cdf(100.0), 0.0);
  EXPECT_EQ(uniform.cdf(7000.0), 1.0);
}

TEST(DistributionParserTest, RejectsUnknown) {
  EXPECT_THROW(parse_distribution("gaussian:mean=1"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("pareto:junk"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("exp"), std::invalid_argument);
}

// --- churn model -------------------------------------------------------------------

TEST(ChurnModelTest, InitialUpFractionRespected) {
  sim::Simulator simulator;
  const ExponentialLifetime dist(3600.0);
  ChurnModel churn_model(simulator, 1000, dist, Rng(1), 0.5);
  EXPECT_NEAR(static_cast<double>(churn_model.up_count()) / 1000.0, 0.5,
              0.06);
  ChurnModel all_up(simulator, 100, dist, Rng(2), 1.0);
  EXPECT_EQ(all_up.up_count(), 100u);
}

TEST(ChurnModelTest, NotificationsMatchStateChanges) {
  sim::Simulator simulator;
  const ExponentialLifetime dist(100.0);  // fast churn
  ChurnModel churn_model(simulator, 50, dist, Rng(3), 0.5);
  std::size_t events = 0;
  churn_model.subscribe([&](NodeId node, bool up, SimTime when) {
    (void)when;
    EXPECT_EQ(churn_model.is_up(node), up);  // state already applied
    ++events;
  });
  churn_model.start();
  simulator.run_until(from_seconds(1000));
  EXPECT_GT(events, 100u);
  EXPECT_EQ(events, churn_model.total_transitions());
}

TEST(ChurnModelTest, PinnedNodeNeverLeaves) {
  sim::Simulator simulator;
  const ExponentialLifetime dist(10.0);  // violent churn
  ChurnModel churn_model(simulator, 20, dist, Rng(4), 0.5);
  churn_model.pin_up(7);
  bool seven_left = false;
  churn_model.subscribe([&](NodeId node, bool up, SimTime) {
    if (node == 7 && !up) seven_left = true;
  });
  churn_model.start();
  simulator.run_until(from_seconds(500));
  EXPECT_FALSE(seven_left);
  EXPECT_TRUE(churn_model.is_up(7));
}

TEST(ChurnModelTest, SteadyStateAvailabilityNearHalf) {
  sim::Simulator simulator;
  // Symmetric up/down intervals -> availability ~0.5.
  const ExponentialLifetime dist(600.0);
  ChurnModel churn_model(simulator, 500, dist, Rng(5), 0.5);
  churn_model.start();
  simulator.run_until(from_seconds(6000));
  EXPECT_NEAR(churn_model.measured_availability(simulator.now()), 0.5, 0.05);
}

TEST(ChurnModelTest, AliveSecondsTracksJoins) {
  sim::Simulator simulator;
  const ExponentialLifetime dist(1e9);  // effectively no churn
  ChurnModel churn_model(simulator, 4, dist, Rng(6), 1.0);
  churn_model.start();
  simulator.run_until(from_seconds(120));
  EXPECT_NEAR(churn_model.alive_seconds(0, simulator.now()), 120.0, 1.0);
}

TEST(ChurnModelTest, StartTwiceThrows) {
  sim::Simulator simulator;
  const ExponentialLifetime dist(100.0);
  ChurnModel churn_model(simulator, 4, dist, Rng(7));
  churn_model.start();
  EXPECT_THROW(churn_model.start(), std::logic_error);
}

}  // namespace
}  // namespace p2panon::churn
