// Robustness and adversarial-input tests: junk bytes into every wire
// parser and router handler, replayed and tampered relay traffic, and a
// randomized reference-model check of the event queue.
#include <gtest/gtest.h>

#include <map>

#include "anon/onion.hpp"
#include "anon/protocols.hpp"
#include "anon/rendezvous.hpp"
#include "anon/router.hpp"
#include "anon/session.hpp"
#include "membership/gossip.hpp"
#include "membership/node_cache.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/loopback_transport.hpp"
#include "net/sim_transport.hpp"
#include "harness/environment.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace p2panon {
namespace {

// --- parser fuzzing ---------------------------------------------------------------

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  rng.fill(out.data(), out.size());
  return out;
}

TEST(ParserFuzzTest, PathHopSurvivesJunk) {
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const Bytes junk = random_bytes(rng, 200);
    EXPECT_NO_THROW({ auto r = anon::parse_path_hop(junk); (void)r; });
  }
}

TEST(ParserFuzzTest, PayloadCoreSurvivesJunk) {
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const Bytes junk = random_bytes(rng, 300);
    EXPECT_NO_THROW({ auto r = anon::parse_payload_core(junk); (void)r; });
  }
}

TEST(ParserFuzzTest, ReverseCoreSurvivesJunk) {
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const Bytes junk = random_bytes(rng, 300);
    EXPECT_NO_THROW({ auto r = anon::parse_reverse_core(junk); (void)r; });
  }
}

TEST(ParserFuzzTest, RendezvousFrameSurvivesJunk) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const Bytes junk = random_bytes(rng, 100);
    EXPECT_NO_THROW({ auto r = anon::parse_frame(junk); (void)r; });
  }
}

TEST(ParserFuzzTest, GossipRecordsSurviveJunk) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const Bytes junk = random_bytes(rng, 200);
    std::vector<membership::DecodedRecord> out;
    EXPECT_NO_THROW(membership::decode_records(
        junk, 0, junk.empty() ? 0 : junk[0], out));
  }
}

TEST(ParserFuzzTest, BitFlippedValidStructuresParseOrRejectCleanly) {
  // Take valid serialized structures and flip each byte: the parser must
  // either reject or produce a structurally valid result, never crash.
  anon::PayloadCore core;
  core.message_id = 7;
  core.segment = Bytes(64, 0x3c);
  Bytes plain = anon::serialize_payload_core(core);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    Bytes mutated = plain;
    mutated[i] ^= 0xff;
    EXPECT_NO_THROW({ auto r = anon::parse_payload_core(mutated); (void)r; });
  }
}

// --- router under hostile traffic ---------------------------------------------------

struct HostileFixture {
  static constexpr std::size_t kNodes = 16;
  sim::Simulator simulator;
  net::LatencyMatrix latency = net::LatencyMatrix::synthetic(kNodes, Rng(10));
  net::SimTransport transport{simulator, latency, [](NodeId) { return true; }};
  net::Demux demux{transport, kNodes};
  crypto::KeyDirectory directory;
  anon::RealOnionCodec onion;
  std::unique_ptr<anon::AnonRouter> router;
  membership::NodeCache cache{kNodes};
  Rng rng{11};

  HostileFixture() {
    Rng key_rng(12);
    auto keys = directory.provision(kNodes, key_rng);
    router = std::make_unique<anon::AnonRouter>(
        simulator, demux, onion, directory, std::move(keys),
        [](NodeId) { return true; }, anon::RouterConfig{}, rng.fork());
    router->start();
    for (NodeId node = 0; node < kNodes; ++node) {
      cache.heard_directly(node, 100 * kSecond, 0);
    }
  }
};

TEST(HostileTrafficTest, RouterIgnoresGarbageDatagrams) {
  HostileFixture fx;
  Rng rng(13);
  // Blast random bytes at both anon channels from random senders.
  for (int i = 0; i < 2000; ++i) {
    const auto from = static_cast<NodeId>(rng.next_below(16));
    const auto to = static_cast<NodeId>(rng.next_below(16));
    const auto channel = rng.bernoulli(0.5) ? net::Channel::kAnonForward
                                            : net::Channel::kAnonReverse;
    fx.demux.send(channel, from, to, random_bytes(rng, 400));
  }
  // run_until, not run(): the router's TTL sweeper reschedules itself
  // forever, so draining "until idle" never returns.
  EXPECT_NO_THROW(fx.simulator.run_until(fx.simulator.now() + kMinute));
  // And the router still works afterwards.
  anon::SessionConfig config =
      anon::ProtocolSpec::curmix(anon::MixChoice::kRandom).session_config({});
  anon::Session session(*fx.router, fx.cache, 0, 1, config, Rng(14));
  bool delivered = false;
  fx.router->set_message_handler(
      [&](const anon::ReceivedMessage&) { delivered = true; });
  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(fx.simulator.now() + 10 * kSecond);
  session.send_message(bytes_of("still alive"));
  fx.simulator.run_until(fx.simulator.now() + 10 * kSecond);
  EXPECT_TRUE(delivered);
}

// Transport decorator that records every datagram so tests can replay
// captured traffic like an on-path attacker.
class CapturingTransport final : public net::Transport {
 public:
  explicit CapturingTransport(net::Transport& inner) : inner_(inner) {}

  void send(NodeId from, NodeId to, Bytes payload) override {
    captured_.push_back({from, to, payload});
    inner_.send(from, to, std::move(payload));
  }
  void register_handler(NodeId node, Handler handler) override {
    inner_.register_handler(node, std::move(handler));
  }
  std::uint64_t bytes_sent() const override { return inner_.bytes_sent(); }
  std::uint64_t messages_sent() const override {
    return inner_.messages_sent();
  }

  struct Datagram {
    NodeId from;
    NodeId to;
    Bytes payload;
  };
  const std::vector<Datagram>& captured() const { return captured_; }
  void replay(const Datagram& datagram) {
    inner_.send(datagram.from, datagram.to, datagram.payload);
  }

 private:
  net::Transport& inner_;
  std::vector<Datagram> captured_;
};

TEST(HostileTrafficTest, ReplayedSegmentDeliversMessageOnlyOnce) {
  sim::Simulator simulator;
  const auto latency = net::LatencyMatrix::synthetic(16, Rng(30));
  net::SimTransport base(simulator, latency, [](NodeId) { return true; });
  CapturingTransport transport(base);
  net::Demux demux(transport, 16);
  crypto::KeyDirectory directory;
  Rng key_rng(31);
  auto keys = directory.provision(16, key_rng);
  anon::RealOnionCodec onion;
  anon::AnonRouter router(simulator, demux, onion, directory,
                          std::move(keys), [](NodeId) { return true; },
                          anon::RouterConfig{}, Rng(32));
  router.start();
  membership::NodeCache cache(16);
  for (NodeId node = 0; node < 16; ++node) {
    cache.heard_directly(node, 100 * kSecond, 0);
  }

  anon::SessionConfig config =
      anon::ProtocolSpec::curmix(anon::MixChoice::kRandom).session_config({});
  anon::Session session(router, cache, 0, 1, config, Rng(33));

  std::size_t reconstructions = 0;
  router.set_message_handler(
      [&](const anon::ReceivedMessage&) { ++reconstructions; });

  session.construct([&](bool, std::size_t) {});
  simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());
  const std::size_t before_payload = transport.captured().size();
  session.send_message(bytes_of("replay me"));
  simulator.run_until(20 * kSecond);
  ASSERT_EQ(reconstructions, 1u);

  // Replay every datagram the payload exchange produced, twice.
  const std::vector<CapturingTransport::Datagram> snapshot(
      transport.captured().begin() + static_cast<long>(before_payload),
      transport.captured().end());
  for (int round = 0; round < 2; ++round) {
    for (const auto& datagram : snapshot) transport.replay(datagram);
  }
  simulator.run_until(40 * kSecond);
  // The responder deduplicates by (message id, segment index): the message
  // is reconstructed exactly once no matter how often it is replayed.
  EXPECT_EQ(reconstructions, 1u);
}

TEST(HostileTrafficTest, GossipChannelJunkDoesNotPoisonCaches) {
  sim::Simulator simulator;
  const std::size_t n = 32;
  auto latency = net::LatencyMatrix::synthetic(n, Rng(16));
  churn::ExponentialLifetime dist(1e9);
  churn::ChurnModel churn_model(simulator, n, dist, Rng(17), 1.0);
  net::SimTransport transport(simulator, latency,
                              [&](NodeId id) { return churn_model.is_up(id); });
  net::Demux demux(transport, n);
  membership::GossipMembership gossip(simulator, demux, churn_model,
                                      membership::GossipConfig{}, Rng(18));
  gossip.start();
  churn_model.start();

  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    demux.send(net::Channel::kGossip,
               static_cast<NodeId>(rng.next_below(n)),
               static_cast<NodeId>(rng.next_below(n)),
               random_bytes(rng, 300));
  }
  EXPECT_NO_THROW(simulator.run_until(2 * kMinute));
  // With no churn, everyone should still (correctly) believe everyone is
  // alive; junk must not have marked nodes dead.
  EXPECT_GT(gossip.belief_accuracy(), 0.99);
}

// --- event queue vs reference model ---------------------------------------------------

TEST(EventQueueModelTest, MatchesMultimapReference) {
  sim::EventQueue queue;
  std::multimap<SimTime, int> reference;
  std::map<int, sim::EventId> live_ids;
  Rng rng(20);
  int next_tag = 0;
  std::vector<int> popped_queue;
  std::vector<int> popped_reference;

  for (int op = 0; op < 20000; ++op) {
    const auto choice = rng.next_below(100);
    if (choice < 55 || queue.empty()) {
      const auto when = static_cast<SimTime>(rng.next_below(1000));
      const int tag = next_tag++;
      live_ids[tag] = queue.schedule(when, [] {});
      reference.emplace(when, tag);
    } else if (choice < 75 && !live_ids.empty()) {
      // Cancel a random live event.
      auto it = live_ids.begin();
      std::advance(it, static_cast<long>(rng.next_below(live_ids.size())));
      ASSERT_TRUE(queue.cancel(it->second));
      for (auto rit = reference.begin(); rit != reference.end(); ++rit) {
        if (rit->second == it->first) {
          reference.erase(rit);
          break;
        }
      }
      live_ids.erase(it);
    } else {
      // Pop: times must match; among equal times the queue pops in
      // schedule order, which the multimap preserves for equal keys.
      const auto ready = queue.pop();
      ASSERT_FALSE(reference.empty());
      ASSERT_EQ(ready.time, reference.begin()->first);
      // Find and erase the matching tag (first inserted at that time).
      const int tag = reference.begin()->second;
      reference.erase(reference.begin());
      live_ids.erase(tag);
      popped_queue.push_back(tag);
      popped_reference.push_back(tag);
    }
    ASSERT_EQ(queue.size(), reference.size());
  }
}

// --- whole-environment determinism -----------------------------------------------------

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalSimulations) {
  auto run = [](std::uint64_t seed) {
    harness::EnvironmentConfig config;
    config.num_nodes = 64;
    config.seed = seed;
    harness::Environment env(config);
    env.start();
    env.simulator().run_until(10 * kMinute);
    return std::make_tuple(env.simulator().executed_events(),
                           env.membership().messages_sent(),
                           env.membership().bytes_sent(),
                           env.churn().total_transitions(),
                           env.transport().bytes_sent());
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(std::get<4>(run(77)), std::get<4>(run(78)));
}

// --- self-healing: ack timeout -> failure detection -> rebuild --------------------

TEST(RebuildPathTest, AckTimeoutTriggersRebuildAndResend) {
  constexpr std::size_t kNodes = 16;
  sim::Simulator simulator;
  net::LoopbackTransport transport(kNodes);
  net::Demux demux(transport, kNodes);
  crypto::KeyDirectory directory;
  anon::RealOnionCodec onion;
  Rng key_rng(71);
  auto keys = directory.provision(kNodes, key_rng);
  anon::AnonRouter router(simulator, demux, onion, directory, std::move(keys),
                          [&](NodeId node) { return transport.is_up(node); },
                          anon::RouterConfig{}, Rng(72));
  router.start();
  membership::NodeCache cache(kNodes);
  for (NodeId node = 0; node < kNodes; ++node) {
    cache.heard_directly(node, 100 * kSecond, 0);
  }

  anon::SessionConfig config =
      anon::ProtocolSpec::curmix(anon::MixChoice::kRandom).session_config({});
  config.auto_reconstruct = true;
  anon::Session session(router, cache, 0, 1, config, Rng(73));

  std::size_t failures_seen = 0;
  session.set_path_failure_handler([&](std::size_t) { ++failures_seen; });
  bool delivered = false;
  router.set_message_handler([&](const anon::ReceivedMessage& msg) {
    if (msg.responder == 1) delivered = true;
  });

  // Loopback delivery is manual while simulator timers drive timeouts, so
  // interleave short timer steps with queue drains.
  const auto pump = [&](SimDuration duration) {
    const SimTime deadline = simulator.now() + duration;
    while (simulator.now() < deadline) {
      transport.deliver_all();
      simulator.run_until(
          std::min(deadline, simulator.now() + 100 * kMillisecond));
    }
    transport.deliver_all();
  };

  bool constructed = false;
  session.construct([&](bool ok, std::size_t) { constructed = ok; });
  pump(10 * kSecond);
  ASSERT_TRUE(constructed);
  ASSERT_EQ(session.established_paths(), 1u);

  // Kill a middle relay: the next segment's end-to-end ack cannot return,
  // so the ack timeout must declare the path failed and rebuild it.
  const NodeId victim = session.paths()[0].relays[1];
  transport.set_up(victim, false);
  ASSERT_NE(session.send_message(bytes_of("through a dead relay")), 0u);

  // Long enough for detection (5 s ack timeout) plus rebuild retries that
  // happen to re-pick the dead relay (5 s construct timeout each).
  pump(2 * kMinute);

  EXPECT_GE(session.path_failures_detected(), 1u);
  EXPECT_GE(failures_seen, 1u);
  std::uint64_t rebuilds = 0;
  for (const auto& info : session.paths()) rebuilds += info.rebuilds;
  EXPECT_GE(rebuilds, 1u);
  // The kept segment was resent over the rebuilt path and delivered.
  EXPECT_TRUE(delivered);
  EXPECT_EQ(session.established_paths(), 1u);
}

}  // namespace
}  // namespace p2panon
