// Tests for path state, mix selection, allocation, and end-to-end routing
// through router + session on a simulated network (real crypto).
#include <gtest/gtest.h>

#include "anon/allocation.hpp"
#include "anon/cover_traffic.hpp"
#include "anon/mix_selector.hpp"
#include "anon/path_state.hpp"
#include "anon/protocols.hpp"
#include "anon/router.hpp"
#include "anon/session.hpp"
#include "membership/node_cache.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"

namespace p2panon::anon {
namespace {

// --- path state table -------------------------------------------------------------

TEST(PathStateTest, InstallAndLookupBothDirections) {
  PathStateTable table((Rng(1)));
  RelayEntry entry;
  entry.upstream = 3;
  entry.upstream_sid = 111;
  entry.downstream = 5;
  const StreamId down = table.install(entry, 0, kMinute);
  ASSERT_NE(table.find_by_upstream(111), nullptr);
  ASSERT_NE(table.find_by_downstream(down), nullptr);
  EXPECT_EQ(table.find_by_downstream(down)->upstream_sid, 111u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(PathStateTest, TtlExpiryReclaimsState) {
  PathStateTable table((Rng(2)));
  RelayEntry entry;
  entry.upstream_sid = 1;
  table.install(entry, 0, 10 * kSecond);
  RelayEntry entry2;
  entry2.upstream_sid = 2;
  table.install(entry2, 0, 60 * kSecond);
  EXPECT_EQ(table.expire(30 * kSecond), 1u);
  EXPECT_EQ(table.find_by_upstream(1), nullptr);
  ASSERT_NE(table.find_by_upstream(2), nullptr);
}

TEST(PathStateTest, RefreshExtendsTtl) {
  PathStateTable table((Rng(3)));
  RelayEntry entry;
  entry.upstream_sid = 1;
  table.install(entry, 0, 10 * kSecond);
  RelayEntry* installed = table.find_by_upstream(1);
  table.refresh(*installed, 8 * kSecond, 10 * kSecond);
  EXPECT_EQ(table.expire(15 * kSecond), 0u);  // alive until 18 s
  EXPECT_EQ(table.expire(20 * kSecond), 1u);
}

TEST(PathStateTest, ReleaseRemovesBothIndices) {
  PathStateTable table((Rng(4)));
  RelayEntry entry;
  entry.upstream_sid = 42;
  const StreamId down = table.install(entry, 0, kMinute);
  EXPECT_TRUE(table.release_by_upstream(42));
  EXPECT_EQ(table.find_by_upstream(42), nullptr);
  EXPECT_EQ(table.find_by_downstream(down), nullptr);
  EXPECT_FALSE(table.release_by_upstream(42));
}

TEST(PathStateTest, TerminalEntryHasNoDownstream) {
  PathStateTable table((Rng(5)));
  RelayEntry entry;
  entry.upstream = 9;
  entry.upstream_sid = 7;
  table.install_terminal(entry, 0, kMinute);
  const RelayEntry* installed = table.find_by_upstream(7);
  ASSERT_NE(installed, nullptr);
  EXPECT_TRUE(installed->at_responder);
  EXPECT_EQ(installed->downstream, kInvalidNode);
}

// --- mix selector -------------------------------------------------------------------

TEST(MixSelectorTest, PathsAreNodeDisjoint) {
  membership::NodeCache cache(64);
  for (NodeId node = 0; node < 64; ++node) cache.heard_directly(node, 0, 0);
  MixSelector selector(MixChoice::kRandom, Rng(6));
  const auto paths = selector.select_paths(cache, 4, 3, 0, 0, 1);
  ASSERT_TRUE(paths.has_value());
  std::set<NodeId> seen;
  for (const auto& path : *paths) {
    ASSERT_EQ(path.size(), 3u);
    for (NodeId relay : path) {
      EXPECT_NE(relay, 0u);  // initiator excluded
      EXPECT_NE(relay, 1u);  // responder excluded
      EXPECT_TRUE(seen.insert(relay).second) << "relay reused";
    }
  }
}

TEST(MixSelectorTest, BiasedPicksHighestPredictors) {
  membership::NodeCache cache(16);
  const SimTime now = 1000 * kSecond;
  // Nodes 2..5 have long uptimes; others short.
  for (NodeId node = 2; node < 16; ++node) {
    const SimDuration uptime =
        (node <= 5) ? 900 * kSecond : 5 * kSecond;
    cache.heard_directly(node, uptime, now - 10 * kSecond);
  }
  MixSelector selector(MixChoice::kBiased, Rng(7));
  const auto paths = selector.select_paths(cache, 2, 2, now, 0, 1);
  ASSERT_TRUE(paths.has_value());
  std::set<NodeId> chosen;
  for (const auto& path : *paths) {
    for (NodeId relay : path) chosen.insert(relay);
  }
  EXPECT_EQ(chosen, (std::set<NodeId>{2, 3, 4, 5}));
}

TEST(MixSelectorTest, InsufficientNodesReturnsNullopt) {
  membership::NodeCache cache(4);
  cache.heard_directly(2, 0, 0);
  cache.heard_directly(3, 0, 0);
  MixSelector selector(MixChoice::kRandom, Rng(8));
  EXPECT_FALSE(selector.select_paths(cache, 1, 3, 0, 0, 1).has_value());
}

TEST(MixSelectorTest, ExtraExcludeRespected) {
  membership::NodeCache cache(8);
  for (NodeId node = 0; node < 8; ++node) cache.heard_directly(node, 0, 0);
  MixSelector selector(MixChoice::kRandom, Rng(9));
  const auto paths =
      selector.select_paths(cache, 1, 3, 0, 0, 1, {2, 3, 4});
  ASSERT_TRUE(paths.has_value());
  for (NodeId relay : (*paths)[0]) {
    EXPECT_TRUE(relay >= 5);
  }
}

// --- erasure params & allocation ------------------------------------------------------

TEST(ErasureParamsTest, PaperParameterizations) {
  const auto curmix = ErasureParams::curmix();
  EXPECT_EQ(curmix.k, 1u);
  EXPECT_EQ(curmix.min_paths(), 1u);

  const auto simrep = ErasureParams::simrep(2);
  EXPECT_EQ(simrep.k, 2u);
  EXPECT_EQ(simrep.m, 1u);
  EXPECT_EQ(simrep.min_paths(), 1u);  // any 1 of 2
  EXPECT_DOUBLE_EQ(simrep.replication_factor(), 2.0);

  const auto simera42 = ErasureParams::simera(4, 2);
  EXPECT_EQ(simera42.m, 2u);
  EXPECT_EQ(simera42.n, 4u);
  EXPECT_EQ(simera42.min_paths(), 2u);           // k/r
  EXPECT_EQ(simera42.tolerated_path_failures(), 2u);  // k(1 - 1/r)

  const auto simera44 = ErasureParams::simera(4, 4);
  EXPECT_EQ(simera44.m, 1u);
  EXPECT_EQ(simera44.min_paths(), 1u);
  EXPECT_EQ(simera44.tolerated_path_failures(), 3u);

  EXPECT_THROW(ErasureParams::simera(5, 2), std::invalid_argument);
}

TEST(AllocationTest, EvenIsRoundRobin) {
  ErasureParams params;
  params.m = 2;
  params.n = 8;
  params.k = 4;
  const auto alloc = allocate_even(params);
  ASSERT_EQ(alloc.size(), 8u);
  std::vector<int> per_path(4, 0);
  for (std::size_t s = 0; s < alloc.size(); ++s) {
    EXPECT_EQ(alloc[s], s % 4);
    ++per_path[alloc[s]];
  }
  for (int count : per_path) EXPECT_EQ(count, 2);
}

TEST(AllocationTest, WeightedFavorsStablePathsButCaps) {
  ErasureParams params;
  params.m = 2;
  params.n = 8;
  params.k = 4;
  const auto alloc = allocate_weighted(params, {0.9, 0.9, 0.1, 0.1}, 1);
  std::vector<int> per_path(4, 0);
  for (auto path : alloc) ++per_path[path];
  // Stable paths get more, but never more than n/k + spread = 3.
  EXPECT_GE(per_path[0], 2);
  EXPECT_LE(per_path[0], 3);
  EXPECT_GE(per_path[1], 2);
  EXPECT_EQ(per_path[0] + per_path[1] + per_path[2] + per_path[3], 8);
}

TEST(AllocationTest, WeightedAllZeroScoresFallsBackToEven) {
  ErasureParams params;
  params.m = 2;
  params.n = 8;
  params.k = 4;
  EXPECT_EQ(allocate_weighted(params, {0, 0, 0, 0}),
            allocate_even(params));
  EXPECT_THROW(allocate_weighted(params, {1.0}), std::invalid_argument);
}

TEST(AllocationTest, SegmentsDeliveredCounts) {
  ErasureParams params;
  params.m = 2;
  params.n = 8;
  params.k = 4;
  const auto alloc = allocate_even(params);
  EXPECT_EQ(segments_delivered(alloc, {true, true, true, true}), 8u);
  EXPECT_EQ(segments_delivered(alloc, {true, false, false, false}), 2u);
  EXPECT_EQ(segments_delivered(alloc, {false, false, false, false}), 0u);
}

// --- end-to-end routing fixture ---------------------------------------------------------

struct RoutingFixture {
  static constexpr std::size_t kNodes = 24;
  sim::Simulator simulator;
  net::LatencyMatrix latency = net::LatencyMatrix::synthetic(kNodes, Rng(20));
  std::vector<bool> up = std::vector<bool>(kNodes, true);
  net::SimTransport transport{simulator, latency,
                              [this](NodeId n) { return up[n]; }};
  net::Demux demux{transport, kNodes};
  crypto::KeyDirectory directory;
  RealOnionCodec onion;
  std::unique_ptr<AnonRouter> router;
  membership::NodeCache cache{kNodes};
  Rng rng{21};

  explicit RoutingFixture(RouterConfig config = {}) {
    Rng key_rng(22);
    auto keys = directory.provision(kNodes, key_rng);
    router = std::make_unique<AnonRouter>(
        simulator, demux, onion, directory, std::move(keys),
        [this](NodeId n) { return up[n]; }, config, rng.fork());
    router->start();
    for (NodeId node = 0; node < kNodes; ++node) {
      cache.heard_directly(node, 100 * kSecond, 0);
    }
  }

  SessionConfig session_config(const ProtocolSpec& spec) {
    SessionConfig base;
    base.path_length = 3;
    base.construct_timeout = 3 * kSecond;
    base.ack_timeout = 3 * kSecond;
    base.max_construct_attempts = 5;
    return spec.session_config(base);
  }
};

TEST(RouterSessionTest, CurMixDeliversEndToEnd) {
  RoutingFixture fx;
  Session session(*fx.router, fx.cache, 0, 1,
                  fx.session_config(ProtocolSpec::curmix(MixChoice::kRandom)),
                  Rng(23));

  ReceivedMessage received;
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });

  bool constructed = false;
  session.construct([&](bool ok, std::size_t attempts) {
    constructed = ok;
    EXPECT_EQ(attempts, 1u);
  });
  fx.simulator.run_until(10 * kSecond);
  ASSERT_TRUE(constructed);
  ASSERT_TRUE(session.ready());

  const Bytes message = bytes_of("hello through the onion");
  const MessageId id = session.send_message(message);
  ASSERT_NE(id, 0u);
  fx.simulator.run_until(20 * kSecond);

  EXPECT_EQ(received.responder, 1u);
  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(received.data, message);
  EXPECT_EQ(session.acks_received(), 1u);
  EXPECT_EQ(session.path_failures_detected(), 0u);
}

TEST(RouterSessionTest, SimEraReconstructsFromSegments) {
  RoutingFixture fx;
  Session session(
      *fx.router, fx.cache, 0, 1,
      fx.session_config(ProtocolSpec::simera(4, 2, MixChoice::kRandom)),
      Rng(24));

  ReceivedMessage received;
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });

  bool constructed = false;
  session.construct([&](bool ok, std::size_t) { constructed = ok; });
  fx.simulator.run_until(10 * kSecond);
  ASSERT_TRUE(constructed);
  EXPECT_EQ(session.established_paths(), 4u);

  Bytes message(1024);
  Rng(25).fill(message.data(), message.size());
  const MessageId id = session.send_message(message);
  fx.simulator.run_until(20 * kSecond);

  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(received.data, message);
  // m = 2 needed, but all 4 arrive.
  EXPECT_GE(received.segments_received, 2u);
  EXPECT_EQ(session.segments_sent(), 4u);
  EXPECT_EQ(session.acks_received(), 4u);
}

TEST(RouterSessionTest, SimEraSurvivesToleratedPathFailures) {
  RoutingFixture fx;
  Session session(
      *fx.router, fx.cache, 0, 1,
      fx.session_config(ProtocolSpec::simera(4, 2, MixChoice::kRandom)),
      Rng(26));

  ReceivedMessage received;
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });

  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());

  // Kill the first relay of paths 0 and 1: SimEra(4,2) tolerates
  // k(1 - 1/r) = 2 path failures.
  fx.up[session.paths()[0].relays[0]] = false;
  fx.up[session.paths()[1].relays[0]] = false;

  Bytes message(1024, 0x42);
  const MessageId id = session.send_message(message);
  fx.simulator.run_until(30 * kSecond);

  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(received.data, message);
  EXPECT_EQ(received.segments_received, 2u);  // exactly m arrived
  EXPECT_EQ(session.path_failures_detected(), 2u);  // timeouts fired
}

TEST(RouterSessionTest, MessageLostWhenTooManyPathsFail) {
  RoutingFixture fx;
  Session session(
      *fx.router, fx.cache, 0, 1,
      fx.session_config(ProtocolSpec::simera(4, 2, MixChoice::kRandom)),
      Rng(27));

  bool delivered = false;
  fx.router->set_message_handler(
      [&](const ReceivedMessage&) { delivered = true; });

  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());

  // Kill 3 of 4 paths: only 1 < m = 2 segments can arrive.
  for (int j = 0; j < 3; ++j) {
    fx.up[session.paths()[static_cast<std::size_t>(j)].relays[1]] = false;
  }
  session.send_message(Bytes(1024, 0x43));
  fx.simulator.run_until(30 * kSecond);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(session.path_failures_detected(), 3u);
}

TEST(RouterSessionTest, ConstructionFailsOverDeadRelay) {
  RoutingFixture fx;
  // Kill most nodes so any selected path hits a dead relay.
  for (NodeId node = 2; node < RoutingFixture::kNodes; ++node) {
    fx.up[node] = false;
  }
  SessionConfig config =
      fx.session_config(ProtocolSpec::curmix(MixChoice::kRandom));
  config.max_construct_attempts = 3;
  Session session(*fx.router, fx.cache, 0, 1, config, Rng(28));
  bool result = true;
  std::size_t attempts = 0;
  session.construct([&](bool ok, std::size_t n) {
    result = ok;
    attempts = n;
  });
  fx.simulator.run_until(60 * kSecond);
  EXPECT_FALSE(result);
  EXPECT_EQ(attempts, 3u);
}

TEST(RouterSessionTest, ResponseFlowsBackOverReversePaths) {
  RoutingFixture fx;
  Session session(
      *fx.router, fx.cache, 0, 1,
      fx.session_config(ProtocolSpec::simera(2, 2, MixChoice::kRandom)),
      Rng(29));

  // Responder application: echo a response on reconstruction.
  const Bytes response_body = bytes_of("echo: got your message");
  fx.router->set_message_handler([&](const ReceivedMessage& msg) {
    EXPECT_TRUE(fx.router->send_response(msg.responder, msg.message_id,
                                         response_body));
  });

  Bytes got_response;
  session.set_response_handler(
      [&](MessageId, Bytes data) { got_response = std::move(data); });

  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());
  session.send_message(Bytes(256, 0x7e));
  fx.simulator.run_until(30 * kSecond);
  EXPECT_EQ(got_response, response_body);
}

TEST(RouterSessionTest, AutoReconstructRebuildsAndResends) {
  RoutingFixture fx;
  SessionConfig config =
      fx.session_config(ProtocolSpec::curmix(MixChoice::kRandom));
  config.auto_reconstruct = true;
  Session session(*fx.router, fx.cache, 0, 1, config, Rng(30));

  ReceivedMessage received;
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });

  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());

  // Kill the whole original path, then send: the ack timeout should
  // trigger a rebuild and a resend that succeeds.
  const auto original_relays = session.paths()[0].relays;
  for (NodeId relay : original_relays) fx.up[relay] = false;

  const Bytes message = bytes_of("must arrive after rebuild");
  const MessageId id = session.send_message(message);
  fx.simulator.run_until(60 * kSecond);

  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(received.data, message);
  EXPECT_GE(session.paths()[0].rebuilds, 1u);
  EXPECT_NE(session.paths()[0].relays, original_relays);
}

TEST(RouterSessionTest, TeardownReleasesRelayState) {
  RoutingFixture fx;
  Session session(*fx.router, fx.cache, 0, 1,
                  fx.session_config(ProtocolSpec::curmix(MixChoice::kRandom)),
                  Rng(31));
  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(10 * kSecond);
  ASSERT_TRUE(session.ready());
  const auto relays = session.paths()[0].relays;
  for (NodeId relay : relays) {
    EXPECT_EQ(fx.router->path_state_count(relay), 1u);
  }
  session.teardown();
  fx.simulator.run_until(20 * kSecond);
  for (NodeId relay : relays) {
    EXPECT_EQ(fx.router->path_state_count(relay), 0u) << "relay " << relay;
  }
}

TEST(RouterSessionTest, OrphanedStateExpiresViaTtl) {
  RouterConfig config;
  config.state_ttl = 20 * kSecond;
  config.sweep_interval = 5 * kSecond;
  RoutingFixture fx(config);
  Session session(*fx.router, fx.cache, 0, 1,
                  fx.session_config(ProtocolSpec::curmix(MixChoice::kRandom)),
                  Rng(32));
  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(5 * kSecond);
  ASSERT_TRUE(session.ready());
  const auto relays = session.paths()[0].relays;
  // No teardown, no traffic: the state must be reclaimed by TTL (§4.3).
  fx.simulator.run_until(60 * kSecond);
  for (NodeId relay : relays) {
    EXPECT_EQ(fx.router->path_state_count(relay), 0u);
  }
}

TEST(RouterSessionTest, PayloadTrafficRefreshesTtl) {
  RouterConfig config;
  config.state_ttl = 15 * kSecond;
  config.sweep_interval = 5 * kSecond;
  RoutingFixture fx(config);
  Session session(*fx.router, fx.cache, 0, 1,
                  fx.session_config(ProtocolSpec::curmix(MixChoice::kRandom)),
                  Rng(33));
  bool delivered_late = false;
  fx.router->set_message_handler([&](const ReceivedMessage& msg) {
    delivered_late = (msg.reconstructed_at > 50 * kSecond);
  });
  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(3 * kSecond);
  ASSERT_TRUE(session.ready());
  // Send a message every 10 s (inside the 15 s TTL): path must stay alive
  // well past the original TTL.
  for (int i = 0; i < 6; ++i) {
    fx.simulator.schedule_at((10 + 10 * i) * kSecond, [&] {
      session.send_message(bytes_of("refresh"));
    });
  }
  fx.simulator.run_until(75 * kSecond);
  EXPECT_TRUE(delivered_late);
}

TEST(RouterSessionTest, ProactiveReplacementOnLowPredictor) {
  RoutingFixture fx;
  SessionConfig config =
      fx.session_config(ProtocolSpec::curmix(MixChoice::kBiased));
  config.replace_threshold = 0.9;
  config.replace_check_interval = 5 * kSecond;
  Session session(*fx.router, fx.cache, 0, 1, config, Rng(34));
  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(3 * kSecond);
  ASSERT_TRUE(session.ready());
  // Age the cache: predictors decay as (now - t_last) grows, so the
  // periodic check must eventually trigger a replacement.
  fx.simulator.run_until(120 * kSecond);
  EXPECT_GE(session.proactive_replacements(), 1u);
}

TEST(RouterSessionTest, RedirectReusesPathForNewResponder) {
  RoutingFixture fx;
  Session session(
      *fx.router, fx.cache, 0, 1,
      fx.session_config(ProtocolSpec::simera(2, 2, MixChoice::kRandom)),
      Rng(36));

  std::vector<ReceivedMessage> received;
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { received.push_back(msg); });

  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(5 * kSecond);
  ASSERT_TRUE(session.ready());
  session.send_message(bytes_of("to the first responder"));
  fx.simulator.run_until(10 * kSecond);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].responder, 1u);

  // Reuse the same paths for a different responder: no reconstruction.
  const std::uint64_t constructs_before = fx.router->construct_bytes();
  std::size_t redirected = 0;
  session.redirect(2, [&](std::size_t n) { redirected = n; });
  fx.simulator.run_until(15 * kSecond);
  EXPECT_EQ(redirected, 2u);

  session.send_message(bytes_of("to the second responder"));
  fx.simulator.run_until(25 * kSecond);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[1].responder, 2u);
  EXPECT_EQ(string_of(received[1].data), "to the second responder");
  // The relays kept their original state: the same sids and keys carried
  // both streams (retarget bytes count as control, not a fresh onion
  // construction of sealed boxes per relay).
  EXPECT_GT(fx.router->construct_bytes(), constructs_before);
  EXPECT_LT(fx.router->construct_bytes() - constructs_before, 1000u);
}

TEST(RouterSessionTest, RedirectedResponderCannotBeReadByOldOne) {
  RoutingFixture fx;
  Session session(*fx.router, fx.cache, 0, 1,
                  fx.session_config(ProtocolSpec::curmix(MixChoice::kRandom)),
                  Rng(37));
  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(5 * kSecond);
  ASSERT_TRUE(session.ready());
  session.redirect(3, [](std::size_t) {});
  fx.simulator.run_until(10 * kSecond);

  std::vector<NodeId> responders;
  fx.router->set_message_handler([&](const ReceivedMessage& msg) {
    responders.push_back(msg.responder);
  });
  session.send_message(bytes_of("secret for node 3"));
  fx.simulator.run_until(20 * kSecond);
  ASSERT_EQ(responders.size(), 1u);
  EXPECT_EQ(responders[0], 3u);  // node 1 never sees or decodes anything
  EXPECT_EQ(fx.router->peel_failures(), 0u);
}

TEST(RouterSessionTest, RedirectOnDeadPathTimesOutAndMarksFailed) {
  RoutingFixture fx;
  Session session(*fx.router, fx.cache, 0, 1,
                  fx.session_config(ProtocolSpec::curmix(MixChoice::kRandom)),
                  Rng(38));
  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(5 * kSecond);
  ASSERT_TRUE(session.ready());
  fx.up[session.paths()[0].relays[1]] = false;  // kill a middle relay
  std::size_t redirected = 99;
  session.redirect(2, [&](std::size_t n) { redirected = n; });
  fx.simulator.run_until(30 * kSecond);
  EXPECT_EQ(redirected, 0u);
  EXPECT_EQ(session.paths()[0].state, PathState::kFailed);
}

TEST(RouterSessionTest, OnDemandCombinedConstructionDelivers) {
  RoutingFixture fx;
  Session session(
      *fx.router, fx.cache, 0, 1,
      fx.session_config(ProtocolSpec::simera(2, 2, MixChoice::kRandom)),
      Rng(39));

  ReceivedMessage received;
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });

  // No construct() round trip: the first message builds the paths itself.
  const Bytes message = bytes_of("formed on demand, no setup delay");
  const MessageId id = session.send_message_on_demand(message);
  ASSERT_NE(id, 0u);
  fx.simulator.run_until(10 * kSecond);

  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(received.data, message);
  // The acks promoted both paths to established.
  EXPECT_EQ(session.established_paths(), 2u);
  // Subsequent sends reuse the now-cached states as plain payloads.
  session.send_message(bytes_of("second message, plain payload"));
  std::size_t count = 0;
  fx.router->set_message_handler(
      [&](const ReceivedMessage&) { ++count; });
  fx.simulator.run_until(20 * kSecond);
  EXPECT_EQ(count, 1u);
}

TEST(RouterSessionTest, OnDemandRebuildsFailedPathsInline) {
  RoutingFixture fx;
  Session session(*fx.router, fx.cache, 0, 1,
                  fx.session_config(ProtocolSpec::curmix(MixChoice::kRandom)),
                  Rng(40));
  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(5 * kSecond);
  ASSERT_TRUE(session.ready());
  const auto original_relays = session.paths()[0].relays;

  // Kill the path, detect via a lost message, then send on demand: the
  // next message should carry a fresh construction and arrive.
  for (NodeId relay : original_relays) fx.up[relay] = false;
  session.send_message(bytes_of("lost"));
  fx.simulator.run_until(15 * kSecond);
  ASSERT_EQ(session.paths()[0].state, PathState::kFailed);

  ReceivedMessage received;
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });
  const MessageId id = session.send_message_on_demand(bytes_of("rerouted"));
  ASSERT_NE(id, 0u);
  fx.simulator.run_until(30 * kSecond);
  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(string_of(received.data), "rerouted");
  EXPECT_NE(session.paths()[0].relays, original_relays);
  EXPECT_EQ(session.paths()[0].state, PathState::kEstablished);
}

TEST(RouterSessionTest, OnDemandSecondSegmentFollowsConstruction) {
  // SimEra(2, 2) with both paths fresh: each path carries one segment in
  // the combined message. SimEra(4, 2) puts one segment per path too; use
  // an 8-segment config to exercise the follow-the-construction case.
  RoutingFixture fx;
  SessionConfig config =
      fx.session_config(ProtocolSpec::simera(4, 2, MixChoice::kRandom));
  config.erasure.m = 2;
  config.erasure.n = 8;  // two segments per path
  config.erasure.k = 4;
  Session session(*fx.router, fx.cache, 0, 1, config, Rng(41));

  ReceivedMessage received;
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { received = msg; });
  Bytes message(2048);
  Rng(42).fill(message.data(), message.size());
  const MessageId id = session.send_message_on_demand(message);
  ASSERT_NE(id, 0u);
  fx.simulator.run_until(10 * kSecond);
  EXPECT_EQ(received.message_id, id);
  EXPECT_EQ(received.data, message);
  EXPECT_EQ(session.segments_sent(), 8u);
}

TEST(RouterSessionTest, SessionDestructionMidFlightIsSafe) {
  RoutingFixture fx;
  {
    Session session(
        *fx.router, fx.cache, 0, 1,
        fx.session_config(ProtocolSpec::simera(4, 2, MixChoice::kRandom)),
        Rng(44));
    session.construct([&](bool, std::size_t) {});
    fx.simulator.run_until(3 * kSecond);
    // Kill a relay and send so ack timeouts are pending, then destroy the
    // session before they fire.
    if (session.ready()) {
      fx.up[session.paths()[0].relays[0]] = false;
      session.send_message(Bytes(512, 0x5d));
    }
  }
  // Timeouts, late acks and reverse deliveries must all be inert now.
  EXPECT_NO_THROW(fx.simulator.run_until(60 * kSecond));
}

TEST(RouterSessionTest, SessionDestructionDuringConstructionIsSafe) {
  RoutingFixture fx;
  {
    Session session(
        *fx.router, fx.cache, 0, 1,
        fx.session_config(ProtocolSpec::simera(4, 4, MixChoice::kRandom)),
        Rng(45));
    session.construct([&](bool, std::size_t) { FAIL() << "must not fire"; });
    // Destroy immediately: construction acks arrive after death.
  }
  EXPECT_NO_THROW(fx.simulator.run_until(60 * kSecond));
}

TEST(RouterSessionTest, ErasureCodingMasksLinkLoss) {
  // The paper's goals cover node AND link failures; erasure coding over
  // disjoint paths also masks i.i.d. packet loss. At 5% datagram loss a
  // 4-hop single path delivers ~0.95^4 = 81% of messages; SimEra(4,2)
  // needs any 2 of 4 segments and delivers ~99%.
  sim::Simulator simulator;
  const auto latency = net::LatencyMatrix::synthetic(24, Rng(46));
  net::LinkFaultConfig faults;
  faults.loss_rate = 0.05;
  net::SimTransport transport(simulator, latency, [](NodeId) { return true; },
                              0, faults);
  net::Demux demux(transport, 24);
  crypto::KeyDirectory directory;
  Rng key_rng(47);
  auto keys = directory.provision(24, key_rng);
  FastOnionCodec onion;
  AnonRouter router(simulator, demux, onion, directory, std::move(keys),
                    [](NodeId) { return true; }, RouterConfig{}, Rng(48));
  router.start();
  membership::NodeCache cache(24);
  for (NodeId node = 0; node < 24; ++node) {
    cache.heard_directly(node, 100 * kSecond, 0);
  }

  auto run_protocol = [&](const ProtocolSpec& spec, NodeId initiator) {
    SessionConfig config = spec.session_config({});
    // Isolate raw delivery: a lost ack would otherwise mark the path
    // failed (§4.5 working as designed) and stop all further sends, which
    // is a different effect than the per-message loss being measured.
    config.ack_timeout = 30 * kMinute;
    Session session(router, cache, initiator, 1, config, Rng(49));
    std::size_t delivered = 0;
    router.set_message_handler([&](const ReceivedMessage& msg) {
      if (msg.responder == 1) ++delivered;
    });
    // Construction under link loss legitimately stops at the >= k/r
    // threshold with a partial path set (the paper's rule); for a clean
    // per-message comparison, insist on the full set by re-running
    // construct() until every path is up.
    for (int round = 0;
         round < 25 && session.established_paths() < config.erasure.k;
         ++round) {
      session.construct([&](bool, std::size_t) {});
      simulator.run_until(simulator.now() + 30 * kSecond);
    }
    if (session.established_paths() < config.erasure.k) return -1.0;
    const std::size_t messages = 80;
    for (std::size_t i = 0; i < messages; ++i) {
      simulator.schedule_after(static_cast<SimDuration>(i) * 5 * kSecond,
                               [&] { session.send_message(Bytes(256, 0x4d)); });
    }
    simulator.run_until(simulator.now() + 500 * kSecond);
    return static_cast<double>(delivered) / static_cast<double>(messages);
  };

  // Retry construction-lost runs with different initiators (link loss can
  // eat the construct handshake too — that is the point of the paper).
  double curmix_rate = -1.0;
  for (NodeId initiator = 0; curmix_rate < 0.0 && initiator < 6;
       initiator += 2) {
    curmix_rate = run_protocol(ProtocolSpec::curmix(MixChoice::kRandom),
                               initiator);
  }
  double simera_rate = -1.0;
  for (NodeId initiator = 0; simera_rate < 0.0 && initiator < 6;
       initiator += 2) {
    simera_rate = run_protocol(ProtocolSpec::simera(4, 2, MixChoice::kRandom),
                               initiator);
  }
  ASSERT_GE(curmix_rate, 0.0);
  ASSERT_GE(simera_rate, 0.0);
  EXPECT_GT(simera_rate, curmix_rate + 0.08)
      << "curmix " << curmix_rate << " vs simera " << simera_rate;
  EXPECT_GT(simera_rate, 0.9);
  EXPECT_LT(curmix_rate, 0.93);  // the single path really does lose messages
}

TEST(CoverTrafficTest, GeneratesIndistinguishableDummies) {
  RoutingFixture fx;
  CoverTrafficConfig cover_config;
  cover_config.interval = 10 * kSecond;
  cover_config.k = 2;
  cover_config.message_size = 256;

  std::size_t reconstructed = 0;
  fx.router->set_message_handler(
      [&](const ReceivedMessage&) { ++reconstructed; });

  CoverTrafficGenerator generator(
      *fx.router, [&](NodeId) -> const membership::NodeCache& { return fx.cache; },
      [&](NodeId n) { return fx.up[n]; }, {0, 1, 2},
      [&](NodeId) { return cover_config; }, Rng(35));
  generator.start();
  fx.simulator.run_until(65 * kSecond);
  generator.stop();

  EXPECT_GT(generator.cover_messages_sent(), 5u);
  // Receivers reconstruct dummies like real messages (indistinguishable).
  EXPECT_GT(reconstructed, 0u);
}

}  // namespace
}  // namespace p2panon::anon
