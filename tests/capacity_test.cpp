// Capacity observability: event-loop profiler attribution, per-subsystem
// alloc accounting (MemScope), the explicit byte census, and resource
// sampling. This binary links the strong alloc-probe hooks, so the
// MemScope tests exercise the real counting operator new/delete.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include "common/alloc_probe.hpp"
#include "harness/environment.hpp"
#include "obs/capacity/census.hpp"
#include "obs/capacity/loop_profiler.hpp"
#include "obs/capacity/rusage.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace p2panon {
namespace {

using obs::capacity::ByteCensus;
using obs::capacity::LoopProfiler;

// --- event-type interning ---------------------------------------------------

TEST(EventTypeTest, InterningIsStableAndNamed) {
  const auto a = obs::capacity::event_type("captest.alpha");
  const auto b = obs::capacity::event_type("captest.beta");
  EXPECT_NE(a, obs::capacity::kUntypedEvent);
  EXPECT_NE(b, obs::capacity::kUntypedEvent);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, obs::capacity::event_type("captest.alpha"));
  EXPECT_STREQ(obs::capacity::event_type_name(a), "captest.alpha");
  EXPECT_STREQ(obs::capacity::event_type_name(obs::capacity::kUntypedEvent),
               "untyped");
  EXPECT_GE(obs::capacity::event_type_count(), 3u);
}

// --- profiler attribution ---------------------------------------------------

void spin_for_us(std::int64_t us) {
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < end) {
  }
}

TEST(LoopProfilerTest, AttributesSelfTimeByEventType) {
  const auto fast = obs::capacity::event_type("captest.fast");
  const auto slow = obs::capacity::event_type("captest.slow");

  LoopProfiler::Config config;
  config.sample_stride = 1;  // time every dispatch: exact attribution
  LoopProfiler profiler(config);

  sim::Simulator simulator;
  simulator.set_profiler(&profiler);
  for (int i = 0; i < 40; ++i) {
    simulator.schedule_at(i * 10, [] {}, fast);
  }
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(i * 50 + 5, [] { spin_for_us(200); }, slow);
  }
  simulator.run();

  const auto report = profiler.report();
  EXPECT_EQ(report.dispatches_total, 50u);
  EXPECT_EQ(report.samples_total, 50u);
  ASSERT_GE(report.types.size(), 2u);

  // Heaviest type first, and the spinning type dominates the shares.
  EXPECT_EQ(report.types[0].name, "captest.slow");
  EXPECT_EQ(report.types[0].dispatches, 10u);
  EXPECT_GT(report.types[0].share, 0.9);
  EXPECT_GE(report.types[0].est_total_ns, 10 * 200 * 1000.0 * 0.5);

  double share_sum = 0;
  std::uint64_t dispatch_sum = 0;
  for (const auto& type : report.types) {
    share_sum += type.share;
    dispatch_sum += type.dispatches;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-6);
  EXPECT_EQ(dispatch_sum, 50u);
}

TEST(LoopProfilerTest, SamplingStrideCountsAllTimesSome) {
  const auto type = obs::capacity::event_type("captest.strided");
  LoopProfiler::Config config;
  config.sample_stride = 4;
  LoopProfiler profiler(config);

  sim::Simulator simulator;
  simulator.set_profiler(&profiler);
  for (int i = 0; i < 100; ++i) simulator.schedule_at(i, [] {}, type);
  simulator.run();

  const auto report = profiler.report();
  EXPECT_EQ(report.dispatches_total, 100u);
  EXPECT_EQ(report.samples_total, 25u);  // exactly 1 in 4
  EXPECT_EQ(report.sample_stride, 4u);
  // Overhead model: one calibrated clock pair per sample.
  EXPECT_GT(report.clock_pair_ns, 0.0);
  EXPECT_NEAR(report.est_overhead_ns, 25 * report.clock_pair_ns, 1e-6);

  profiler.reset();
  EXPECT_EQ(profiler.report().dispatches_total, 0u);
}

TEST(LoopProfilerTest, PublishExportsRegistrySeries) {
  const auto type = obs::capacity::event_type("captest.published");
  LoopProfiler profiler;
  sim::Simulator simulator;
  simulator.set_profiler(&profiler);
  for (int i = 0; i < 8; ++i) simulator.schedule_at(i, [] {}, type);
  simulator.run();

  obs::Registry registry;
  profiler.publish(registry);
  EXPECT_EQ(registry
                .counter("cap_loop_dispatch_total",
                         {{"type", "captest.published"}})
                ->value(),
            8u);
  EXPECT_EQ(registry.gauge("cap_loop_sample_stride")->value(), 16);
  EXPECT_GE(registry.gauge("cap_loop_clock_pair_ns")->value(), 0);
}

TEST(LoopProfilerTest, ReportJsonIsWellFormedEnough) {
  LoopProfiler profiler;
  const std::string doc = profiler.report_json();
  EXPECT_NE(doc.find("\"dispatches\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"sample_stride\":16"), std::string::npos);
  EXPECT_NE(doc.find("\"types\":["), std::string::npos);
}

// --- alloc probe: all operator new forms, MemScope attribution -------------

// Opaque pointer sink: stops the optimizer from eliding a new/delete
// pair entirely (allocation elision is legal and would defeat the test).
void escape(void* p) { asm volatile("" : : "g"(p) : "memory"); }

TEST(AllocProbeTest, HooksAreLinkedAndCountEveryNewForm) {
  ASSERT_TRUE(alloc_probe::active());

  const std::uint64_t allocs0 = alloc_probe::allocations();
  const std::uint64_t live0 = alloc_probe::live_bytes();

  // Plain, array, over-aligned, and nothrow forms must all be observed.
  auto* plain = new int(7);
  escape(plain);
  auto* arr = new char[333];
  escape(arr);
  struct alignas(64) Wide {
    char data[64];
  };
  auto* wide = new Wide();
  escape(wide);
  auto* soft = new (std::nothrow) double(1.5);
  escape(soft);
  ASSERT_NE(soft, nullptr);

  EXPECT_GE(alloc_probe::allocations(), allocs0 + 4);
  EXPECT_GE(alloc_probe::live_bytes(), live0 + sizeof(int) + 333 +
                                           sizeof(Wide) + sizeof(double));
  // Over-aligned storage actually honors the alignment.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(wide) % 64, 0u);

  delete plain;
  delete[] arr;
  delete wide;
  delete soft;
  EXPECT_EQ(alloc_probe::live_bytes(), live0);
  EXPECT_GE(alloc_probe::peak_bytes(), live0);
}

TEST(AllocProbeTest, MemScopeAttributesAndNests) {
  ASSERT_TRUE(alloc_probe::active());
  const auto outer0 = alloc_probe::scope_stats_by_name("captest_outer");
  const auto inner0 = alloc_probe::scope_stats_by_name("captest_inner");

  std::unique_ptr<std::vector<char>> outer_buf;
  std::unique_ptr<std::vector<char>> inner_buf;
  {
    alloc_probe::MemScope outer("captest_outer");
    outer_buf = std::make_unique<std::vector<char>>(10000);
    {
      alloc_probe::MemScope inner("captest_inner");
      inner_buf = std::make_unique<std::vector<char>>(5000);
    }
    // Nesting restored: this allocation lands in the outer scope again.
    outer_buf->reserve(30000);
  }

  const auto outer1 = alloc_probe::scope_stats_by_name("captest_outer");
  const auto inner1 = alloc_probe::scope_stats_by_name("captest_inner");
  EXPECT_GE(outer1.live_bytes - outer0.live_bytes, 30000u);
  EXPECT_GE(inner1.live_bytes - inner0.live_bytes, 5000u);
  EXPECT_LT(inner1.live_bytes - inner0.live_bytes, 10000u);
  EXPECT_GE(outer1.peak_bytes, outer1.live_bytes);

  // Frees are attributed to the scope that allocated, regardless of the
  // scope active at free time: both live counts return to baseline.
  outer_buf.reset();
  inner_buf.reset();
  EXPECT_EQ(alloc_probe::scope_stats_by_name("captest_outer").live_bytes,
            outer0.live_bytes);
  EXPECT_EQ(alloc_probe::scope_stats_by_name("captest_inner").live_bytes,
            inner0.live_bytes);
}

// --- byte census ------------------------------------------------------------

TEST(ByteCensusTest, TotalsAndJsonMatchHandComputedSizes) {
  ByteCensus census;
  census.add("beta", "second", 300);
  census.add("alpha", "first", 100);
  census.add("alpha", "third", 50);

  EXPECT_EQ(census.total(), 450u);
  EXPECT_EQ(census.subsystem_total("alpha"), 150u);
  EXPECT_EQ(census.subsystem_total("beta"), 300u);
  EXPECT_EQ(census.subsystem_total("missing"), 0u);

  const auto totals = census.subsystem_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].first, "alpha");  // sorted by name
  EXPECT_EQ(totals[0].second, 150u);

  const std::string doc = census.to_json(10);
  EXPECT_NE(doc.find("\"total_bytes\":450"), std::string::npos);
  EXPECT_NE(doc.find("\"num_nodes\":10"), std::string::npos);
  EXPECT_NE(doc.find("\"bytes_per_node\":45"), std::string::npos);

  obs::Registry registry;
  census.publish(registry);
  EXPECT_EQ(registry.gauge("cap_census_total_bytes")->value(), 450);
  EXPECT_EQ(
      registry.gauge("cap_census_bytes", {{"subsystem", "alpha"}})->value(),
      150);
}

TEST(ByteCensusTest, VectorBytesTracksCapacity) {
  std::vector<std::uint64_t> v;
  v.reserve(100);
  EXPECT_EQ(obs::capacity::vector_bytes(v), 100 * sizeof(std::uint64_t));
}

TEST(ByteCensusTest, EnvironmentCensusCoversTheBigStructures) {
  constexpr std::size_t kNodes = 32;
  harness::EnvironmentConfig config;
  config.num_nodes = kNodes;
  config.seed = 11;
  harness::Environment env(config);

  ByteCensus census;
  env.byte_census(census);

  // The latency matrix is exactly N^2 SimDurations.
  EXPECT_EQ(census.subsystem_total("latency_matrix"),
            kNodes * kNodes * sizeof(SimDuration));
  // N node caches of N entries each — the census must see at least the
  // raw entry storage (Entry is > 32 bytes) for the O(N^2) detector to
  // have signal.
  EXPECT_GE(census.subsystem_total("membership"), kNodes * kNodes * 32);
  EXPECT_GT(census.subsystem_total("router"), 0u);
  EXPECT_GT(census.subsystem_total("pki"), 0u);
  EXPECT_GT(census.total(), 0u);
}

// --- resource usage ---------------------------------------------------------

TEST(ResourceUsageTest, SamplesPlausibleProcessNumbers) {
  const auto usage = obs::capacity::sample_resource_usage();
  EXPECT_GT(usage.max_rss_kb, 1000u);  // any live process is > 1 MB
  EXPECT_GE(usage.max_rss_kb, usage.current_rss_kb / 2);  // same units
  EXPECT_GE(usage.user_sec + usage.sys_sec, 0.0);

  const std::string doc = obs::capacity::resource_usage_json(usage);
  EXPECT_NE(doc.find("\"max_rss_kb\":"), std::string::npos);
  EXPECT_NE(doc.find("\"user_sec\":"), std::string::npos);
}

}  // namespace
}  // namespace p2panon
