// Control-plane resilience tests (DESIGN §9): bounded-trust merge rules,
// the fault layer's gossip wire mutations cross-checked against the
// membership encoder, anti-entropy convergence after a dissemination
// blackout heals, deterministic leader failover under a churn-invisible
// crash, and the staleness-aware mix-selection fallback.
#include <gtest/gtest.h>

#include "anon/mix_selector.hpp"
#include "churn/churn_model.hpp"
#include "churn/distributions.hpp"
#include "fault/fault_plan.hpp"
#include "fault/faulty_transport.hpp"
#include "membership/gossip.hpp"
#include "membership/node_cache.hpp"
#include "membership/onehop.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/loopback_transport.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"

namespace p2panon {
namespace {

using membership::LivenessInfo;
using membership::NodeCache;
using membership::TrustConfig;

// --- bounded-trust merge rules ----------------------------------------------------

TEST(BoundedTrustTest, DirectClaimCappedAndSuspicionFiled) {
  NodeCache cache(8);
  cache.enable_suspicion({});
  TrustConfig trust;
  trust.claim_slack = 30 * kSecond;
  trust.inflation_suspicion = 0.5;
  cache.enable_bounded_trust(trust);

  // At t = 100 s no node can have been up 500 s; the claim is capped at
  // now + slack and the subject earns suspicion, but stays usable.
  cache.heard_directly(3, 500 * kSecond, 100 * kSecond);
  const auto* entry = cache.find(3);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->alive);
  EXPECT_EQ(entry->dt_alive, 130 * kSecond);
  EXPECT_EQ(cache.merge_stats().inflated_rejected, 1u);
  EXPECT_NEAR(cache.suspicion(3, 100 * kSecond), 0.5, 1e-9);

  // A physically possible claim passes through untouched.
  cache.heard_directly(4, 80 * kSecond, 100 * kSecond);
  EXPECT_EQ(cache.find(4)->dt_alive, 80 * kSecond);
  EXPECT_EQ(cache.merge_stats().inflated_rejected, 1u);
  EXPECT_EQ(cache.suspicion(4, 100 * kSecond), 0.0);
}

TEST(BoundedTrustTest, ImpossibleIndirectClaimRejected) {
  NodeCache cache(8);
  cache.enable_suspicion({});
  cache.enable_bounded_trust({});

  // 600 s of claimed uptime at t = 60 s is impossible: rejected outright,
  // the node is not even learned, and suspicion is filed on the subject.
  EXPECT_FALSE(cache.merge_indirect(
      5, LivenessInfo{600 * kSecond, 0, true}, 60 * kSecond));
  EXPECT_EQ(cache.find(5), nullptr);
  EXPECT_EQ(cache.merge_stats().inflated_rejected, 1u);
  EXPECT_GT(cache.suspicion(5, 60 * kSecond), 0.0);

  // Dead reports carry dt_alive = 0 semantics and are never "inflated".
  EXPECT_TRUE(cache.merge_indirect(
      6, LivenessInfo{0, 5 * kSecond, false}, 60 * kSecond));
}

TEST(BoundedTrustTest, IndirectCannotOutrankOwnDirectObservation) {
  NodeCache cache(8);
  cache.enable_bounded_trust({});  // claim_slack default 30 s

  // We observed node 2 ourselves: 100 s of uptime at t = 1000 s. Ten
  // seconds later a rumor claims 500 s of uptime — possible on the global
  // clock, but far beyond our own extrapolated observation (100 + 10 + 30):
  // direct outranks indirect, so the rumor is rejected.
  cache.heard_directly(2, 100 * kSecond, 1000 * kSecond);
  EXPECT_FALSE(cache.merge_indirect(
      2, LivenessInfo{500 * kSecond, 0, true}, 1010 * kSecond));
  EXPECT_EQ(cache.find(2)->dt_alive, 100 * kSecond);
  EXPECT_EQ(cache.merge_stats().inflated_rejected, 1u);

  // A consistent fresher rumor (within the extrapolation bound) is still
  // merged by the paper's freshness rule.
  EXPECT_TRUE(cache.merge_indirect(
      2, LivenessInfo{105 * kSecond, 0, true}, 1010 * kSecond));
  EXPECT_EQ(cache.find(2)->dt_alive, 105 * kSecond);
}

TEST(BoundedTrustTest, DisabledKeepsPaperMergeRulesExactly) {
  // Off by default: even an impossible claim is judged by freshness alone,
  // and no inflation accounting runs — the seed's behavior bit-for-bit.
  NodeCache cache(8);
  EXPECT_TRUE(cache.merge_indirect(
      5, LivenessInfo{600 * kSecond, 0, true}, 60 * kSecond));
  EXPECT_EQ(cache.find(5)->dt_alive, 600 * kSecond);
  EXPECT_EQ(cache.merge_stats().inflated_rejected, 0u);
  EXPECT_EQ(cache.suspicion(5, 60 * kSecond), 0.0);
}

TEST(NodeCacheAgeTest, AgeStatsTrackStaleFraction) {
  NodeCache cache(8);
  // Four records at t = 0, two at t = 9 min; at now = 10 min with a 2 min
  // threshold, the four old ones are stale.
  for (NodeId node = 0; node < 4; ++node) {
    cache.heard_directly(node, kMinute, 0);
  }
  for (NodeId node = 4; node < 6; ++node) {
    cache.heard_directly(node, kMinute, 9 * kMinute);
  }
  const auto stats = cache.age_stats(10 * kMinute, 2 * kMinute);
  EXPECT_EQ(stats.alive_known, 6u);
  EXPECT_NEAR(stats.stale_fraction, 4.0 / 6.0, 1e-9);
  EXPECT_EQ(stats.age_p95, 10 * kMinute);
  EXPECT_EQ(stats.age_p50, 10 * kMinute);  // median of {10,10,10,10,1,1} min
}

// --- fault-layer wire mutations vs the membership encoder ------------------------

// The fault layer hard-codes the gossip record layout (it cannot link
// against p2panon_membership); these tests are the cross-check that the
// two encodings agree. A gossip datagram is
//   [channel u8][kind u8][count u16be][21-byte records...]
constexpr std::size_t kWireHeader = 4;

Bytes gossip_datagram(std::uint8_t kind,
                      const std::vector<membership::DecodedRecord>& records) {
  Bytes msg;
  msg.push_back(static_cast<std::uint8_t>(net::Channel::kGossip));
  msg.push_back(kind);
  put_u16be(msg, static_cast<std::uint16_t>(records.size()));
  for (const auto& record : records) {
    membership::encode_record(msg, record.subject, record.info);
  }
  return msg;
}

TEST(GossipWireTest, StaleInjectAgesEveryRecordInFlight) {
  ASSERT_EQ(membership::kRecordWireSize, 21u);
  net::LoopbackTransport loopback(4);
  fault::FaultPlan plan;
  plan.stale_inject(/*probability=*/1.0, /*extra_staleness=*/60 * kSecond, 0,
                    kNeverTime);
  fault::FaultyTransport faulty(loopback, plan, 7);
  Bytes captured;
  loopback.register_handler(1, [&](NodeId, NodeId, ByteView payload) {
    captured.assign(payload.begin(), payload.end());
  });

  const Bytes sent = gossip_datagram(
      /*kind=*/1, {{0, LivenessInfo{300 * kSecond, 5 * kSecond, true}},
                   {9, LivenessInfo{100 * kSecond, 7 * kSecond, true}}});
  faulty.send(0, 1, sent);
  loopback.deliver_all();

  ASSERT_EQ(captured.size(), sent.size());
  std::vector<membership::DecodedRecord> records;
  ASSERT_TRUE(membership::decode_records(captured, kWireHeader, 2, records));
  // dt_since aged by exactly the rule's extra staleness; dt_alive, subject
  // and flags untouched — the fault layer found the right field.
  EXPECT_EQ(records[0].subject, 0u);
  EXPECT_EQ(records[0].info.dt_since, 65 * kSecond);
  EXPECT_EQ(records[0].info.dt_alive, 300 * kSecond);
  EXPECT_EQ(records[1].subject, 9u);
  EXPECT_EQ(records[1].info.dt_since, 67 * kSecond);
  EXPECT_EQ(records[1].info.dt_alive, 100 * kSecond);
  EXPECT_EQ(faulty.counters().stale_injected, 2u);
}

TEST(GossipWireTest, ClaimInflateTouchesOnlySendersOwnRecord) {
  net::LoopbackTransport loopback(4);
  fault::FaultPlan plan;
  plan.claim_inflate(/*probability=*/1.0, /*factor=*/2.0,
                     /*boost=*/10 * kSecond, 0, kNeverTime, {0});
  fault::FaultyTransport faulty(loopback, plan, 7);
  Bytes captured;
  for (NodeId node = 0; node < 4; ++node) {
    loopback.register_handler(node, [&](NodeId, NodeId, ByteView payload) {
      captured.assign(payload.begin(), payload.end());
    });
  }

  // Sender 0's first-person record (record 0, subject == sender) is
  // inflated: dt_alive * 2 + 10 s. The relayed third-party record is not.
  faulty.send(0, 1,
              gossip_datagram(
                  1, {{0, LivenessInfo{300 * kSecond, 0, true}},
                      {9, LivenessInfo{100 * kSecond, 7 * kSecond, true}}}));
  loopback.deliver_all();
  std::vector<membership::DecodedRecord> records;
  ASSERT_TRUE(membership::decode_records(captured, kWireHeader, 2, records));
  EXPECT_EQ(records[0].info.dt_alive, 610 * kSecond);
  EXPECT_EQ(records[0].info.dt_since, 0);
  EXPECT_EQ(records[1].info.dt_alive, 100 * kSecond);

  // Record 0 belonging to someone else: the sender is relaying, not
  // claiming — untouched.
  faulty.send(0, 1,
              gossip_datagram(1, {{5, LivenessInfo{300 * kSecond, 0, true}}}));
  loopback.deliver_all();
  records.clear();
  ASSERT_TRUE(membership::decode_records(captured, kWireHeader, 1, records));
  EXPECT_EQ(records[0].info.dt_alive, 300 * kSecond);

  // A sender outside at_nodes never inflates.
  faulty.send(2, 1,
              gossip_datagram(1, {{2, LivenessInfo{300 * kSecond, 0, true}}}));
  loopback.deliver_all();
  records.clear();
  ASSERT_TRUE(membership::decode_records(captured, kWireHeader, 1, records));
  EXPECT_EQ(records[0].info.dt_alive, 300 * kSecond);
  EXPECT_EQ(faulty.counters().claims_inflated, 1u);
}

TEST(GossipWireTest, DigestShapedMessagesPassMutationUntouched) {
  // Anti-entropy digests carry bucket hashes, not 21-byte records; the
  // structural record-bearing check must leave them alone even under a
  // probability-1 mutation rule.
  net::LoopbackTransport loopback(2);
  fault::FaultPlan plan;
  plan.stale_inject(1.0, 60 * kSecond, 0, kNeverTime);
  fault::FaultyTransport faulty(loopback, plan, 7);
  Bytes captured;
  loopback.register_handler(1, [&](NodeId, NodeId, ByteView payload) {
    captured.assign(payload.begin(), payload.end());
  });

  Bytes digest;
  digest.push_back(static_cast<std::uint8_t>(net::Channel::kGossip));
  digest.push_back(4);  // kKindDigest
  put_u16be(digest, 2);
  put_u64be(digest, 0x1122334455667788ull);
  put_u64be(digest, 0x99aabbccddeeff00ull);
  faulty.send(0, 1, digest);
  loopback.deliver_all();
  EXPECT_EQ(captured, digest);
  EXPECT_EQ(faulty.counters().stale_injected, 0u);
}

// --- anti-entropy convergence after a blackout heals ------------------------------

struct BlackoutFixture {
  static constexpr std::size_t kNodes = 64;

  BlackoutFixture(const membership::GossipConfig& config,
                  const fault::FaultPlan& plan)
      : churn_model(simulator, kNodes, dist, Rng(4), 0.5),
        transport(simulator, latency,
                  [this](NodeId n) { return churn_model.is_up(n); }),
        faulty(transport, plan, 7, &simulator),
        demux(faulty, kNodes),
        gossip(simulator, demux, churn_model, config, Rng(5)) {}

  sim::Simulator simulator;
  net::LatencyMatrix latency = net::LatencyMatrix::synthetic(kNodes, Rng(3));
  churn::ExponentialLifetime dist{600.0};  // 10 min sessions: heavy churn
  churn::ChurnModel churn_model;
  net::SimTransport transport;
  fault::FaultyTransport faulty;
  net::Demux demux;
  membership::GossipMembership gossip;

  double run() {
    gossip.start();
    churn_model.start();
    simulator.run_until(8 * kMinute + 45 * kSecond);
    return gossip.belief_accuracy();
  }
};

TEST(AntiEntropyTest, DigestRepairReconvergesFasterAfterBlackout) {
  // Six minutes of total gossip blackout under heavy churn: every
  // membership event in the window is observed locally but never
  // disseminated, and the rumor forwards that would have carried it are
  // exhausted into dropped datagrams. 45 s after the blackout lifts, the
  // baseline's slowed refresh sweep has barely started healing; digest
  // repair pushes exactly the divergent beliefs and re-converges.
  fault::FaultPlan plan;
  plan.gossip_blackout(2 * kMinute, 8 * kMinute);

  membership::GossipConfig base;
  base.refresh_records = 2;
  membership::GossipConfig repaired = base;
  repaired.anti_entropy_interval = 15 * kSecond;

  BlackoutFixture base_fx(base, plan);
  const double base_accuracy = base_fx.run();
  BlackoutFixture repaired_fx(repaired, plan);
  const double repaired_accuracy = repaired_fx.run();

  const auto control = repaired_fx.gossip.control_stats();
  EXPECT_GT(control.anti_entropy_rounds, 0u);
  EXPECT_GT(control.digests_sent, control.anti_entropy_rounds);
  EXPECT_GT(control.repair_records_sent, 0u);
  EXPECT_GT(control.repair_records_accepted, 0u);
  EXPECT_GT(repaired_accuracy, base_accuracy);
  // The blackout actually bit (both arms saw drops)...
  EXPECT_GT(base_fx.faulty.counters().dropped_gossip_blackout, 0u);
  // ...and the baseline arm ran no repair machinery at all.
  EXPECT_EQ(base_fx.gossip.control_stats().anti_entropy_rounds, 0u);
}

// --- deterministic leader failover ----------------------------------------------

struct FailoverFixture {
  static constexpr std::size_t kNodes = 48;

  FailoverFixture(const membership::OneHopConfig& config,
                  const fault::FaultPlan& plan)
      : churn_model(simulator, kNodes, dist, Rng(4), 1.0),
        transport(simulator, latency,
                  [this](NodeId n) { return churn_model.is_up(n); }),
        faulty(transport, plan, 7, &simulator),
        demux(faulty, kNodes),
        onehop(simulator, demux, churn_model, config, Rng(5)) {}

  sim::Simulator simulator;
  net::LatencyMatrix latency = net::LatencyMatrix::synthetic(kNodes, Rng(3));
  churn::ExponentialLifetime dist{1e9};  // stable: only the plan kills nodes
  churn::ChurnModel churn_model;
  net::SimTransport transport;
  fault::FaultyTransport faulty;
  net::Demux demux;
  membership::OneHopMembership onehop;

  void run() {
    onehop.start();
    churn_model.start();
    simulator.run_until(5 * kMinute);
  }
};

TEST(LeaderFailoverTest, ReElectsAroundChurnInvisibleCrash) {
  // Unit 1 is [12, 24) with 4 units over 48 nodes. Crashing node 12 via
  // the fault plan kills every datagram it sends or receives while the
  // churn model still reports it alive — the exact gap ground-truth
  // election cannot see.
  fault::FaultPlan plan;
  plan.crash(12, kMinute);

  membership::OneHopConfig config;
  config.units = 4;
  config.deterministic_failover = true;
  FailoverFixture fx(config, plan);
  fx.run();

  // Ground truth still names the zombie; believed leadership moved on.
  EXPECT_EQ(fx.onehop.unit_leader(1), 12u);
  EXPECT_EQ(fx.onehop.believed_leader(13, 1), 13u);
  const auto control = fx.onehop.control_stats();
  EXPECT_GT(control.elections, 0u);
  EXPECT_GT(control.leader_announcements, 0u);

  // The watchdog verdict disseminated: most of the unit believes 12 dead
  // and agrees on the successor.
  std::size_t believe_dead = 0;
  std::size_t follow_successor = 0;
  for (NodeId member = 13; member < 24; ++member) {
    const auto* entry = fx.onehop.cache(member).find(12);
    if (entry != nullptr && !entry->alive) ++believe_dead;
    if (fx.onehop.believed_leader(member, 1) == 13u) ++follow_successor;
  }
  EXPECT_GT(believe_dead, 8u);
  EXPECT_GT(follow_successor, 8u);

  // Dissemination to the orphaned unit kept flowing: the successor's
  // keepalives refresh its record at the members, so a mid-unit member
  // holds a near-fresh observation of node 13 — not a fossil from t = 0.
  const auto* successor = fx.onehop.cache(18).find(13);
  ASSERT_NE(successor, nullptr);
  EXPECT_TRUE(successor->alive);
  const SimDuration successor_age =
      successor->dt_since + (fx.simulator.now() - successor->t_last);
  EXPECT_LT(successor_age, 30 * kSecond);
}

TEST(LeaderFailoverTest, WithoutFailoverTheZombieKeepsTheRole) {
  // Same crash, failover off (the seed's behavior): nobody ever learns the
  // leader died, so believed leadership never moves and no election runs.
  fault::FaultPlan plan;
  plan.crash(12, kMinute);

  membership::OneHopConfig config;
  config.units = 4;
  FailoverFixture fx(config, plan);
  fx.run();

  EXPECT_EQ(fx.onehop.unit_leader(1), 12u);
  EXPECT_EQ(fx.onehop.believed_leader(13, 1), 12u);
  EXPECT_EQ(fx.onehop.control_stats().elections, 0u);
  const auto* entry = fx.onehop.cache(18).find(12);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->alive);  // the lie the resilient arm corrects
}

// --- staleness-aware mix selection ------------------------------------------------

TEST(StalenessFallbackTest, BiasedSelectionDegradesOnStaleCache) {
  NodeCache cache(20);
  for (NodeId node = 0; node < 18; ++node) {
    cache.heard_directly(node, kMinute, 0);
  }
  anon::StalenessPolicy policy;
  policy.enabled = true;
  policy.stale_after = kMinute;
  policy.degrade_fraction = 0.5;
  anon::MixSelector selector(anon::MixChoice::kBiased, Rng(1), policy);

  // Ten minutes later every record is stale: biased choice admits
  // ignorance and samples uniformly instead of ranking fossils.
  const SimTime stale_now = 10 * kMinute;
  auto paths = selector.select_paths(cache, 2, 3, stale_now, 18, 19);
  ASSERT_TRUE(paths.has_value());
  EXPECT_EQ(selector.biased_selects(), 1u);
  EXPECT_EQ(selector.stale_fallbacks(), 1u);

  // Refresh the cache (anti-entropy's job in a live run): the very next
  // selection is biased again — degradation is per-decision, not latched.
  for (NodeId node = 0; node < 18; ++node) {
    cache.heard_directly(node, kMinute + stale_now, stale_now);
  }
  paths = selector.select_paths(cache, 2, 3, stale_now, 18, 19);
  ASSERT_TRUE(paths.has_value());
  EXPECT_EQ(selector.biased_selects(), 2u);
  EXPECT_EQ(selector.stale_fallbacks(), 1u);
}

TEST(StalenessFallbackTest, ThresholdIsStrictlyGreaterThan) {
  // Exactly degrade_fraction stale must NOT degrade: the fallback fires
  // only when the stale fraction exceeds the knob.
  NodeCache cache(18);
  const SimTime now = 10 * kMinute;
  for (NodeId node = 0; node < 8; ++node) {
    cache.heard_directly(node, kMinute, 0);  // stale half
  }
  for (NodeId node = 8; node < 16; ++node) {
    cache.heard_directly(node, kMinute, now);  // fresh half
  }
  anon::StalenessPolicy policy;
  policy.enabled = true;
  policy.stale_after = kMinute;
  policy.degrade_fraction = 0.5;
  anon::MixSelector selector(anon::MixChoice::kBiased, Rng(1), policy);
  const auto paths = selector.select_paths(cache, 2, 3, now, 16, 17);
  ASSERT_TRUE(paths.has_value());
  EXPECT_EQ(selector.stale_fallbacks(), 0u);
  // Fresh records outrank stale ones under Eq. 3, so the biased pick is
  // drawn from the fresh half.
  for (const auto& path : *paths) {
    for (NodeId relay : path) {
      EXPECT_GE(relay, 8u);
      EXPECT_LT(relay, 16u);
    }
  }
}

TEST(StalenessFallbackTest, DisabledPolicyNeverFallsBack) {
  NodeCache cache(20);
  for (NodeId node = 0; node < 18; ++node) {
    cache.heard_directly(node, kMinute, 0);
  }
  // Default-constructed selector (no policy): even a fully stale cache is
  // ranked — the seed's behavior, byte-identical draws included.
  anon::MixSelector selector(anon::MixChoice::kBiased, Rng(1));
  const auto paths = selector.select_paths(cache, 2, 3, 10 * kMinute, 18, 19);
  ASSERT_TRUE(paths.has_value());
  EXPECT_EQ(selector.biased_selects(), 1u);
  EXPECT_EQ(selector.stale_fallbacks(), 0u);
}

}  // namespace
}  // namespace p2panon
