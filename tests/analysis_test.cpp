// Tests for the analytic models: P(k), the three observations, the Eq. 4
// anonymity bound, and the bandwidth model.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/anonymity.hpp"
#include "analysis/bandwidth_model.hpp"
#include "analysis/observations.hpp"
#include "analysis/path_model.hpp"

namespace p2panon::analysis {
namespace {

TEST(PathModelTest, PathSuccessIsAvailabilityPowerL) {
  EXPECT_NEAR(path_success_probability(0.7, 3), 0.343, 1e-12);
  EXPECT_DOUBLE_EQ(path_success_probability(1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(path_success_probability(0.0, 2), 0.0);
  EXPECT_THROW(path_success_probability(1.5, 3), std::invalid_argument);
}

TEST(PathModelTest, BinomialTailEdgeCases) {
  EXPECT_DOUBLE_EQ(at_least_successes(0, 5, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(at_least_successes(6, 5, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(at_least_successes(3, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(at_least_successes(3, 5, 1.0), 1.0);
  // P(at least 1) = 1 - (1-p)^k.
  EXPECT_NEAR(at_least_successes(1, 4, 0.3), 1.0 - std::pow(0.7, 4), 1e-12);
  // Exhaustive check against direct summation for k = 6, p = 0.37.
  const double p = 0.37;
  for (std::size_t need = 0; need <= 6; ++need) {
    double direct = 0.0;
    for (std::size_t i = need; i <= 6; ++i) {
      double binom = 1.0;
      for (std::size_t j = 0; j < i; ++j) {
        binom *= static_cast<double>(6 - j) / static_cast<double>(j + 1);
      }
      direct += binom * std::pow(p, static_cast<double>(i)) *
                std::pow(1 - p, static_cast<double>(6 - i));
    }
    EXPECT_NEAR(at_least_successes(need, 6, p), direct, 1e-10) << need;
  }
}

TEST(PathModelTest, MonteCarloMatchesClosedForm) {
  Rng rng(42);
  for (const double pa : {0.70, 0.86, 0.95}) {
    const double p = path_success_probability(pa, 3);
    for (std::size_t k : {2u, 4u, 8u, 16u}) {
      const double closed = simera_success_probability(k, 2.0, p);
      const double mc = simera_success_monte_carlo(k, 2.0, p, 200000, rng);
      EXPECT_NEAR(mc, closed, 0.01) << "pa=" << pa << " k=" << k;
    }
  }
}

TEST(PathModelTest, SimEraNeedsCeilKOverR) {
  // k = 4, r = 4 -> need 1 path; k = 4, r = 2 -> need 2.
  const double p = 0.5;
  EXPECT_NEAR(simera_success_probability(4, 4.0, p),
              at_least_successes(1, 4, p), 1e-12);
  EXPECT_NEAR(simera_success_probability(4, 2.0, p),
              at_least_successes(2, 4, p), 1e-12);
  EXPECT_THROW(simera_success_probability(0, 2.0, p), std::invalid_argument);
}

// --- the three observations -----------------------------------------------------------

TEST(ObservationsTest, RegimeThresholds) {
  EXPECT_EQ(classify_regime(0.70, 2.0),   // pr = 1.4 > 4/3
            ObservationRegime::kAlwaysSplit);
  EXPECT_EQ(classify_regime(0.60, 2.0),   // pr = 1.2 in (1, 4/3]
            ObservationRegime::kSplitIfLarge);
  EXPECT_EQ(classify_regime(0.40, 2.0),   // pr = 0.8 <= 1
            ObservationRegime::kNeverSplit);
}

TEST(ObservationsTest, ClosedFormBehaviorMatchesClassification) {
  // The paper's Figure 2 settings: L = 3, r = 2,
  // pa = 0.95 -> p = 0.857, pr = 1.71 -> Obs 1;
  // pa = 0.86 -> p = 0.636, pr = 1.27 -> Obs 2;
  // pa = 0.70 -> p = 0.343, pr = 0.69 -> Obs 3.
  struct Case {
    double pa;
    ObservationRegime expected;
  };
  for (const auto& c :
       {Case{0.95, ObservationRegime::kAlwaysSplit},
        Case{0.86, ObservationRegime::kSplitIfLarge},
        Case{0.70, ObservationRegime::kNeverSplit}}) {
    const double p = path_success_probability(c.pa, 3);
    EXPECT_EQ(classify_regime(p, 2.0), c.expected) << c.pa;
    EXPECT_EQ(observe_regime(p, 2, 40), c.expected) << c.pa;
  }
}

TEST(ObservationsTest, Observation2HasCrossover) {
  const double p = path_success_probability(0.86, 3);
  const std::size_t k0 = crossover_k(p, 2, 60);
  EXPECT_GT(k0, 2u);   // there is an initial dip
  EXPECT_LT(k0, 20u);  // and it recovers within the plotted range
  // Obs 1 never dips.
  EXPECT_EQ(crossover_k(path_success_probability(0.95, 3), 2, 60), 0u);
}

TEST(ObservationsTest, AdvisorMeetsTarget) {
  const auto choices = advise_parameters(0.86, 3, 0.99, 4, 64);
  ASSERT_FALSE(choices.empty());
  for (const auto& choice : choices) {
    EXPECT_GE(choice.success, 0.99);
    EXPECT_EQ(choice.k % choice.r, 0u);
  }
}

// --- anonymity (Eq. 4) -------------------------------------------------------------------

TEST(AnonymityTest, NoAttackersMeansNoIdentification) {
  EXPECT_DOUBLE_EQ(initiator_identification_probability(1000, 0.0, 3), 0.0);
}

TEST(AnonymityTest, IncreasesWithAttackerFraction) {
  double prev = 0.0;
  for (double f : {0.05, 0.1, 0.2, 0.4}) {
    const double current = initiator_identification_probability(1000, f, 3);
    EXPECT_GT(current, prev);
    prev = current;
  }
}

TEST(AnonymityTest, LongerPathsReduceWeightPerPosition) {
  // With more relays the first-relay weight shrinks for small f.
  EXPECT_GT(first_relay_compromised_weight(0.1, 2),
            first_relay_compromised_weight(0.1, 8));
}

TEST(AnonymityTest, WeightBelowRawCompromiseRate) {
  Rng rng(7);
  const double f = 0.2;
  const double raw = first_relay_compromised_monte_carlo(f, 3, 100000, rng);
  EXPECT_LT(first_relay_compromised_weight(f, 3), raw + 0.01);
}

TEST(AnonymityTest, MultipathExposureGrowsWithK) {
  EXPECT_NEAR(multipath_first_relay_exposure(0.1, 1), 0.1, 1e-12);
  EXPECT_NEAR(multipath_first_relay_exposure(0.1, 4),
              1.0 - std::pow(0.9, 4), 1e-12);
  EXPECT_GT(multipath_first_relay_exposure(0.1, 8),
            multipath_first_relay_exposure(0.1, 2));
}

TEST(AnonymityTest, RejectsBadFraction) {
  // Only fractions outside [0, 1] are invalid; the closed interval itself
  // is well-defined (f = 1 means certain identification, f = 0 means none).
  EXPECT_THROW(initiator_identification_probability(100, 1.5, 3),
               std::invalid_argument);
  EXPECT_THROW(initiator_identification_probability(100, -0.1, 3),
               std::invalid_argument);
  EXPECT_THROW(first_relay_compromised_weight(-0.01, 3),
               std::invalid_argument);
  EXPECT_THROW(multipath_first_relay_exposure(1.01, 4),
               std::invalid_argument);
}

TEST(AnonymityTest, DegenerateCornersAreWellDefined) {
  // f = 1: every relay is compromised — identification is certain, the
  // honest pool is empty, exposure is total.
  EXPECT_DOUBLE_EQ(initiator_identification_probability(100, 1.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(multipath_first_relay_exposure(1.0, 4), 1.0);
  EXPECT_EQ(honest_anonymity_set(100, 1.0), 0u);
  // f = 0: no attacker anywhere.
  EXPECT_DOUBLE_EQ(initiator_identification_probability(100, 0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(multipath_first_relay_exposure(0.0, 4), 0.0);
  EXPECT_EQ(honest_anonymity_set(100, 0.0), 100u);
  // Empty network / zero-length path / zero paths: no identification
  // event can occur, and nothing throws.
  EXPECT_DOUBLE_EQ(initiator_identification_probability(0, 0.1, 3), 0.0);
  EXPECT_DOUBLE_EQ(initiator_identification_probability(100, 0.1, 0), 0.0);
  EXPECT_DOUBLE_EQ(first_relay_compromised_weight(0.1, 0), 0.0);
  EXPECT_DOUBLE_EQ(multipath_first_relay_exposure(0.1, 0), 0.0);
  EXPECT_EQ(honest_anonymity_set(0, 0.1), 0u);
  // The probability stays clamped even when L exceeds any realistic bound.
  const double huge_l = initiator_identification_probability(10, 0.9, 64);
  EXPECT_GE(huge_l, 0.0);
  EXPECT_LE(huge_l, 1.0);
}

TEST(AnonymityTest, UniformEntropyMatchesLog2) {
  EXPECT_DOUBLE_EQ(uniform_entropy_bits(0), 0.0);
  EXPECT_DOUBLE_EQ(uniform_entropy_bits(1), 0.0);
  EXPECT_DOUBLE_EQ(uniform_entropy_bits(2), 1.0);
  EXPECT_NEAR(uniform_entropy_bits(90), std::log2(90.0), 1e-12);
  // The honest pool of a 96-node network at f = 0.1 rounds to 86.
  EXPECT_EQ(honest_anonymity_set(96, 0.1), 86u);
}

// --- bandwidth model -----------------------------------------------------------------------

TEST(BandwidthModelTest, FullDeliveryMatchesPaperFormula) {
  BandwidthModel model;
  model.message_size = 1024;
  model.path_length = 3;
  // CurMix: 1 KB x 4 hops = 4 KB.
  EXPECT_NEAR(model.full_delivery_cost(1, 1.0) / 1024.0, 4.0, 1e-9);
  // SimEra(k, r): |M| * r * (L + 1) regardless of k.
  EXPECT_NEAR(model.full_delivery_cost(4, 2.0) / 1024.0, 8.0, 1e-9);
  EXPECT_NEAR(model.full_delivery_cost(8, 2.0) / 1024.0, 8.0, 1e-9);
  EXPECT_NEAR(model.full_delivery_cost(4, 4.0) / 1024.0, 16.0, 1e-9);
}

TEST(BandwidthModelTest, ExpectedCostBetweenHalfAndFull) {
  BandwidthModel model;
  const double full = model.full_delivery_cost(4, 2.0);
  const double expected = model.expected_cost(4, 2.0, 0.5);
  EXPECT_LT(expected, full);
  EXPECT_GT(expected, full / 2.0 - 1e-9);
  // p = 1 recovers the full cost.
  EXPECT_NEAR(model.expected_cost(4, 2.0, 1.0), full, 1e-9);
}

TEST(BandwidthModelTest, OverheadAccounted) {
  BandwidthModel model;
  model.message_size = 1000;
  model.per_message_overhead = 100;
  model.path_length = 1;
  // 2 paths x (500 + 100) x 2 hops = 2400.
  EXPECT_NEAR(model.full_delivery_cost(2, 1.0), 2400.0, 1e-9);
  EXPECT_THROW(model.full_delivery_cost(0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace p2panon::analysis
