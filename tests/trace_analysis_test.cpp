// Offline trace analyzer: format sniffing, begin/end matching, chain
// reconstruction, critical-path extraction — plus the golden-trace check:
// the committed report for tests/data/golden_trace.jsonl must reproduce
// byte-identically, pinning the analyzer's output format.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/trace_analysis.hpp"

#ifndef P2PANON_TEST_DATA_DIR
#error "P2PANON_TEST_DATA_DIR must point at tests/data"
#endif

namespace p2panon::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TraceParseTest, SniffsChromeVersusJsonl) {
  const std::string valid =
      "{\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"p2panon\"}},"
      "{\"ph\":\"b\",\"cat\":\"anon\",\"name\":\"segment\",\"id\":\"0x2a\","
      "\"pid\":1,\"tid\":1,\"ts\":10,\"args\":{\"wall_ns\":5}},"
      "{\"ph\":\"e\",\"cat\":\"anon\",\"name\":\"segment\",\"id\":\"0x2a\","
      "\"pid\":1,\"tid\":1,\"ts\":30}]}";
  const ParsedTrace parsed = parse_trace(valid);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.skipped, 1u);  // the metadata event
  EXPECT_EQ(parsed.records[0].phase, TraceRecord::Phase::kBegin);
  EXPECT_EQ(parsed.records[0].corr, 0x2au);
  EXPECT_EQ(parsed.records[0].sim_us, 10u);
  EXPECT_EQ(parsed.records[0].wall_ns, 5u);

  const std::string jsonl =
      "{\"type\":\"instant\",\"cat\":\"net\",\"name\":\"drop\",\"corr\":7,"
      "\"sim_us\":99,\"wall_ns\":1}\n"
      "garbage\n";
  const ParsedTrace lines = parse_trace(jsonl);
  ASSERT_EQ(lines.records.size(), 1u);
  EXPECT_EQ(lines.skipped, 1u);
  EXPECT_EQ(lines.records[0].phase, TraceRecord::Phase::kInstant);
  EXPECT_EQ(lines.records[0].corr, 7u);
}

TEST(TraceParseTest, LargeCorrelationIdsSurviveExactly) {
  // 0x48095acbcf12303e does not fit a double mantissa; the parser must
  // carry the raw token through, not round-trip via floating point.
  const std::string line =
      "{\"type\":\"begin\",\"cat\":\"anon\",\"name\":\"segment\","
      "\"corr\":5190779876920143934,\"sim_us\":1,\"wall_ns\":1}\n";
  const ParsedTrace parsed = parse_jsonl_trace(line);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].corr, 0x48095acbcf12303eull);
}

TEST(TraceAnalyzeTest, EmptyTraceRendersValidReport) {
  const std::string report = analyze_trace(ParsedTrace{});
  EXPECT_TRUE(json_valid(report)) << report;
  EXPECT_NE(report.find("\"chains\":{\"count\":0"), std::string::npos);
  EXPECT_NE(report.find("\"slowest_chains\":[]"), std::string::npos);
}

TEST(TraceAnalyzeTest, UncorrelatedSpansCountInStatsButFormNoChain) {
  ParsedTrace trace;
  TraceRecord begin;
  begin.phase = TraceRecord::Phase::kBegin;
  begin.name = "segment";
  begin.corr = 0;  // background
  begin.sim_us = 10;
  TraceRecord end = begin;
  end.phase = TraceRecord::Phase::kEnd;
  end.sim_us = 25;
  trace.records = {begin, end};
  const std::string report = analyze_trace(trace);
  EXPECT_NE(report.find("\"chains\":{\"count\":0"), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"name\":\"segment\",\"count\":1"), std::string::npos)
      << report;
}

TEST(TraceAnalyzeTest, FifoMatchingPairsRepeatedSpanNames) {
  // Two same-name spans on one chain, interleaved begin/begin/end/end: FIFO
  // pairs first-begin with first-end (10..30 and 20..40, not 10..40).
  ParsedTrace trace;
  const std::uint64_t times[] = {10, 20, 30, 40};
  for (int i = 0; i < 4; ++i) {
    TraceRecord r;
    r.phase = i < 2 ? TraceRecord::Phase::kBegin : TraceRecord::Phase::kEnd;
    r.name = "segment";
    r.corr = 5;
    r.sim_us = times[i];
    trace.records.push_back(r);
  }
  const std::string report = analyze_trace(trace);
  // Both spans are 20 us, so total 40 and max 20 — the 10..40 pairing
  // would give max 30.
  EXPECT_NE(report.find("\"count\":2,\"total_us\":40"), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"max_us\":20"), std::string::npos) << report;
  EXPECT_NE(report.find("\"unmatched_begins\":0"), std::string::npos);
}

TEST(TraceAnalyzeTest, TopNLimitsSlowestChains) {
  ParsedTrace trace;
  for (std::uint64_t corr = 1; corr <= 5; ++corr) {
    TraceRecord begin;
    begin.phase = TraceRecord::Phase::kBegin;
    begin.name = "segment";
    begin.corr = corr;
    begin.sim_us = 0;
    TraceRecord end = begin;
    end.phase = TraceRecord::Phase::kEnd;
    end.sim_us = corr * 100;  // chain 5 is slowest
    trace.records.push_back(begin);
    trace.records.push_back(end);
  }
  AnalyzerOptions options;
  options.top_n = 2;
  const std::string report = analyze_trace(trace, options);
  EXPECT_NE(report.find("\"corr\":\"0x5\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"corr\":\"0x4\""), std::string::npos) << report;
  EXPECT_EQ(report.find("\"corr\":\"0x3\""), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// Golden trace: committed input -> committed report, byte for byte.

TEST(GoldenTraceTest, CommittedReportReproducesByteIdentically) {
  const std::string dir = P2PANON_TEST_DATA_DIR;
  const std::string trace_text = read_file(dir + "/golden_trace.jsonl");
  ASSERT_FALSE(trace_text.empty());
  const std::string golden = read_file(dir + "/golden_trace_report.json");
  ASSERT_FALSE(golden.empty());

  const ParsedTrace trace = parse_trace(trace_text);
  EXPECT_EQ(trace.records.size(), 17u);
  EXPECT_EQ(trace.skipped, 2u);  // meta line + non-JSON line

  // The CLI writes the report plus one trailing newline.
  const std::string report = analyze_trace(trace) + "\n";
  EXPECT_EQ(report, golden)
      << "analyzer output drifted from tests/data/golden_trace_report.json; "
         "if the change is intentional, regenerate the golden file with "
         "build/tools/trace_analyze";
  EXPECT_TRUE(json_valid(report));
}

TEST(FlowIngestTest, FlowLinesJoinChainsByCorrelationId) {
  // A span chain under corr 7 plus link-record lines, mixed into one
  // JSONL stream: flow lines must not be counted as skipped, and the
  // flows section must join the corr-7 flows onto the chain.
  const std::string text =
      "{\"type\":\"begin\",\"name\":\"path_construct\",\"corr\":7,"
      "\"sim_us\":100}\n"
      "{\"type\":\"end\",\"name\":\"path_construct\",\"corr\":7,"
      "\"sim_us\":900}\n"
      "{\"flow\":\"send\",\"sim_us\":120,\"from\":4,\"to\":9,\"bytes\":512,"
      "\"chan\":2,\"corr\":7}\n"
      "{\"flow\":\"deliver\",\"sim_us\":180,\"from\":4,\"to\":9,"
      "\"bytes\":512,\"chan\":2,\"corr\":7}\n"
      "{\"flow\":\"send\",\"sim_us\":500,\"from\":1,\"to\":2,\"bytes\":64,"
      "\"chan\":1,\"corr\":0}\n";
  const ParsedTrace trace = parse_jsonl_trace(text);
  EXPECT_EQ(trace.records.size(), 2u);
  EXPECT_EQ(trace.flows.size(), 3u);
  EXPECT_EQ(trace.skipped, 0u);
  EXPECT_TRUE(trace.flows[1].deliver);
  EXPECT_EQ(trace.flows[0].channel, 2u);

  const std::string report = analyze_trace(trace);
  EXPECT_NE(report.find("\"flows\":{\"count\":3,\"sends\":2,\"delivers\":1,"
                        "\"bytes_total\":1088"),
            std::string::npos);
  EXPECT_NE(report.find("\"chan\":1,\"count\":1,\"bytes\":64"),
            std::string::npos);
  EXPECT_NE(report.find("\"correlated\":{\"flows\":2,\"chains\":1}"),
            std::string::npos);

  // A separate flows file appends through the dedicated parser.
  ParsedTrace joined = parse_jsonl_trace(text.substr(0, text.find("{\"flow")));
  parse_flows_jsonl(text.substr(text.find("{\"flow")), joined);
  EXPECT_EQ(joined.flows.size(), 3u);

  // Span-only traces never grow a flows section (golden stability).
  ParsedTrace span_only = trace;
  span_only.flows.clear();
  EXPECT_EQ(analyze_trace(span_only).find("\"flows\""), std::string::npos);
}

TEST(GoldenTraceTest, GoldenReportContainsExpectedStructure) {
  const std::string dir = P2PANON_TEST_DATA_DIR;
  const std::string golden = read_file(dir + "/golden_trace_report.json");
  // Spot-check semantics, not just stability: two chains, one with a
  // retransmission, per-hop gaps of 120 ms and 140 ms, and a critical path
  // whose uncovered stretch surfaces as a "(gap)" entry.
  EXPECT_NE(golden.find("\"chains\":{\"count\":2,\"with_retransmit\":1"),
            std::string::npos);
  EXPECT_NE(golden.find("\"hop\":0,\"count\":1,\"total_us\":120000"),
            std::string::npos);
  EXPECT_NE(golden.find("\"hop\":1,\"count\":1,\"total_us\":140000"),
            std::string::npos);
  EXPECT_NE(golden.find("\"amplification\":2.000"), std::string::npos);
  EXPECT_NE(golden.find("\"name\":\"(gap)\",\"start_us\":700000"),
            std::string::npos);
  EXPECT_NE(golden.find("\"unmatched_begins\":1"), std::string::npos);
}

}  // namespace
}  // namespace p2panon::obs
