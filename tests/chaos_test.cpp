// Chaos invariant harness: every named fault scenario must preserve the
// conservation, ledger, no-leak, and determinism invariants — in both the
// paper's fixed-timeout configuration and the adaptive RTO/backoff mode.
#include <gtest/gtest.h>

#include "harness/chaos_experiment.hpp"

namespace p2panon::harness {
namespace {

ChaosConfig small_chaos(ChaosScenario scenario, std::uint64_t seed,
                        bool adaptive) {
  ChaosConfig config;
  config.environment.num_nodes = 96;
  config.environment.seed = seed;
  config.scenario = scenario;
  config.warmup = 5 * kMinute;
  config.measure = 10 * kMinute;
  config.send_interval = 5 * kSecond;
  config.adaptive = adaptive;
  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom);
  return config;
}

// The four invariants every scenario must uphold (see chaos_experiment.hpp).
void expect_invariants(const ChaosResult& result) {
  ASSERT_TRUE(result.constructed);
  ASSERT_GT(result.messages_accepted, 0u);
  // 1. Conservation: delivered or explainable, nothing vanishes.
  EXPECT_EQ(result.messages_unaccounted, 0u);
  EXPECT_EQ(result.messages_delivered + result.messages_failed,
            result.messages_accepted);
  // 2. The segment ledger closes.
  EXPECT_TRUE(result.ledger_closed())
      << "sent=" << result.segments_sent
      << " matched=" << result.acks_matched
      << " expired=" << result.segments_expired
      << " retransmitted=" << result.segments_retransmitted
      << " pending=" << result.leaked_pending_segments;
  // 3. No residual state anywhere after teardown + TTL sweep.
  EXPECT_EQ(result.leaked_pending_segments, 0u);
  EXPECT_EQ(result.leaked_path_state, 0u);
  EXPECT_EQ(result.leaked_pending_constructions, 0u);
  EXPECT_EQ(result.leaked_reverse_handlers, 0u);
  EXPECT_EQ(result.leaked_reassembly, 0u);
}

TEST(ChaosScenarioTest, FlashCrowdCrashHoldsInvariants) {
  for (const bool adaptive : {false, true}) {
    const auto result = run_chaos_experiment(
        small_chaos(ChaosScenario::kFlashCrowdCrash, 11, adaptive));
    SCOPED_TRACE(adaptive ? "adaptive" : "fixed");
    expect_invariants(result);
    // The crash wave actually bit: scripted crashes dropped datagrams.
    EXPECT_GT(result.faults.dropped_crash + result.drops.sender_dead +
                  result.drops.receiver_dead,
              0u);
  }
}

TEST(ChaosScenarioTest, RollingPartitionHoldsInvariants) {
  for (const bool adaptive : {false, true}) {
    const auto result = run_chaos_experiment(
        small_chaos(ChaosScenario::kRollingPartition, 12, adaptive));
    SCOPED_TRACE(adaptive ? "adaptive" : "fixed");
    expect_invariants(result);
    EXPECT_GT(result.faults.dropped_partition, 0u);
  }
}

TEST(ChaosScenarioTest, LossyLinkEpidemicHoldsInvariants) {
  for (const bool adaptive : {false, true}) {
    const auto result = run_chaos_experiment(
        small_chaos(ChaosScenario::kLossyLinkEpidemic, 13, adaptive));
    SCOPED_TRACE(adaptive ? "adaptive" : "fixed");
    expect_invariants(result);
    EXPECT_GT(result.faults.dropped_loss, 0u);
    EXPECT_GT(result.faults.delayed + result.faults.dropped_loss, 0u);
  }
}

TEST(ChaosScenarioTest, CorruptedRelayQuorumHoldsInvariants) {
  for (const bool adaptive : {false, true}) {
    auto config = small_chaos(ChaosScenario::kCorruptedRelayQuorum, 14, adaptive);
    // Construction through byzantine relays needs many attempts; give the
    // adaptive mode's backoff-paced attempt chain room to finish with a
    // send window left over.
    config.measure = 15 * kMinute;
    const auto result = run_chaos_experiment(config);
    SCOPED_TRACE(adaptive ? "adaptive" : "fixed");
    expect_invariants(result);
    // Byzantine flips happened and AEAD peels rejected them downstream.
    EXPECT_GT(result.faults.corrupted, 0u);
    EXPECT_GT(result.peel_failures, 0u);
  }
}

TEST(ChaosDeterminismTest, SameSeedSameFingerprint) {
  const auto config =
      small_chaos(ChaosScenario::kLossyLinkEpidemic, 21, /*adaptive=*/true);
  const auto first = run_chaos_experiment(config);
  const auto second = run_chaos_experiment(config);
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
}

TEST(ChaosDeterminismTest, DifferentSeedsDiverge) {
  const auto a = run_chaos_experiment(
      small_chaos(ChaosScenario::kFlashCrowdCrash, 22, false));
  const auto b = run_chaos_experiment(
      small_chaos(ChaosScenario::kFlashCrowdCrash, 23, false));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// Redundancy ordering (paper's core claim, chaos edition): erasure coding
// >= replication >= single path, by delivered fraction. The claim is about
// *redundancy alone* masking in-flight losses, so the run uses the paper's
// static regime: no retransmission, no failure detection (the ack timeout
// outlasts the run), no path repair. Loss must also stay mild — per-segment
// end-to-end survival below ~0.68 provably inverts SimEra vs SimRep
// (needing m-of-n arrivals beats 1-of-r only when segments usually live).
TEST(ChaosProtocolTest, RedundancyOrderingUnderMildLoss) {
  auto config = small_chaos(ChaosScenario::kMildLossDrizzle, 31, false);
  config.auto_reconstruct = false;
  config.require_full_paths = true;   // all k paths up before sending
  config.ack_timeout = 2 * kHour;     // never fires within the run
  config.send_interval = 1 * kSecond; // ~500 i.i.d. message samples
  // Full provisioning can take minutes of top-up rounds; paths that were
  // established early must not have their relay state TTL-expire (§4.3)
  // while the stragglers finish, so the TTL must outlast the run.
  config.environment.router.state_ttl = 1 * kHour;

  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom);
  const auto simera = run_chaos_experiment(config);
  config.spec = anon::ProtocolSpec::simrep(2, anon::MixChoice::kRandom);
  const auto simrep = run_chaos_experiment(config);
  config.spec = anon::ProtocolSpec::curmix(anon::MixChoice::kRandom);
  const auto curmix = run_chaos_experiment(config);

  expect_invariants(simera);
  expect_invariants(simrep);
  expect_invariants(curmix);
  EXPECT_GE(simera.attempted_delivery_rate(),
            simrep.attempted_delivery_rate());
  EXPECT_GE(simrep.attempted_delivery_rate(),
            curmix.attempted_delivery_rate());
}

// --- byzantine integrity ---------------------------------------------------
//
// The corruption-resilience acceptance criterion: with segment auth +
// verified decode on, a run under byzantine relays delivers the EXACT
// bytes sent or fails closed — never fabricated bytes — at every swept
// per-datagram corruption probability, up to 0.5 per hop.

ChaosConfig byzantine_chaos(double probability, std::uint64_t seed) {
  auto config =
      small_chaos(ChaosScenario::kCorruptedRelayQuorum, seed, false);
  config.measure = 15 * kMinute;  // byzantine construction is slow
  config.byzantine_probability = probability;
  config.segment_auth = true;
  config.verified_decode = true;
  config.corruption_escalation = true;
  return config;
}

TEST(ChaosByzantineTest, FailsClosedNeverWrongAtEverySweptRate) {
  std::uint64_t total_rejected = 0;
  std::uint64_t total_verified = 0;
  for (const double probability : {0.10, 0.25, 0.50}) {
    SCOPED_TRACE(probability);
    const auto result = run_chaos_experiment(byzantine_chaos(probability, 51));
    expect_invariants(result);
    // Never wrong bytes: every delivery scored against the sent payload.
    EXPECT_EQ(result.messages_delivered_wrong, 0u);
    EXPECT_EQ(result.messages_delivered_correct, result.messages_delivered);
    total_rejected += result.auth_rejected;
    total_verified += result.auth_verified;
  }
  // The defense was actually exercised: segments were tag-verified on the
  // happy path and corrupted ones were rejected somewhere in the sweep.
  EXPECT_GT(total_verified, 0u);
  EXPECT_GT(total_rejected, 0u);
}

// Without the auth trailer the same schedule is a hazard: FastOnionCodec
// has no integrity, so at least one corrupted reconstruction survives to
// the application as wrong bytes. This is the baseline the tentpole
// removes (and proof the fail-closed test above is non-vacuous).
TEST(ChaosByzantineTest, BaselineWithoutTagsDeliversWrongBytes) {
  std::uint64_t wrong = 0;
  for (const std::uint64_t seed : {51, 52, 53}) {
    auto config = byzantine_chaos(0.25, seed);
    config.segment_auth = false;
    config.verified_decode = false;
    config.corruption_escalation = false;
    const auto result = run_chaos_experiment(config);
    expect_invariants(result);
    wrong += result.messages_delivered_wrong;
  }
  EXPECT_GT(wrong, 0u);
}

// Relay suspicion must convert the responder's corruption verdicts into
// routing pressure: evidence is filed, the byzantine quorum accrues
// suspicion, and rebuilt paths avoid it — recovering deliveries the
// tags-only run loses, never at the cost of integrity.
TEST(ChaosByzantineTest, SuspicionBiasedRecoversDeliveries) {
  const auto tags_only = run_chaos_experiment(byzantine_chaos(0.25, 54));

  auto config = byzantine_chaos(0.25, 54);
  config.relay_suspicion = true;
  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kBiased);
  const auto suspicion = run_chaos_experiment(config);

  expect_invariants(tags_only);
  expect_invariants(suspicion);
  EXPECT_EQ(suspicion.messages_delivered_wrong, 0u);
  EXPECT_GT(suspicion.suspicion_reports, 0u);
  EXPECT_GE(suspicion.correct_rate(), tags_only.correct_rate());
}

TEST(ChaosByzantineTest, AuthRunIsDeterministic) {
  auto config = byzantine_chaos(0.5, 55);
  config.relay_suspicion = true;
  const auto first = run_chaos_experiment(config);
  const auto second = run_chaos_experiment(config);
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
}

// Adaptive RTO + backoff must help when links are lossy rather than dead:
// retransmission recovers individual losses that the fixed configuration
// turns into path teardowns. Compared on the attempted-delivery ratio —
// delivered / tried-to-send — because the fixed mode also refuses sends
// while its paths are torn down, which a per-accepted ratio would reward.
TEST(ChaosAdaptiveTest, AdaptiveBeatsFixedUnderLoss) {
  const auto fixed = run_chaos_experiment(
      small_chaos(ChaosScenario::kLossyLinkEpidemic, 41, false));
  const auto adaptive = run_chaos_experiment(
      small_chaos(ChaosScenario::kLossyLinkEpidemic, 41, true));
  expect_invariants(fixed);
  expect_invariants(adaptive);
  EXPECT_GT(adaptive.attempted_delivery_rate(),
            fixed.attempted_delivery_rate());
}

}  // namespace
}  // namespace p2panon::harness
