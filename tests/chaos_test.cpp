// Chaos invariant harness: every named fault scenario must preserve the
// conservation, ledger, no-leak, and determinism invariants — in both the
// paper's fixed-timeout configuration and the adaptive RTO/backoff mode.
#include <gtest/gtest.h>

#include "harness/chaos_experiment.hpp"

namespace p2panon::harness {
namespace {

ChaosConfig small_chaos(ChaosScenario scenario, std::uint64_t seed,
                        bool adaptive) {
  ChaosConfig config;
  config.environment.num_nodes = 96;
  config.environment.seed = seed;
  config.scenario = scenario;
  config.warmup = 5 * kMinute;
  config.measure = 10 * kMinute;
  config.send_interval = 5 * kSecond;
  config.adaptive = adaptive;
  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom);
  return config;
}

// The four invariants every scenario must uphold (see chaos_experiment.hpp).
void expect_invariants(const ChaosResult& result) {
  ASSERT_TRUE(result.constructed);
  ASSERT_GT(result.messages_accepted, 0u);
  // 1. Conservation: delivered or explainable, nothing vanishes.
  EXPECT_EQ(result.messages_unaccounted, 0u);
  EXPECT_EQ(result.messages_delivered + result.messages_failed,
            result.messages_accepted);
  // 2. The segment ledger closes.
  EXPECT_TRUE(result.ledger_closed())
      << "sent=" << result.segments_sent
      << " matched=" << result.acks_matched
      << " expired=" << result.segments_expired
      << " retransmitted=" << result.segments_retransmitted
      << " pending=" << result.leaked_pending_segments;
  // 3. No residual state anywhere after teardown + TTL sweep.
  EXPECT_EQ(result.leaked_pending_segments, 0u);
  EXPECT_EQ(result.leaked_path_state, 0u);
  EXPECT_EQ(result.leaked_pending_constructions, 0u);
  EXPECT_EQ(result.leaked_reverse_handlers, 0u);
  EXPECT_EQ(result.leaked_reassembly, 0u);
}

TEST(ChaosScenarioTest, FlashCrowdCrashHoldsInvariants) {
  for (const bool adaptive : {false, true}) {
    const auto result = run_chaos_experiment(
        small_chaos(ChaosScenario::kFlashCrowdCrash, 11, adaptive));
    SCOPED_TRACE(adaptive ? "adaptive" : "fixed");
    expect_invariants(result);
    // The crash wave actually bit: scripted crashes dropped datagrams.
    EXPECT_GT(result.faults.dropped_crash + result.drops.sender_dead +
                  result.drops.receiver_dead,
              0u);
  }
}

TEST(ChaosScenarioTest, RollingPartitionHoldsInvariants) {
  for (const bool adaptive : {false, true}) {
    const auto result = run_chaos_experiment(
        small_chaos(ChaosScenario::kRollingPartition, 12, adaptive));
    SCOPED_TRACE(adaptive ? "adaptive" : "fixed");
    expect_invariants(result);
    EXPECT_GT(result.faults.dropped_partition, 0u);
  }
}

TEST(ChaosScenarioTest, LossyLinkEpidemicHoldsInvariants) {
  for (const bool adaptive : {false, true}) {
    const auto result = run_chaos_experiment(
        small_chaos(ChaosScenario::kLossyLinkEpidemic, 13, adaptive));
    SCOPED_TRACE(adaptive ? "adaptive" : "fixed");
    expect_invariants(result);
    EXPECT_GT(result.faults.dropped_loss, 0u);
    EXPECT_GT(result.faults.delayed + result.faults.dropped_loss, 0u);
  }
}

TEST(ChaosScenarioTest, CorruptedRelayQuorumHoldsInvariants) {
  for (const bool adaptive : {false, true}) {
    auto config = small_chaos(ChaosScenario::kCorruptedRelayQuorum, 14, adaptive);
    // Construction through byzantine relays needs many attempts; give the
    // adaptive mode's backoff-paced attempt chain room to finish with a
    // send window left over.
    config.measure = 15 * kMinute;
    const auto result = run_chaos_experiment(config);
    SCOPED_TRACE(adaptive ? "adaptive" : "fixed");
    expect_invariants(result);
    // Byzantine flips happened and AEAD peels rejected them downstream.
    EXPECT_GT(result.faults.corrupted, 0u);
    EXPECT_GT(result.peel_failures, 0u);
  }
}

TEST(ChaosDeterminismTest, SameSeedSameFingerprint) {
  const auto config =
      small_chaos(ChaosScenario::kLossyLinkEpidemic, 21, /*adaptive=*/true);
  const auto first = run_chaos_experiment(config);
  const auto second = run_chaos_experiment(config);
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
}

TEST(ChaosDeterminismTest, DifferentSeedsDiverge) {
  const auto a = run_chaos_experiment(
      small_chaos(ChaosScenario::kFlashCrowdCrash, 22, false));
  const auto b = run_chaos_experiment(
      small_chaos(ChaosScenario::kFlashCrowdCrash, 23, false));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// Redundancy ordering (paper's core claim, chaos edition): erasure coding
// >= replication >= single path, by delivered fraction. The claim is about
// *redundancy alone* masking in-flight losses, so the run uses the paper's
// static regime: no retransmission, no failure detection (the ack timeout
// outlasts the run), no path repair. Loss must also stay mild — per-segment
// end-to-end survival below ~0.68 provably inverts SimEra vs SimRep
// (needing m-of-n arrivals beats 1-of-r only when segments usually live).
TEST(ChaosProtocolTest, RedundancyOrderingUnderMildLoss) {
  auto config = small_chaos(ChaosScenario::kMildLossDrizzle, 31, false);
  config.auto_reconstruct = false;
  config.require_full_paths = true;   // all k paths up before sending
  config.ack_timeout = 2 * kHour;     // never fires within the run
  config.send_interval = 1 * kSecond; // ~500 i.i.d. message samples
  // Full provisioning can take minutes of top-up rounds; paths that were
  // established early must not have their relay state TTL-expire (§4.3)
  // while the stragglers finish, so the TTL must outlast the run.
  config.environment.router.state_ttl = 1 * kHour;

  config.spec = anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kRandom);
  const auto simera = run_chaos_experiment(config);
  config.spec = anon::ProtocolSpec::simrep(2, anon::MixChoice::kRandom);
  const auto simrep = run_chaos_experiment(config);
  config.spec = anon::ProtocolSpec::curmix(anon::MixChoice::kRandom);
  const auto curmix = run_chaos_experiment(config);

  expect_invariants(simera);
  expect_invariants(simrep);
  expect_invariants(curmix);
  EXPECT_GE(simera.attempted_delivery_rate(),
            simrep.attempted_delivery_rate());
  EXPECT_GE(simrep.attempted_delivery_rate(),
            curmix.attempted_delivery_rate());
}

// Adaptive RTO + backoff must help when links are lossy rather than dead:
// retransmission recovers individual losses that the fixed configuration
// turns into path teardowns. Compared on the attempted-delivery ratio —
// delivered / tried-to-send — because the fixed mode also refuses sends
// while its paths are torn down, which a per-accepted ratio would reward.
TEST(ChaosAdaptiveTest, AdaptiveBeatsFixedUnderLoss) {
  const auto fixed = run_chaos_experiment(
      small_chaos(ChaosScenario::kLossyLinkEpidemic, 41, false));
  const auto adaptive = run_chaos_experiment(
      small_chaos(ChaosScenario::kLossyLinkEpidemic, 41, true));
  expect_invariants(fixed);
  expect_invariants(adaptive);
  EXPECT_GT(adaptive.attempted_delivery_rate(),
            fixed.attempted_delivery_rate());
}

}  // namespace
}  // namespace p2panon::harness
