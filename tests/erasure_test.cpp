// Unit and property tests for GF(256), matrices and the erasure codecs.
#include <gtest/gtest.h>

#include <tuple>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "erasure/codec.hpp"
#include "erasure/gf256.hpp"
#include "erasure/matrix.hpp"
#include "erasure/reed_solomon.hpp"
#include "erasure/replication.hpp"
#include "erasure/verified_decode.hpp"

namespace p2panon::erasure {
namespace {

// --- GF(256) -----------------------------------------------------------------

TEST(GF256Test, AddIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(GF256::sub(0x53, 0xca), 0x53 ^ 0xca);
}

TEST(GF256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256Test, MulMatchesCarrylessReference) {
  // Reference: Russian-peasant multiplication with reduction by 0x11d.
  auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
    std::uint8_t result = 0;
    std::uint16_t aa = a;
    while (b) {
      if (b & 1) result ^= static_cast<std::uint8_t>(aa);
      aa <<= 1;
      if (aa & 0x100) aa ^= 0x11d;
      b >>= 1;
    }
    return result;
  };
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    ASSERT_EQ(GF256::mul(a, b), slow_mul(a, b)) << (int)a << "*" << (int)b;
  }
}

TEST(GF256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(GF256Test, DivInvertsMul) {
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
  }
}

TEST(GF256Test, ZeroDivisionThrows) {
  EXPECT_THROW(GF256::div(5, 0), std::domain_error);
  EXPECT_THROW(GF256::inv(0), std::domain_error);
}

TEST(GF256Test, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 7) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(GF256::pow(static_cast<std::uint8_t>(a), e), acc);
      acc = GF256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(GF256Test, PowLargeExponentNoOverflow) {
  // Regression: log[a] * e wrapped unsigned before the % 255 reduction, so
  // exponents near UINT_MAX produced wrong powers. The nonzero elements
  // form a cyclic group of order 255: a^e must equal a^(e mod 255).
  const unsigned huge[] = {UINT_MAX,      UINT_MAX - 1, UINT_MAX / 2,
                           0x80000000u,   255u * 1000000u + 17u,
                           65535u,        510u};
  for (int a = 1; a < 256; a += 5) {
    for (unsigned e : huge) {
      EXPECT_EQ(GF256::pow(static_cast<std::uint8_t>(a), e),
                GF256::pow(static_cast<std::uint8_t>(a), e % 255u))
          << "a=" << a << " e=" << e;
    }
  }
  // Pinned witness: UINT_MAX is a multiple of 255, so a^UINT_MAX = 1 for
  // every nonzero a; the old code wrapped log[a] * UINT_MAX instead.
  EXPECT_EQ(GF256::pow(3, UINT_MAX), 1);
  EXPECT_EQ(GF256::pow(0x9c, UINT_MAX), 1);
  // Zero cases are untouched by the reduction.
  EXPECT_EQ(GF256::pow(0, UINT_MAX), 0);
  EXPECT_EQ(GF256::pow(0, 0), 1);
  EXPECT_EQ(GF256::pow(255, 0), 1);
}

TEST(GF256Test, PowExponentAdditionIdentity) {
  // a^(e1+e2) == a^e1 * a^e2 across exponents that exercise the reduction.
  Rng rng(44);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto e1 = static_cast<unsigned>(rng.next_below(1u << 30));
    const auto e2 = static_cast<unsigned>(rng.next_below(1u << 30));
    EXPECT_EQ(GF256::pow(a, e1 + e2),
              GF256::mul(GF256::pow(a, e1), GF256::pow(a, e2)))
        << "a=" << (int)a << " e1=" << e1 << " e2=" << e2;
  }
}

TEST(GF256Test, MulAddRowMatchesScalarLoop) {
  Rng rng(7);
  Bytes src(100), dst(100), expected(100);
  rng.fill(src.data(), src.size());
  rng.fill(dst.data(), dst.size());
  expected = dst;
  const std::uint8_t c = 0x9a;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expected[i] ^= GF256::mul(c, src[i]);
  }
  GF256::mul_add_row(c, src, dst);
  EXPECT_EQ(dst, expected);
}

TEST(GF256Test, MulAddRowLinearity) {
  // mul_add_row(a, src, d) then mul_add_row(b, src, d) must equal
  // mul_add_row(a ^ b, src, d): the kernel is linear in the coefficient
  // over GF(2). Also linear in src: k(c, x ^ y) == k(c, x) ^ k(c, y).
  Rng rng(45);
  Bytes src1(257), src2(257);
  rng.fill(src1.data(), src1.size());
  rng.fill(src2.data(), src2.size());
  for (int trial = 0; trial < 64; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    Bytes d1(src1.size(), 0), d2(src1.size(), 0);
    GF256::mul_add_row(a, src1, d1);
    GF256::mul_add_row(b, src1, d1);
    GF256::mul_add_row(static_cast<std::uint8_t>(a ^ b), src1, d2);
    ASSERT_EQ(d1, d2) << "coefficient linearity, a=" << (int)a
                      << " b=" << (int)b;

    Bytes sum(src1.size());
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = src1[i] ^ src2[i];
    Bytes e1(src1.size(), 0), e2(src1.size(), 0);
    GF256::mul_add_row(a, sum, e1);
    GF256::mul_add_row(a, src1, e2);
    GF256::mul_add_row(a, src2, e2);
    ASSERT_EQ(e1, e2) << "operand linearity, a=" << (int)a;
  }
}

TEST(GF256Test, RowKernelDispatchReportsKnownName) {
  const std::string name = GF256::kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "ssse3" || name == "scalar") << name;
  // Whatever was picked must be an available detail kernel too.
  for (auto k : gf256_detail::kAllKernels) {
    if (name == gf256_detail::kernel_label(k)) {
      EXPECT_TRUE(gf256_detail::kernel_available(k));
    }
  }
}

// Golden vectors: every row-kernel variant the host can run must be
// byte-identical to an independent carry-less multiplication oracle, across
// the boundary sizes (sub-block, exact block, block+1, bulk) and all 256
// coefficients.
class GF256KernelGoldenTest
    : public ::testing::TestWithParam<gf256_detail::Kernel> {};

TEST_P(GF256KernelGoldenTest, MatchesCarrylessOracleAllCoefficients) {
  const auto kernel = GetParam();
  if (!gf256_detail::kernel_available(kernel)) {
    GTEST_SKIP() << "kernel " << gf256_detail::kernel_label(kernel)
                 << " unavailable on this host";
  }
  auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
    std::uint8_t result = 0;
    std::uint16_t aa = a;
    while (b) {
      if (b & 1) result ^= static_cast<std::uint8_t>(aa);
      aa <<= 1;
      if (aa & 0x100) aa ^= 0x11d;
      b >>= 1;
    }
    return result;
  };
  for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 64u, 4096u}) {
    Rng rng(1000 + size);
    Bytes src(size), acc(size);
    rng.fill(src.data(), src.size());
    rng.fill(acc.data(), acc.size());
    for (int c = 0; c < 256; ++c) {
      const auto coeff = static_cast<std::uint8_t>(c);
      // mul_add_row.
      Bytes dst = acc, expected = acc;
      for (std::size_t i = 0; i < size; ++i) {
        expected[i] ^= slow_mul(coeff, src[i]);
      }
      gf256_detail::mul_add_row(kernel, coeff, src, dst);
      ASSERT_EQ(dst, expected)
          << gf256_detail::kernel_label(kernel) << " mul_add_row c=" << c
          << " size=" << size;
      // mul_row.
      Bytes out(size, 0xee), expected_out(size);
      for (std::size_t i = 0; i < size; ++i) {
        expected_out[i] = slow_mul(coeff, src[i]);
      }
      gf256_detail::mul_row(kernel, coeff, src, out);
      ASSERT_EQ(out, expected_out)
          << gf256_detail::kernel_label(kernel) << " mul_row c=" << c
          << " size=" << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, GF256KernelGoldenTest,
                         ::testing::ValuesIn(gf256_detail::kAllKernels),
                         [](const auto& name_info) {
                           return std::string(
                               gf256_detail::kernel_label(name_info.param));
                         });

TEST(GF256Test, PublicRowOpsMatchReferenceKernelIncludingFastPaths) {
  // The dispatched public entry points (with their c == 0 / c == 1 fast
  // paths) against the reference kernel, including in-place mul_row as
  // used by Gaussian elimination.
  Rng rng(46);
  for (std::size_t size : {0u, 1u, 31u, 1024u}) {
    Bytes src(size);
    rng.fill(src.data(), src.size());
    for (int c : {0, 1, 2, 0x53, 0xff}) {
      const auto coeff = static_cast<std::uint8_t>(c);
      Bytes d1(size, 0x5a), d2(size, 0x5a);
      GF256::mul_add_row(coeff, src, d1);
      gf256_detail::mul_add_row(gf256_detail::Kernel::kRef, coeff, src, d2);
      ASSERT_EQ(d1, d2) << "mul_add_row c=" << c << " size=" << size;
      Bytes o1(size, 0x77), o2(size, 0x77);
      GF256::mul_row(coeff, src, o1);
      gf256_detail::mul_row(gf256_detail::Kernel::kRef, coeff, src, o2);
      ASSERT_EQ(o1, o2) << "mul_row c=" << c << " size=" << size;
      // In-place: dst aliases src exactly.
      Bytes inplace = src, expected = src;
      GF256::mul_row(coeff, inplace, inplace);
      gf256_detail::mul_row(gf256_detail::Kernel::kRef, coeff, expected,
                            expected);
      ASSERT_EQ(inplace, expected) << "in-place mul_row c=" << c;
    }
  }
}

TEST(GF256Test, RowOpSizeMismatchThrows) {
  Bytes src(8), dst(9);
  EXPECT_THROW(GF256::mul_add_row(3, src, dst), std::invalid_argument);
  EXPECT_THROW(GF256::mul_row(3, src, dst), std::invalid_argument);
}

// --- Matrix ------------------------------------------------------------------

TEST(MatrixTest, IdentityMultiplication) {
  const Matrix id = Matrix::identity(5);
  Matrix m(5, 5);
  Rng rng(8);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      m.at(r, c) = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);
}

TEST(MatrixTest, InvertRoundTrip) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m(6, 6);
    // Random matrices over GF(256) are invertible with high probability;
    // retry until one is.
    while (true) {
      for (std::size_t r = 0; r < 6; ++r) {
        for (std::size_t c = 0; c < 6; ++c) {
          m.at(r, c) = static_cast<std::uint8_t>(rng.next_below(256));
        }
      }
      try {
        const Matrix inv = m.inverted();
        EXPECT_EQ(m.multiply(inv), Matrix::identity(6));
        EXPECT_EQ(inv.multiply(m), Matrix::identity(6));
        break;
      } catch (const std::domain_error&) {
        continue;
      }
    }
  }
}

TEST(MatrixTest, SingularMatrixThrows) {
  Matrix m(3, 3);  // all zeros
  EXPECT_THROW(m.inverted(), std::domain_error);
  // Duplicate rows.
  Matrix d(2, 2);
  d.at(0, 0) = 3;
  d.at(0, 1) = 7;
  d.at(1, 0) = 3;
  d.at(1, 1) = 7;
  EXPECT_THROW(d.inverted(), std::domain_error);
}

TEST(MatrixTest, VandermondeSubmatricesInvertible) {
  // The defining RS property: any m rows of an n x m Vandermonde matrix
  // form an invertible matrix.
  const std::size_t m = 4, n = 12;
  const Matrix vander = Matrix::vandermonde(n, m);
  Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const auto pick = rng.sample_without_replacement(n, m);
    EXPECT_NO_THROW(vander.select_rows(pick).inverted());
  }
}

// --- Reed-Solomon codec ----------------------------------------------------------

TEST(ReedSolomonTest, SystematicPrefixEqualsMessage) {
  const ReedSolomonCodec codec(4, 8);
  Rng rng(11);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  ASSERT_EQ(segments.size(), 8u);
  const std::size_t seg_size = segments[0].data.size();
  EXPECT_EQ(seg_size, 256u);
  for (std::size_t i = 0; i < 4; ++i) {
    const Bytes expected(msg.begin() + static_cast<long>(i * seg_size),
                         msg.begin() + static_cast<long>((i + 1) * seg_size));
    EXPECT_EQ(segments[i].data, expected) << "systematic segment " << i;
  }
}

TEST(ReedSolomonTest, DecodeFromParityOnly) {
  const ReedSolomonCodec codec(3, 9);
  Rng rng(12);
  Bytes msg(500);
  rng.fill(msg.data(), msg.size());
  auto segments = codec.encode(msg);
  // Keep only parity segments 6, 7, 8.
  std::vector<Segment> parity(segments.begin() + 6, segments.end());
  const auto decoded = codec.decode(parity, msg.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomonTest, TooFewSegmentsFails) {
  const ReedSolomonCodec codec(4, 8);
  const Bytes msg(64, 0xab);
  auto segments = codec.encode(msg);
  std::vector<Segment> three(segments.begin(), segments.begin() + 3);
  EXPECT_FALSE(codec.decode(three, msg.size()).has_value());
}

TEST(ReedSolomonTest, DuplicateSegmentsDontCount) {
  const ReedSolomonCodec codec(3, 6);
  const Bytes msg(64, 0xcd);
  auto segments = codec.encode(msg);
  std::vector<Segment> dups = {segments[0], segments[0], segments[0]};
  EXPECT_FALSE(codec.decode(dups, msg.size()).has_value());
  dups.push_back(segments[4]);
  dups.push_back(segments[5]);
  EXPECT_TRUE(codec.decode(dups, msg.size()).has_value());
}

TEST(ReedSolomonTest, OutOfRangeIndexIgnored) {
  const ReedSolomonCodec codec(2, 4);
  const Bytes msg(32, 0x11);
  auto segments = codec.encode(msg);
  segments[1].index = 200;  // corrupt index beyond n
  std::vector<Segment> pick = {segments[0], segments[1], segments[2]};
  const auto decoded = codec.decode(pick, msg.size());
  ASSERT_TRUE(decoded.has_value());  // 0 and 2 suffice
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomonTest, MismatchedSegmentSizesRejected) {
  const ReedSolomonCodec codec(2, 4);
  const Bytes msg(32, 0x22);
  auto segments = codec.encode(msg);
  segments[1].data.push_back(0);
  std::vector<Segment> pick = {segments[0], segments[1]};
  EXPECT_FALSE(codec.decode(pick, msg.size()).has_value());
}

TEST(ReedSolomonTest, EmptyMessageRoundTrips) {
  const ReedSolomonCodec codec(3, 6);
  const auto segments = codec.encode({});
  const auto decoded = codec.decode(segments, 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(ReedSolomonTest, MessageNotMultipleOfM) {
  const ReedSolomonCodec codec(4, 8);
  Rng rng(13);
  for (std::size_t len : {1u, 3u, 5u, 101u, 1023u}) {
    Bytes msg(len);
    rng.fill(msg.data(), msg.size());
    auto segments = codec.encode(msg);
    // Drop half the segments, decode from an arbitrary surviving mix.
    std::vector<Segment> pick = {segments[1], segments[4], segments[6],
                                 segments[7]};
    const auto decoded = codec.decode(pick, msg.size());
    ASSERT_TRUE(decoded.has_value()) << "len=" << len;
    EXPECT_EQ(*decoded, msg) << "len=" << len;
  }
}

// Property sweep: every (m, n) pair round-trips from every possible set of
// m surviving segments (exhaustive for small n via random subsets).
class RsParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RsParamTest, DecodesFromAnyMSegments) {
  const auto [m, n] = GetParam();
  const ReedSolomonCodec codec(m, n);
  Rng rng(100 + m * 31 + n);
  Bytes msg(337);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  for (int trial = 0; trial < 30; ++trial) {
    const auto pick_idx = rng.sample_without_replacement(n, m);
    std::vector<Segment> pick;
    for (auto i : pick_idx) pick.push_back(segments[i]);
    const auto decoded = codec.decode(pick, msg.size());
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, msg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RsParamTest,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 4),
                      std::make_tuple(2, 6), std::make_tuple(3, 6),
                      std::make_tuple(4, 8), std::make_tuple(4, 16),
                      std::make_tuple(5, 10), std::make_tuple(8, 24),
                      std::make_tuple(16, 32), std::make_tuple(32, 64),
                      std::make_tuple(64, 128), std::make_tuple(100, 255)));

TEST(ReedSolomonTest, InvalidParametersThrow) {
  EXPECT_THROW(ReedSolomonCodec(0, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomonCodec(5, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomonCodec(4, 256), std::invalid_argument);
}

TEST(ReedSolomonTest, SystematicFastPathFiresEvenWhenSystematicArriveLate) {
  // A full systematic set buried behind parity segments must still be
  // assembled by copy, with no matrix inversion: the old decoder greedily
  // took the first m segments in arrival order.
  const ReedSolomonCodec codec(3, 9);
  Rng rng(47);
  Bytes msg(600);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  // Parity first, then the systematic set scattered at the end.
  std::vector<Segment> pick = {segments[5], segments[7], segments[2],
                               segments[8], segments[0], segments[1]};
  const auto before = codec.decode_stats();
  const auto decoded = codec.decode(pick, msg.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
  const auto after = codec.decode_stats();
  EXPECT_EQ(after.systematic_fast_path, before.systematic_fast_path + 1);
  EXPECT_EQ(after.matrix_inversions, before.matrix_inversions);
  EXPECT_EQ(after.matrix_cache_hits, before.matrix_cache_hits);
}

TEST(ReedSolomonTest, DecodeMatrixCacheHitsOnRepeatedLossPattern) {
  const ReedSolomonCodec codec(4, 8);
  Rng rng(48);
  Bytes msg(512);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  // Same non-systematic survivor set, presented in two different orders:
  // the cache key is the canonical (ascending) row set, so the second
  // decode must hit.
  std::vector<Segment> first = {segments[1], segments[4], segments[6],
                                segments[7]};
  std::vector<Segment> reordered = {segments[7], segments[6], segments[1],
                                    segments[4]};
  const auto s0 = codec.decode_stats();
  ASSERT_TRUE(codec.decode(first, msg.size()).has_value());
  const auto s1 = codec.decode_stats();
  EXPECT_EQ(s1.matrix_inversions, s0.matrix_inversions + 1);
  EXPECT_EQ(s1.matrix_cache_hits, s0.matrix_cache_hits);
  const auto decoded = codec.decode(reordered, msg.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
  const auto s2 = codec.decode_stats();
  EXPECT_EQ(s2.matrix_inversions, s1.matrix_inversions);
  EXPECT_EQ(s2.matrix_cache_hits, s1.matrix_cache_hits + 1);
}

TEST(ReedSolomonTest, DecodeMatrixCacheEvictsLeastRecentlyUsed) {
  // n = 255, m = 2: plenty of distinct loss patterns. Walk through more
  // than kDecodeCacheCapacity distinct row sets, then revisit the first —
  // it must have been evicted and cost a fresh inversion.
  const ReedSolomonCodec codec(2, 255);
  Rng rng(49);
  Bytes msg(64);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  auto decode_pair = [&](std::size_t a, std::size_t b) {
    std::vector<Segment> pick = {segments[a], segments[b]};
    const auto decoded = codec.decode(pick, msg.size());
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, msg);
  };
  const auto s0 = codec.decode_stats();
  decode_pair(2, 3);  // pattern P, inverted and cached
  decode_pair(2, 3);  // hit
  const auto s1 = codec.decode_stats();
  EXPECT_EQ(s1.matrix_inversions, s0.matrix_inversions + 1);
  EXPECT_EQ(s1.matrix_cache_hits, s0.matrix_cache_hits + 1);
  // Flood the cache with kDecodeCacheCapacity distinct other patterns.
  for (std::size_t i = 0; i < ReedSolomonCodec::kDecodeCacheCapacity; ++i) {
    decode_pair(4 + i, 5 + i);
  }
  decode_pair(2, 3);  // P was least-recently used: evicted, re-inverted
  const auto s2 = codec.decode_stats();
  EXPECT_EQ(s2.matrix_inversions,
            s1.matrix_inversions + ReedSolomonCodec::kDecodeCacheCapacity + 1);
  EXPECT_EQ(s2.matrix_cache_hits, s1.matrix_cache_hits);
}

TEST(ReedSolomonTest, EncodeIntoMatchesEncodeAndReusesBuffers) {
  const ReedSolomonCodec codec(4, 12);
  Rng rng(50);
  std::vector<Segment> scratch;
  for (std::size_t len : {0u, 5u, 96u, 1024u, 4096u}) {
    Bytes msg(len);
    rng.fill(msg.data(), msg.size());
    codec.encode_into(msg, scratch);
    const auto fresh = codec.encode(msg);
    ASSERT_EQ(scratch.size(), fresh.size()) << "len=" << len;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(scratch[i].index, fresh[i].index) << "len=" << len;
      EXPECT_EQ(scratch[i].data, fresh[i].data)
          << "len=" << len << " segment " << i;
    }
  }
  // Steady state (same message size twice): the segment buffers must be
  // reused, not reallocated.
  Bytes msg(2048);
  rng.fill(msg.data(), msg.size());
  codec.encode_into(msg, scratch);
  const auto* before = scratch[5].data.data();
  rng.fill(msg.data(), msg.size());
  codec.encode_into(msg, scratch);
  EXPECT_EQ(scratch[5].data.data(), before);
}

TEST(ReedSolomonTest, SizeMismatchBeyondFirstMSegmentsRejected) {
  // Strict validation: a corrupt segment anywhere in the span fails the
  // decode, even if m consistent segments precede it.
  const ReedSolomonCodec codec(2, 6);
  const Bytes msg(32, 0x5c);
  auto segments = codec.encode(msg);
  segments[4].data.pop_back();
  std::vector<Segment> pick = {segments[0], segments[1], segments[4]};
  EXPECT_FALSE(codec.decode(pick, msg.size()).has_value());
  // Dropping the corrupt straggler restores the decode.
  pick.pop_back();
  const auto decoded = codec.decode(pick, msg.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

// --- Replication codec -----------------------------------------------------------

TEST(ReplicationTest, EverySegmentIsFullCopy) {
  const ReplicationCodec codec(4);
  const Bytes msg = bytes_of("replicate me");
  const auto segments = codec.encode(msg);
  ASSERT_EQ(segments.size(), 4u);
  for (const auto& seg : segments) EXPECT_EQ(seg.data, msg);
}

TEST(ReplicationTest, AnySingleSegmentDecodes) {
  const ReplicationCodec codec(3);
  const Bytes msg = bytes_of("payload");
  const auto segments = codec.encode(msg);
  for (const auto& seg : segments) {
    std::vector<Segment> one = {seg};
    const auto decoded = codec.decode(one, msg.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, msg);
  }
}

TEST(ReplicationTest, NoSegmentsFails) {
  const ReplicationCodec codec(3);
  EXPECT_FALSE(codec.decode({}, 5).has_value());
}

TEST(ReplicationTest, ReplicationFactorIsN) {
  const ReplicationCodec codec(5);
  EXPECT_DOUBLE_EQ(codec.replication_factor(), 5.0);
}

TEST(ReplicationTest, EncodeIntoMatchesEncode) {
  const ReplicationCodec codec(4);
  const Bytes msg = bytes_of("scratch reuse");
  std::vector<Segment> scratch;
  codec.encode_into(msg, scratch);
  const auto fresh = codec.encode(msg);
  ASSERT_EQ(scratch.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(scratch[i].index, fresh[i].index);
    EXPECT_EQ(scratch[i].data, fresh[i].data);
  }
}

// --- Factory -----------------------------------------------------------------------

TEST(MakeCodecTest, SelectsImplementationByM) {
  const auto rep = make_codec(1, 4);
  EXPECT_NE(dynamic_cast<ReplicationCodec*>(rep.get()), nullptr);
  const auto rs = make_codec(2, 4);
  EXPECT_NE(dynamic_cast<ReedSolomonCodec*>(rs.get()), nullptr);
  EXPECT_THROW(make_codec(0, 4), std::invalid_argument);
  EXPECT_THROW(make_codec(3, 2), std::invalid_argument);
}

TEST(MakeCodecTest, PaperParameterization) {
  // SimEra(k = 4, r = 4): n = k = 4 paths... the paper splits n coded
  // segments evenly over k paths with r = n/m. With k = 4, r = 4 and one
  // segment per path, m = 1 -> replication-equivalent; with n = 8, m = 2.
  const auto codec = make_codec(2, 8);
  EXPECT_DOUBLE_EQ(codec->replication_factor(), 4.0);
  EXPECT_EQ(codec->segment_size(1024), 512u);
}

// --- Verified decode (byzantine-resilient fallback) --------------------------------

Bytes patterned_message(std::size_t size) {
  Bytes msg(size);
  Rng rng(97);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_below(256));
  return msg;
}

TEST(VerifiedDecodeTest, CleanSegmentsDecodeOnFirstTry) {
  const ReedSolomonCodec codec(3, 6);
  const Bytes msg = patterned_message(300);
  const auto segments = codec.encode(msg);
  const auto result = verified_decode(
      codec, segments, msg.size(),
      [&](ByteView candidate) {
        return Bytes(candidate.begin(), candidate.end()) == msg;
      },
      32);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->message, msg);
  EXPECT_TRUE(result->corrupted_indices.empty());
  EXPECT_EQ(result->subsets_tried, 1u);
}

TEST(VerifiedDecodeTest, LocatesCorruptedSegmentsAndStillRecovers) {
  const ReedSolomonCodec codec(3, 6);
  const Bytes msg = patterned_message(300);
  auto segments = codec.encode(msg);
  // Tamper with two of the six: an intact 3-subset still exists.
  segments[1].data[5] ^= 0x40;
  segments[4].data[0] ^= 0x01;
  const auto result = verified_decode(
      codec, segments, msg.size(),
      [&](ByteView candidate) {
        return Bytes(candidate.begin(), candidate.end()) == msg;
      },
      32);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->message, msg);
  // Error location: exactly the tampered indices, by re-encoding.
  EXPECT_EQ(result->corrupted_indices,
            (std::vector<std::uint32_t>{segments[1].index,
                                        segments[4].index}));
  EXPECT_GT(result->subsets_tried, 1u);
}

TEST(VerifiedDecodeTest, NeverReturnsUnvalidatedPlaintext) {
  const ReedSolomonCodec codec(2, 4);
  const Bytes msg = patterned_message(128);
  auto segments = codec.encode(msg);
  // Corrupt so many segments that no intact m-subset remains.
  for (auto& segment : segments) segment.data[0] ^= 0xff;
  const auto result = verified_decode(
      codec, segments, msg.size(),
      [&](ByteView candidate) {
        return Bytes(candidate.begin(), candidate.end()) == msg;
      },
      64);
  EXPECT_FALSE(result.has_value());
}

TEST(VerifiedDecodeTest, SubsetBudgetBoundsTheSearch) {
  const ReedSolomonCodec codec(3, 6);
  const Bytes msg = patterned_message(300);
  auto segments = codec.encode(msg);
  segments[0].data[0] ^= 0x80;  // plain decode fails, search needed
  // Budget of 1 covers only the plain decode: the search gives up even
  // though an intact subset exists.
  const auto result = verified_decode(
      codec, segments, msg.size(),
      [&](ByteView candidate) {
        return Bytes(candidate.begin(), candidate.end()) == msg;
      },
      1);
  EXPECT_FALSE(result.has_value());
}

TEST(VerifiedDecodeTest, TooFewSegmentsFailsClosed) {
  const ReedSolomonCodec codec(3, 6);
  const Bytes msg = patterned_message(90);
  const auto segments = codec.encode(msg);
  const std::vector<Segment> two(segments.begin(), segments.begin() + 2);
  const auto result = verified_decode(
      codec, two, msg.size(), [](ByteView) { return true; }, 32);
  EXPECT_FALSE(result.has_value());
}

}  // namespace
}  // namespace p2panon::erasure
