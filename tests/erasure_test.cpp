// Unit and property tests for GF(256), matrices and the erasure codecs.
#include <gtest/gtest.h>

#include <tuple>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "erasure/codec.hpp"
#include "erasure/gf256.hpp"
#include "erasure/matrix.hpp"
#include "erasure/reed_solomon.hpp"
#include "erasure/replication.hpp"

namespace p2panon::erasure {
namespace {

// --- GF(256) -----------------------------------------------------------------

TEST(GF256Test, AddIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(GF256::sub(0x53, 0xca), 0x53 ^ 0xca);
}

TEST(GF256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256Test, MulMatchesCarrylessReference) {
  // Reference: Russian-peasant multiplication with reduction by 0x11d.
  auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
    std::uint8_t result = 0;
    std::uint16_t aa = a;
    while (b) {
      if (b & 1) result ^= static_cast<std::uint8_t>(aa);
      aa <<= 1;
      if (aa & 0x100) aa ^= 0x11d;
      b >>= 1;
    }
    return result;
  };
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    ASSERT_EQ(GF256::mul(a, b), slow_mul(a, b)) << (int)a << "*" << (int)b;
  }
}

TEST(GF256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(GF256Test, DivInvertsMul) {
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
  }
}

TEST(GF256Test, ZeroDivisionThrows) {
  EXPECT_THROW(GF256::div(5, 0), std::domain_error);
  EXPECT_THROW(GF256::inv(0), std::domain_error);
}

TEST(GF256Test, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 7) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(GF256::pow(static_cast<std::uint8_t>(a), e), acc);
      acc = GF256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(GF256Test, MulAddRowMatchesScalarLoop) {
  Rng rng(7);
  Bytes src(100), dst(100), expected(100);
  rng.fill(src.data(), src.size());
  rng.fill(dst.data(), dst.size());
  expected = dst;
  const std::uint8_t c = 0x9a;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expected[i] ^= GF256::mul(c, src[i]);
  }
  GF256::mul_add_row(c, src, dst);
  EXPECT_EQ(dst, expected);
}

// --- Matrix ------------------------------------------------------------------

TEST(MatrixTest, IdentityMultiplication) {
  const Matrix id = Matrix::identity(5);
  Matrix m(5, 5);
  Rng rng(8);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      m.at(r, c) = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);
}

TEST(MatrixTest, InvertRoundTrip) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m(6, 6);
    // Random matrices over GF(256) are invertible with high probability;
    // retry until one is.
    while (true) {
      for (std::size_t r = 0; r < 6; ++r) {
        for (std::size_t c = 0; c < 6; ++c) {
          m.at(r, c) = static_cast<std::uint8_t>(rng.next_below(256));
        }
      }
      try {
        const Matrix inv = m.inverted();
        EXPECT_EQ(m.multiply(inv), Matrix::identity(6));
        EXPECT_EQ(inv.multiply(m), Matrix::identity(6));
        break;
      } catch (const std::domain_error&) {
        continue;
      }
    }
  }
}

TEST(MatrixTest, SingularMatrixThrows) {
  Matrix m(3, 3);  // all zeros
  EXPECT_THROW(m.inverted(), std::domain_error);
  // Duplicate rows.
  Matrix d(2, 2);
  d.at(0, 0) = 3;
  d.at(0, 1) = 7;
  d.at(1, 0) = 3;
  d.at(1, 1) = 7;
  EXPECT_THROW(d.inverted(), std::domain_error);
}

TEST(MatrixTest, VandermondeSubmatricesInvertible) {
  // The defining RS property: any m rows of an n x m Vandermonde matrix
  // form an invertible matrix.
  const std::size_t m = 4, n = 12;
  const Matrix vander = Matrix::vandermonde(n, m);
  Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const auto pick = rng.sample_without_replacement(n, m);
    EXPECT_NO_THROW(vander.select_rows(pick).inverted());
  }
}

// --- Reed-Solomon codec ----------------------------------------------------------

TEST(ReedSolomonTest, SystematicPrefixEqualsMessage) {
  const ReedSolomonCodec codec(4, 8);
  Rng rng(11);
  Bytes msg(1024);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  ASSERT_EQ(segments.size(), 8u);
  const std::size_t seg_size = segments[0].data.size();
  EXPECT_EQ(seg_size, 256u);
  for (std::size_t i = 0; i < 4; ++i) {
    const Bytes expected(msg.begin() + static_cast<long>(i * seg_size),
                         msg.begin() + static_cast<long>((i + 1) * seg_size));
    EXPECT_EQ(segments[i].data, expected) << "systematic segment " << i;
  }
}

TEST(ReedSolomonTest, DecodeFromParityOnly) {
  const ReedSolomonCodec codec(3, 9);
  Rng rng(12);
  Bytes msg(500);
  rng.fill(msg.data(), msg.size());
  auto segments = codec.encode(msg);
  // Keep only parity segments 6, 7, 8.
  std::vector<Segment> parity(segments.begin() + 6, segments.end());
  const auto decoded = codec.decode(parity, msg.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomonTest, TooFewSegmentsFails) {
  const ReedSolomonCodec codec(4, 8);
  const Bytes msg(64, 0xab);
  auto segments = codec.encode(msg);
  std::vector<Segment> three(segments.begin(), segments.begin() + 3);
  EXPECT_FALSE(codec.decode(three, msg.size()).has_value());
}

TEST(ReedSolomonTest, DuplicateSegmentsDontCount) {
  const ReedSolomonCodec codec(3, 6);
  const Bytes msg(64, 0xcd);
  auto segments = codec.encode(msg);
  std::vector<Segment> dups = {segments[0], segments[0], segments[0]};
  EXPECT_FALSE(codec.decode(dups, msg.size()).has_value());
  dups.push_back(segments[4]);
  dups.push_back(segments[5]);
  EXPECT_TRUE(codec.decode(dups, msg.size()).has_value());
}

TEST(ReedSolomonTest, OutOfRangeIndexIgnored) {
  const ReedSolomonCodec codec(2, 4);
  const Bytes msg(32, 0x11);
  auto segments = codec.encode(msg);
  segments[1].index = 200;  // corrupt index beyond n
  std::vector<Segment> pick = {segments[0], segments[1], segments[2]};
  const auto decoded = codec.decode(pick, msg.size());
  ASSERT_TRUE(decoded.has_value());  // 0 and 2 suffice
  EXPECT_EQ(*decoded, msg);
}

TEST(ReedSolomonTest, MismatchedSegmentSizesRejected) {
  const ReedSolomonCodec codec(2, 4);
  const Bytes msg(32, 0x22);
  auto segments = codec.encode(msg);
  segments[1].data.push_back(0);
  std::vector<Segment> pick = {segments[0], segments[1]};
  EXPECT_FALSE(codec.decode(pick, msg.size()).has_value());
}

TEST(ReedSolomonTest, EmptyMessageRoundTrips) {
  const ReedSolomonCodec codec(3, 6);
  const auto segments = codec.encode({});
  const auto decoded = codec.decode(segments, 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(ReedSolomonTest, MessageNotMultipleOfM) {
  const ReedSolomonCodec codec(4, 8);
  Rng rng(13);
  for (std::size_t len : {1u, 3u, 5u, 101u, 1023u}) {
    Bytes msg(len);
    rng.fill(msg.data(), msg.size());
    auto segments = codec.encode(msg);
    // Drop half the segments, decode from an arbitrary surviving mix.
    std::vector<Segment> pick = {segments[1], segments[4], segments[6],
                                 segments[7]};
    const auto decoded = codec.decode(pick, msg.size());
    ASSERT_TRUE(decoded.has_value()) << "len=" << len;
    EXPECT_EQ(*decoded, msg) << "len=" << len;
  }
}

// Property sweep: every (m, n) pair round-trips from every possible set of
// m surviving segments (exhaustive for small n via random subsets).
class RsParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RsParamTest, DecodesFromAnyMSegments) {
  const auto [m, n] = GetParam();
  const ReedSolomonCodec codec(m, n);
  Rng rng(100 + m * 31 + n);
  Bytes msg(337);
  rng.fill(msg.data(), msg.size());
  const auto segments = codec.encode(msg);
  for (int trial = 0; trial < 30; ++trial) {
    const auto pick_idx = rng.sample_without_replacement(n, m);
    std::vector<Segment> pick;
    for (auto i : pick_idx) pick.push_back(segments[i]);
    const auto decoded = codec.decode(pick, msg.size());
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, msg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RsParamTest,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 4),
                      std::make_tuple(2, 6), std::make_tuple(3, 6),
                      std::make_tuple(4, 8), std::make_tuple(4, 16),
                      std::make_tuple(5, 10), std::make_tuple(8, 24),
                      std::make_tuple(16, 32), std::make_tuple(32, 64),
                      std::make_tuple(64, 128), std::make_tuple(100, 255)));

TEST(ReedSolomonTest, InvalidParametersThrow) {
  EXPECT_THROW(ReedSolomonCodec(0, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomonCodec(5, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomonCodec(4, 256), std::invalid_argument);
}

// --- Replication codec -----------------------------------------------------------

TEST(ReplicationTest, EverySegmentIsFullCopy) {
  const ReplicationCodec codec(4);
  const Bytes msg = bytes_of("replicate me");
  const auto segments = codec.encode(msg);
  ASSERT_EQ(segments.size(), 4u);
  for (const auto& seg : segments) EXPECT_EQ(seg.data, msg);
}

TEST(ReplicationTest, AnySingleSegmentDecodes) {
  const ReplicationCodec codec(3);
  const Bytes msg = bytes_of("payload");
  const auto segments = codec.encode(msg);
  for (const auto& seg : segments) {
    std::vector<Segment> one = {seg};
    const auto decoded = codec.decode(one, msg.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, msg);
  }
}

TEST(ReplicationTest, NoSegmentsFails) {
  const ReplicationCodec codec(3);
  EXPECT_FALSE(codec.decode({}, 5).has_value());
}

TEST(ReplicationTest, ReplicationFactorIsN) {
  const ReplicationCodec codec(5);
  EXPECT_DOUBLE_EQ(codec.replication_factor(), 5.0);
}

// --- Factory -----------------------------------------------------------------------

TEST(MakeCodecTest, SelectsImplementationByM) {
  const auto rep = make_codec(1, 4);
  EXPECT_NE(dynamic_cast<ReplicationCodec*>(rep.get()), nullptr);
  const auto rs = make_codec(2, 4);
  EXPECT_NE(dynamic_cast<ReedSolomonCodec*>(rs.get()), nullptr);
  EXPECT_THROW(make_codec(0, 4), std::invalid_argument);
  EXPECT_THROW(make_codec(3, 2), std::invalid_argument);
}

TEST(MakeCodecTest, PaperParameterization) {
  // SimEra(k = 4, r = 4): n = k = 4 paths... the paper splits n coded
  // segments evenly over k paths with r = n/m. With k = 4, r = 4 and one
  // segment per path, m = 1 -> replication-equivalent; with n = 8, m = 2.
  const auto codec = make_codec(2, 8);
  EXPECT_DOUBLE_EQ(codec->replication_factor(), 4.0);
  EXPECT_EQ(codec->segment_size(1024), 512u);
}

}  // namespace
}  // namespace p2panon::erasure
