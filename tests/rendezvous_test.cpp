// Mutual anonymity via rendezvous: frame round-trips and full end-to-end
// service/client exchanges through a rendezvous node, with the real
// crypto and injected failures.
#include <gtest/gtest.h>

#include "anon/protocols.hpp"
#include "anon/rendezvous.hpp"
#include "anon/router.hpp"
#include "anon/session.hpp"
#include "membership/node_cache.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"

namespace p2panon::anon {
namespace {

TEST(RendezvousFrameTest, RoundTripsAllKinds) {
  for (const auto kind :
       {RendezvousFrame::Kind::kRegister, RendezvousFrame::Kind::kCall,
        RendezvousFrame::Kind::kForwardedCall, RendezvousFrame::Kind::kReply,
        RendezvousFrame::Kind::kForwardedReply}) {
    RendezvousFrame frame;
    frame.kind = kind;
    frame.service = 0x1122334455667788ULL;
    frame.conversation = 0x99aabbccddeeff00ULL;
    frame.data = bytes_of("payload");
    const auto parsed = parse_frame(serialize_frame(frame));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, frame.kind);
    EXPECT_EQ(parsed->service, frame.service);
    EXPECT_EQ(parsed->conversation, frame.conversation);
    EXPECT_EQ(parsed->data, frame.data);
  }
}

TEST(RendezvousFrameTest, RejectsMalformed) {
  EXPECT_FALSE(parse_frame(Bytes{}).has_value());
  EXPECT_FALSE(parse_frame(Bytes(10, 0)).has_value());
  Bytes bad(17, 0);
  bad[0] = 99;  // unknown kind
  EXPECT_FALSE(parse_frame(bad).has_value());
}

struct RendezvousFixture {
  static constexpr std::size_t kNodes = 32;
  static constexpr NodeId kService = 0;   // anonymous responder S
  static constexpr NodeId kClient = 1;    // anonymous initiator C
  static constexpr NodeId kHost = 2;      // rendezvous node R

  sim::Simulator simulator;
  net::LatencyMatrix latency = net::LatencyMatrix::synthetic(kNodes, Rng(50));
  std::vector<bool> up = std::vector<bool>(kNodes, true);
  net::SimTransport transport{simulator, latency,
                              [this](NodeId n) { return up[n]; }};
  net::Demux demux{transport, kNodes};
  crypto::KeyDirectory directory;
  RealOnionCodec onion;
  std::unique_ptr<AnonRouter> router;
  membership::NodeCache cache{kNodes};
  Rng rng{51};

  RendezvousFixture() {
    Rng key_rng(52);
    auto keys = directory.provision(kNodes, key_rng);
    router = std::make_unique<AnonRouter>(
        simulator, demux, onion, directory, std::move(keys),
        [this](NodeId n) { return up[n]; }, RouterConfig{}, rng.fork());
    router->start();
    for (NodeId node = 0; node < kNodes; ++node) {
      cache.heard_directly(node, 100 * kSecond, 0);
    }
  }

  SessionConfig session_config() {
    SessionConfig config =
        ProtocolSpec::simera(2, 2, MixChoice::kRandom).session_config({});
    config.construct_timeout = 3 * kSecond;
    config.ack_timeout = 3 * kSecond;
    return config;
  }
};

TEST(RendezvousTest, MutualAnonymityEndToEnd) {
  RendezvousFixture fx;
  constexpr ServiceId kDropbox = 0xd20bb0;

  RendezvousHost host(*fx.router, RendezvousFixture::kHost);
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { host.on_message(msg); });

  Session service_session(*fx.router, fx.cache, RendezvousFixture::kService,
                          RendezvousFixture::kHost, fx.session_config(),
                          Rng(53));
  AnonymousService service(*fx.router, service_session, kDropbox);

  Session client_session(*fx.router, fx.cache, RendezvousFixture::kClient,
                         RendezvousFixture::kHost, fx.session_config(),
                         Rng(54));
  AnonymousClient client(client_session, Rng(55));

  std::vector<std::pair<ConversationId, std::string>> calls_seen;
  service.set_call_handler([&](ConversationId conversation,
                               const Bytes& data) {
    calls_seen.emplace_back(conversation, string_of(data));
    service.reply(conversation, bytes_of("dead drop confirmed"));
  });

  std::vector<std::string> replies_seen;
  client.set_reply_handler([&](ConversationId, const Bytes& data) {
    replies_seen.push_back(string_of(data));
  });

  bool service_ready = false;
  service.start([&](bool ok) { service_ready = ok; });
  fx.simulator.run_until(5 * kSecond);
  ASSERT_TRUE(service_ready);
  EXPECT_EQ(host.registered_services(), 1u);

  bool client_ready = false;
  client.start([&](bool ok) { client_ready = ok; });
  fx.simulator.run_until(10 * kSecond);
  ASSERT_TRUE(client_ready);

  const ConversationId conversation =
      client.call(kDropbox, bytes_of("leave the package at pier 9"));
  ASSERT_NE(conversation, 0u);
  fx.simulator.run_until(30 * kSecond);

  ASSERT_EQ(calls_seen.size(), 1u);
  EXPECT_EQ(calls_seen[0].first, conversation);
  EXPECT_EQ(calls_seen[0].second, "leave the package at pier 9");
  ASSERT_EQ(replies_seen.size(), 1u);
  EXPECT_EQ(replies_seen[0], "dead drop confirmed");
  EXPECT_EQ(host.open_conversations(), 1u);
}

TEST(RendezvousTest, MultipleCallsOverOneRegistration) {
  RendezvousFixture fx;
  constexpr ServiceId kEcho = 0xec0;

  RendezvousHost host(*fx.router, RendezvousFixture::kHost);
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { host.on_message(msg); });

  Session service_session(*fx.router, fx.cache, RendezvousFixture::kService,
                          RendezvousFixture::kHost, fx.session_config(),
                          Rng(56));
  AnonymousService service(*fx.router, service_session, kEcho);
  Session client_session(*fx.router, fx.cache, RendezvousFixture::kClient,
                         RendezvousFixture::kHost, fx.session_config(),
                         Rng(57));
  AnonymousClient client(client_session, Rng(58));

  std::size_t calls = 0;
  service.set_call_handler([&](ConversationId conversation, const Bytes& d) {
    ++calls;
    service.reply(conversation, d);  // echo
  });
  std::vector<std::string> replies;
  client.set_reply_handler([&](ConversationId, const Bytes& data) {
    replies.push_back(string_of(data));
  });

  service.start([](bool) {});
  client.start([](bool) {});
  fx.simulator.run_until(10 * kSecond);

  // Three calls share the single registration's reverse path — the
  // multi-response mechanism must deliver each forwarded call separately.
  for (int i = 0; i < 3; ++i) {
    fx.simulator.schedule_after(static_cast<SimDuration>(i) * kSecond, [&, i] {
      client.call(kEcho, bytes_of("ping " + std::to_string(i)));
    });
  }
  fx.simulator.run_until(40 * kSecond);
  EXPECT_EQ(calls, 3u);
  ASSERT_EQ(replies.size(), 3u);
  std::sort(replies.begin(), replies.end());
  EXPECT_EQ(replies[0], "ping 0");
  EXPECT_EQ(replies[2], "ping 2");
}

TEST(RendezvousTest, CallToUnknownServiceIsDropped) {
  RendezvousFixture fx;
  RendezvousHost host(*fx.router, RendezvousFixture::kHost);
  fx.router->set_message_handler(
      [&](const ReceivedMessage& msg) { host.on_message(msg); });

  Session client_session(*fx.router, fx.cache, RendezvousFixture::kClient,
                         RendezvousFixture::kHost, fx.session_config(),
                         Rng(59));
  AnonymousClient client(client_session, Rng(60));
  bool got_reply = false;
  client.set_reply_handler([&](ConversationId, const Bytes&) {
    got_reply = true;
  });
  client.start([](bool) {});
  fx.simulator.run_until(5 * kSecond);
  client.call(0xabcdef, bytes_of("anyone home?"));
  fx.simulator.run_until(20 * kSecond);
  EXPECT_FALSE(got_reply);
  EXPECT_EQ(host.open_conversations(), 0u);
}

TEST(RendezvousTest, NonRendezvousTrafficIgnoredByHost) {
  RendezvousFixture fx;
  RendezvousHost host(*fx.router, RendezvousFixture::kHost);
  std::size_t plain_messages = 0;
  fx.router->set_message_handler([&](const ReceivedMessage& msg) {
    if (!host.on_message(msg)) ++plain_messages;
  });

  Session session(*fx.router, fx.cache, 5, RendezvousFixture::kHost,
                  fx.session_config(), Rng(61));
  session.construct([&](bool, std::size_t) {});
  fx.simulator.run_until(5 * kSecond);
  session.send_message(bytes_of("just a normal anonymous message"));
  fx.simulator.run_until(10 * kSecond);
  EXPECT_EQ(plain_messages, 1u);
  EXPECT_EQ(host.registered_services(), 0u);
}

}  // namespace
}  // namespace p2panon::anon
