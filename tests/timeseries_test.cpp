// Windowed time-series sampling over the metrics registry: window
// boundaries, rate vs delta semantics, empty windows, ring eviction,
// histogram per-window percentiles, and the deterministic CSV/JSONL shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace p2panon::obs {
namespace {

TEST(TimeseriesTest, PercentileLabels) {
  EXPECT_EQ(percentile_label(0.5), "p50");
  EXPECT_EQ(percentile_label(0.9), "p90");
  EXPECT_EQ(percentile_label(0.99), "p99");
  EXPECT_EQ(percentile_label(0.999), "p99.9");
  EXPECT_EQ(percentile_label(1.0), "p100");
}

TEST(TimeseriesTest, CounterWindowsSeparateRateFromDelta) {
  Registry reg;
  Counter* sent = reg.counter("segments_total", {{"event", "sent"}});
  TimeseriesRecorder rec(reg);

  sent->inc(10);
  rec.sample(1 * kSecond);  // first window always starts at sim time 0
  sent->inc(5);
  rec.sample(3 * kSecond);  // 2 s window: delta 5, rate 2.5/s

  const auto* series = rec.find("segments_total{event=sent}");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind, TimeseriesRecorder::Kind::kCounter);
  ASSERT_EQ(series->windows.size(), 2u);

  const TimeseriesWindow& first = series->windows[0];
  EXPECT_EQ(first.start_us, 0);
  EXPECT_EQ(first.end_us, 1 * kSecond);
  EXPECT_DOUBLE_EQ(first.value, 10.0);
  EXPECT_DOUBLE_EQ(first.delta, 10.0);
  EXPECT_DOUBLE_EQ(first.rate_per_s, 10.0);

  const TimeseriesWindow& second = series->windows[1];
  EXPECT_EQ(second.start_us, 1 * kSecond);
  EXPECT_EQ(second.end_us, 3 * kSecond);
  EXPECT_DOUBLE_EQ(second.value, 15.0);  // cumulative, unlike delta
  EXPECT_DOUBLE_EQ(second.delta, 5.0);
  EXPECT_DOUBLE_EQ(second.rate_per_s, 2.5);
}

TEST(TimeseriesTest, EmptyWindowsReadZeroDeltaAndRate) {
  Registry reg;
  Counter* drops = reg.counter("net_drops_total", {{"cause", "link_loss"}});
  drops->inc(7);
  TimeseriesRecorder rec(reg);
  rec.sample(1 * kSecond);
  rec.sample(2 * kSecond);  // nothing happened in (1 s, 2 s]
  rec.sample(2 * kSecond);  // zero-length window: rate must not divide by 0

  const auto* series = rec.find("net_drops_total{cause=link_loss}");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->windows.size(), 3u);
  EXPECT_DOUBLE_EQ(series->windows[1].value, 7.0);
  EXPECT_DOUBLE_EQ(series->windows[1].delta, 0.0);
  EXPECT_DOUBLE_EQ(series->windows[1].rate_per_s, 0.0);
  EXPECT_EQ(series->windows[2].start_us, series->windows[2].end_us);
  EXPECT_DOUBLE_EQ(series->windows[2].rate_per_s, 0.0);
}

TEST(TimeseriesTest, GaugeDeltaMayGoNegative) {
  Registry reg;
  Gauge* depth = reg.gauge("queue_depth");
  TimeseriesRecorder rec(reg);
  depth->set(8);
  rec.sample(1 * kSecond);
  depth->set(3);
  rec.sample(2 * kSecond);

  const auto* series = rec.find("queue_depth");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind, TimeseriesRecorder::Kind::kGauge);
  ASSERT_EQ(series->windows.size(), 2u);
  EXPECT_DOUBLE_EQ(series->windows[1].value, 3.0);  // level, not cumulative
  EXPECT_DOUBLE_EQ(series->windows[1].delta, -5.0);
  EXPECT_DOUBLE_EQ(series->windows[1].rate_per_s, -5.0);
}

TEST(TimeseriesTest, RingEvictsOldestWindowsAndCountsThem) {
  Registry reg;
  reg.counter("ticks")->inc();
  TimeseriesConfig config;
  config.window_capacity = 4;
  TimeseriesRecorder rec(reg, config);
  for (int i = 1; i <= 6; ++i) rec.sample(i * kSecond);

  const auto* series = rec.find("ticks");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->windows.size(), 4u);
  EXPECT_EQ(series->evicted, 2u);
  // The two oldest windows are gone; the ring now starts at sample 3.
  EXPECT_EQ(series->windows.front().start_us, 2 * kSecond);
  EXPECT_EQ(series->windows.back().end_us, 6 * kSecond);
  EXPECT_EQ(rec.sample_count(), 6u);
  EXPECT_EQ(rec.last_sample_us(), 6 * kSecond);
}

TEST(TimeseriesTest, SeriesAppearingMidRunStartsFromZero) {
  Registry reg;
  reg.counter("early")->inc(2);
  TimeseriesRecorder rec(reg);
  rec.sample(1 * kSecond);
  EXPECT_EQ(rec.series_count(), 1u);

  reg.counter("late")->inc(9);
  rec.sample(2 * kSecond);
  EXPECT_EQ(rec.series_count(), 2u);

  const auto* late = rec.find("late");
  ASSERT_NE(late, nullptr);
  ASSERT_EQ(late->windows.size(), 1u);
  // Its first window spans the last interval only, with prior value 0.
  EXPECT_EQ(late->windows[0].start_us, 1 * kSecond);
  EXPECT_DOUBLE_EQ(late->windows[0].delta, 9.0);
}

TEST(TimeseriesTest, HistogramPercentilesComeFromWindowDeltasOnly) {
  Registry reg;
  HdrHistogram* h = reg.histogram("rtt_us");
  TimeseriesRecorder rec(reg);

  // Window 1: small values (exact one-value-per-bucket region).
  for (std::uint64_t v = 1; v <= 10; ++v) h->record(v);
  rec.sample(1 * kSecond);
  // Window 2: a different, larger population. A cumulative percentile
  // would be dragged down by window 1; a windowed one must not be.
  for (int i = 0; i < 10; ++i) h->record(40);
  rec.sample(2 * kSecond);

  const auto* series = rec.find("rtt_us");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind, TimeseriesRecorder::Kind::kHistogram);
  ASSERT_EQ(series->windows.size(), 2u);

  const TimeseriesWindow& w1 = series->windows[0];
  EXPECT_DOUBLE_EQ(w1.value, 10.0);
  EXPECT_DOUBLE_EQ(w1.delta, 10.0);
  ASSERT_EQ(w1.percentiles.size(), 3u);  // default {0.5, 0.9, 0.99}
  EXPECT_EQ(w1.percentiles[0], 5u);      // p50 of 1..10
  EXPECT_EQ(w1.percentiles[1], 9u);      // p90

  const TimeseriesWindow& w2 = series->windows[1];
  EXPECT_DOUBLE_EQ(w2.value, 20.0);  // cumulative recordings
  EXPECT_DOUBLE_EQ(w2.delta, 10.0);  // in-window recordings
  // Every window-2 value is 40, so every windowed quantile is 40.
  for (const std::uint64_t p : w2.percentiles) EXPECT_EQ(p, 40u);
}

TEST(TimeseriesTest, EmptyHistogramWindowHasZeroPercentiles) {
  Registry reg;
  HdrHistogram* h = reg.histogram("rtt_us");
  h->record(100);
  TimeseriesRecorder rec(reg);
  rec.sample(1 * kSecond);
  rec.sample(2 * kSecond);  // no recordings in this window

  const auto* series = rec.find("rtt_us");
  ASSERT_NE(series, nullptr);
  const TimeseriesWindow& w = series->windows[1];
  EXPECT_DOUBLE_EQ(w.delta, 0.0);
  for (const std::uint64_t p : w.percentiles) EXPECT_EQ(p, 0u);
}

TEST(TimeseriesTest, CsvAndJsonlAreDeterministicAndWellFormed) {
  Registry reg;
  reg.counter("b_counter")->inc(3);
  reg.gauge("a_gauge")->set(4);
  reg.histogram("c_hist")->record(12);
  TimeseriesRecorder rec(reg);
  rec.sample(1 * kSecond);

  const std::string csv = rec.to_csv();
  EXPECT_EQ(csv, rec.to_csv());  // byte-stable across renders
  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header, "series,kind,start_us,end_us,value,delta,rate_per_s,"
                    "p50,p90,p99");
  std::vector<std::string> rows;
  for (std::string line; std::getline(lines, line);) rows.push_back(line);
  ASSERT_EQ(rows.size(), 3u);
  // Series are sorted by key; non-histogram percentile cells are blank.
  EXPECT_EQ(rows[0],
            "\"a_gauge\",gauge,0,1000000,4.000000,4.000000,4.000000,,,");
  EXPECT_EQ(rows[1],
            "\"b_counter\",counter,0,1000000,3.000000,3.000000,3.000000,,,");
  EXPECT_EQ(rows[2].rfind("\"c_hist\",histogram,", 0), 0u) << rows[2];

  const std::string jsonl = rec.to_jsonl();
  std::istringstream jlines(jsonl);
  std::size_t parsed = 0;
  for (std::string line; std::getline(jlines, line); ++parsed) {
    EXPECT_TRUE(json_valid(line)) << line;
  }
  EXPECT_EQ(parsed, 3u);
  // Only the histogram row carries a percentiles object.
  EXPECT_EQ(jsonl.find("\"percentiles\""), jsonl.rfind("\"percentiles\""));
  EXPECT_NE(jsonl.find("\"p50\":12"), std::string::npos) << jsonl;
}

}  // namespace
}  // namespace p2panon::obs
