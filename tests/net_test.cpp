// Unit tests for the network substrate: latency matrix, transports, demux.
#include <gtest/gtest.h>

#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/loopback_transport.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"

namespace p2panon::net {
namespace {

TEST(LatencyMatrixTest, SyntheticCalibratesMeanRtt) {
  const auto matrix =
      LatencyMatrix::synthetic(256, Rng(1), from_millis(152));
  const double mean_ms = to_millis(matrix.mean_rtt());
  EXPECT_NEAR(mean_ms, 152.0, 2.0);
}

TEST(LatencyMatrixTest, SymmetricAndZeroDiagonal) {
  const auto matrix = LatencyMatrix::synthetic(64, Rng(2));
  for (NodeId a = 0; a < 64; ++a) {
    EXPECT_EQ(matrix.one_way(a, a), 0);
    for (NodeId b = 0; b < 64; ++b) {
      EXPECT_EQ(matrix.one_way(a, b), matrix.one_way(b, a));
    }
  }
}

TEST(LatencyMatrixTest, HeterogeneousDelays) {
  const auto matrix = LatencyMatrix::synthetic(64, Rng(3));
  SimDuration lo = kNeverTime, hi = 0;
  for (NodeId a = 0; a < 64; ++a) {
    for (NodeId b = a + 1; b < 64; ++b) {
      lo = std::min(lo, matrix.one_way(a, b));
      hi = std::max(hi, matrix.one_way(a, b));
    }
  }
  EXPECT_GT(hi, 2 * lo);  // real spread, not a constant matrix
}

TEST(LatencyMatrixTest, SerializeRoundTrips) {
  const auto matrix = LatencyMatrix::synthetic(16, Rng(4));
  const auto parsed = LatencyMatrix::parse(matrix.serialize());
  ASSERT_EQ(parsed.num_nodes(), 16u);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_EQ(parsed.one_way(a, b), matrix.one_way(a, b));
    }
  }
  EXPECT_THROW(LatencyMatrix::parse("garbage"), std::invalid_argument);
  EXPECT_THROW(LatencyMatrix::parse("3\n1 2 3"), std::invalid_argument);
}

TEST(SimTransportTest, DeliversAfterLatency) {
  sim::Simulator simulator;
  const auto matrix = LatencyMatrix::synthetic(4, Rng(5));
  SimTransport transport(simulator, matrix, [](NodeId) { return true; });
  SimTime delivered_at = -1;
  Bytes received;
  transport.register_handler(1, [&](NodeId from, NodeId, const Bytes& data) {
    EXPECT_EQ(from, 0u);
    received = data;
    delivered_at = simulator.now();
  });
  transport.send(0, 1, Bytes{1, 2, 3});
  simulator.run();
  EXPECT_EQ(received, (Bytes{1, 2, 3}));
  EXPECT_EQ(delivered_at, matrix.one_way(0, 1));
  EXPECT_EQ(transport.bytes_sent(), 3u);
  EXPECT_EQ(transport.messages_sent(), 1u);
}

TEST(SimTransportTest, DropsWhenSenderDead) {
  sim::Simulator simulator;
  const auto matrix = LatencyMatrix::synthetic(4, Rng(6));
  bool up0 = false;
  SimTransport transport(simulator, matrix,
                         [&](NodeId node) { return node != 0 || up0; });
  bool delivered = false;
  transport.register_handler(1,
                             [&](NodeId, NodeId, const Bytes&) { delivered = true; });
  transport.send(0, 1, Bytes{9});
  simulator.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(transport.messages_dropped(), 1u);
}

TEST(SimTransportTest, DropsWhenReceiverDiesInFlight) {
  sim::Simulator simulator;
  const auto matrix = LatencyMatrix::synthetic(4, Rng(7));
  bool up1 = true;
  SimTransport transport(simulator, matrix,
                         [&](NodeId node) { return node != 1 || up1; });
  bool delivered = false;
  transport.register_handler(1,
                             [&](NodeId, NodeId, const Bytes&) { delivered = true; });
  transport.send(0, 1, Bytes{9});
  // Receiver dies while the message is in flight.
  simulator.schedule_at(matrix.one_way(0, 1) / 2, [&] { up1 = false; });
  simulator.run();
  EXPECT_FALSE(delivered);
}

TEST(SimTransportTest, CountersResettable) {
  sim::Simulator simulator;
  const auto matrix = LatencyMatrix::synthetic(4, Rng(8));
  SimTransport transport(simulator, matrix, [](NodeId) { return true; });
  transport.register_handler(1, [](NodeId, NodeId, const Bytes&) {});
  transport.send(0, 1, Bytes(100, 0));
  transport.reset_counters();
  EXPECT_EQ(transport.bytes_sent(), 0u);
  EXPECT_EQ(transport.messages_sent(), 0u);
}

TEST(SimTransportTest, LinkLossDropsTheConfiguredFraction) {
  sim::Simulator simulator;
  const auto matrix = LatencyMatrix::synthetic(4, Rng(9));
  LinkFaultConfig faults;
  faults.loss_rate = 0.3;
  SimTransport transport(simulator, matrix, [](NodeId) { return true; }, 0,
                         faults);
  std::size_t delivered = 0;
  transport.register_handler(1,
                             [&](NodeId, NodeId, const Bytes&) { ++delivered; });
  const std::size_t sent = 5000;
  for (std::size_t i = 0; i < sent; ++i) transport.send(0, 1, Bytes{1});
  simulator.run();
  EXPECT_NEAR(static_cast<double>(delivered) / static_cast<double>(sent),
              0.7, 0.03);
  EXPECT_THROW(SimTransport(simulator, matrix, [](NodeId) { return true; },
                            0, LinkFaultConfig{1.5, 0.0, 1}),
               std::invalid_argument);
}

TEST(SimTransportTest, JitterSpreadsDeliveryTimes) {
  sim::Simulator simulator;
  const auto matrix = LatencyMatrix::synthetic(4, Rng(10));
  LinkFaultConfig faults;
  faults.jitter_fraction = 0.5;
  SimTransport transport(simulator, matrix, [](NodeId) { return true; }, 0,
                         faults);
  std::vector<SimTime> arrivals;
  transport.register_handler(1, [&](NodeId, NodeId, const Bytes&) {
    arrivals.push_back(simulator.now());
  });
  const SimTime base = matrix.one_way(0, 1);
  for (int i = 0; i < 200; ++i) transport.send(0, 1, Bytes{1});
  simulator.run();
  ASSERT_EQ(arrivals.size(), 200u);
  SimTime lo = arrivals[0], hi = arrivals[0];
  for (SimTime t : arrivals) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    EXPECT_GE(t, base / 2 - 1);
    EXPECT_LE(t, base + base / 2 + 1);
  }
  EXPECT_GT(hi - lo, base / 2);  // genuine spread, not a constant shift
}

TEST(LoopbackTransportTest, FifoDelivery) {
  LoopbackTransport transport(3);
  std::vector<int> order;
  transport.register_handler(1, [&](NodeId, NodeId, const Bytes& b) {
    order.push_back(b[0]);
  });
  transport.send(0, 1, Bytes{1});
  transport.send(0, 1, Bytes{2});
  EXPECT_EQ(transport.queued(), 2u);
  EXPECT_EQ(transport.deliver_all(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(LoopbackTransportTest, DeadNodesDrop) {
  LoopbackTransport transport(3);
  bool delivered = false;
  transport.register_handler(1,
                             [&](NodeId, NodeId, const Bytes&) { delivered = true; });
  transport.set_up(1, false);
  transport.send(0, 1, Bytes{1});
  transport.deliver_all();
  EXPECT_FALSE(delivered);
  transport.set_up(1, true);
  transport.set_up(0, false);
  transport.send(0, 1, Bytes{1});
  transport.deliver_all();
  EXPECT_FALSE(delivered);
}

TEST(LoopbackTransportTest, CascadedSendsDeliveredInSameDrain) {
  LoopbackTransport transport(3);
  std::vector<NodeId> trace;
  transport.register_handler(1, [&](NodeId, NodeId, const Bytes& b) {
    trace.push_back(1);
    transport.send(1, 2, b);  // forward
  });
  transport.register_handler(2, [&](NodeId, NodeId, const Bytes&) {
    trace.push_back(2);
  });
  transport.send(0, 1, Bytes{7});
  transport.deliver_all();
  EXPECT_EQ(trace, (std::vector<NodeId>{1, 2}));
}

TEST(DemuxTest, RoutesByChannel) {
  LoopbackTransport transport(2);
  Demux demux(transport, 2);
  std::string got;
  demux.set_handler(Channel::kGossip, [&](NodeId, NodeId, ByteView payload) {
    got = "gossip:" + string_of(payload);
  });
  demux.set_handler(Channel::kAnonForward,
                    [&](NodeId, NodeId, ByteView payload) {
                      got = "anon:" + string_of(payload);
                    });
  demux.send(Channel::kGossip, 0, 1, bytes_of("a"));
  transport.deliver_all();
  EXPECT_EQ(got, "gossip:a");
  demux.send(Channel::kAnonForward, 0, 1, bytes_of("b"));
  transport.deliver_all();
  EXPECT_EQ(got, "anon:b");
}

TEST(DemuxTest, UnhandledChannelIgnored) {
  LoopbackTransport transport(2);
  Demux demux(transport, 2);
  demux.send(Channel::kCover, 0, 1, bytes_of("x"));
  EXPECT_NO_THROW(transport.deliver_all());
}

}  // namespace
}  // namespace p2panon::net
