// Unit tests for the common utilities: bytes, RNG, strings, flags.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/time.hpp"

namespace p2panon {
namespace {

// --- bytes -------------------------------------------------------------------

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(BytesTest, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(BytesTest, StringRoundTrip) {
  EXPECT_EQ(string_of(bytes_of("hello")), "hello");
  EXPECT_TRUE(bytes_of("").empty());
}

TEST(BytesTest, ConcatAndAppend) {
  Bytes a = {1, 2};
  const Bytes b = {3};
  append(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
  EXPECT_EQ(concat({Bytes{1}, Bytes{}, Bytes{2, 3}}), (Bytes{1, 2, 3}));
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  EXPECT_TRUE(constant_time_equal(a, Bytes{1, 2, 3}));
  EXPECT_FALSE(constant_time_equal(a, Bytes{1, 2, 4}));
  EXPECT_FALSE(constant_time_equal(a, Bytes{1, 2}));
}

TEST(BytesTest, BigEndianRoundTrip) {
  Bytes out;
  put_u16be(out, 0x1234);
  put_u32be(out, 0xdeadbeef);
  put_u64be(out, 0x0123456789abcdefULL);
  EXPECT_EQ(get_u16be(out, 0), 0x1234);
  EXPECT_EQ(get_u32be(out, 2), 0xdeadbeefu);
  EXPECT_EQ(get_u64be(out, 6), 0x0123456789abcdefULL);
  EXPECT_THROW(get_u32be(out, out.size() - 2), std::out_of_range);
}

TEST(BytesTest, LittleEndianRoundTrip) {
  std::uint8_t buf[8];
  store_u64le(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(load_u64le(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(load_u32le(buf), 0x89abcdefu);
}

// --- rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  // Different seeds diverge (overwhelmingly likely).
  bool diverged = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.next_u64() != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, NextBelowInRangeAndCoversValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (int count : seen) EXPECT_GT(count, 800);  // roughly uniform
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    const double o = rng.next_double_open();
    ASSERT_GT(o, 0.0);
    ASSERT_LE(o, 1.0);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ParetoMedianConverges) {
  Rng rng(10);
  std::vector<double> samples(100001);
  for (auto& s : samples) s = rng.pareto(1.0, 1800.0);
  std::nth_element(samples.begin(), samples.begin() + 50000, samples.end());
  // Median of Pareto(shape 1, scale 1800) is 3600.
  EXPECT_NEAR(samples[50000], 3600.0, 120.0);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(11);
  for (std::size_t count : {1u, 5u, 50u, 100u}) {
    const auto picks = rng.sample_without_replacement(100, count);
    ASSERT_EQ(picks.size(), count);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), count);
    for (auto p : picks) EXPECT_LT(p, 100u);
  }
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.fork();
  // Child continues deterministically but differs from parent stream.
  Rng parent2(13);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child.next_u64(), child2.next_u64());
  }
}

// --- strings -------------------------------------------------------------------

TEST(StringsTest, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, Formatters) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_bytes(1536.0), "1.50 KB");
  EXPECT_EQ(to_lower("AbC"), "abc");
}

// --- logging --------------------------------------------------------------------

TEST(LoggingTest, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_THROW(parse_log_level("loud"), std::invalid_argument);
}

TEST(LoggingTest, LevelGateSuppressesBelowThreshold) {
  const LogLevel saved = global_log_level();
  set_global_log_level(LogLevel::Error);
  int evaluations = 0;
  // The macro must not evaluate the streamed expression when suppressed.
  LOG_DEBUG << "never " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
  set_global_log_level(saved);
}

// --- time ----------------------------------------------------------------------

TEST(TimeTest, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1500000);
  EXPECT_EQ(from_millis(2.5), 2500);
  EXPECT_DOUBLE_EQ(to_seconds(kHour), 3600.0);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
}

// --- flags ----------------------------------------------------------------------

TEST(FlagSetTest, ParsesAllKinds) {
  FlagSet flags;
  auto& n = flags.add_int("n", 5, "count");
  auto& x = flags.add_double("x", 1.5, "factor");
  auto& v = flags.add_bool("verbose", false, "verbosity");
  auto& s = flags.add_string("name", "default", "label");

  const char* argv[] = {"prog", "--n=7", "--x", "2.5", "--verbose",
                        "--name=hello"};
  flags.parse(6, const_cast<char**>(argv));
  EXPECT_EQ(n, 7);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_TRUE(v);
  EXPECT_EQ(s, "hello");
}

TEST(FlagSetTest, RejectsUnknownAndMalformed) {
  FlagSet flags;
  flags.add_int("n", 5, "count");
  const char* unknown[] = {"prog", "--bogus=1"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(unknown)),
               std::invalid_argument);
  const char* badval[] = {"prog", "--n=xyz"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(badval)),
               std::invalid_argument);
  const char* positional[] = {"prog", "stray"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(positional)),
               std::invalid_argument);
}

}  // namespace
}  // namespace p2panon
