// Anonymous file transfer under churn: moves a 64 KB "file" in 1 KB chunks
// from a pinned sender to a pinned receiver across a churning 256-node
// overlay, once with the single-path baseline (CurMix) and once with
// erasure-coded multipath (SimEra k = 4, r = 4) — the side-by-side that
// motivates the paper.
//
// Build & run:  ./build/examples/file_transfer
#include <cstdio>
#include <unordered_set>

#include "anon/protocols.hpp"
#include "anon/session.hpp"
#include "harness/environment.hpp"

using namespace p2panon;
using namespace p2panon::harness;

namespace {

struct TransferResult {
  std::size_t chunks_total = 0;
  std::size_t chunks_sent = 0;
  std::size_t chunks_delivered = 0;
  std::size_t path_failures = 0;
  double seconds = 0.0;
};

TransferResult transfer(const anon::ProtocolSpec& spec, std::uint64_t seed,
                        bool auto_reconstruct) {
  constexpr std::size_t kFileBytes = 64 * 1024;
  constexpr std::size_t kChunk = 1024;
  constexpr NodeId kSender = 0;
  constexpr NodeId kReceiver = 1;

  EnvironmentConfig env_config;
  env_config.num_nodes = 256;
  env_config.seed = seed;
  env_config.session_distribution = "pareto:median=300";  // 5 min median sessions
  Environment env(env_config);
  env.churn().pin_up(kSender);
  env.churn().pin_up(kReceiver);

  anon::SessionConfig session_config = spec.session_config({});
  session_config.auto_reconstruct = auto_reconstruct;

  anon::Session session(env.router(), env.membership().cache(kSender),
                        kSender, kReceiver, session_config, Rng(seed * 31));

  TransferResult result;
  result.chunks_total = kFileBytes / kChunk;
  std::unordered_set<MessageId> outstanding;
  env.router().set_message_handler([&](const anon::ReceivedMessage& msg) {
    if (msg.responder == kReceiver && outstanding.erase(msg.message_id)) {
      ++result.chunks_delivered;
    }
  });
  session.set_path_failure_handler(
      [&](std::size_t) { ++result.path_failures; });

  const SimTime start = 2 * kMinute;  // membership warm-up
  env.simulator().schedule_at(start, [&] {
    session.construct([&](bool ok, std::size_t) {
      if (!ok) return;
      // One chunk every 4 s — a steady anonymous download.
      for (std::size_t chunk = 0; chunk * kChunk < kFileBytes; ++chunk) {
        env.simulator().schedule_after(
            static_cast<SimDuration>(chunk) * 4 * kSecond, [&, chunk] {
              Bytes data(kChunk, static_cast<std::uint8_t>(chunk));
              const MessageId id = session.send_message(data);
              if (id != 0) {
                ++result.chunks_sent;
                outstanding.insert(id);
              }
            });
      }
    });
  });

  env.start();
  env.simulator().run_until(start + 8 * kMinute);
  result.seconds = to_seconds(env.simulator().now() - start);
  return result;
}

void report(const char* label, const TransferResult& result) {
  std::printf("%-34s %3zu/%zu chunks of the file (%.1f%%), %zu path "
              "failures detected\n",
              label, result.chunks_delivered, result.chunks_total,
              100.0 * static_cast<double>(result.chunks_delivered) /
                  static_cast<double>(result.chunks_total),
              result.path_failures);
}

}  // namespace

int main() {
  std::printf("anonymous 64 KB file transfer, 256 nodes, Pareto churn "
              "(median 5 min), L = 3\n\n");

  const auto curmix = transfer(
      anon::ProtocolSpec::curmix(anon::MixChoice::kRandom), 7, false);
  report("CurMix/random (baseline)", curmix);

  const auto simera = transfer(
      anon::ProtocolSpec::simera(4, 4, anon::MixChoice::kBiased), 7, false);
  report("SimEra(4,4)/biased", simera);

  const auto simera_rebuild = transfer(
      anon::ProtocolSpec::simera(4, 4, anon::MixChoice::kBiased), 7, true);
  report("SimEra(4,4)/biased + reconstruct", simera_rebuild);

  std::printf("\nExpected: the single random path dies mid-transfer and "
              "loses the tail of the file; erasure-coded multipath with "
              "biased relays absorbs the first path deaths and delivers "
              "more; adding automatic path reconstruction (§4.5) delivers "
              "the whole file even at this churn rate.\n");
  return 0;
}
