// Quickstart: send one message anonymously through erasure-coded multipath
// onion routing, with the real crypto stack end to end.
//
//   * 64 nodes, no churn (this is the hello-world; see anonymous_chat and
//     file_transfer for churn);
//   * X25519 sealed boxes for path construction, ChaCha20-Poly1305 layers
//     for payloads;
//   * SimEra(k = 4, r = 2): the 1 KB message becomes 4 coded segments of
//     512 B, any 2 reconstruct, spread over 4 node-disjoint 3-relay paths.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "anon/protocols.hpp"
#include "anon/router.hpp"
#include "anon/session.hpp"
#include "membership/node_cache.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "sim/simulator.hpp"

using namespace p2panon;

int main() {
  constexpr std::size_t kNodes = 64;
  constexpr NodeId kInitiator = 0;
  constexpr NodeId kResponder = 1;

  // --- substrate: simulator, network, PKI, onion router -------------------
  sim::Simulator simulator;
  const auto latency = net::LatencyMatrix::synthetic(kNodes, Rng(7));
  net::SimTransport transport(simulator, latency,
                              [](NodeId) { return true; });
  net::Demux demux(transport, kNodes);

  Rng rng(42);
  crypto::KeyDirectory directory;
  auto node_keys = directory.provision(kNodes, rng);  // the PKI

  anon::RealOnionCodec onion;  // real X25519 + ChaCha20-Poly1305
  anon::AnonRouter router(simulator, demux, onion, directory,
                          std::move(node_keys), [](NodeId) { return true; },
                          anon::RouterConfig{}, rng.fork());
  router.start();

  // The initiator's view of the membership (here: everyone, fresh).
  membership::NodeCache cache(kNodes);
  for (NodeId node = 0; node < kNodes; ++node) {
    cache.heard_directly(node, 10 * kMinute, simulator.now());
  }

  // --- responder application ----------------------------------------------
  router.set_message_handler([&](const anon::ReceivedMessage& msg) {
    std::printf("[responder %u] reconstructed message %016llx from %zu "
                "segments at t = %.0f ms:\n  \"%s\"\n",
                msg.responder,
                static_cast<unsigned long long>(msg.message_id),
                msg.segments_received, to_millis(msg.reconstructed_at),
                string_of(msg.data).c_str());
    router.send_response(msg.responder, msg.message_id,
                         bytes_of("anonymous hello received loud and clear"));
  });

  // --- initiator session ----------------------------------------------------
  anon::SessionConfig config =
      anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kBiased)
          .session_config({});
  anon::Session session(router, cache, kInitiator, kResponder, config,
                        rng.fork());

  session.set_response_handler([&](MessageId, Bytes data) {
    std::printf("[initiator] response arrived over the reverse paths: "
                "\"%s\"\n", string_of(data).c_str());
  });

  session.construct([&](bool ok, std::size_t attempts) {
    std::printf("[initiator] path construction %s after %zu attempt(s); "
                "%zu/%zu paths up\n", ok ? "succeeded" : "failed", attempts,
                session.established_paths(), session.config().erasure.k);
    if (!ok) return;
    for (std::size_t j = 0; j < session.paths().size(); ++j) {
      std::printf("  path %zu:", j);
      for (NodeId relay : session.paths()[j].relays) {
        std::printf(" %u", relay);
      }
      std::printf(" -> %u\n", kResponder);
    }
    const MessageId id = session.send_message(
        bytes_of("hello from nobody in particular"));
    std::printf("[initiator] sent message %016llx as %zu coded segments "
                "(any %zu reconstruct)\n",
                static_cast<unsigned long long>(id),
                session.config().erasure.n, session.config().erasure.m);
  });

  simulator.run_until(30 * kSecond);
  std::printf("\ndone: %llu onion messages relayed, %llu payload bytes on "
              "the wire, 0 peel failures expected (got %llu)\n",
              static_cast<unsigned long long>(router.messages_forwarded()),
              static_cast<unsigned long long>(router.payload_bytes()),
              static_cast<unsigned long long>(router.peel_failures()));
  return 0;
}
