// Allocation planner: the paper's §4.7 observations turned into an
// operator tool. Given measured node availability, path length and a
// delivery-probability target, it reports which observation regime you are
// in and the cheapest (k, r) parameterizations that hit the target,
// together with the §5 anonymity cost of running k first relays.
//
//   ./build/examples/allocation_planner --availability 0.86 --target 0.999
#include <cstdio>

#include "analysis/anonymity.hpp"
#include "analysis/bandwidth_model.hpp"
#include "analysis/observations.hpp"
#include "analysis/path_model.hpp"
#include "common/config.hpp"
#include "common/strings.hpp"
#include "metrics/table.hpp"

using namespace p2panon;
using namespace p2panon::analysis;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& availability =
      flags.add_double("availability", 0.86, "node availability in [0, 1]");
  auto& L = flags.add_int("L", 3, "relays per path");
  auto& target = flags.add_double("target", 0.99, "delivery probability target");
  auto& message = flags.add_int("message", 1024, "message size (bytes)");
  auto& nodes = flags.add_int("nodes", 1024, "anonymity set size N");
  auto& attackers =
      flags.add_double("attackers", 0.1, "fraction of colluding nodes f");
  flags.parse(argc, argv);

  const auto path_len = static_cast<std::size_t>(L);
  const double p = path_success_probability(availability, path_len);

  std::printf("node availability pa = %.2f, L = %zu  =>  per-path success "
              "p = pa^L = %.3f\n\n", availability, path_len, p);

  for (const std::size_t r : {2u, 3u, 4u}) {
    const auto regime = classify_regime(p, static_cast<double>(r));
    std::printf("r = %zu: p*r = %.3f -> %s", r, p * static_cast<double>(r),
                to_string(regime));
    if (regime == ObservationRegime::kSplitIfLarge) {
      std::printf(" (P(k) recovers beyond k0 = %zu)",
                  crossover_k(p, r, 64));
    }
    std::printf("\n");
  }

  std::printf("\ncheapest parameterizations reaching P >= %.3f:\n\n", target);
  const auto choices = advise_parameters(availability, path_len, target);
  BandwidthModel bandwidth;
  bandwidth.message_size = static_cast<std::size_t>(message);
  bandwidth.path_length = path_len;

  metrics::Table table({"k", "r", "P(k)", "bandwidth/message",
                        "P(first-relay compromised)"});
  for (const auto& choice : choices) {
    table.add_row(
        {std::to_string(choice.k), std::to_string(choice.r),
         format_double(choice.success, 4),
         format_bytes(bandwidth.full_delivery_cost(
             choice.k, static_cast<double>(choice.r))),
         format_double(
             multipath_first_relay_exposure(attackers, choice.k), 3)});
  }
  if (choices.empty()) {
    std::printf("  (no (k, r) with r <= 8, k <= 32 reaches the target; "
                "raise r or improve availability)\n");
  } else {
    std::printf("%s", table.render().c_str());
  }

  std::printf("\nanonymity bound (Eq. 4): with N = %lld and f = %.2f, the "
              "attacker identifies the initiator of a single path with "
              "probability %.4f\n",
              static_cast<long long>(nodes), attackers,
              initiator_identification_probability(
                  static_cast<std::size_t>(nodes), attackers, path_len));
  return 0;
}
