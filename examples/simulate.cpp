// General simulation driver: the repo's swiss-army CLI. Configure the
// network, churn, protocol and mix choice from flags; get the paper's four
// metrics (setup success, durability, latency, bandwidth) for that single
// configuration.
//
//   ./build/examples/simulate --protocol simera --k 4 --r 2 --mix biased \
//       --nodes 512 --median 1800 --seeds 5
//
// This is the fastest way to explore parameterizations the paper's tables
// don't cover (and what bench/table*_ binaries are specializations of).
#include <cstdio>
#include <string>

#include "anon/protocols.hpp"
#include "common/config.hpp"
#include "common/strings.hpp"
#include "harness/durability_experiment.hpp"
#include "harness/parallel.hpp"
#include "harness/path_setup_experiment.hpp"

using namespace p2panon;
using namespace p2panon::harness;

int main(int argc, char** argv) {
  FlagSet flags;
  auto& protocol = flags.add_string("protocol", "simera",
                                    "curmix | simrep | simera");
  auto& k = flags.add_int("k", 4, "paths (simera)");
  auto& r = flags.add_int("r", 2, "replication factor (simrep/simera)");
  auto& mix = flags.add_string("mix", "biased", "random | biased");
  auto& nodes = flags.add_int("nodes", 512, "network size");
  auto& median = flags.add_double("median", 3600.0,
                                  "median session length (seconds)");
  auto& distribution = flags.add_string(
      "distribution", "", "override: pareto:...|exp:...|uniform:...");
  auto& path_len = flags.add_int("L", 3, "relays per path");
  auto& message = flags.add_int("message", 1024, "message size (bytes)");
  auto& interval = flags.add_double("interval", 10.0,
                                    "seconds between messages");
  auto& seeds = flags.add_int("seeds", 5, "durability runs to average");
  auto& seed = flags.add_int("seed", 1, "base RNG seed");
  auto& setup_events = flags.add_int(
      "setup-events", 1000, "approximate construction probes for the setup "
                            "success metric (0 = skip)");
  flags.parse(argc, argv);

  const anon::MixChoice mix_choice =
      to_lower(mix) == "random" ? anon::MixChoice::kRandom
                                : anon::MixChoice::kBiased;
  anon::ProtocolSpec spec;
  const std::string kind = to_lower(protocol);
  if (kind == "curmix") {
    spec = anon::ProtocolSpec::curmix(mix_choice);
  } else if (kind == "simrep") {
    spec = anon::ProtocolSpec::simrep(static_cast<std::size_t>(r),
                                      mix_choice);
  } else if (kind == "simera") {
    spec = anon::ProtocolSpec::simera(static_cast<std::size_t>(k),
                                      static_cast<std::size_t>(r),
                                      mix_choice);
  } else {
    std::fprintf(stderr, "unknown --protocol %s\n", protocol.c_str());
    return 1;
  }

  EnvironmentConfig env_config;
  env_config.num_nodes = static_cast<std::size_t>(nodes);
  env_config.seed = static_cast<std::uint64_t>(seed);
  env_config.path_length = static_cast<std::size_t>(path_len);
  env_config.session_distribution =
      distribution.empty() ? "pareto:median=" + format_double(median, 0)
                           : distribution;

  std::printf("protocol %s, %lld nodes, sessions %s, L = %lld\n",
              spec.name().c_str(), static_cast<long long>(nodes),
              env_config.session_distribution.c_str(),
              static_cast<long long>(path_len));

  if (setup_events > 0) {
    PathSetupConfig setup;
    setup.environment = env_config;
    // Scale event density to hit roughly the requested probe count.
    setup.event_interarrival_seconds =
        static_cast<double>(nodes) * 0.5 * 3600.0 /
        static_cast<double>(setup_events);
    setup.specs = {spec};
    const auto result = run_path_setup_experiment(setup);
    std::printf("path setup success: %.2f%% over %llu events "
                "(availability %.3f)\n",
                result.success[0].percent(),
                static_cast<unsigned long long>(result.events),
                result.availability);
  }

  DurabilityConfig durability;
  durability.environment = env_config;
  durability.spec = spec;
  durability.message_size = static_cast<std::size_t>(message);
  durability.send_interval = from_seconds(interval);
  const auto avg = run_durability_average(
      durability, static_cast<std::size_t>(seeds),
      default_worker_threads());
  std::printf(
      "durability: %.0f s (cap 3600)\n"
      "construction attempts: %.1f\n"
      "latency: %.0f ms\n"
      "bandwidth per delivered message: %.1f KB\n"
      "delivery rate while measured: %.1f%%\n",
      avg.durability_seconds, avg.construct_attempts, avg.latency_ms,
      avg.bandwidth_kb, 100.0 * avg.delivery_rate);
  return 0;
}
