// Anonymous chat under churn: a long-lived request/response conversation
// between two pinned principals while the 256-node relay population churns
// with Pareto sessions (median 20 minutes — rough weather).
//
// Shows the resilience machinery working together: erasure-coded multipath
// (SimEra k = 4, r = 2), biased mix choice from gossip-learned liveness,
// ack-timeout failure detection with automatic path reconstruction, and
// proactive replacement of paths whose weakest relay's predictor decays.
//
// Build & run:  ./build/examples/anonymous_chat
#include <cstdio>
#include <vector>

#include "anon/protocols.hpp"
#include "anon/session.hpp"
#include "harness/environment.hpp"

using namespace p2panon;
using namespace p2panon::harness;

int main() {
  EnvironmentConfig env_config;
  env_config.num_nodes = 256;
  env_config.seed = 2026;
  env_config.session_distribution = "pareto:median=1200";  // 20 min median
  env_config.fast_crypto = false;  // the real onion stack
  Environment env(env_config);

  constexpr NodeId kAlice = 0;
  constexpr NodeId kBob = 1;
  env.churn().pin_up(kAlice);
  env.churn().pin_up(kBob);

  const std::vector<std::string> script = {
      "bob, you there?",
      "the drop is at the old library",
      "midnight. bring the erasure-coded usb stick",
      "if two couriers vanish the message still arrives",
      "ack timeouts will reroute us around the churn",
      "signing off",
  };

  anon::SessionConfig session_config =
      anon::ProtocolSpec::simera(4, 2, anon::MixChoice::kBiased)
          .session_config({});
  session_config.auto_reconstruct = true;      // rebuild failed paths
  session_config.replace_threshold = 0.2;      // §4.5 proactive replacement
  session_config.replace_check_interval = 30 * kSecond;

  anon::Session session(env.router(), env.membership().cache(kAlice),
                        kAlice, kBob, session_config, Rng(99));

  std::size_t delivered = 0;
  env.router().set_message_handler([&](const anon::ReceivedMessage& msg) {
    if (msg.responder != kBob) return;
    ++delivered;
    std::printf("[t=%6.0fs] bob   <- \"%s\" (%zu segments)\n",
                to_seconds(msg.reconstructed_at), string_of(msg.data).c_str(),
                msg.segments_received);
    env.router().send_response(kBob, msg.message_id, bytes_of("roger"));
  });
  session.set_response_handler([&](MessageId, Bytes data) {
    std::printf("[t=%6.0fs] alice <- \"%s\"\n",
                to_seconds(env.simulator().now()),
                string_of(data).c_str());
  });
  session.set_path_failure_handler([&](std::size_t path) {
    std::printf("[t=%6.0fs] alice: path %zu failed (relay churned away); "
                "rebuilding\n",
                to_seconds(env.simulator().now()), path);
  });

  // Warm the membership for two minutes, then chat one line per minute.
  env.simulator().schedule_at(2 * kMinute, [&] {
    session.construct([&](bool ok, std::size_t attempts) {
      std::printf("[t=%6.0fs] alice: %zu/%zu paths built in %zu attempt(s)\n",
                  to_seconds(env.simulator().now()),
                  session.established_paths(), session.config().erasure.k,
                  attempts);
      if (!ok) return;
      for (std::size_t i = 0; i < script.size(); ++i) {
        env.simulator().schedule_after(
            static_cast<SimDuration>(i) * kMinute, [&, i] {
              std::printf("[t=%6.0fs] alice -> \"%s\"\n",
                          to_seconds(env.simulator().now()),
                          script[i].c_str());
              session.send_message(bytes_of(script[i]));
            });
      }
    });
  });

  env.start();
  env.simulator().run_until(12 * kMinute);

  std::printf("\nchat complete: %zu/%zu lines delivered, %llu path failures "
              "detected, %llu proactive replacements, %llu path rebuilds\n",
              delivered, script.size(),
              static_cast<unsigned long long>(session.path_failures_detected()),
              static_cast<unsigned long long>(session.proactive_replacements()),
              static_cast<unsigned long long>(
                  session.paths()[0].rebuilds + session.paths()[1].rebuilds +
                  session.paths()[2].rebuilds + session.paths()[3].rebuilds));
  return 0;
}
