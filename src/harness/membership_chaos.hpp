// Membership-layer chaos scenarios (control-plane resilience, DESIGN §9).
//
// The chaos harness attacks the data plane; this harness attacks the
// *control plane* — the membership layer whose liveness knowledge the
// paper's biased mix choice depends on — and measures what the durability
// experiment sees on the other side. Each run is one durability experiment
// (pinned initiator/responder, warmup, construct, hourly-style send loop)
// under one scenario x recovery arm:
//
//   scenarios
//     gossip-blackout   every gossip datagram dropped network-wide for a
//                       window before construction; data plane untouched.
//                       Liveness knowledge rots while routing keeps working.
//     leader-crash      OneHop dissemination; every initial unit leader
//                       (except the pinned endpoints) fault-plan-crashed.
//                       Ground-truth leadership never notices (the crash is
//                       invisible to churn), so without failover the units'
//                       caches starve.
//     stale-inject      in-flight records aged by +extra dt_since — the
//                       receivers believe their knowledge is older than it
//                       is, eroding freshness contests and record ages.
//     claim-inflate     a fixed subset of nodes inflates its own dt_alive
//                       in flight — the bounded liveness-claim attack:
//                       fake uptime attracts Eq. 3 biased selection.
//
//   arms
//     random            MixChoice::kRandom — ignores liveness entirely;
//                       the durability floor every defense is gated on.
//     biased            MixChoice::kBiased, no recovery features — Eq. 3
//                       ranking over whatever the faulted membership says.
//     resilient         kBiased + staleness-aware selection + anti-entropy
//                       repair + bounded-trust merging + per-node RNG
//                       (+ deterministic leader failover under OneHop).
//
// The CI gate (scripts/check_bench_membership.py over BENCH_membership.json)
// asserts the resilient arm's durability never falls below the random floor
// under gossip blackout — i.e. the recovery machinery restores at least as
// much selection quality as admitting total ignorance.
#pragma once

#include "fault/fault_plan.hpp"
#include "harness/durability_experiment.hpp"

namespace p2panon::harness {

enum class MembershipScenario {
  kGossipBlackout,
  kLeaderCrash,
  kStaleInject,
  kClaimInflate
};

enum class MembershipArm { kRandom, kBiased, kResilient };

const char* membership_scenario_name(MembershipScenario scenario);
const char* membership_arm_name(MembershipArm arm);

struct MembershipChaosConfig {
  std::size_t num_nodes = 64;
  std::uint64_t seed = 1;
  MembershipScenario scenario = MembershipScenario::kGossipBlackout;
  MembershipArm arm = MembershipArm::kRandom;

  /// Durability-experiment shape. The blackout window sits inside warmup
  /// ([warmup - 10 min, warmup - 2 min]), so warmup must be >= 10 min: the
  /// cache rots for 8 min and the recovery machinery gets 2 min to heal it
  /// before the construct-at-warmup moment the whole run hinges on.
  SimDuration warmup = 12 * kMinute;
  SimDuration measure = 15 * kMinute;
  SimDuration send_interval = 10 * kSecond;

  /// Resilient-arm knobs (ignored by the other arms).
  SimDuration anti_entropy_interval = 15 * kSecond;
  SimDuration stale_after = 2 * kMinute;
  double degrade_fraction = 0.5;

  /// OneHop shape for the leader-crash scenario.
  std::size_t onehop_units = 8;

  /// Slow the gossip refresh sweep so the baseline arms cannot paper over
  /// membership faults with brute-force full-cache re-advertisement; the
  /// resilient arm must win through its repair machinery, not luck.
  std::size_t refresh_records = 8;
};

/// Builds the scenario's deterministic fault schedule. Pure function of the
/// config (initial OneHop leaders are computed from the id-space partition,
/// valid because every node is up at t = 0). Nodes 0 and 1 — the pinned
/// endpoints — are never crashed or made inflaters.
fault::FaultPlan make_membership_plan(const MembershipChaosConfig& config);

/// Runs one scenario x arm cell through the durability harness and returns
/// its full result (durability, attempts, delivery, plus the observational
/// extras: fault counters, belief accuracy, staleness fallbacks, control-
/// plane stats).
DurabilityResult run_membership_chaos(const MembershipChaosConfig& config);

}  // namespace p2panon::harness
