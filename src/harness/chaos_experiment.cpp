#include "harness/chaos_experiment.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "anon/session.hpp"
#include "common/logging.hpp"

namespace p2panon::harness {

namespace {

/// Deterministically picks `count` distinct victims from [2, num_nodes)
/// (partial Fisher-Yates) — the pinned endpoints 0 and 1 are never chosen.
std::vector<NodeId> pick_victims(std::size_t num_nodes, std::size_t count,
                                 Rng& rng) {
  std::vector<NodeId> candidates;
  for (NodeId node = 2; node < num_nodes; ++node) candidates.push_back(node);
  count = std::min(count, candidates.size());
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.next_below(candidates.size() - i);
    std::swap(candidates[i], candidates[j]);
  }
  candidates.resize(count);
  return candidates;
}

}  // namespace

const char* scenario_name(ChaosScenario scenario) {
  switch (scenario) {
    case ChaosScenario::kFlashCrowdCrash: return "flash-crowd-crash";
    case ChaosScenario::kRollingPartition: return "rolling-partition";
    case ChaosScenario::kLossyLinkEpidemic: return "lossy-link-epidemic";
    case ChaosScenario::kCorruptedRelayQuorum: return "corrupted-relay-quorum";
    case ChaosScenario::kMildLossDrizzle: return "mild-loss-drizzle";
  }
  return "unknown";
}

fault::FaultPlan make_scenario_plan(ChaosScenario scenario,
                                    std::size_t num_nodes, SimTime start,
                                    SimTime end, std::uint64_t seed,
                                    double corrupt_probability) {
  fault::FaultPlan plan;
  Rng rng(seed ^ (0xC4A05ULL +
                  static_cast<std::uint64_t>(scenario) *
                      0x9e3779b97f4a7c15ULL));
  const SimDuration span = end - start;
  const std::size_t quarter =
      num_nodes > 2 ? (num_nodes - 2) / 4 : 0;

  switch (scenario) {
    case ChaosScenario::kFlashCrowdCrash: {
      // A quarter of the network dies simultaneously mid-window and comes
      // back a quarter-window later — correlated churn far beyond the
      // Pareto model. The window is the shared workload::flash_crowd_window
      // so the crash epoch and the workload engine's load spike coincide by
      // construction.
      const workload::FlashWindow window =
          workload::flash_crowd_window(start, span);
      for (NodeId victim : pick_victims(num_nodes, quarter, rng)) {
        plan.crash(victim, window.begin, window.end);
      }
      break;
    }
    case ChaosScenario::kRollingPartition: {
      // Four contiguous blocks are cut off from the rest of the network in
      // consecutive quarter-windows (a partition "rolling" through it).
      for (std::size_t b = 0; b < 4; ++b) {
        std::vector<NodeId> block;
        const std::size_t lo = 2 + b * quarter;
        for (std::size_t n = lo; n < lo + quarter && n < num_nodes; ++n) {
          block.push_back(static_cast<NodeId>(n));
        }
        if (block.empty()) continue;
        const SimTime wstart = start + static_cast<SimDuration>(b) * span / 4;
        const SimTime wend = start + static_cast<SimDuration>(b + 1) * span / 4;
        plan.partition(std::move(block), {}, wstart, wend);
      }
      break;
    }
    case ChaosScenario::kLossyLinkEpidemic: {
      // Escalating network-wide loss + delay spikes: 10%, then 25%, then
      // 40% datagram loss over consecutive thirds of the window.
      const double loss[3] = {0.10, 0.25, 0.40};
      const SimDuration delay[3] = {0, 100 * kMillisecond, 200 * kMillisecond};
      for (std::size_t t = 0; t < 3; ++t) {
        fault::LinkSpikeRule rule;
        rule.loss_rate = loss[t];
        rule.extra_delay_max = delay[t];
        rule.start = start + static_cast<SimDuration>(t) * span / 3;
        rule.end = start + static_cast<SimDuration>(t + 1) * span / 3;
        plan.link_spike(rule);
      }
      break;
    }
    case ChaosScenario::kCorruptedRelayQuorum: {
      // A quarter of the nodes turn byzantine for the whole window: a
      // fraction of the forward onions they emit have one byte flipped, so
      // AEAD peels (or the responder's tag check) reject them downstream.
      plan.corrupt(corrupt_probability, start, end,
                   pick_victims(num_nodes, quarter, rng));
      break;
    }
    case ChaosScenario::kMildLossDrizzle: {
      // Steady 5% per-datagram loss, no delay spikes. Keeps per-segment
      // end-to-end survival around 0.81 over a 4-link path — the regime
      // where erasure-coded redundancy provably beats replication per
      // message (once survival drops below ~0.68, needing m-of-n arrivals
      // inverts the comparison).
      fault::LinkSpikeRule rule;
      rule.loss_rate = 0.05;
      rule.start = start;
      rule.end = end;
      plan.link_spike(rule);
      break;
    }
  }
  return plan;
}

std::string ChaosResult::fingerprint() const {
  std::ostringstream out;
  out << constructed << ':' << construct_attempts << ':' << send_attempts
      << ':' << messages_accepted << ':' << messages_delivered << ':'
      << messages_failed << ':' << messages_unaccounted << ':'
      << segments_sent << ':' << acks_matched << ':' << segments_expired
      << ':' << segments_retransmitted << ':' << failures_detected << ':'
      << rebuilds << ':' << leaked_pending_segments << ':'
      << leaked_path_state << ':' << leaked_pending_constructions << ':'
      << leaked_reverse_handlers << ':' << leaked_reassembly << ':'
      << faults.dropped_crash << ':' << faults.dropped_partition << ':'
      << faults.dropped_loss << ':' << faults.duplicated << ':'
      << faults.delayed << ':' << faults.corrupted << ':'
      << drops.sender_dead << ':' << drops.receiver_dead << ':'
      << drops.link_loss << ':' << drops.no_handler << ':' << peel_failures
      << ':' << reassemblies_expired << ':' << executed_events << ':'
      << messages_delivered_correct << ':' << messages_delivered_wrong
      << ':' << auth_verified << ':' << auth_rejected << ':' << auth_nacks
      << ':' << suspicion_reports << ':' << quarantined_nodes;
  return out.str();
}

ChaosResult run_chaos_experiment(const ChaosConfig& config) {
  static const auto kSendEvent = obs::capacity::event_type("harness.send");
  static const auto kHealthEvent =
      obs::capacity::event_type("harness.health");
  const SimTime fault_start = config.warmup + config.fault_grace;
  const SimTime fault_end = config.warmup + config.measure;
  const fault::FaultPlan plan = make_scenario_plan(
      config.scenario, config.environment.num_nodes, fault_start, fault_end,
      config.environment.seed, config.byzantine_probability);

  EnvironmentConfig env_config = config.environment;
  env_config.fault_plan = &plan;
  Environment env(env_config);
  env.churn().pin_up(config.initiator);
  env.churn().pin_up(config.responder);

  ChaosResult result;

  anon::SessionConfig base_session;
  base_session.path_length = env_config.path_length;
  base_session.construct_timeout = config.construct_timeout;
  base_session.ack_timeout = config.ack_timeout;
  base_session.max_construct_attempts = config.max_construct_attempts;
  base_session.auto_reconstruct = config.auto_reconstruct;
  base_session.require_full_construction = config.require_full_paths;
  if (config.adaptive) {
    base_session.adaptive_timeouts = true;
    base_session.retry_backoff = true;
    base_session.backoff_base = config.backoff_base;
    base_session.backoff_max = config.backoff_max;
    // Fixed mode with auto-reconstruct retries a kept segment on every
    // rebuild, i.e. with an unbounded budget; give the adaptive mode a
    // comparable number of attempts so the comparison isolates the timeout
    // policy rather than the retry ceiling.
    base_session.max_segment_retries = config.adaptive_segment_retries;
  }
  if (config.path_fail_threshold > 0) {
    base_session.path_fail_threshold = config.path_fail_threshold;
  }
  base_session.segment_auth = config.segment_auth;
  base_session.verified_decode = config.verified_decode;
  base_session.relay_suspicion = config.relay_suspicion;
  base_session.corruption_escalation = config.corruption_escalation;
  base_session.max_inflight_segments = config.max_inflight_segments;
  base_session.shed_low_priority = config.shed_low_priority;
  base_session.backpressure = config.session_backpressure;

  membership::NodeCache& initiator_cache =
      env.membership().cache(config.initiator);
  if (config.relay_suspicion) {
    // Arm the evidence ledger before the session builds any path; the
    // session itself only *reports* into it (reporting is const).
    initiator_cache.enable_suspicion({});
  }

  anon::Session session(env.router(), initiator_cache, config.initiator,
                        config.responder,
                        config.spec.session_config(base_session),
                        env.rng().fork());

  // Workload engine: forked *after* the session (and gated on the knob) so
  // legacy runs keep every existing RNG draw in place. The engine's flash
  // window is the same [fault_start, fault_end) span the fault plan uses,
  // so the kFlashCrowdCrash crash epoch and the load spike coincide.
  std::unique_ptr<workload::WorkloadEngine> engine;
  if (config.workload.enabled) {
    engine = std::make_unique<workload::WorkloadEngine>(
        config.workload, fault_start, fault_end - fault_start,
        env.rng().fork());
  }

  // Per-message conservation bookkeeping.
  struct Track {
    std::size_t segments_placed = 0;
    std::size_t expired = 0;
    bool delivered = false;
    bool reassembly_expired = false;
    std::uint8_t cls = 0;      // workload::TrafficClass (workload runs only)
    std::size_t size = 0;      // payload bytes (workload runs only)
    SimTime sent_at = 0;
  };
  std::unordered_map<MessageId, Track> tracks;
  std::vector<SimDuration> interactive_latencies;

  const Bytes expected_payload(config.message_size, 0xc7);
  env.router().set_message_handler([&](const anon::ReceivedMessage& msg) {
    if (msg.responder != config.responder) return;
    const auto it = tracks.find(msg.message_id);
    if (it == tracks.end() || it->second.delivered) return;
    it->second.delivered = true;
    ++result.messages_delivered;
    // Score the delivery against the bytes actually sent: a reconstruction
    // that "succeeds" with different bytes is the integrity failure the
    // auth trailer exists to turn into a closed failure.
    bool correct;
    if (config.workload.enabled) {
      correct = msg.data.size() == it->second.size &&
                std::all_of(msg.data.begin(), msg.data.end(),
                            [](std::uint8_t b) { return b == 0xc7; });
      auto& cls_stats = result.per_class[it->second.cls];
      ++cls_stats.delivered;
      if (it->second.cls ==
          static_cast<std::uint8_t>(workload::TrafficClass::kInteractive)) {
        interactive_latencies.push_back(env.simulator().now() -
                                        it->second.sent_at);
      }
    } else {
      correct = msg.data == expected_payload;
    }
    if (correct) {
      ++result.messages_delivered_correct;
    } else {
      ++result.messages_delivered_wrong;
    }
  });
  session.set_segment_expiry_handler(
      [&](MessageId id, std::uint32_t, std::size_t) {
        const auto it = tracks.find(id);
        if (it != tracks.end()) ++it->second.expired;
      });
  env.router().set_reassembly_expiry_handler([&](NodeId responder,
                                                 MessageId id) {
    if (responder != config.responder) return;
    const auto it = tracks.find(id);
    if (it != tracks.end()) it->second.reassembly_expired = true;
  });

  const SimTime measure_end = fault_end;
  // The self-rescheduling sender lives in this frame, which outlives every
  // run_until below — the copies the simulator stores capture it by
  // reference only (a shared self-holding closure would be a refcount
  // cycle LeakSanitizer flags).
  std::function<void()> send_one;
  send_one = [&]() {
    const SimTime now = env.simulator().now();
    if (now > measure_end) return;
    const Bytes payload(config.message_size, 0xc7);
    const std::uint64_t segments_before = session.segments_sent();
    ++result.send_attempts;
    const MessageId id = session.send_message(payload);
    if (id != 0) {
      ++result.messages_accepted;
      tracks[id].segments_placed = static_cast<std::size_t>(
          session.segments_sent() - segments_before);
    }
    env.simulator().schedule_after(config.send_interval, send_one,
                                  kSendEvent);
  };
  // Workload-driven pump: Poisson arrivals of class-tagged messages. Each
  // send computes the next arrival from the engine and self-reschedules,
  // exactly like send_one but with variable waits, sizes, and priorities.
  std::function<void(workload::Arrival)> pump_send;
  pump_send = [&](workload::Arrival arrival) {
    env.simulator().schedule_after(
        arrival.wait,
        [&, arrival] {
          const SimTime now = env.simulator().now();
          if (now > measure_end) return;
          const Bytes payload(arrival.size, 0xc7);
          anon::SegmentPriority prio = anon::SegmentPriority::kInteractive;
          switch (arrival.cls) {
            case workload::TrafficClass::kBulk:
              prio = anon::SegmentPriority::kBulk;
              break;
            case workload::TrafficClass::kStreaming:
              prio = anon::SegmentPriority::kStreaming;
              break;
            case workload::TrafficClass::kInteractive:
              break;
          }
          const std::uint64_t segments_before = session.segments_sent();
          ++result.send_attempts;
          auto& cls_stats =
              result.per_class[static_cast<std::size_t>(arrival.cls)];
          ++cls_stats.attempts;
          const MessageId id = session.send_message(payload, prio);
          if (id != 0) {
            ++result.messages_accepted;
            ++cls_stats.accepted;
            Track& track = tracks[id];
            track.segments_placed = static_cast<std::size_t>(
                session.segments_sent() - segments_before);
            track.cls = static_cast<std::uint8_t>(arrival.cls);
            track.size = arrival.size;
            track.sent_at = now;
          }
          pump_send(engine->next(now));
        },
        kSendEvent);
  };
  env.simulator().schedule_at(
      config.warmup,
      [&] {
        session.construct([&](bool ok, std::size_t attempts) {
          result.constructed = ok;
          result.construct_attempts = attempts;
          if (!ok) return;
          if (config.workload.enabled) {
            pump_send(engine->next(env.simulator().now()));
          } else {
            send_one();
          }
        });
      },
      kSendEvent);

  // Optional rolling health scoreboard. Sampling reads churn/session/
  // registry state only, so the simulated outcome (and every RNG stream)
  // is unchanged; only executed_events grows by the sampling ticks.
  std::unique_ptr<HealthScoreboard> health;
  std::unique_ptr<sim::PeriodicTask> health_task;
  if (config.health_interval > 0) {
    HealthConfig health_config = config.health;
    health_config.interval = config.health_interval;
    health = std::make_unique<HealthScoreboard>(
        env.simulator(), env.churn(), env.metrics(), env_config.num_nodes,
        health_config);
    health->attach_session(session);
    health_task = std::make_unique<sim::PeriodicTask>(
        env.simulator(), config.health_interval,
        [&health] { health->sample(); }, kHealthEvent);
    health_task->start();
  }

  env.start();
  env.simulator().run_until(measure_end + config.quiesce);

  // Close the books: teardown drains every still-pending segment into the
  // expired ledger, then one full state-TTL interval plus a sweep period
  // lets relay-side state (including state orphaned on crashed or
  // partitioned relays that never saw the teardown) expire.
  session.teardown();
  const SimDuration ttl = std::max(env_config.router.state_ttl,
                                   env_config.router.reassembly_ttl);
  env.simulator().run_until(env.simulator().now() + ttl +
                            env_config.router.sweep_interval + 30 * kSecond);

  // Conservation: every accepted message must be delivered or explainable.
  const std::size_t needed = session.config().erasure.m;
  for (const auto& [id, track] : tracks) {
    if (track.delivered) continue;
    if (track.expired > 0 || track.segments_placed < needed ||
        track.reassembly_expired) {
      ++result.messages_failed;
    } else {
      ++result.messages_unaccounted;
    }
  }

  result.segments_sent = session.segments_sent();
  result.acks_matched = session.acks_matched();
  result.segments_expired = session.segments_expired();
  result.segments_retransmitted = session.segments_retransmitted();
  result.failures_detected = session.path_failures_detected();
  for (const auto& info : session.paths()) result.rebuilds += info.rebuilds;

  result.leaked_pending_segments = session.pending_segment_count();
  for (NodeId node = 0; node < env_config.num_nodes; ++node) {
    result.leaked_path_state += env.router().path_state_count(node);
    result.leaked_pending_constructions +=
        env.router().pending_construction_count(node);
    result.leaked_reverse_handlers += env.router().reverse_handler_count(node);
    result.leaked_reassembly += env.router().reassembly_count(node);
  }

  if (env.faulty_transport() != nullptr) {
    result.faults = env.faulty_transport()->counters();
  }
  obs::Registry& reg = env.metrics();
  result.drops.sender_dead =
      reg.counter_value("net_drops_total", {{"cause", "sender_dead"}});
  result.drops.receiver_dead =
      reg.counter_value("net_drops_total", {{"cause", "receiver_dead"}});
  result.drops.link_loss =
      reg.counter_value("net_drops_total", {{"cause", "link_loss"}});
  result.drops.no_handler =
      reg.counter_value("net_drops_total", {{"cause", "no_handler"}});
  result.peel_failures = env.router().peel_failures();
  result.reassemblies_expired = env.router().reassemblies_expired();
  result.executed_events = env.simulator().executed_events();
  result.auth_verified =
      reg.counter_value("anon_segment_auth_total", {{"result", "verified"}});
  result.auth_rejected =
      reg.counter_value("anon_segment_auth_total", {{"result", "rejected"}});
  result.auth_nacks = reg.counter_value("anon_segment_auth_nacks_total");
  result.suspicion_reports =
      reg.counter_value("membership_suspicion_reports_total",
                        {{"evidence", "corrupt"}}) +
      reg.counter_value("membership_suspicion_reports_total",
                        {{"evidence", "stall"}});
  result.quarantined_nodes = static_cast<std::uint64_t>(initiator_cache
          .quarantined_count(env.simulator().now()));
  result.relay_sheds_bulk =
      reg.counter_value("anon_overload_sheds_total", {{"class", "bulk"}});
  result.relay_sheds_streaming =
      reg.counter_value("anon_overload_sheds_total", {{"class", "streaming"}});
  result.relay_sheds_interactive = reg.counter_value(
      "anon_overload_sheds_total", {{"class", "interactive"}});
  result.relay_sheds_control =
      reg.counter_value("anon_overload_sheds_total", {{"class", "control"}});
  result.admission_rejects =
      reg.counter_value("anon_admission_rejects_total");
  result.backpressure_signals =
      reg.counter_value("anon_backpressure_signals_total");
  result.session_messages_shed = session.messages_shed();
  result.session_segments_deferred = session.segments_deferred();
  result.session_backpressure_rx = session.backpressure_signals();
  result.session_stalls_suppressed = session.stalls_suppressed();
  if (!interactive_latencies.empty()) {
    std::sort(interactive_latencies.begin(), interactive_latencies.end());
    const std::size_t n = interactive_latencies.size();
    result.interactive_p50_us =
        static_cast<std::uint64_t>(interactive_latencies[n / 2]);
    result.interactive_p99_us = static_cast<std::uint64_t>(
        interactive_latencies[std::min(n - 1, (n * 99) / 100)]);
  }
  if (health != nullptr) {
    health_task->cancel();
    result.health = health->summary();
    result.health_table = health->table();
  }
  return result;
}

}  // namespace p2panon::harness
