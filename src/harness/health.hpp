// Rolling health scoreboard for experiment runs.
//
// The chaos and durability harnesses report end-of-run totals; this layer
// watches the run *while it happens*, closing a health window every
// `interval` of sim time:
//
//   churn storms     windows whose churn transition count crosses the storm
//                    threshold — correlated failure bursts, the regime the
//                    paper's durability ordering is claimed for
//   stalled paths    session paths that are nominally kEstablished but have
//                    matched no acks for `stall_windows` consecutive windows
//                    despite traffic being sent on them — the silent failure
//                    mode §4.5's failure detection exists to catch
//   drop causes      per-cause transport drop rates (net_drops_total{cause})
//                    per window, with the worst window retained
//
// Each sample also publishes `health_*` gauges into the run's registry, so
// a TimeseriesRecorder attached to the same registry captures the full
// health trajectory, not just the summary.
//
// Default OFF: harness configs leave health_interval = 0, no scoreboard is
// constructed, no series registered, and runs stay byte-identical. Sampling
// only reads simulator/churn/session/registry state — never the RNG — so an
// enabled scoreboard cannot change the simulated outcome.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "anon/session.hpp"
#include "churn/churn_model.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace p2panon::harness {

struct HealthConfig {
  SimDuration interval = 30 * kSecond;
  /// Consecutive zero-ack windows (with traffic) before an established path
  /// counts as stalled.
  std::size_t stall_windows = 3;
  /// Churn transitions per window that make the window a storm. 0 = auto:
  /// max(8, num_nodes / 8).
  std::uint64_t storm_transitions = 0;
  /// Consecutive corruption windows (segment-auth rejections or corrupt
  /// nacks observed) before the run's attribution verdict escalates from
  /// "transient" to "sustained".
  std::size_t corruption_verdict_windows = 3;
};

struct HealthSummary {
  std::size_t windows = 0;
  std::size_t churn_storm_windows = 0;
  /// Path-windows spent stalled (each stalled path counts each window).
  std::size_t stalled_path_windows = 0;
  std::uint64_t max_transitions_per_window = 0;
  std::uint64_t total_window_drops = 0;
  double max_drop_rate_per_s = 0.0;  // worst single-cause window rate

  // Corruption attribution (corruption-resilience extension; all zero when
  // no segment carries an auth trailer).
  std::size_t corruption_windows = 0;      // windows with corruption evidence
  std::size_t max_corruption_streak = 0;   // longest consecutive run of them
  std::uint64_t max_rejections_per_window = 0;
  std::uint64_t total_auth_rejections = 0;  // responder-side tag failures
  std::uint64_t total_corrupt_nacks = 0;    // initiator-side verdicts

  // Membership-plane fault attribution (control-plane resilience, DESIGN
  // §9; all zero without a membership fault plan). Windows are scored by
  // the fault layer's injection counters (gossip_blackout / gossip_loss /
  // stale_injected / claim_inflated), and leader churn is tracked through
  // the membership_elections_total counter the harness sampler maintains —
  // the recovery signal a leader-crash scenario should light up.
  std::size_t membership_fault_windows = 0;
  std::uint64_t total_membership_faults = 0;
  std::uint64_t max_membership_faults_per_window = 0;
  std::uint64_t elections_observed = 0;
};

class HealthScoreboard {
 public:
  /// All references must outlive the scoreboard. `registry` receives the
  /// health_* gauges; pass the run's own registry so the gauges land next
  /// to the counters they summarize.
  HealthScoreboard(sim::Simulator& simulator, churn::ChurnModel& churn,
                   obs::Registry& registry, std::size_t num_nodes,
                   HealthConfig config = {});

  /// Enables per-path stall detection (optional; the session must outlive
  /// the scoreboard).
  void attach_session(const anon::Session& session);

  /// Closes the window ending at simulator.now(). Call from a PeriodicTask
  /// with period config.interval.
  void sample();

  const HealthSummary& summary() const { return summary_; }
  const HealthConfig& config() const { return config_; }

  /// Attribution verdict for the run so far: "clean" (no corruption
  /// evidence in any window), "transient" (evidence, but never
  /// corruption_verdict_windows windows in a row), or "sustained".
  const char* corruption_verdict() const;

  /// Per-cause drop totals/worst rates plus the storm/stall counts as a
  /// rendered text table for experiment output.
  std::string table() const;

 private:
  struct CauseStats {
    std::uint64_t prev = 0;
    std::uint64_t window_total = 0;
    double max_rate_per_s = 0.0;
  };
  struct PathWatch {
    std::uint64_t prev_sends = 0;
    std::uint64_t prev_acks = 0;
    std::size_t zero_ack_windows = 0;
  };

  sim::Simulator& simulator_;
  churn::ChurnModel& churn_;
  obs::Registry& registry_;
  HealthConfig config_;
  const anon::Session* session_ = nullptr;

  HealthSummary summary_;
  std::uint64_t prev_transitions_ = 0;
  std::uint64_t prev_auth_rejections_ = 0;
  std::uint64_t prev_corrupt_nacks_ = 0;
  std::uint64_t prev_elections_ = 0;
  std::size_t corruption_streak_ = 0;
  SimTime last_sample_us_ = 0;
  std::vector<PathWatch> path_watch_;
  std::vector<CauseStats> cause_stats_;
  std::vector<CauseStats> membership_stats_;
};

}  // namespace p2panon::harness
