#include "harness/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace p2panon::harness {

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  threads = std::min(threads, count);

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          return;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (error) std::rethrow_exception(error);
}

std::size_t default_worker_threads() {
  // Simulation fan-outs are the only workload while a bench runs, so use
  // every core; the driving thread only joins.
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace p2panon::harness
