#include "harness/membership_chaos.hpp"

#include <algorithm>

namespace p2panon::harness {

const char* membership_scenario_name(MembershipScenario scenario) {
  switch (scenario) {
    case MembershipScenario::kGossipBlackout: return "gossip-blackout";
    case MembershipScenario::kLeaderCrash: return "leader-crash";
    case MembershipScenario::kStaleInject: return "stale-inject";
    case MembershipScenario::kClaimInflate: return "claim-inflate";
  }
  return "unknown";
}

const char* membership_arm_name(MembershipArm arm) {
  switch (arm) {
    case MembershipArm::kRandom: return "random";
    case MembershipArm::kBiased: return "biased";
    case MembershipArm::kResilient: return "resilient";
  }
  return "unknown";
}

namespace {

/// Crash targets for the leader-crash scenario: the two lowest ids of each
/// OneHop unit (same ceil-partition as OneHopMembership::unit_of). The
/// election rule is "lowest live id in the unit", so whichever of these is
/// churn-up holds ground-truth leadership — crashing both keeps the unit
/// under a zombie leader for most of the run regardless of churn phase.
std::vector<NodeId> unit_leader_targets(std::size_t num_nodes,
                                        std::size_t units) {
  const std::size_t per_unit = (num_nodes + units - 1) / units;
  std::vector<NodeId> targets;
  for (std::size_t unit = 0; unit < units; ++unit) {
    const std::size_t begin = unit * per_unit;
    const std::size_t end = std::min(num_nodes, begin + per_unit);
    for (std::size_t node = begin; node < end && node < begin + 2; ++node) {
      targets.push_back(static_cast<NodeId>(node));
    }
  }
  return targets;
}

}  // namespace

fault::FaultPlan make_membership_plan(const MembershipChaosConfig& config) {
  fault::FaultPlan plan;
  const SimTime construct = config.warmup;
  const SimTime run_end = config.warmup + config.measure;
  switch (config.scenario) {
    case MembershipScenario::kGossipBlackout:
      // Total dissemination blackout for 8 min, lifted 2 min before the
      // construct moment: the arms differ in how much of the rot they have
      // healed by then.
      plan.gossip_blackout(construct - 10 * kMinute, construct - 2 * kMinute);
      break;
    case MembershipScenario::kLeaderCrash:
      // Permanently crash the leader candidates of every unit except the
      // pinned endpoints, well before construction. Churn never sees these
      // deaths (that is the point), so only believed-leadership failover
      // can restore dissemination to the orphaned units.
      for (NodeId leader :
           unit_leader_targets(config.num_nodes, config.onehop_units)) {
        if (leader == 0 || leader == 1) continue;
        plan.crash(leader, construct - 8 * kMinute);
      }
      break;
    case MembershipScenario::kStaleInject:
      // Age most in-flight records by +10 min from mid-warmup through the
      // whole measurement window: freshness contests break down and caches
      // look ancient even when dissemination flows.
      plan.stale_inject(/*probability=*/0.75,
                        /*extra_staleness=*/10 * kMinute,
                        construct - 6 * kMinute, run_end);
      break;
    case MembershipScenario::kClaimInflate: {
      // Every third node from id 5 up inflates its own uptime claim
      // (3x + 2h) — enough fake seniority to dominate an honest Eq. 3
      // ranking — from mid-warmup onwards.
      std::vector<NodeId> inflaters;
      for (std::size_t node = 5; node < config.num_nodes; node += 3) {
        inflaters.push_back(static_cast<NodeId>(node));
      }
      plan.claim_inflate(/*probability=*/0.8, /*factor=*/3.0,
                         /*boost=*/2 * kHour, construct - 6 * kMinute,
                         run_end, inflaters);
      break;
    }
  }
  return plan;
}

DurabilityResult run_membership_chaos(const MembershipChaosConfig& config) {
  const fault::FaultPlan plan = make_membership_plan(config);
  const bool resilient = config.arm == MembershipArm::kResilient;
  const anon::MixChoice mix = config.arm == MembershipArm::kRandom
                                  ? anon::MixChoice::kRandom
                                  : anon::MixChoice::kBiased;

  DurabilityConfig run;
  run.environment.num_nodes = config.num_nodes;
  run.environment.seed = config.seed;
  run.environment.fault_plan = &plan;
  run.environment.gossip.refresh_records = config.refresh_records;
  run.warmup = config.warmup;
  run.measure = config.measure;
  run.send_interval = config.send_interval;
  run.spec = anon::ProtocolSpec::simera(4, 2, mix);

  if (config.scenario == MembershipScenario::kLeaderCrash) {
    run.environment.membership_kind = MembershipKind::kOneHop;
    run.environment.onehop.units = config.onehop_units;
    if (resilient) {
      run.environment.onehop.deterministic_failover = true;
    }
  } else if (resilient) {
    run.environment.gossip.anti_entropy_interval =
        config.anti_entropy_interval;
    run.environment.gossip.per_node_rng = true;
    run.environment.gossip.bounded_trust = true;
  }
  if (resilient) {
    run.staleness_aware = true;
    run.staleness_stale_after = config.stale_after;
    run.staleness_degrade_fraction = config.degrade_fraction;
  }
  return run_durability_experiment(run);
}

}  // namespace p2panon::harness
