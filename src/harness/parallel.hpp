// Thread-pool fan-out for independent simulation runs.
//
// Each run is a self-contained single-threaded simulation (nothing is
// shared between Environments), so multi-seed sweeps parallelize
// embarrassingly. The callable must only write to its own index's slots.
#pragma once

#include <cstddef>
#include <functional>

namespace p2panon::harness {

/// Runs fn(0) .. fn(count - 1) on up to `threads` worker threads
/// (threads <= 1 runs inline). Exceptions in workers propagate to the
/// caller after all workers join.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

/// Hardware concurrency, at least 1.
std::size_t default_worker_threads();

}  // namespace p2panon::harness
