#include "harness/durability_experiment.hpp"

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "anon/session.hpp"
#include "common/logging.hpp"
#include "harness/parallel.hpp"

namespace p2panon::harness {

namespace {

/// Ground-truth path-set lifetime tracker. Watches churn: a path dies the
/// first time any of its relays leaves; the set dies per the protocol's
/// condition (alive paths < min_paths).
class DurabilityMonitor {
 public:
  DurabilityMonitor(churn::ChurnModel& churn, std::size_t min_paths)
      : min_paths_(min_paths) {
    churn.subscribe([this](NodeId node, bool up, SimTime when) {
      if (!armed_ || up || dead_) return;
      on_leave(node, when);
    });
  }

  /// Arms the monitor with the established paths' relay lists.
  void arm(const std::vector<std::vector<NodeId>>& paths, SimTime now) {
    paths_alive_ = 0;
    relay_to_paths_.clear();
    path_alive_.assign(paths.size(), false);
    for (std::size_t j = 0; j < paths.size(); ++j) {
      if (paths[j].empty()) continue;
      path_alive_[j] = true;
      ++paths_alive_;
      for (NodeId relay : paths[j]) {
        relay_to_paths_[relay].push_back(j);
      }
    }
    armed_ = true;
    dead_ = false;
    armed_at_ = now;
    if (paths_alive_ < min_paths_) {
      dead_ = true;
      died_at_ = now;
    }
  }

  bool dead() const { return dead_; }
  SimTime died_at() const { return died_at_; }
  SimTime armed_at() const { return armed_at_; }

  double lifetime_seconds(SimTime now, SimDuration cap) const {
    if (!armed_) return 0.0;
    const SimTime end = dead_ ? died_at_ : now;
    const SimDuration life = end - armed_at_;
    return to_seconds(std::min(life, cap));
  }

 private:
  void on_leave(NodeId node, SimTime when) {
    const auto it = relay_to_paths_.find(node);
    if (it == relay_to_paths_.end()) return;
    for (std::size_t j : it->second) {
      if (path_alive_[j]) {
        path_alive_[j] = false;
        --paths_alive_;
      }
    }
    if (paths_alive_ < min_paths_ && !dead_) {
      dead_ = true;
      died_at_ = when;
    }
  }

  std::size_t min_paths_;
  std::unordered_map<NodeId, std::vector<std::size_t>> relay_to_paths_;
  std::vector<bool> path_alive_;
  std::size_t paths_alive_ = 0;
  bool armed_ = false;
  bool dead_ = false;
  SimTime armed_at_ = 0;
  SimTime died_at_ = 0;
};

}  // namespace

DurabilityResult run_durability_experiment(const DurabilityConfig& config) {
  static const auto kSendEvent = obs::capacity::event_type("harness.send");
  static const auto kHealthEvent =
      obs::capacity::event_type("harness.health");
  Environment env(config.environment);
  env.churn().pin_up(config.initiator);
  env.churn().pin_up(config.responder);

  DurabilityResult result;

  anon::SessionConfig base_session;
  base_session.path_length = config.environment.path_length;
  base_session.construct_timeout = config.construct_timeout;
  base_session.ack_timeout = config.ack_timeout;
  base_session.max_construct_attempts = config.max_construct_attempts;
  base_session.staleness_aware = config.staleness_aware;
  base_session.staleness_stale_after = config.staleness_stale_after;
  base_session.staleness_degrade_fraction = config.staleness_degrade_fraction;

  anon::Session session(env.router(),
                        env.membership().cache(config.initiator),
                        config.initiator, config.responder,
                        config.spec.session_config(base_session),
                        env.rng().fork());

  DurabilityMonitor monitor(env.churn(),
                            session.config().erasure.min_paths());

  // Delivery bookkeeping: send time per message id, payload-byte watermark
  // per message for per-delivery bandwidth attribution (messages are 10 s
  // apart, far longer than any in-flight activity).
  std::unordered_map<MessageId, SimTime> send_times;
  MessageId current_message = 0;
  std::uint64_t bytes_at_send = 0;

  env.router().set_message_handler([&](const anon::ReceivedMessage& msg) {
    if (msg.responder != config.responder) return;
    const auto it = send_times.find(msg.message_id);
    if (it == send_times.end()) return;
    ++result.messages_delivered;
    result.latency_ms.add(to_millis(msg.reconstructed_at - it->second));
  });

  const SimTime measure_end = config.warmup + config.measure;

  // Periodic sender. Bandwidth attribution for message i happens just
  // before message i+1 is sent. The closure lives in this frame, which
  // outlives every simulator run below, so the copies stored in simulator
  // events capture it by reference only (a shared self-holding closure
  // would be a refcount cycle LeakSanitizer flags).
  std::function<void()> send_one;
  send_one = [&]() {
    const SimTime now = env.simulator().now();
    if (now > measure_end) return;
    // Attribute the previous message's bytes if it was delivered.
    if (current_message != 0) {
      const std::uint64_t spent =
          env.router().payload_bytes() - bytes_at_send;
      if (send_times.count(current_message) > 0 && spent > 0 &&
          result.messages_delivered > result.bandwidth_bytes.count()) {
        result.bandwidth_bytes.add(static_cast<double>(spent));
      }
    }
    bytes_at_send = env.router().payload_bytes();
    Bytes payload(config.message_size, 0xab);
    const MessageId id = session.send_message(payload);
    if (id != 0) {
      ++result.messages_sent;
      send_times[id] = now;
      current_message = id;
    } else {
      current_message = 0;
    }
    env.simulator().schedule_after(config.send_interval, send_one,
                                  kSendEvent);
  };

  // At warm-up end: construct (with retries inside the session), arm the
  // durability monitor, then start the periodic sender.
  env.simulator().schedule_at(config.warmup, [&] {
    session.construct([&](bool ok, std::size_t attempts) {
      result.constructed = ok;
      result.construct_attempts = attempts;
      if (!ok) {
        env.simulator().stop();
        return;
      }
      std::vector<std::vector<NodeId>> established;
      for (const auto& info : session.paths()) {
        established.push_back(info.state == anon::PathState::kEstablished
                                  ? info.relays
                                  : std::vector<NodeId>{});
      }
      monitor.arm(established, env.simulator().now());
      send_one();
    });
  });

  // Optional rolling health scoreboard (reads only; no RNG, no outcome
  // change — just extra sampling ticks on the event queue).
  std::unique_ptr<HealthScoreboard> health;
  std::unique_ptr<sim::PeriodicTask> health_task;
  if (config.health_interval > 0) {
    HealthConfig health_config = config.health;
    health_config.interval = config.health_interval;
    health = std::make_unique<HealthScoreboard>(
        env.simulator(), env.churn(), env.metrics(),
        config.environment.num_nodes, health_config);
    health->attach_session(session);
    health_task = std::make_unique<sim::PeriodicTask>(
        env.simulator(), config.health_interval,
        [&health] { health->sample(); }, kHealthEvent);
    health_task->start();
  }

  env.start();
  env.simulator().run_until(measure_end + 30 * kSecond);

  if (health != nullptr) {
    health_task->cancel();
    result.health = health->summary();
    result.health_table = health->table();
  }
  result.durability_seconds =
      result.constructed
          ? monitor.lifetime_seconds(measure_end, config.measure)
          : 0.0;
  // End-of-run observational reads (after the simulator stops, so they
  // cannot perturb anything).
  if (env.faulty_transport() != nullptr) {
    result.faults = env.faulty_transport()->counters();
  }
  result.belief_accuracy = env.membership().belief_accuracy();
  result.mix_stale_fallbacks = session.mix_stale_fallbacks();
  result.mix_biased_selects = session.mix_biased_selects();
  result.control = env.membership().control_stats();
  return result;
}

DurabilityAverages run_durability_average(const DurabilityConfig& config,
                                          std::size_t seeds,
                                          std::size_t threads) {
  std::vector<DurabilityResult> results(seeds);
  parallel_for(seeds, threads, [&](std::size_t i) {
    DurabilityConfig run = config;
    run.environment.seed = config.environment.seed + i;
    results[i] = run_durability_experiment(run);
  });

  DurabilityAverages avg;
  metrics::Summary durability, attempts, latency, bandwidth, delivery;
  avg.durability_runs.reserve(results.size());
  for (const auto& r : results) {
    durability.add(r.durability_seconds);
    avg.durability_runs.push_back(r.durability_seconds);
    attempts.add(static_cast<double>(r.construct_attempts));
    if (r.latency_ms.count() > 0) latency.add(r.latency_ms.mean());
    if (r.bandwidth_bytes.count() > 0) {
      bandwidth.add(r.bandwidth_bytes.mean());
    }
    if (r.messages_sent > 0) {
      delivery.add(static_cast<double>(r.messages_delivered) /
                   static_cast<double>(r.messages_sent));
    }
  }
  avg.durability_seconds = durability.mean();
  avg.construct_attempts = attempts.mean();
  avg.latency_ms = latency.mean();
  avg.bandwidth_kb = bandwidth.mean() / 1024.0;
  avg.delivery_rate = delivery.mean();
  avg.runs = seeds;
  return avg;
}

}  // namespace p2panon::harness
