#include "harness/path_setup_experiment.hpp"

#include <deque>

#include "anon/session.hpp"
#include "common/logging.hpp"

namespace p2panon::harness {

namespace {

/// One construction probe: a throwaway session making a single whole-set
/// attempt. Self-deletes after reporting.
class Probe {
 public:
  Probe(Environment& env, const anon::ProtocolSpec& spec,
        anon::SessionConfig session_config, NodeId initiator,
        NodeId responder, metrics::Ratio& ratio, std::size_t& outstanding)
      : ratio_(ratio), outstanding_(outstanding) {
    ++outstanding_;
    session_ = std::make_unique<anon::Session>(
        env.router(), env.membership().cache(initiator), initiator,
        responder, spec.session_config(session_config), env.rng().fork());
    session_->construct([this, &env](bool ok, std::size_t) {
      ratio_.record(ok);
      if (ok) session_->teardown();
      // Defer deletion: we are inside the session's own callback.
      env.simulator().schedule_after(
          0, [this] { delete this; },
          obs::capacity::event_type("harness.setup"));
    });
  }

  ~Probe() { --outstanding_; }

 private:
  metrics::Ratio& ratio_;
  std::size_t& outstanding_;
  std::unique_ptr<anon::Session> session_;
};

}  // namespace

PathSetupResult run_path_setup_experiment(const PathSetupConfig& config) {
  Environment env(config.environment);

  PathSetupResult result;
  result.specs = config.specs;
  result.success.resize(config.specs.size());

  anon::SessionConfig base_session;
  base_session.path_length = config.environment.path_length;
  base_session.construct_timeout = config.construct_timeout;
  base_session.max_construct_attempts = 1;  // one whole-set attempt per event

  std::size_t outstanding = 0;
  const SimTime measure_start = config.warmup;
  const SimTime measure_end = config.warmup + config.measure;

  // Each node independently fires construction events with exponential
  // inter-arrival; events at down nodes are skipped (a down node cannot
  // initiate).
  std::function<void(NodeId)> schedule_next = [&](NodeId node) {
    const SimDuration gap =
        from_seconds(env.rng().exponential(config.event_interarrival_seconds));
    static const auto kSetupEvent =
        obs::capacity::event_type("harness.setup");
    env.simulator().schedule_after(gap, [&, node] {
      const SimTime now = env.simulator().now();
      if (now <= measure_end) schedule_next(node);
      if (now < measure_start || now > measure_end) return;
      if (!env.churn().is_up(node)) return;
      const NodeId responder = env.random_up_node(node);
      if (responder == kInvalidNode) return;
      ++result.events;
      if (outstanding >= config.max_outstanding) return;
      for (std::size_t s = 0; s < config.specs.size(); ++s) {
        new Probe(env, config.specs[s], base_session, node, responder,
                  result.success[s], outstanding);
      }
    });
  };

  env.start();
  for (NodeId node = 0; node < config.environment.num_nodes; ++node) {
    schedule_next(node);
  }

  env.simulator().run_until(measure_end + 30 * kSecond);
  result.availability = env.churn().measured_availability(env.simulator().now());
  return result;
}

}  // namespace p2panon::harness
