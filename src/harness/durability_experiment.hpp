// Durability / performance experiment (paper Tables 2, 3, 4).
//
// §6.2 "Performance Comparison" methodology: two pinned nodes (initiator,
// responder) in a 1024-node churning network. After a 1 h warm-up the
// initiator constructs the protocol's path set (counting whole-set
// attempts), then sends a 1 KB message every 10 s for an hour. Reported
// per run:
//   - durability: ground-truth lifetime of the constructed path set,
//     terminated per protocol (CurMix: any relay fails; SimRep: all k
//     paths fail; SimEra: more than k(1 - 1/r) paths fail), capped 3600 s;
//   - construction attempts to first success;
//   - mean latency of successful deliveries (send -> responder
//     reconstruction);
//   - mean payload bandwidth per successful delivery.
#pragma once

#include <vector>

#include "anon/protocols.hpp"
#include "harness/environment.hpp"
#include "harness/health.hpp"
#include "metrics/summary.hpp"

namespace p2panon::harness {

struct DurabilityConfig {
  EnvironmentConfig environment;
  anon::ProtocolSpec spec;
  SimDuration warmup = 1 * kHour;
  SimDuration measure = 1 * kHour;
  SimDuration send_interval = 10 * kSecond;
  std::size_t message_size = 1024;
  SimDuration construct_timeout = 5 * kSecond;
  SimDuration ack_timeout = 5 * kSecond;
  std::size_t max_construct_attempts = 500;
  NodeId initiator = 0;
  NodeId responder = 1;

  /// > 0 runs a HealthScoreboard across the run (window length = this);
  /// summary + table land in the result. 0 = off, byte-identical run.
  SimDuration health_interval = 0;
  HealthConfig health;  // interval field ignored; health_interval governs

  /// Staleness-aware mix selection for the initiator's session (DESIGN §9).
  /// Off by default: the session then selects exactly as the seed did.
  bool staleness_aware = false;
  SimDuration staleness_stale_after = 2 * kMinute;
  double staleness_degrade_fraction = 0.5;
};

struct DurabilityResult {
  bool constructed = false;
  std::size_t construct_attempts = 0;
  double durability_seconds = 0.0;  // capped at `measure`
  metrics::Summary latency_ms;      // successful deliveries
  metrics::Summary bandwidth_bytes; // payload bytes per successful delivery
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;

  /// Populated only when config.health_interval > 0.
  HealthSummary health;
  std::string health_table;  // rendered scoreboard, empty when disabled

  // --- Observational extras (read at run end; never affect the run) ---

  /// Fault-injection counters (all zero when no fault plan was set).
  fault::FaultyTransport::Counters faults;
  /// Network-wide belief accuracy at run end (fraction of (observer,
  /// subject) pairs whose alive-belief matches churn ground truth).
  double belief_accuracy = 0.0;
  /// Staleness-aware selection tallies for the initiator's session.
  std::uint64_t mix_stale_fallbacks = 0;
  std::uint64_t mix_biased_selects = 0;
  /// Control-plane recovery work done by the membership provider.
  membership::ControlStats control;
};

DurabilityResult run_durability_experiment(const DurabilityConfig& config);

/// Averages `seeds` runs (seeds environment.seed + 0, +1, ...), optionally
/// in parallel worker threads.
struct DurabilityAverages {
  double durability_seconds = 0.0;
  double construct_attempts = 0.0;
  double latency_ms = 0.0;
  double bandwidth_kb = 0.0;
  double delivery_rate = 0.0;
  std::size_t runs = 0;
  /// Per-run durabilities, for bootstrap confidence intervals (Pareto
  /// residual lifetimes make the mean heavy-tailed).
  std::vector<double> durability_runs;
};

DurabilityAverages run_durability_average(const DurabilityConfig& config,
                                          std::size_t seeds,
                                          std::size_t threads);

}  // namespace p2panon::harness
