// Chaos invariant harness: named fault scenarios + end-to-end accounting.
//
// Each run drives one protocol session (initiator -> responder) through a
// scripted FaultPlan scenario and closes the books afterwards. The point is
// not a performance number but a set of *invariants* that must hold under
// any fault schedule:
//
//   1. Conservation: every accepted message is delivered, or explainable —
//      at least one of its segments expired, or fewer than m segments
//      could be placed on established paths at send time. `unaccounted`
//      counts the violations and must be 0.
//   2. Segment ledger: segments_sent == acks_matched + segments_expired +
//      segments_retransmitted + pending (and pending == 0 after quiesce).
//   3. No residual state: after teardown plus one state-TTL sweep, no
//      pending segments, relay path state, pending constructions, reverse
//      handlers, or reassembly buffers remain anywhere in the network.
//   4. Determinism: two runs with identical config produce identical
//      fingerprints.
#pragma once

#include <cstdint>
#include <string>

#include "anon/protocols.hpp"
#include "fault/fault_plan.hpp"
#include "harness/environment.hpp"
#include "harness/health.hpp"
#include "workload/workload.hpp"

namespace p2panon::harness {

enum class ChaosScenario {
  kFlashCrowdCrash,     // 25% of nodes crash at once, recover later
  kRollingPartition,    // 4 node blocks partitioned off in rolling windows
  kLossyLinkEpidemic,   // escalating global loss + delay spikes
  kCorruptedRelayQuorum,// 25% of nodes flip bytes in forward onions
  kMildLossDrizzle      // steady 5% per-datagram loss, whole window
};

const char* scenario_name(ChaosScenario scenario);

/// Builds the deterministic fault schedule for a scenario over the window
/// [start, end). Nodes 0 and 1 (the pinned endpoints) are never crashed,
/// partitioned away, or made byzantine; link-wide rules still affect their
/// traffic. `corrupt_probability` is the per-datagram flip chance each
/// byzantine relay applies in kCorruptedRelayQuorum (other scenarios
/// ignore it).
fault::FaultPlan make_scenario_plan(ChaosScenario scenario,
                                    std::size_t num_nodes, SimTime start,
                                    SimTime end, std::uint64_t seed,
                                    double corrupt_probability = 0.5);

struct ChaosConfig {
  EnvironmentConfig environment;
  anon::ProtocolSpec spec;
  ChaosScenario scenario = ChaosScenario::kFlashCrowdCrash;
  SimDuration warmup = 10 * kMinute;   // gossip convergence before faults
  SimDuration measure = 20 * kMinute;  // fault window + send window
  /// Faults start this long after warmup ends, so path construction (which
  /// begins at warmup) races a healthy network, not the fault wave. Sized
  /// to cover the adaptive mode's construction backoff chain too.
  SimDuration fault_grace = 150 * kSecond;
  SimDuration quiesce = 2 * kMinute;   // drain in-flight traffic
  SimDuration send_interval = 5 * kSecond;
  std::size_t message_size = 512;
  SimDuration construct_timeout = 5 * kSecond;
  SimDuration ack_timeout = 5 * kSecond;
  std::size_t max_construct_attempts = 500;
  /// false: fixed 5 s ack timeout, immediate retries (the paper's
  /// configuration, auto-reconstruct on). true: adaptive RTO + segment
  /// retransmission + exponential backoff.
  bool adaptive = false;
  /// Self-healing (§4.5 failure detection -> §4.1 reconstruction). Off =
  /// the paper's static regime: a timed-out segment is simply lost and
  /// failed paths stay down, so redundancy alone decides delivery — the
  /// regime the SimEra >= SimRep >= CurMix ordering is claimed for.
  bool auto_reconstruct = true;
  /// Backoff schedule for the adaptive mode, scaled for chaos windows of
  /// minutes (the SessionConfig defaults suit long-lived deployments).
  SimDuration backoff_base = 250 * kMillisecond;
  SimDuration backoff_max = 10 * kSecond;
  /// Retransmission budget per segment in adaptive mode (fixed mode's
  /// rebuild-resend loop is effectively unbounded).
  std::size_t adaptive_segment_retries = 6;
  /// > 0 overrides SessionConfig::path_fail_threshold (consecutive
  /// timeouts before an adaptive-mode path is declared failed). The
  /// overload sweep raises it so background link loss is absorbed by
  /// retransmission instead of rebuild churn, keeping offered load the
  /// only stressor. 0 = session default.
  std::size_t path_fail_threshold = 0;
  /// Keep constructing (topping up failed paths) until all k paths stand.
  /// Needed for clean protocol comparisons: with the default partial
  /// provisioning, SimRep(2) can start with one path and degenerate into
  /// CurMix for the whole run.
  bool require_full_paths = false;
  NodeId initiator = 0;
  NodeId responder = 1;

  /// Per-datagram corruption probability of the byzantine relays in
  /// kCorruptedRelayQuorum. The default matches the original scenario;
  /// the byzantine sweep varies it.
  double byzantine_probability = 0.5;
  // Corruption-resilience toggles, forwarded into the session config (and,
  // for relay_suspicion, armed on the initiator's node cache). All default
  // OFF, preserving the pre-feature fingerprints bit-for-bit.
  bool segment_auth = false;        ///< HMAC trailer per segment
  bool verified_decode = false;     ///< digest trailer + subset-search decode
  bool relay_suspicion = false;     ///< evidence-driven quarantine + bias
  bool corruption_escalation = false;  ///< nack-driven re-route/rebuild

  /// > 0 runs a HealthScoreboard (window length = this) across the whole
  /// run; the summary and rendered table land in the result and the
  /// health_* gauges in the run's registry. 0 (default) = no scoreboard,
  /// byte-identical run.
  SimDuration health_interval = 0;
  HealthConfig health;  // interval field ignored; health_interval governs

  /// Workload engine (off = the classic fixed-interval 0xc7 pump, byte
  /// identical to the pre-workload harness). On: Poisson arrivals of mixed
  /// bulk/interactive/streaming messages shaped by `workload.shape`, driven
  /// by a dedicated RNG stream forked after all legacy forks.
  workload::WorkloadConfig workload;
  // Session-side overload knobs, forwarded into SessionConfig. Relay-side
  // knobs live in environment.router.overload. All default OFF.
  std::size_t max_inflight_segments = 0;  ///< bounded send queue (0 = off)
  bool shed_low_priority = false;         ///< bulk refused at 3/4 bound
  bool session_backpressure = false;      ///< congestion hold + neutral stalls
};

struct ChaosResult {
  bool constructed = false;
  std::size_t construct_attempts = 0;

  // Message conservation.
  std::uint64_t send_attempts = 0;      // send_message calls
  std::uint64_t messages_accepted = 0;  // nonzero id returned
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_failed = 0;    // undelivered but explainable
  std::uint64_t messages_unaccounted = 0;  // invariant: 0
  std::uint64_t reassemblies_expired = 0;  // responder-side TTL expiries

  // Byzantine accounting: every delivery is scored against the payload the
  // sender actually sent. `delivered_wrong` is the integrity failure the
  // segment-auth tentpole exists to eliminate — with tags on it must be 0
  // at any corruption rate (fail closed, never fabricate).
  std::uint64_t messages_delivered_correct = 0;
  std::uint64_t messages_delivered_wrong = 0;
  std::uint64_t auth_verified = 0;    // responder-side tag successes
  std::uint64_t auth_rejected = 0;    // responder-side tag failures
  std::uint64_t auth_nacks = 0;       // corrupt-nacks sent back
  std::uint64_t suspicion_reports = 0;  // corrupt + stall evidence filed
  std::uint64_t quarantined_nodes = 0;  // gauge at end of run

  // Segment ledger (session counters after quiesce).
  std::uint64_t segments_sent = 0;
  std::uint64_t acks_matched = 0;
  std::uint64_t segments_expired = 0;
  std::uint64_t segments_retransmitted = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t rebuilds = 0;

  // Residual state after teardown + TTL sweep (invariant: all 0).
  std::size_t leaked_pending_segments = 0;
  std::size_t leaked_path_state = 0;
  std::size_t leaked_pending_constructions = 0;
  std::size_t leaked_reverse_handlers = 0;
  std::size_t leaked_reassembly = 0;

  // Injection + drop accounting.
  fault::FaultyTransport::Counters faults;
  /// Per-cause transport drops, read back from the run's metrics registry
  /// (`net_drops_total{cause=...}`): the registry is the single source of
  /// truth now that SimTransport keeps no bespoke drop counters.
  struct DropStats {
    std::uint64_t sender_dead = 0;
    std::uint64_t receiver_dead = 0;
    std::uint64_t link_loss = 0;
    std::uint64_t no_handler = 0;
    std::uint64_t total() const {
      return sender_dead + receiver_dead + link_loss + no_handler;
    }
  };
  DropStats drops;
  std::uint64_t peel_failures = 0;
  std::uint64_t executed_events = 0;

  /// Populated only when config.health_interval > 0.
  HealthSummary health;
  std::string health_table;  // rendered scoreboard, empty when disabled

  // ---- Overload accounting (NOT part of fingerprint(): the 38-field
  // digest predates this PR and committed baselines pin it). All zero
  // unless the workload/overload knobs are on.
  struct ClassStats {
    std::uint64_t attempts = 0;   // send_message calls for this class
    std::uint64_t accepted = 0;   // nonzero id returned
    std::uint64_t delivered = 0;
    double goodput() const {
      return attempts == 0 ? 0.0
                           : static_cast<double>(delivered) /
                                 static_cast<double>(attempts);
    }
  };
  ClassStats per_class[3];  // indexed by workload::TrafficClass
  /// End-to-end latency of delivered interactive messages (microseconds).
  std::uint64_t interactive_p50_us = 0;
  std::uint64_t interactive_p99_us = 0;
  // Relay-side overload counters, read back from the run's registry.
  std::uint64_t relay_sheds_bulk = 0;
  std::uint64_t relay_sheds_streaming = 0;
  std::uint64_t relay_sheds_interactive = 0;
  std::uint64_t relay_sheds_control = 0;  // invariant: 0 always
  std::uint64_t admission_rejects = 0;
  std::uint64_t backpressure_signals = 0;
  // Session-side overload counters.
  std::uint64_t session_messages_shed = 0;
  std::uint64_t session_segments_deferred = 0;
  std::uint64_t session_backpressure_rx = 0;
  std::uint64_t session_stalls_suppressed = 0;

  double delivery_rate() const {
    return messages_accepted == 0
               ? 0.0
               : static_cast<double>(messages_delivered) /
                     static_cast<double>(messages_accepted);
  }
  /// Fraction of accepted messages delivered with exactly the sent bytes.
  double correct_rate() const {
    return messages_accepted == 0
               ? 0.0
               : static_cast<double>(messages_delivered_correct) /
                     static_cast<double>(messages_accepted);
  }
  /// Fraction of accepted messages delivered with *different* bytes —
  /// the integrity violation. Invariant with segment auth on: 0.
  double wrong_rate() const {
    return messages_accepted == 0
               ? 0.0
               : static_cast<double>(messages_delivered_wrong) /
                     static_cast<double>(messages_accepted);
  }
  /// Fraction of accepted messages that were neither delivered correct nor
  /// delivered wrong: the protocol failed *closed*. With segment auth on,
  /// failed_closed_rate + correct_rate == 1 at every corruption rate.
  double failed_closed_rate() const {
    return messages_accepted == 0
               ? 0.0
               : static_cast<double>(messages_accepted -
                                     messages_delivered_correct -
                                     messages_delivered_wrong) /
                     static_cast<double>(messages_accepted);
  }
  /// Delivered fraction of everything the application *tried* to send.
  /// Unlike delivery_rate() this charges a protocol for refusing sends
  /// while its paths are down (send_message returning 0), so protocols
  /// that stall under faults cannot hide behind a shrunken denominator.
  double attempted_delivery_rate() const {
    return send_attempts == 0
               ? 0.0
               : static_cast<double>(messages_delivered) /
                     static_cast<double>(send_attempts);
  }
  bool ledger_closed() const {
    return segments_sent == acks_matched + segments_expired +
                                segments_retransmitted +
                                leaked_pending_segments;
  }
  std::size_t total_leaks() const {
    return leaked_pending_segments + leaked_path_state +
           leaked_pending_constructions + leaked_reverse_handlers +
           leaked_reassembly;
  }
  /// Order-sensitive digest of every counter — equal fingerprints mean
  /// bit-identical runs.
  std::string fingerprint() const;
};

ChaosResult run_chaos_experiment(const ChaosConfig& config);

}  // namespace p2panon::harness
