// Path-setup success experiment (paper Table 1 and Figure 5).
//
// Reproduces the §6.2 "Path Construction" methodology: 2 h of simulated
// churn; after a 1 h warm-up, every node schedules path-construction
// events with exponentially distributed inter-arrival times (mean 116 s,
// ~16,000 events at N = 1024). At each event the (currently-up) node
// makes ONE whole-set construction attempt per probed protocol spec
// toward a random live responder; success follows each protocol's
// condition (CurMix: the path forms; SimRep: >= 1 of k; SimEra: >= k/r of
// k). Success rates per spec come back as Ratios.
//
// All specs are probed at the same events in one simulation run, so
// protocol comparisons share identical churn/membership history.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "anon/protocols.hpp"
#include "harness/environment.hpp"
#include "metrics/summary.hpp"

namespace p2panon::harness {

struct PathSetupConfig {
  EnvironmentConfig environment;
  SimDuration warmup = 1 * kHour;
  SimDuration measure = 1 * kHour;
  double event_interarrival_seconds = 116.0;
  SimDuration construct_timeout = 5 * kSecond;
  std::vector<anon::ProtocolSpec> specs;
  /// Cap on concurrently outstanding probe sessions (memory guard).
  std::size_t max_outstanding = 200000;
};

struct PathSetupResult {
  std::vector<anon::ProtocolSpec> specs;
  std::vector<metrics::Ratio> success;  // parallel to specs
  std::uint64_t events = 0;
  double availability = 0.0;  // measured over the run
};

PathSetupResult run_path_setup_experiment(const PathSetupConfig& config);

}  // namespace p2panon::harness
