#include "harness/health.hpp"

#include <algorithm>
#include <sstream>

#include "metrics/table.hpp"

namespace p2panon::harness {

namespace {

constexpr const char* kDropCauses[] = {"sender_dead", "receiver_dead",
                                       "link_loss", "no_handler"};
constexpr std::size_t kDropCauseCount =
    sizeof(kDropCauses) / sizeof(kDropCauses[0]);

// Membership-plane injection kinds mirrored by FaultyTransport
// (fault_injections_total{kind=...}).
constexpr const char* kMembershipKinds[] = {"gossip_blackout", "gossip_loss",
                                            "stale_injected",
                                            "claim_inflated"};
constexpr std::size_t kMembershipKindCount =
    sizeof(kMembershipKinds) / sizeof(kMembershipKinds[0]);

std::string format_rate(double v) {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed << v;
  return out.str();
}

}  // namespace

HealthScoreboard::HealthScoreboard(sim::Simulator& simulator,
                                   churn::ChurnModel& churn,
                                   obs::Registry& registry,
                                   std::size_t num_nodes, HealthConfig config)
    : simulator_(simulator),
      churn_(churn),
      registry_(registry),
      config_(config),
      cause_stats_(kDropCauseCount),
      membership_stats_(kMembershipKindCount) {
  if (config_.storm_transitions == 0) {
    config_.storm_transitions =
        std::max<std::uint64_t>(8, static_cast<std::uint64_t>(num_nodes) / 8);
  }
}

void HealthScoreboard::attach_session(const anon::Session& session) {
  session_ = &session;
  path_watch_.assign(session.paths().size(), PathWatch{});
}

void HealthScoreboard::sample() {
  const SimTime now = simulator_.now();
  const double window_s =
      now > last_sample_us_
          ? static_cast<double>(now - last_sample_us_) /
                static_cast<double>(kSecond)
          : 0.0;
  ++summary_.windows;

  // Churn storm detection.
  const std::uint64_t transitions = churn_.total_transitions();
  const std::uint64_t transition_delta = transitions - prev_transitions_;
  prev_transitions_ = transitions;
  summary_.max_transitions_per_window =
      std::max(summary_.max_transitions_per_window, transition_delta);
  const bool storm = transition_delta >= config_.storm_transitions;
  if (storm) ++summary_.churn_storm_windows;
  registry_.gauge("health_churn_transitions_window")
      ->set(static_cast<std::int64_t>(transition_delta));
  registry_.gauge("health_churn_storm")->set(storm ? 1 : 0);

  // Per-cause drop-rate windows.
  for (std::size_t i = 0; i < kDropCauseCount; ++i) {
    CauseStats& stats = cause_stats_[i];
    const std::uint64_t total = registry_.counter_value(
        "net_drops_total", {{"cause", kDropCauses[i]}});
    const std::uint64_t delta = total - stats.prev;
    stats.prev = total;
    stats.window_total += delta;
    summary_.total_window_drops += delta;
    const double rate =
        window_s > 0.0 ? static_cast<double>(delta) / window_s : 0.0;
    stats.max_rate_per_s = std::max(stats.max_rate_per_s, rate);
    summary_.max_drop_rate_per_s =
        std::max(summary_.max_drop_rate_per_s, rate);
    registry_.gauge("health_window_drops", {{"cause", kDropCauses[i]}})
        ->set(static_cast<std::int64_t>(delta));
  }

  // Membership-plane fault windows: injections the fault layer applied to
  // gossip traffic this window, plus leader re-elections (the harness
  // sampler's membership_elections_total counter; reads 0 when absent).
  std::uint64_t membership_delta = 0;
  for (std::size_t i = 0; i < kMembershipKindCount; ++i) {
    CauseStats& stats = membership_stats_[i];
    const std::uint64_t total = registry_.counter_value(
        "fault_injections_total", {{"kind", kMembershipKinds[i]}});
    const std::uint64_t delta = total - stats.prev;
    stats.prev = total;
    stats.window_total += delta;
    membership_delta += delta;
    const double rate =
        window_s > 0.0 ? static_cast<double>(delta) / window_s : 0.0;
    stats.max_rate_per_s = std::max(stats.max_rate_per_s, rate);
    registry_.gauge("health_window_membership_faults",
                    {{"kind", kMembershipKinds[i]}})
        ->set(static_cast<std::int64_t>(delta));
  }
  summary_.total_membership_faults += membership_delta;
  summary_.max_membership_faults_per_window =
      std::max(summary_.max_membership_faults_per_window, membership_delta);
  if (membership_delta > 0) ++summary_.membership_fault_windows;
  const std::uint64_t elections =
      registry_.counter_value("membership_elections_total");
  const std::uint64_t election_delta = elections - prev_elections_;
  prev_elections_ = elections;
  summary_.elections_observed += election_delta;
  registry_.gauge("health_window_elections")
      ->set(static_cast<std::int64_t>(election_delta));

  // Corruption attribution: windows are scored by the evidence both ends
  // produce — responder-side segment-auth rejections and the corrupt-nack
  // verdicts that reached the initiator. Both series sit at zero unless a
  // session opted into the auth trailer, so legacy runs never see a
  // corruption window.
  const std::uint64_t rejections = registry_.counter_value(
      "anon_segment_auth_total", {{"result", "rejected"}});
  const std::uint64_t rejection_delta = rejections - prev_auth_rejections_;
  prev_auth_rejections_ = rejections;
  const std::uint64_t nacks =
      registry_.counter_value("session_corrupt_nacks_total");
  const std::uint64_t nack_delta = nacks - prev_corrupt_nacks_;
  prev_corrupt_nacks_ = nacks;
  summary_.total_auth_rejections += rejection_delta;
  summary_.total_corrupt_nacks += nack_delta;
  summary_.max_rejections_per_window =
      std::max(summary_.max_rejections_per_window, rejection_delta);
  const bool corruption = rejection_delta + nack_delta > 0;
  if (corruption) {
    ++summary_.corruption_windows;
    ++corruption_streak_;
  } else {
    corruption_streak_ = 0;
  }
  summary_.max_corruption_streak =
      std::max(summary_.max_corruption_streak, corruption_streak_);
  registry_.gauge("health_window_auth_rejections")
      ->set(static_cast<std::int64_t>(rejection_delta));
  registry_.gauge("health_corruption_window")->set(corruption ? 1 : 0);

  // Stalled-path detection: established, traffic sent, nothing acked for
  // stall_windows consecutive windows.
  std::int64_t stalled_now = 0;
  if (session_ != nullptr) {
    const auto& paths = session_->paths();
    if (path_watch_.size() < paths.size()) {
      path_watch_.resize(paths.size());
    }
    for (std::size_t i = 0; i < paths.size(); ++i) {
      PathWatch& watch = path_watch_[i];
      const std::uint64_t send_delta = paths[i].sends - watch.prev_sends;
      const std::uint64_t ack_delta = paths[i].acks - watch.prev_acks;
      watch.prev_sends = paths[i].sends;
      watch.prev_acks = paths[i].acks;
      if (paths[i].state == anon::PathState::kEstablished &&
          send_delta > 0 && ack_delta == 0) {
        ++watch.zero_ack_windows;
      } else {
        watch.zero_ack_windows = 0;
      }
      if (watch.zero_ack_windows >= config_.stall_windows) {
        ++stalled_now;
        ++summary_.stalled_path_windows;
      }
    }
  }
  registry_.gauge("health_stalled_paths")->set(stalled_now);

  last_sample_us_ = now;
}

const char* HealthScoreboard::corruption_verdict() const {
  if (summary_.corruption_windows == 0) return "clean";
  return summary_.max_corruption_streak >= config_.corruption_verdict_windows
             ? "sustained"
             : "transient";
}

std::string HealthScoreboard::table() const {
  metrics::Table table({"health signal", "value"});
  table.add_row({"windows", std::to_string(summary_.windows)});
  table.add_row({"churn storm windows",
                 std::to_string(summary_.churn_storm_windows)});
  table.add_row({"max transitions/window",
                 std::to_string(summary_.max_transitions_per_window)});
  table.add_row({"stalled path-windows",
                 std::to_string(summary_.stalled_path_windows)});
  table.add_row({"max drop rate (/s)",
                 format_rate(summary_.max_drop_rate_per_s)});
  table.add_row({"corruption verdict", corruption_verdict()});
  table.add_row({"corruption windows",
                 std::to_string(summary_.corruption_windows) + " (streak " +
                     std::to_string(summary_.max_corruption_streak) + ")"});
  table.add_row({"auth rejections / corrupt nacks",
                 std::to_string(summary_.total_auth_rejections) + " / " +
                     std::to_string(summary_.total_corrupt_nacks)});
  for (std::size_t i = 0; i < kDropCauseCount; ++i) {
    table.add_row({std::string("drops ") + kDropCauses[i],
                   std::to_string(cause_stats_[i].window_total) +
                       " (peak " + format_rate(cause_stats_[i].max_rate_per_s) +
                       "/s)"});
  }
  table.add_row({"membership fault windows",
                 std::to_string(summary_.membership_fault_windows) +
                     " (max/window " +
                     std::to_string(summary_.max_membership_faults_per_window) +
                     ")"});
  for (std::size_t i = 0; i < kMembershipKindCount; ++i) {
    table.add_row({std::string("membership ") + kMembershipKinds[i],
                   std::to_string(membership_stats_[i].window_total) +
                       " (peak " +
                       format_rate(membership_stats_[i].max_rate_per_s) +
                       "/s)"});
  }
  table.add_row({"leader elections", std::to_string(summary_.elections_observed)});
  return table.render();
}

}  // namespace p2panon::harness
