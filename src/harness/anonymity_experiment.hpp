// Empirical anonymity measurement (DESIGN §10).
//
// One run = one Environment with a LinkObserver tapped into the wire, one
// designated initiator/responder pair, and a sequence of short sessions
// ("trials"): construct k paths, send a handful of messages, tear down.
// Optional cover traffic (§4.6) and fast churn arms perturb what the
// observer sees. After the simulation, the offline attack engine replays
// the captured FlowLog — predecessor (paper §5 Case 1, against a planted
// fraction-f insider set), intersection over trial windows, and timing
// correlation at the responder — and each AnonymityReport is paired with
// its closed-form comparator from src/analysis/anonymity.
//
// The observer and every knob here default OFF at the harness level: a
// ChaosConfig/EnvironmentConfig that never mentions this header runs
// byte-identically to the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/attacks.hpp"
#include "adversary/link_observer.hpp"
#include "anon/protocols.hpp"
#include "harness/environment.hpp"

namespace p2panon::harness {

struct AnonymityConfig {
  EnvironmentConfig environment;  // callers usually shrink num_nodes
  anon::ProtocolSpec spec;

  /// Insider fraction f for the predecessor attack; the initiator and
  /// responder are protected (the paper's adversary does not control the
  /// endpoints it is trying to link) and the insiders are pinned up —
  /// a patient adversary does not churn.
  double compromised_fraction = 0.1;

  /// Cover-traffic arm: this many nodes (taken from [2, 2+cover_nodes))
  /// send dummy messages every cover_interval, sized like real ones so
  /// the wire cannot tell them apart.
  bool cover_traffic = false;
  std::size_t cover_nodes = 24;
  SimDuration cover_interval = 10 * kSecond;

  SimDuration warmup = 5 * kMinute;    // gossip convergence
  std::size_t trials = 24;             // sequential sessions
  SimDuration trial_duration = 40 * kSecond;
  SimDuration trial_send_window = 25 * kSecond;  // sends within a trial
  SimDuration send_interval = 5 * kSecond;
  std::size_t message_size = 512;

  SimDuration construct_timeout = 5 * kSecond;
  SimDuration ack_timeout = 5 * kSecond;
  std::size_t max_construct_attempts = 40;

  /// Hold the whole network up for the run. Default ON: validating the
  /// Eq. 4 / 1-(1-f)^k closed forms needs each trial to draw exactly k
  /// first relays, and churn-driven construction retries multiply the
  /// draws (every retry shows the attacker a fresh first relay — the
  /// classic predecessor-attack amplification). The churn arm turns this
  /// off precisely to measure that amplification.
  bool pin_all_up = true;

  /// Timing-correlation lag window: how far back from a responder
  /// ingress the attacker looks for candidate origin sends. Must cover a
  /// path traversal (L hops of mean one-way latency) with slack.
  SimDuration correlation_lag = 5 * kSecond;

  adversary::ObserverConfig observer;  // capture knobs (sampling, bounds)

  /// Non-empty: write the captured flow log as link-record JSONL after
  /// the run — the format tools/trace_analyze ingests via --flows, so
  /// flow records and span traces cross-reference by correlation id.
  std::string flow_log_path;

  NodeId initiator = 0;
  NodeId responder = 1;
};

struct AnonymityResult {
  std::size_t trials_attempted = 0;
  std::size_t trials_constructed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t cover_messages = 0;

  /// Ground truth from session.paths(): fraction of constructed trials
  /// whose path set had at least one compromised first relay. The
  /// predecessor attack's compromise_rate must agree with this — same
  /// events, observed from the wire instead of the protocol.
  double ground_truth_compromise_rate = 0.0;

  /// Actual planted insider fraction over the relay-eligible pool
  /// (count / (N - 2)); the closed forms below use this, not the
  /// requested fraction, so rounding never skews the comparison.
  double effective_fraction = 0.0;
  std::size_t compromised_count = 0;

  adversary::AnonymityReport predecessor;
  adversary::AnonymityReport intersection;
  adversary::AnonymityReport correlation;

  // Closed-form comparators (also copied into the reports' baselines).
  double eq4_identification = 0.0;   // Eq. 4 at (N, f_eff, L)
  double multipath_exposure = 0.0;   // 1 - (1 - f_eff)^k
  double honest_set_size = 0.0;      // N(1 - f) Case-2 pool
  double uniform_entropy = 0.0;      // log2 of the honest pool

  // Capture accounting.
  std::uint64_t flows_recorded = 0;
  std::uint64_t flows_evicted = 0;
  std::uint64_t flows_sampled_out = 0;
};

AnonymityResult run_anonymity_experiment(const AnonymityConfig& config);

}  // namespace p2panon::harness
