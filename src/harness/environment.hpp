// Full-stack simulation environment: the paper's experimental setup
// (§6.1) assembled from the substrates.
//
//   1024 nodes, King-style latency matrix with 152 ms mean RTT, Pareto
//   churn with 1 h median sessions, gossip membership with liveness
//   piggybacking, PKI, onion router.
//
// An Environment owns everything a protocol experiment needs; experiments
// add initiator/responder behavior on top.
#pragma once

#include <memory>
#include <string>

#include "anon/onion.hpp"
#include "anon/router.hpp"
#include "churn/churn_model.hpp"
#include "crypto/keys.hpp"
#include "fault/faulty_transport.hpp"
#include "membership/gossip.hpp"
#include "membership/onehop.hpp"
#include "membership/provider.hpp"
#include "net/demux.hpp"
#include "net/latency_matrix.hpp"
#include "net/sim_transport.hpp"
#include "obs/capacity/census.hpp"
#include "obs/capacity/loop_profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace p2panon::harness {

/// Which dissemination substrate backs the membership layer. Gossip is the
/// default (and the seed behavior); OneHop exists to exercise the leader-
/// failover recovery path under fault plans (DESIGN §9).
enum class MembershipKind { kGossip, kOneHop };

struct EnvironmentConfig {
  std::size_t num_nodes = 1024;
  std::uint64_t seed = 1;
  SimDuration mean_rtt = from_millis(152);
  std::string session_distribution = "pareto:median=3600";
  MembershipKind membership_kind = MembershipKind::kGossip;
  membership::GossipConfig gossip;
  membership::OneHopConfig onehop;  // used when membership_kind == kOneHop
  anon::RouterConfig router;
  bool fast_crypto = true;  // FastOnionCodec for statistical runs
  std::size_t path_length = 3;  // L

  /// Optional scripted fault schedule (not owned; must outlive the
  /// Environment). When set, a FaultyTransport decorator is layered
  /// between the SimTransport and the Demux, and plan crashes are bridged
  /// into the liveness oracle. Null leaves the stack — and every RNG
  /// stream — exactly as before.
  const fault::FaultPlan* fault_plan = nullptr;
  std::uint64_t fault_seed = 0xFA017;

  /// Metrics registry shared by every component in this environment
  /// (transport, fault decorator, router, sessions). Null = the
  /// Environment owns a private registry, so parallel sweep runs never
  /// share series and per-run results stay deterministic.
  obs::Registry* metrics = nullptr;

  /// > 0 starts a periodic sampler exporting simulator gauges
  /// (obs_sim_pending_events / executed / scheduled) into the registry.
  /// Off by default: the sampler schedules events of its own, and the
  /// default run must stay byte-identical to the seed.
  SimDuration obs_sample_interval = 0;

  /// Optional windowed time-series recorder (not owned; must outlive the
  /// Environment). When set with timeseries_interval > 0, start() drives
  /// recorder->sample() off the event queue every interval, closing one
  /// window per registry series. Off by default for the same reason as the
  /// sampler above.
  obs::TimeseriesRecorder* timeseries = nullptr;
  SimDuration timeseries_interval = 0;

  /// Optional capacity loop profiler (not owned; must outlive the
  /// Environment) attached to the simulator at construction. Passive —
  /// it only reads wall clocks around event dispatch, never schedules or
  /// draws randomness — so attaching one keeps runs byte-identical to the
  /// seed; the default (null) costs one branch per event.
  obs::capacity::LoopProfiler* loop_profiler = nullptr;

  /// Optional passive wire observer (not owned; must outlive the
  /// Environment) installed on the SimTransport underneath any fault
  /// decorator — a global observer sees the wire, not the faults' view.
  /// Null (the default) is a plain pointer pass: no RNG stream, event or
  /// registry series changes, so runs stay byte-identical to the seed.
  net::LinkTap* link_tap = nullptr;

  /// > 0 starts a periodic sampler exporting node-cache health for
  /// `membership_obs_node` (record-age p50/p95, stale fraction, cache
  /// size) plus per-merge-rule counters and control-plane stats into the
  /// registry. Off by default: the sampler both schedules events and
  /// lazily registers series, and the default run must stay byte-identical
  /// to the seed.
  SimDuration membership_obs_interval = 0;
  NodeId membership_obs_node = 0;
  SimDuration membership_obs_stale_after = 2 * kMinute;

  /// > 0 starts a periodic sampler exporting router overload state
  /// (leaky-bucket level gauges, hot-node count, shed/admission/
  /// backpressure counter deltas) into the registry. Off by default for
  /// the same reason as the samplers above: it schedules events and
  /// lazily registers series.
  SimDuration overload_obs_interval = 0;
};

class Environment {
 public:
  explicit Environment(EnvironmentConfig config);
  ~Environment();
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  /// Starts churn, gossip and the router. Call once, then run the
  /// simulator.
  void start();

  sim::Simulator& simulator() { return simulator_; }
  churn::ChurnModel& churn() { return *churn_; }
  net::SimTransport& transport() { return *transport_; }
  /// Non-null only when a fault plan was configured.
  fault::FaultyTransport* faulty_transport() { return faulty_.get(); }
  net::Demux& demux() { return *demux_; }
  membership::MembershipProvider& membership() { return *membership_; }
  anon::AnonRouter& router() { return *router_; }
  const crypto::KeyDirectory& directory() const { return directory_; }
  const EnvironmentConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

  /// The run's metrics registry (owned unless the config injected one).
  obs::Registry& metrics() { return *metrics_; }

  /// Picks a currently-up node uniformly, excluding `exclude` (or
  /// kInvalidNode when none is up).
  NodeId random_up_node(NodeId exclude);

  /// Walks every big owned structure (latency matrix, membership caches,
  /// router tables, PKI, event queue) and reports container footprints
  /// into `census`. Read-only — callable mid-run without perturbing it.
  void byte_census(obs::capacity::ByteCensus& census) const;

 private:
  EnvironmentConfig config_;
  Rng rng_;
  std::unique_ptr<obs::Registry> owned_metrics_;
  obs::Registry* metrics_ = nullptr;
  bool attached_trace_clock_ = false;
  std::unique_ptr<sim::PeriodicTask> obs_sampler_;
  std::unique_ptr<sim::PeriodicTask> timeseries_sampler_;
  std::unique_ptr<sim::PeriodicTask> membership_sampler_;
  std::unique_ptr<sim::PeriodicTask> overload_sampler_;
  // Last-seen merge-stat / control-stat values, so the sampler can
  // increment registry counters by delta instead of overwriting.
  membership::NodeCache::MergeStats last_merge_stats_;
  membership::ControlStats last_control_stats_;
  sim::Simulator simulator_;
  std::unique_ptr<net::LatencyMatrix> latency_;
  std::unique_ptr<churn::ChurnModel> churn_;
  std::unique_ptr<net::SimTransport> transport_;
  std::unique_ptr<fault::FaultyTransport> faulty_;
  std::unique_ptr<net::Demux> demux_;
  crypto::KeyDirectory directory_;
  std::unique_ptr<membership::MembershipProvider> membership_;
  std::unique_ptr<anon::OnionCodec> onion_;
  std::unique_ptr<anon::AnonRouter> router_;
};

}  // namespace p2panon::harness
