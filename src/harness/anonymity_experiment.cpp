#include "harness/anonymity_experiment.hpp"

#include <algorithm>
#include <memory>

#include "analysis/anonymity.hpp"
#include "anon/cover_traffic.hpp"

namespace p2panon::harness {

namespace {

/// Rates are exported as per-mille gauges (the registry's gauges are
/// integers); 1000 = certainty, entropy in milli-bits.
std::int64_t permille(double v) {
  return static_cast<std::int64_t>(v * 1000.0 + 0.5);
}

void export_report(obs::Registry& metrics,
                   const adversary::AnonymityReport& report) {
  const std::map<std::string, std::string> label = {
      {"attack", report.attack}};
  metrics.gauge("adversary_success_permille", label)
      ->set(permille(report.success_rate));
  metrics.gauge("adversary_entropy_millibits", label)
      ->set(permille(report.posterior_entropy_bits));
  metrics.gauge("adversary_anonymity_set_permille", label)
      ->set(permille(report.anonymity_set_mean));
  metrics.gauge("adversary_trials", label)
      ->set(static_cast<std::int64_t>(report.trials));
}

}  // namespace

AnonymityResult run_anonymity_experiment(const AnonymityConfig& config) {
  static const auto kSendEvent = obs::capacity::event_type("harness.send");
  const std::size_t n = config.environment.num_nodes;

  // The capture layer is built before the Environment so the transport is
  // born tapped; its counters go to the injected registry if the caller
  // shares one (the private per-run registry does not exist yet here).
  adversary::LinkObserver observer(config.observer,
                                   config.environment.metrics);

  EnvironmentConfig env_config = config.environment;
  env_config.link_tap = &observer;
  Environment env(env_config);

  if (config.pin_all_up) {
    for (NodeId id = 0; id < n; ++id) env.churn().pin_up(id);
  }
  env.churn().pin_up(config.initiator);
  env.churn().pin_up(config.responder);

  // Patient fraction-f insiders: planted once, pinned up for the whole
  // run, endpoints protected (the adversary is trying to link them, not
  // play them).
  const adversary::CompromiseModel model = adversary::CompromiseModel::plant(
      n, config.compromised_fraction, env_config.seed * 1000003ULL + 17,
      {config.initiator, config.responder});
  for (NodeId id = 0; id < n; ++id) {
    if (model.is_compromised(id)) env.churn().pin_up(id);
  }

  AnonymityResult result;
  result.compromised_count = model.count();
  result.effective_fraction =
      n > 2 ? static_cast<double>(model.count()) / static_cast<double>(n - 2)
            : 0.0;

  anon::SessionConfig base_session;
  base_session.path_length = env_config.path_length;
  base_session.construct_timeout = config.construct_timeout;
  base_session.ack_timeout = config.ack_timeout;
  base_session.max_construct_attempts = config.max_construct_attempts;
  // All k paths must stand, or SimEra trials would draw fewer than k
  // first relays and the 1-(1-f)^k comparison would be against the wrong
  // exponent.
  base_session.require_full_construction = true;
  const anon::SessionConfig session_config =
      config.spec.session_config(base_session);

  membership::NodeCache& initiator_cache =
      env.membership().cache(config.initiator);

  // Optional cover plane: nodes [2, 2+cover_nodes) send dummies sized
  // exactly like the real messages, over the same channel — the wire
  // cannot tell them apart, which is the whole point.
  std::unique_ptr<anon::CoverTrafficGenerator> cover;
  if (config.cover_traffic) {
    std::vector<NodeId> cover_set;
    for (NodeId id = 2; id < n && cover_set.size() < config.cover_nodes;
         ++id) {
      cover_set.push_back(id);
    }
    anon::CoverTrafficConfig cover_config;
    cover_config.interval = config.cover_interval;
    cover_config.k = 1;
    cover_config.message_size = config.message_size;
    cover_config.path_length = env_config.path_length;
    cover = std::make_unique<anon::CoverTrafficGenerator>(
        env.router(),
        [&env](NodeId node) -> const membership::NodeCache& {
          return env.membership().cache(node);
        },
        [&env](NodeId node) { return env.churn().is_up(node); },
        std::move(cover_set),
        [cover_config](NodeId) { return cover_config; }, env.rng().fork(),
        &env.metrics());
    env.simulator().schedule_at(
        config.warmup, [&cover] { cover->start(); },
        obs::capacity::event_type("harness.send"));
  }

  // Sequential trials: one short-lived session each, with its window and
  // ground-truth first relays recorded for scoring.
  std::unique_ptr<anon::Session> current;
  std::uint64_t generation = 0;
  std::vector<adversary::TrialWindow> windows;
  std::size_t ground_truth_hits = 0;
  const Bytes payload(config.message_size, 0xa9);

  std::function<void(std::uint64_t, SimTime)> send_loop;
  send_loop = [&](std::uint64_t gen, SimTime window_end) {
    if (gen != generation || current == nullptr) return;
    if (env.simulator().now() > window_end) return;
    if (current->send_message(payload) != 0) ++result.messages_sent;
    env.simulator().schedule_after(
        config.send_interval,
        [&send_loop, gen, window_end] { send_loop(gen, window_end); },
        kSendEvent);
  };

  for (std::size_t i = 0; i < config.trials; ++i) {
    const SimTime t0 = config.warmup + i * config.trial_duration;
    env.simulator().schedule_at(t0, [&, t0] {
      ++result.trials_attempted;
      ++generation;
      const std::uint64_t gen = generation;
      current = std::make_unique<anon::Session>(
          env.router(), initiator_cache, config.initiator, config.responder,
          session_config, env.rng().fork());
      current->construct([&, gen, t0](bool ok, std::size_t) {
        if (!ok || gen != generation) return;
        ++result.trials_constructed;
        bool compromised_first_relay = false;
        for (const auto& path : current->paths()) {
          if (path.state == anon::PathState::kEstablished &&
              !path.relays.empty() &&
              model.is_compromised(path.relays.front())) {
            compromised_first_relay = true;
          }
        }
        if (compromised_first_relay) ++ground_truth_hits;
        // End one microsecond short of the next trial's start: window
        // bounds are inclusive and the next construct onion leaves at
        // exactly t0 + trial_duration.
        windows.push_back(
            {static_cast<std::uint64_t>(t0),
             static_cast<std::uint64_t>(t0 + config.trial_duration) - 1});
        send_loop(gen, t0 + config.trial_send_window);
      });
      // Tear down well before the next trial starts, so windows do not
      // bleed into each other on the wire.
      env.simulator().schedule_at(t0 + config.trial_duration - 2 * kSecond,
                                  [&, gen] {
                                    if (gen == generation &&
                                        current != nullptr) {
                                      current->teardown();
                                    }
                                  });
    });
  }

  env.start();
  env.simulator().run_until(config.warmup +
                            config.trials * config.trial_duration +
                            30 * kSecond);
  if (current != nullptr) current->teardown();

  result.ground_truth_compromise_rate =
      result.trials_constructed == 0
          ? 0.0
          : static_cast<double>(ground_truth_hits) /
                static_cast<double>(result.trials_constructed);
  if (cover != nullptr) result.cover_messages = cover->cover_messages_sent();
  if (!config.flow_log_path.empty()) {
    observer.log().write_jsonl(config.flow_log_path);
  }
  result.flows_recorded = observer.log().appended();
  result.flows_evicted = observer.log().evicted();
  result.flows_sampled_out = observer.sampled_out();

  // Offline attack pass over the captured log.
  adversary::AttackScenario scenario;
  scenario.log = &observer.log();
  scenario.initiator = config.initiator;
  scenario.responder = config.responder;
  scenario.num_nodes = n;
  result.predecessor = adversary::predecessor_attack(scenario, model, windows);
  result.intersection = adversary::intersection_attack(scenario, windows);
  result.correlation = adversary::correlation_attack(
      scenario, windows,
      static_cast<std::uint64_t>(config.correlation_lag));

  // Closed-form comparators at the *planted* fraction, so integer
  // rounding of f*N never skews the gate.
  const double f = result.effective_fraction;
  const std::size_t L = env_config.path_length;
  const std::size_t honest = analysis::honest_anonymity_set(n, f);
  result.eq4_identification =
      analysis::initiator_identification_probability(n, f, L);
  result.multipath_exposure =
      analysis::multipath_first_relay_exposure(f, config.spec.k);
  result.honest_set_size = static_cast<double>(honest);
  result.uniform_entropy = analysis::uniform_entropy_bits(honest);

  result.predecessor.baseline_success = result.eq4_identification;
  result.predecessor.baseline_entropy_bits = result.uniform_entropy;
  const double ideal =
      honest == 0 ? 0.0 : 1.0 / static_cast<double>(honest);
  result.intersection.baseline_success = ideal;
  result.intersection.baseline_entropy_bits = result.uniform_entropy;
  result.correlation.baseline_success = ideal;
  result.correlation.baseline_entropy_bits = result.uniform_entropy;

  // Surface through the run's registry so timeseries/export see them.
  export_report(env.metrics(), result.predecessor);
  export_report(env.metrics(), result.intersection);
  export_report(env.metrics(), result.correlation);
  env.metrics()
      .gauge("adversary_compromised_nodes")
      ->set(static_cast<std::int64_t>(model.count()));
  env.metrics()
      .gauge("adversary_flows_recorded")
      ->set(static_cast<std::int64_t>(result.flows_recorded));

  return result;
}

}  // namespace p2panon::harness
