#include "harness/environment.hpp"

#include "churn/distributions.hpp"
#include "common/alloc_probe.hpp"
#include "obs/trace.hpp"

namespace p2panon::harness {

namespace {
std::uint64_t tracer_sim_clock(const void* ctx) {
  return static_cast<std::uint64_t>(
      static_cast<const sim::Simulator*>(ctx)->now());
}
}  // namespace

Environment::Environment(EnvironmentConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::Registry>();
    metrics_ = owned_metrics_.get();
  }
  // A traced run stamps events with this simulator's clock. Attach only
  // while tracing is on: parallel sweeps build many environments at once
  // and must not fight over the tracer's single clock slot.
  if (obs::Tracer::instance().enabled()) {
    obs::Tracer::instance().set_sim_clock(&tracer_sim_clock, &simulator_);
    attached_trace_clock_ = true;
  }
  simulator_.set_profiler(config_.loop_profiler);
  // Alloc-probe subsystem tags: in binaries that link the counting hooks
  // (scale_probe, capacity tests) each phase's heap bytes are attributed
  // to its subsystem; elsewhere MemScope collapses to two no-op calls.
  {
    alloc_probe::MemScope mem_scope("latency_matrix");
    latency_ = std::make_unique<net::LatencyMatrix>(
        net::LatencyMatrix::synthetic(config_.num_nodes, rng_.fork(),
                                      config_.mean_rtt));
  }

  {
    alloc_probe::MemScope mem_scope("churn");
    const auto session_dist =
        churn::parse_distribution(config_.session_distribution);
    churn_ = std::make_unique<churn::ChurnModel>(
        simulator_, config_.num_nodes, *session_dist, rng_.fork());
  }
  alloc_probe::MemScope transport_scope("transport");

  // The liveness oracle folds in plan-scripted crashes so that a crashed
  // node also refuses deliveries that are already in flight (same failure
  // mode as churn). With no plan this is exactly the churn oracle.
  transport_ = std::make_unique<net::SimTransport>(
      simulator_, *latency_,
      [this](NodeId node) {
        if (!churn_->is_up(node)) return false;
        return !(config_.fault_plan &&
                 config_.fault_plan->is_crashed(node, simulator_.now()));
      },
      /*per_hop_overhead=*/0, net::LinkFaultConfig{}, metrics_);
  transport_->set_tap(config_.link_tap);

  if (config_.fault_plan != nullptr) {
    faulty_ = std::make_unique<fault::FaultyTransport>(
        *transport_, *config_.fault_plan, config_.fault_seed, &simulator_,
        metrics_);
  }
  net::Transport& wire = faulty_ ? static_cast<net::Transport&>(*faulty_)
                                 : static_cast<net::Transport&>(*transport_);
  demux_ = std::make_unique<net::Demux>(wire, config_.num_nodes);

  alloc_probe::MemScope pki_scope("pki");
  Rng key_rng = rng_.fork();
  auto node_keys = directory_.provision(config_.num_nodes, key_rng);
  alloc_probe::MemScope membership_scope("membership");

  // Either provider consumes exactly one fork here, so switching kinds
  // leaves every downstream RNG stream (router) in place, and the default
  // (gossip) run stays byte-identical to the seed.
  if (config_.membership_kind == MembershipKind::kOneHop) {
    membership_ = std::make_unique<membership::OneHopMembership>(
        simulator_, *demux_, *churn_, config_.onehop, rng_.fork());
  } else {
    membership_ = std::make_unique<membership::GossipMembership>(
        simulator_, *demux_, *churn_, config_.gossip, rng_.fork());
  }

  alloc_probe::MemScope router_scope("router");
  if (config_.fast_crypto) {
    onion_ = std::make_unique<anon::FastOnionCodec>();
  } else {
    onion_ = std::make_unique<anon::RealOnionCodec>();
  }
  anon::RouterConfig router_config = config_.router;
  if (router_config.metrics == nullptr) router_config.metrics = metrics_;
  router_ = std::make_unique<anon::AnonRouter>(
      simulator_, *demux_, *onion_, directory_, std::move(node_keys),
      [this](NodeId node) { return churn_->is_up(node); }, router_config,
      rng_.fork());
}

Environment::~Environment() {
  if (attached_trace_clock_) {
    obs::Tracer::instance().set_sim_clock(nullptr, nullptr);
  }
}

void Environment::start() {
  membership_->start();  // subscribes to churn before transitions begin
  router_->start();
  churn_->start();
  static const auto kSamplerEvent = obs::capacity::event_type("obs.sampler");
  if (config_.obs_sample_interval > 0) {
    obs::Gauge* pending = metrics_->gauge("obs_sim_pending_events");
    obs::Gauge* executed = metrics_->gauge("obs_sim_executed_events");
    obs::Gauge* scheduled = metrics_->gauge("obs_sim_scheduled_events");
    obs_sampler_ = std::make_unique<sim::PeriodicTask>(
        simulator_, config_.obs_sample_interval,
        [this, pending, executed, scheduled] {
          pending->set(static_cast<std::int64_t>(simulator_.pending_events()));
          executed->set(
              static_cast<std::int64_t>(simulator_.executed_events()));
          scheduled->set(
              static_cast<std::int64_t>(simulator_.scheduled_total()));
        },
        kSamplerEvent);
    obs_sampler_->start();
  }
  if (config_.membership_obs_interval > 0 &&
      config_.membership_obs_node < config_.num_nodes) {
    obs::Gauge* age_p50 = metrics_->gauge("membership_record_age_p50_ms");
    obs::Gauge* age_p95 = metrics_->gauge("membership_record_age_p95_ms");
    obs::Gauge* stale_bp = metrics_->gauge("membership_stale_fraction_bp");
    obs::Gauge* known = metrics_->gauge("membership_cache_known");
    obs::Counter* upd_direct = metrics_->counter(
        "membership_cache_updates_total", {{"rule", "direct"}});
    obs::Counter* upd_indirect = metrics_->counter(
        "membership_cache_updates_total", {{"rule", "indirect"}});
    obs::Counter* upd_rejected = metrics_->counter(
        "membership_cache_updates_total", {{"rule", "rejected"}});
    obs::Counter* upd_inflated = metrics_->counter(
        "membership_cache_updates_total", {{"rule", "inflated"}});
    obs::Counter* ae_rounds =
        metrics_->counter("membership_anti_entropy_rounds_total");
    obs::Counter* repair_sent =
        metrics_->counter("membership_repair_records_sent_total");
    obs::Counter* repair_accepted =
        metrics_->counter("membership_repair_records_accepted_total");
    obs::Counter* elections = metrics_->counter("membership_elections_total");
    membership_sampler_ = std::make_unique<sim::PeriodicTask>(
        simulator_, config_.membership_obs_interval,
        [this, age_p50, age_p95, stale_bp, known, upd_direct, upd_indirect,
         upd_rejected, upd_inflated, ae_rounds, repair_sent, repair_accepted,
         elections] {
          const auto& cache = membership_->cache(config_.membership_obs_node);
          const auto ages = cache.age_stats(
              simulator_.now(), config_.membership_obs_stale_after);
          age_p50->set(static_cast<std::int64_t>(to_millis(ages.age_p50)));
          age_p95->set(static_cast<std::int64_t>(to_millis(ages.age_p95)));
          stale_bp->set(
              static_cast<std::int64_t>(ages.stale_fraction * 10000.0));
          known->set(static_cast<std::int64_t>(ages.alive_known));
          const auto merges = cache.merge_stats();
          upd_direct->inc(merges.updates_direct -
                          last_merge_stats_.updates_direct);
          upd_indirect->inc(merges.updates_indirect -
                            last_merge_stats_.updates_indirect);
          upd_rejected->inc(merges.merges_rejected -
                            last_merge_stats_.merges_rejected);
          upd_inflated->inc(merges.inflated_rejected -
                            last_merge_stats_.inflated_rejected);
          last_merge_stats_ = merges;
          const auto control = membership_->control_stats();
          ae_rounds->inc(control.anti_entropy_rounds -
                         last_control_stats_.anti_entropy_rounds);
          repair_sent->inc(control.repair_records_sent -
                           last_control_stats_.repair_records_sent);
          repair_accepted->inc(control.repair_records_accepted -
                               last_control_stats_.repair_records_accepted);
          elections->inc(control.elections - last_control_stats_.elections);
          last_control_stats_ = control;
        },
        kSamplerEvent);
    membership_sampler_->start();
  }
  if (config_.overload_obs_interval > 0) {
    obs::Gauge* max_level = metrics_->gauge("anon_overload_max_level_bp");
    obs::Gauge* mean_level = metrics_->gauge("anon_overload_mean_level_bp");
    obs::Gauge* hot_nodes = metrics_->gauge("anon_overload_hot_nodes");
    overload_sampler_ = std::make_unique<sim::PeriodicTask>(
        simulator_, config_.overload_obs_interval,
        [this, max_level, mean_level, hot_nodes] {
          const auto stats = router_->overload_stats(simulator_.now());
          // Levels exported in basis points of capacity so integer gauges
          // keep sub-percent resolution.
          const double cap =
              stats.capacity > 0 ? static_cast<double>(stats.capacity) : 1.0;
          max_level->set(
              static_cast<std::int64_t>(stats.max_level / cap * 10000.0));
          mean_level->set(static_cast<std::int64_t>(
              stats.total_level / cap /
              static_cast<double>(config_.num_nodes) * 10000.0));
          hot_nodes->set(static_cast<std::int64_t>(stats.hot_nodes));
        },
        kSamplerEvent);
    overload_sampler_->start();
  }
  if (config_.timeseries != nullptr && config_.timeseries_interval > 0) {
    timeseries_sampler_ = std::make_unique<sim::PeriodicTask>(
        simulator_, config_.timeseries_interval,
        [this] { config_.timeseries->sample(simulator_.now()); },
        kSamplerEvent);
    timeseries_sampler_->start();
  }
}

void Environment::byte_census(obs::capacity::ByteCensus& census) const {
  census.add("latency_matrix", "delays", latency_->memory_bytes());
  membership_->byte_census(census);
  router_->byte_census(census);
  census.add("pki", "directory", directory_.memory_bytes());
  census.add("sim", "event_queue", simulator_.queue_memory_bytes());
}

NodeId Environment::random_up_node(NodeId exclude) {
  if (churn_->up_count() == 0) return kInvalidNode;
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const NodeId candidate =
        static_cast<NodeId>(rng_.next_below(config_.num_nodes));
    if (candidate != exclude && churn_->is_up(candidate)) return candidate;
  }
  return kInvalidNode;
}

}  // namespace p2panon::harness
