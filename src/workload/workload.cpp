#include "workload/workload.hpp"

#include <algorithm>

namespace p2panon::workload {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

WorkloadEngine::WorkloadEngine(WorkloadConfig config, SimTime window_start,
                               SimDuration window_span, Rng rng)
    : config_(config),
      window_start_(window_start),
      window_span_(window_span),
      flash_(flash_crowd_window(window_start, window_span)),
      weight_total_(config.bulk_weight + config.interactive_weight +
                    config.streaming_weight),
      rng_(rng) {
  if (weight_total_ <= 0.0) {
    // Degenerate mix: fall back to all-interactive so next() stays total.
    config_.interactive_weight = 1.0;
    weight_total_ = 1.0;
  }
}

double WorkloadEngine::rate_multiplier(SimTime t) const {
  switch (config_.shape) {
    case LoadShape::kSteady:
      return 1.0;
    case LoadShape::kDiurnal: {
      if (config_.diurnal_period <= 0) return 1.0;
      const double phase =
          2.0 * kPi *
          (static_cast<double>(t - window_start_) /
           static_cast<double>(config_.diurnal_period));
      const double m = 1.0 + config_.diurnal_amplitude * std::sin(phase);
      return std::max(m, 1e-6);
    }
    case LoadShape::kFlashCrowd:
      return flash_.contains(t) ? config_.flash_multiplier : 1.0;
  }
  return 1.0;
}

TrafficClass WorkloadEngine::pick_class() {
  const double u = rng_.next_double() * weight_total_;
  if (u < config_.bulk_weight) return TrafficClass::kBulk;
  if (u < config_.bulk_weight + config_.interactive_weight) {
    return TrafficClass::kInteractive;
  }
  return TrafficClass::kStreaming;
}

std::size_t WorkloadEngine::class_size(TrafficClass cls) const {
  switch (cls) {
    case TrafficClass::kBulk:
      return config_.bulk_size;
    case TrafficClass::kInteractive:
      return config_.interactive_size;
    case TrafficClass::kStreaming:
      return config_.streaming_size;
  }
  return config_.interactive_size;
}

Arrival WorkloadEngine::next(SimTime now) {
  // Non-homogeneous Poisson arrivals via Lewis–Shedler thinning: draw
  // candidates at the peak rate and accept each with probability
  // multiplier(candidate)/peak. Exact for our piecewise / sinusoidal
  // multipliers and fully deterministic given the engine's RNG stream.
  double peak = 1.0;
  switch (config_.shape) {
    case LoadShape::kSteady:
      break;
    case LoadShape::kDiurnal:
      peak = 1.0 + std::max(config_.diurnal_amplitude, 0.0);
      break;
    case LoadShape::kFlashCrowd:
      peak = std::max(config_.flash_multiplier, 1.0);
      break;
  }
  const double mean_at_peak =
      static_cast<double>(config_.mean_interarrival) / peak;

  SimTime candidate = now;
  for (int guard = 0; guard < 4096; ++guard) {
    const double dt = rng_.exponential(mean_at_peak);
    candidate += std::max<SimDuration>(1, static_cast<SimDuration>(dt));
    const double accept = rate_multiplier(candidate) / peak;
    if (rng_.next_double() < accept) break;
  }

  Arrival arrival;
  arrival.wait = candidate - now;
  arrival.cls = pick_class();
  arrival.size = std::max<std::size_t>(1, class_size(arrival.cls));
  return arrival;
}

}  // namespace p2panon::workload
