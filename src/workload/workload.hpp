#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace p2panon::workload {

// Traffic classes an initiator can generate. The numeric values double as
// shed-priority order: lower values are shed first under overload (bulk
// before streaming before interactive; control traffic lives above all of
// these and is never shed — see anon::SegmentPriority).
enum class TrafficClass : std::uint8_t {
  kBulk = 0,
  kInteractive = 1,
  kStreaming = 2,
};

inline const char* traffic_class_name(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kBulk:
      return "bulk";
    case TrafficClass::kInteractive:
      return "interactive";
    case TrafficClass::kStreaming:
      return "streaming";
  }
  return "unknown";
}

// Shape of the offered-load curve over the measurement window.
enum class LoadShape : std::uint8_t {
  kSteady = 0,      // constant mean arrival rate
  kDiurnal = 1,     // sinusoidal day/night curve around the mean
  kFlashCrowd = 2,  // steady with a multiplied spike inside the flash window
};

inline const char* load_shape_name(LoadShape shape) {
  switch (shape) {
    case LoadShape::kSteady:
      return "steady";
    case LoadShape::kDiurnal:
      return "diurnal";
    case LoadShape::kFlashCrowd:
      return "flash";
  }
  return "unknown";
}

// The flash-crowd window inside a measurement span. This is the single
// definition shared by the workload engine (load spike) and the chaos
// scenario planner (kFlashCrowdCrash crashes victims at window.begin and
// recovers them at window.end), so "when the flash crowd happens" is
// defined exactly once.
struct FlashWindow {
  SimTime begin = 0;
  SimTime end = 0;

  bool contains(SimTime t) const { return t >= begin && t < end; }
};

inline FlashWindow flash_crowd_window(SimTime start, SimDuration span) {
  const SimTime begin = start + span / 4;
  return FlashWindow{begin, begin + span / 4};
}

struct WorkloadConfig {
  // Master switch. Off means off: with enabled=false no engine is built,
  // no RNG stream is forked, and runs are byte-identical to the legacy
  // fixed-interval sender.
  bool enabled = false;

  LoadShape shape = LoadShape::kSteady;

  // Mean inter-arrival time between messages at the baseline (multiplier
  // 1.0) load level. Arrivals are exponential, so the offered rate is
  // 1/mean_interarrival scaled by the shape multiplier.
  SimDuration mean_interarrival = 2 * kSecond;

  // Relative mix weights; normalized internally, need not sum to 1.
  double bulk_weight = 0.25;
  double interactive_weight = 0.5;
  double streaming_weight = 0.25;

  // Message payload size per class.
  std::size_t bulk_size = 4096;
  std::size_t interactive_size = 256;
  std::size_t streaming_size = 1024;

  // Diurnal shape: multiplier = 1 + amplitude * sin(2*pi * t/period).
  SimDuration diurnal_period = 10 * kMinute;
  double diurnal_amplitude = 0.6;

  // Flash-crowd shape: arrival rate is multiplied by this inside the
  // flash window and 1.0 outside it.
  double flash_multiplier = 4.0;
};

// One generated arrival: wait this long from "now", then send a message of
// this class and size.
struct Arrival {
  SimDuration wait = 0;
  TrafficClass cls = TrafficClass::kInteractive;
  std::size_t size = 0;
};

// Deterministic per-initiator traffic generator. Owns a forked RNG stream
// so that two engines with the same config + seed emit the same arrival
// sequence regardless of what the rest of the simulation does.
class WorkloadEngine {
 public:
  // window_start/window_span anchor the load curve: the diurnal phase is
  // zero at window_start and the flash window is flash_crowd_window(
  // window_start, window_span).
  WorkloadEngine(WorkloadConfig config, SimTime window_start,
                 SimDuration window_span, Rng rng);

  // Draw the next arrival given the current sim time. Thinning is exact
  // for piecewise-constant rates because the multiplier is evaluated at
  // the arrival candidate's own time.
  Arrival next(SimTime now);

  // Instantaneous rate multiplier at time t (1.0 for steady shape).
  double rate_multiplier(SimTime t) const;

  const FlashWindow& flash_window() const { return flash_; }

 private:
  TrafficClass pick_class();
  std::size_t class_size(TrafficClass cls) const;

  WorkloadConfig config_;
  SimTime window_start_;
  SimDuration window_span_;
  FlashWindow flash_;
  double weight_total_;
  Rng rng_;
};

}  // namespace p2panon::workload
