// Minimal JSON utilities for the observability layer.
//
// The repo only ever *writes* JSON (metrics snapshots, Chrome trace events,
// JSONL causal logs), so there is no DOM: just string escaping for the
// emitters and a strict structural validator that tests and CI use to prove
// every emitted document actually parses.
#pragma once

#include <string>
#include <string_view>

namespace p2panon::obs {

/// Escapes `s` for embedding inside a JSON string literal. Quotes are not
/// added; control characters become \u00XX sequences.
std::string json_escape(std::string_view s);

/// Strict recursive-descent check that `text` is exactly one valid JSON
/// value (RFC 8259 grammar, nesting capped at 512 levels). Trailing
/// whitespace is allowed; trailing garbage is not.
bool json_valid(std::string_view text);

}  // namespace p2panon::obs
