// Minimal JSON utilities for the observability layer.
//
// The emitters (metrics snapshots, Chrome trace events, JSONL causal logs)
// use json_escape + a strict structural validator. The trace analyzer also
// *reads* its own output back, so there is a small DOM (JsonValue +
// json_parse) with one non-negotiable property: numbers keep their raw
// source token. Correlation ids are full uint64s, and round-tripping them
// through a double (the usual lazy DOM design) silently corrupts anything
// above 2^53.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p2panon::obs {

/// Escapes `s` for embedding inside a JSON string literal. Quotes are not
/// added; control characters become \u00XX sequences.
std::string json_escape(std::string_view s);

/// Strict recursive-descent check that `text` is exactly one valid JSON
/// value (RFC 8259 grammar, nesting capped at 512 levels). Trailing
/// whitespace is allowed; trailing garbage is not.
bool json_valid(std::string_view text);

/// Parsed JSON value. Objects keep insertion order; numbers keep the raw
/// token so integer precision survives (see header comment).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string raw_number;  // verbatim source token, kNumber only
  std::string string;      // unescaped, kString only
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// First member with this key, nullptr if absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Numeric views of the raw token; 0 / 0.0 when not a number. as_u64
  /// parses the token with strtoull so 64-bit correlation ids survive.
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;

  /// `string` if kString, otherwise the fallback.
  std::string_view as_string(std::string_view fallback = "") const;
};

/// Parses exactly one JSON value (same grammar and nesting cap as
/// json_valid). Returns nullptr on any syntax error or trailing garbage.
std::unique_ptr<JsonValue> json_parse(std::string_view text);

}  // namespace p2panon::obs
