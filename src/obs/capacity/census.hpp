// Explicit byte census: a visitor the big per-node structures report
// their actual container footprints into, so "the latency matrix is
// O(N²)" becomes a number per subsystem and per node instead of a
// comment. Unlike the alloc-probe (which needs the counting hooks linked
// and attributes whatever happens to allocate), the census is a
// deterministic walk of known structures — same topology, same bytes —
// so it can live inside committed baselines and CI gates.
//
// Usage:
//   ByteCensus census;
//   environment.byte_census(census);     // each subsystem add()s entries
//   census.to_json(config.num_nodes);    // totals + bytes-per-node
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace p2panon::obs {
class Registry;
}  // namespace p2panon::obs

namespace p2panon::obs::capacity {

/// Container footprint helper: allocated capacity, not just size, because
/// capacity is what the process actually holds.
template <typename Vector>
std::uint64_t vector_bytes(const Vector& v) {
  return static_cast<std::uint64_t>(v.capacity()) *
         sizeof(typename Vector::value_type);
}

/// Node-based container footprint estimate (unordered_map/set): the bucket
/// array plus one heap node per element (value, next pointer, cached hash).
/// An estimate, not an exact heap measurement — but a deterministic one for
/// a given element count and stdlib, which is what the census needs.
template <typename Map>
std::uint64_t hash_map_bytes(const Map& m) {
  return static_cast<std::uint64_t>(m.bucket_count()) * sizeof(void*) +
         static_cast<std::uint64_t>(m.size()) *
             (sizeof(typename Map::value_type) + 2 * sizeof(void*));
}

struct CensusEntry {
  std::string subsystem;  // e.g. "latency_matrix", "gossip", "flow_log"
  std::string detail;     // e.g. "delays", "rumor_queues"
  std::uint64_t bytes = 0;
};

class ByteCensus {
 public:
  void add(std::string subsystem, std::string detail, std::uint64_t bytes);

  const std::vector<CensusEntry>& entries() const { return entries_; }
  std::uint64_t total() const;
  std::uint64_t subsystem_total(const std::string& subsystem) const;

  /// (subsystem, bytes) pairs, one per distinct subsystem, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> subsystem_totals() const;

  /// One JSON object: total bytes, bytes-per-node, and the per-subsystem
  /// breakdown (each with its own bytes_per_node and detail list), every
  /// list sorted by name so documents diff cleanly.
  std::string to_json(std::size_t num_nodes) const;

  /// Exports cap_census_bytes{subsystem=...} gauges plus the total.
  void publish(Registry& registry) const;

 private:
  std::vector<CensusEntry> entries_;
};

}  // namespace p2panon::obs::capacity
