#include "obs/capacity/loop_profiler.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace p2panon::obs::capacity {

namespace {

using Clock = std::chrono::steady_clock;

struct TypeTable {
  std::mutex mutex;
  std::vector<std::string> names{"untyped"};
};

TypeTable& type_table() {
  static TypeTable table;
  return table;
}

std::uint64_t elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Mean cost of one timed sample (two steady_clock reads plus the slot
/// update), measured over a fixed burst so the estimate is cheap and
/// stable. Re-run per profiler: frequency scaling between runs is real
/// overhead and should be re-measured, not cached.
double calibrate_clock_pair_ns() {
  constexpr int kBurst = 4096;
  volatile std::uint64_t sink = 0;
  const auto start = Clock::now();
  for (int i = 0; i < kBurst; ++i) {
    const auto t0 = Clock::now();
    const auto t1 = Clock::now();
    sink = sink + elapsed_ns(t0, t1);
  }
  const auto end = Clock::now();
  return static_cast<double>(elapsed_ns(start, end)) / kBurst;
}

}  // namespace

EventTypeId event_type(const char* name) {
  if (name == nullptr || name[0] == '\0') return kUntypedEvent;
  TypeTable& table = type_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  for (std::size_t i = 0; i < table.names.size(); ++i) {
    if (table.names[i] == name) return static_cast<EventTypeId>(i);
  }
  if (table.names.size() >= kMaxEventTypes) return kUntypedEvent;
  table.names.emplace_back(name);
  return static_cast<EventTypeId>(table.names.size() - 1);
}

const char* event_type_name(EventTypeId id) {
  TypeTable& table = type_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  if (id >= table.names.size()) return "";
  return table.names[id].c_str();
}

std::size_t event_type_count() {
  TypeTable& table = type_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  return table.names.size();
}

LoopProfiler::LoopProfiler() : LoopProfiler(Config{}) {}

LoopProfiler::LoopProfiler(Config config)
    : stride_(config.sample_stride > 0 ? config.sample_stride : 1),
      clock_pair_ns_(calibrate_clock_pair_ns()) {}

void LoopProfiler::dispatch(EventTypeId type,
                            const std::function<void()>& fn) {
  Slot& slot = slots_[type < kMaxEventTypes ? type : kUntypedEvent];
  ++slot.dispatches;
  if (++tick_ >= stride_) {
    tick_ = 0;
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    ++slot.samples;
    slot.sampled_ns += elapsed_ns(t0, t1);
  } else {
    fn();
  }
}

LoopProfiler::Report LoopProfiler::report() const {
  Report out;
  out.clock_pair_ns = clock_pair_ns_;
  out.sample_stride = stride_;
  for (std::size_t i = 0; i < kMaxEventTypes; ++i) {
    const Slot& slot = slots_[i];
    if (slot.dispatches == 0) continue;
    TypeReport type;
    type.name = event_type_name(static_cast<EventTypeId>(i));
    if (type.name.empty()) type.name = "untyped";
    type.dispatches = slot.dispatches;
    type.samples = slot.samples;
    type.sampled_ns = slot.sampled_ns;
    if (slot.samples > 0) {
      type.est_total_ns = static_cast<double>(slot.sampled_ns) *
                          static_cast<double>(slot.dispatches) /
                          static_cast<double>(slot.samples);
    }
    out.dispatches_total += slot.dispatches;
    out.samples_total += slot.samples;
    out.sampled_ns_total += slot.sampled_ns;
    out.est_busy_ns_total += type.est_total_ns;
    out.types.push_back(std::move(type));
  }
  out.est_overhead_ns =
      static_cast<double>(out.samples_total) * clock_pair_ns_;
  for (TypeReport& type : out.types) {
    type.share = out.est_busy_ns_total > 0
                     ? type.est_total_ns / out.est_busy_ns_total
                     : 0.0;
  }
  std::sort(out.types.begin(), out.types.end(),
            [](const TypeReport& a, const TypeReport& b) {
              if (a.est_total_ns != b.est_total_ns) {
                return a.est_total_ns > b.est_total_ns;
              }
              return a.name < b.name;
            });
  return out;
}

std::string LoopProfiler::report_json() const {
  const Report rep = report();
  std::string out = "{\"dispatches\":" + std::to_string(rep.dispatches_total);
  out += ",\"samples\":" + std::to_string(rep.samples_total);
  out += ",\"sample_stride\":" + std::to_string(rep.sample_stride);
  out += ",\"sampled_ns\":" + std::to_string(rep.sampled_ns_total);
  out += ",\"est_busy_ns\":" + std::to_string(rep.est_busy_ns_total);
  out += ",\"clock_pair_ns\":" + std::to_string(rep.clock_pair_ns);
  out += ",\"est_overhead_ns\":" + std::to_string(rep.est_overhead_ns);
  out += ",\"types\":[";
  bool first = true;
  for (const TypeReport& type : rep.types) {
    if (!first) out += ',';
    first = false;
    out += "{\"type\":\"" + json_escape(type.name) + '"';
    out += ",\"dispatches\":" + std::to_string(type.dispatches);
    out += ",\"samples\":" + std::to_string(type.samples);
    out += ",\"sampled_ns\":" + std::to_string(type.sampled_ns);
    out += ",\"est_total_ns\":" + std::to_string(type.est_total_ns);
    out += ",\"share\":" + std::to_string(type.share);
    out += '}';
  }
  out += "]}";
  return out;
}

void LoopProfiler::publish(Registry& registry) const {
  const Report rep = report();
  for (const TypeReport& type : rep.types) {
    registry.counter("cap_loop_dispatch_total", {{"type", type.name}})
        ->inc(type.dispatches);
    registry.counter("cap_loop_samples_total", {{"type", type.name}})
        ->inc(type.samples);
    registry.gauge("cap_loop_selftime_est_ns", {{"type", type.name}})
        ->set(static_cast<std::int64_t>(type.est_total_ns));
  }
  registry.gauge("cap_loop_sample_stride")
      ->set(static_cast<std::int64_t>(rep.sample_stride));
  registry.gauge("cap_loop_clock_pair_ns")
      ->set(static_cast<std::int64_t>(rep.clock_pair_ns));
  registry.gauge("cap_loop_overhead_est_ns")
      ->set(static_cast<std::int64_t>(rep.est_overhead_ns));
}

void LoopProfiler::reset() {
  for (Slot& slot : slots_) slot = Slot{};
  tick_ = 0;
}

}  // namespace p2panon::obs::capacity
