#include "obs/capacity/rusage.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define P2PANON_HAVE_RUSAGE 1
#endif

namespace p2panon::obs::capacity {

namespace {

std::uint64_t read_vm_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + 6, "%llu", &value) == 1) kb = value;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

ResourceUsage sample_resource_usage() {
  ResourceUsage usage;
#if P2PANON_HAVE_RUSAGE
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    usage.max_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
#else
    usage.max_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
#endif
    usage.user_sec = static_cast<double>(ru.ru_utime.tv_sec) +
                     static_cast<double>(ru.ru_utime.tv_usec) / 1e6;
    usage.sys_sec = static_cast<double>(ru.ru_stime.tv_sec) +
                    static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
    usage.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    usage.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  }
#endif
  usage.current_rss_kb = read_vm_rss_kb();
  return usage;
}

std::string resource_usage_json(const ResourceUsage& usage) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"max_rss_kb\":%llu,\"current_rss_kb\":%llu,"
                "\"user_sec\":%.3f,\"sys_sec\":%.3f,"
                "\"minor_faults\":%llu,\"major_faults\":%llu}",
                static_cast<unsigned long long>(usage.max_rss_kb),
                static_cast<unsigned long long>(usage.current_rss_kb),
                usage.user_sec, usage.sys_sec,
                static_cast<unsigned long long>(usage.minor_faults),
                static_cast<unsigned long long>(usage.major_faults));
  return buffer;
}

}  // namespace p2panon::obs::capacity
