// Process-level resource capture: getrusage (peak RSS, user/sys CPU,
// faults) plus the current VmRSS from /proc/self/status where available.
// Every bench embeds a sample in its provenance block, so committed
// baselines self-report what the run cost — peak RSS is the number the
// scale gate holds per-N ceilings against.
#pragma once

#include <cstdint>
#include <string>

namespace p2panon::obs::capacity {

struct ResourceUsage {
  std::uint64_t max_rss_kb = 0;      // getrusage ru_maxrss (peak, KiB)
  std::uint64_t current_rss_kb = 0;  // /proc/self/status VmRSS; 0 if absent
  double user_sec = 0;               // ru_utime
  double sys_sec = 0;                // ru_stime
  std::uint64_t minor_faults = 0;    // ru_minflt
  std::uint64_t major_faults = 0;    // ru_majflt
};

/// Samples the calling process. Fields that the platform cannot provide
/// stay zero; the call itself never fails.
ResourceUsage sample_resource_usage();

/// `{"max_rss_kb":...,"current_rss_kb":...,...}` — deterministic field
/// order (values, of course, vary per run; they are provenance, not
/// gated metrics).
std::string resource_usage_json(const ResourceUsage& usage);

}  // namespace p2panon::obs::capacity
