// Event-loop profiler: wall-clock self-time and dispatch counts per
// event type, attributed at the single point every simulated action
// funnels through — Simulator::step().
//
// Every scheduled event carries a small EventTypeId (interned once per
// subsystem at component-construction time via event_type("net.deliver")).
// The profiler counts every dispatch, but only times one in `sample_stride`
// of them with a steady_clock pair, scaling the sampled self-time back up
// at report time. That keeps the hot loop at ~two increments per untimed
// event, and the profiler measures its own cost: the clock-pair price is
// calibrated at construction and reported as an overhead estimate so the
// scale gate can hold the probe under its <3% budget.
//
// The profiler reads wall clocks and writes only its own slots — it never
// schedules events, touches RNG streams, or alters callbacks — so an
// attached profiler leaves run fingerprints byte-identical (asserted by
// OffMeansOffTest). Default is detached: Simulator holds a null pointer
// and pays one branch per event.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace p2panon::obs {
class Registry;
}  // namespace p2panon::obs

namespace p2panon::obs::capacity {

/// Index into the process-wide event-type table; 0 = "untyped".
using EventTypeId = std::uint16_t;
constexpr EventTypeId kUntypedEvent = 0;
constexpr std::size_t kMaxEventTypes = 128;

/// Interns `name` and returns its id; repeated calls return the same id.
/// Falls back to kUntypedEvent when the table is full. Cheap enough for
/// component constructors; hot paths should cache the result.
EventTypeId event_type(const char* name);

/// Name for an id ("untyped" for 0, "" for never-interned ids).
const char* event_type_name(EventTypeId id);

/// Interned types so far, the untyped slot included.
std::size_t event_type_count();

class LoopProfiler {
 public:
  struct Config {
    /// Time one in this many dispatches (>= 1); the rest only count.
    std::uint32_t sample_stride = 16;
  };

  LoopProfiler();  // default config
  explicit LoopProfiler(Config config);
  LoopProfiler(const LoopProfiler&) = delete;
  LoopProfiler& operator=(const LoopProfiler&) = delete;

  /// Runs `fn` on behalf of the event loop, attributing the dispatch (and,
  /// on sampled ticks, its wall-clock self-time) to `type`.
  void dispatch(EventTypeId type, const std::function<void()>& fn);

  std::uint32_t sample_stride() const { return stride_; }

  struct TypeReport {
    std::string name;
    std::uint64_t dispatches = 0;
    std::uint64_t samples = 0;
    std::uint64_t sampled_ns = 0;
    double est_total_ns = 0;  // sampled_ns scaled by dispatches/samples
    double share = 0;         // est_total_ns / sum over all types
  };

  struct Report {
    std::uint64_t dispatches_total = 0;
    std::uint64_t samples_total = 0;
    std::uint64_t sampled_ns_total = 0;
    double est_busy_ns_total = 0;    // scaled self-time over all types
    double clock_pair_ns = 0;        // calibrated cost of one timed sample
    double est_overhead_ns = 0;      // samples_total * clock_pair_ns
    std::uint32_t sample_stride = 0;
    std::vector<TypeReport> types;   // est_total_ns descending
  };

  /// Snapshot, types sorted by estimated self-time (heaviest first).
  Report report() const;

  /// Renders report() as one JSON object (deterministic field order).
  std::string report_json() const;

  /// Exports the snapshot into `registry` as
  /// cap_loop_dispatch_total{type=...} / cap_loop_selftime_est_ns{type=...}
  /// counters-and-gauges plus the cap_loop_* overhead gauges.
  void publish(Registry& registry) const;

  /// Zeroes every slot (e.g. after warmup, before the measured window).
  void reset();

 private:
  struct Slot {
    std::uint64_t dispatches = 0;
    std::uint64_t samples = 0;
    std::uint64_t sampled_ns = 0;
  };

  std::uint32_t stride_;
  std::uint32_t tick_ = 0;
  double clock_pair_ns_;
  Slot slots_[kMaxEventTypes];
};

}  // namespace p2panon::obs::capacity
