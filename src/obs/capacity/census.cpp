#include "obs/capacity/census.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace p2panon::obs::capacity {

void ByteCensus::add(std::string subsystem, std::string detail,
                     std::uint64_t bytes) {
  entries_.push_back(
      CensusEntry{std::move(subsystem), std::move(detail), bytes});
}

std::uint64_t ByteCensus::total() const {
  std::uint64_t sum = 0;
  for (const CensusEntry& entry : entries_) sum += entry.bytes;
  return sum;
}

std::uint64_t ByteCensus::subsystem_total(const std::string& subsystem) const {
  std::uint64_t sum = 0;
  for (const CensusEntry& entry : entries_) {
    if (entry.subsystem == subsystem) sum += entry.bytes;
  }
  return sum;
}

std::vector<std::pair<std::string, std::uint64_t>>
ByteCensus::subsystem_totals() const {
  std::map<std::string, std::uint64_t> totals;
  for (const CensusEntry& entry : entries_) {
    totals[entry.subsystem] += entry.bytes;
  }
  return {totals.begin(), totals.end()};
}

std::string ByteCensus::to_json(std::size_t num_nodes) const {
  const double nodes = num_nodes > 0 ? static_cast<double>(num_nodes) : 1.0;
  const std::uint64_t total_bytes = total();
  std::string out = "{\"total_bytes\":" + std::to_string(total_bytes);
  out += ",\"num_nodes\":" + std::to_string(num_nodes);
  out += ",\"bytes_per_node\":" +
         std::to_string(static_cast<double>(total_bytes) / nodes);
  out += ",\"subsystems\":[";
  bool first = true;
  for (const auto& [subsystem, bytes] : subsystem_totals()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(subsystem) + '"';
    out += ",\"bytes\":" + std::to_string(bytes);
    out += ",\"bytes_per_node\":" +
           std::to_string(static_cast<double>(bytes) / nodes);
    out += ",\"details\":[";
    // Details of one subsystem, in a deterministic (sorted) order.
    std::vector<const CensusEntry*> details;
    for (const CensusEntry& entry : entries_) {
      if (entry.subsystem == subsystem) details.push_back(&entry);
    }
    std::sort(details.begin(), details.end(),
              [](const CensusEntry* a, const CensusEntry* b) {
                return a->detail < b->detail;
              });
    bool first_detail = true;
    for (const CensusEntry* entry : details) {
      if (!first_detail) out += ',';
      first_detail = false;
      out += "{\"name\":\"" + json_escape(entry->detail) + '"';
      out += ",\"bytes\":" + std::to_string(entry->bytes) + '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void ByteCensus::publish(Registry& registry) const {
  for (const auto& [subsystem, bytes] : subsystem_totals()) {
    registry.gauge("cap_census_bytes", {{"subsystem", subsystem}})
        ->set(static_cast<std::int64_t>(bytes));
  }
  registry.gauge("cap_census_total_bytes")
      ->set(static_cast<std::int64_t>(total()));
}

}  // namespace p2panon::obs::capacity
