#include "obs/export.hpp"

#include <cstdio>
#include <sstream>

#include "common/config.hpp"
#include "obs/capacity/rusage.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace p2panon::obs {

std::string& add_json_flag(FlagSet& flags) {
  return flags.add_string("json", "",
                          "write a metrics-snapshot JSON to this path");
}

// Defined in src/erasure/gf256.cpp. Declared weak so obs does not depend on
// the erasure library (which sits above it in the layering): when a binary
// links erasure, the manifest records the dispatched GF(256) kernel; when it
// does not, the symbol resolves to null and the manifest says "unlinked".
extern "C" const char* p2panon_gf256_kernel_name() __attribute__((weak));

// Same arrangement for the ChaCha20 keystream kernel (src/crypto/chacha20.cpp).
extern "C" const char* p2panon_chacha20_kernel_name() __attribute__((weak));

namespace {

#ifndef P2PANON_GIT_SHA
#define P2PANON_GIT_SHA "unknown"
#endif

std::string format_number(double v) {
  std::ostringstream out;
  out.precision(10);
  out << v;
  return out.str();
}

/// `"provenance":{...}` — the run manifest that makes a committed baseline
/// self-describing: which source revision, which dispatched kernel, which
/// CI scale-down, and every flag (seed and config included) of the run.
std::string render_provenance() {
  std::string out = "\"provenance\":{\"git_sha\":\"";
  out += json_escape(P2PANON_GIT_SHA);
  out += "\",\"gf256_kernel\":\"";
  out += json_escape(p2panon_gf256_kernel_name != nullptr
                         ? p2panon_gf256_kernel_name()
                         : "unlinked");
  out += "\",\"chacha20_kernel\":\"";
  out += json_escape(p2panon_chacha20_kernel_name != nullptr
                         ? p2panon_chacha20_kernel_name()
                         : "unlinked");
  out += "\",\"bench_scale\":";
  out += format_number(bench_scale());
  out += ",\"resources\":";
  out += capacity::resource_usage_json(capacity::sample_resource_usage());
  out += ",\"flags\":{";
  bool first = true;
  for (const auto& [name, value] : last_parsed_flags()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":\"";
    out += json_escape(value);
    out += '"';
  }
  out += "}}";
  return out;
}

}  // namespace

void BenchReport::add(const std::string& key, double value) {
  values_.emplace_back(key, format_number(value));
}

void BenchReport::add(const std::string& key, std::uint64_t value) {
  values_.emplace_back(key, std::to_string(value));
}

void BenchReport::add_text(const std::string& key, const std::string& value) {
  values_.emplace_back(key, '"' + json_escape(value) + '"');
}

void BenchReport::add_section(const std::string& name, std::string raw_json) {
  sections_.emplace_back(name, std::move(raw_json));
}

std::string BenchReport::document(const Registry* registry) const {
  std::string out = "{\"bench\":\"" + json_escape(bench_name_) + "\"";
  out += ",\"values\":{";
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(key);
    out += "\":";
    out += value;
  }
  out += "},\"sections\":{";
  first = true;
  for (const auto& [name, raw] : sections_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += raw;
  }
  out += '}';
  out += ',';
  out += render_provenance();
  if (registry != nullptr) {
    out += ",\"metrics\":";
    out += registry->snapshot_json();
  }
  out += '}';
  return out;
}

bool BenchReport::write_if_requested(const std::string& path,
                                     const Registry* registry) const {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench json: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string doc = document(registry);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "bench json: short write to %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "bench json: wrote %s\n", path.c_str());
  return true;
}

}  // namespace p2panon::obs
