#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/logging.hpp"
#include "obs/json.hpp"

namespace p2panon::obs {

namespace {

thread_local CorrelationId t_correlation = 0;

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string format_double_arg(double v) {
  std::ostringstream out;
  out.precision(9);
  out << v;
  return out.str();
}

}  // namespace

CorrelationId current_correlation() noexcept { return t_correlation; }

CorrelationScope::CorrelationScope(CorrelationId corr) noexcept
    : prev_(t_correlation) {
  t_correlation = corr;
}

CorrelationScope::~CorrelationScope() { t_correlation = prev_; }

// ---------------------------------------------------------------------------
// TraceArgs

TraceArgs& TraceArgs::add(std::string_view key, std::uint64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, std::int64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, double value) {
  fields_.emplace_back(std::string(key), format_double_arg(value));
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, std::string_view value) {
  fields_.emplace_back(std::string(key),
                       '"' + json_escape(value) + '"');
  return *this;
}

std::string TraceArgs::render() const {
  std::string out;
  bool first = true;
  for (const auto& [k, v] : fields_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":";
    out += v;
  }
  return out;
}

// ---------------------------------------------------------------------------
// ChromeTraceSink

namespace {

/// Renders one Chrome trace event. Spans use the legacy async phases
/// ('b'/'e'/'n') keyed by cat + id, which Perfetto groups into one track per
/// correlation chain. Sim time goes straight into `ts` (both are µs); the
/// wall clock rides along in args.
std::string render_chrome_event(const TraceRecord& r) {
  const char* ph = "n";
  switch (r.phase) {
    case TraceRecord::Phase::kBegin: ph = "b"; break;
    case TraceRecord::Phase::kEnd: ph = "e"; break;
    case TraceRecord::Phase::kInstant: ph = "n"; break;
  }
  std::ostringstream out;
  out << "{\"ph\":\"" << ph << "\",\"cat\":\"" << json_escape(r.category)
      << "\",\"name\":\"" << json_escape(r.name) << "\",\"id\":\"0x" << std::hex
      << r.corr << std::dec << "\",\"pid\":1,\"tid\":1,\"ts\":" << r.sim_us
      << ",\"args\":{\"wall_ns\":" << r.wall_ns;
  if (!r.args_json.empty()) out << ',' << r.args_json;
  out << "}}";
  return out.str();
}

}  // namespace

void ChromeTraceSink::emit(const TraceRecord& record) {
  std::string rendered = render_chrome_event(record);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(rendered));
}

std::string ChromeTraceSink::json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out =
      "{\"traceEvents\":[{\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"name\":\"process_name\",\"args\":{\"name\":\"p2panon-sim\"}}";
  for (const auto& event : events_) {
    out += ',';
    out += event;
  }
  out += "]}";
  return out;
}

bool ChromeTraceSink::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

std::size_t ChromeTraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

// ---------------------------------------------------------------------------
// JsonlTraceSink

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

JsonlTraceSink::JsonlTraceSink(double sample_rate, std::uint64_t seed)
    : sample_rate_(sample_rate < 0.0 ? 0.0
                                     : (sample_rate > 1.0 ? 1.0 : sample_rate)),
      seed_(seed) {}

bool JsonlTraceSink::sampled(CorrelationId corr) const {
  if (corr == 0) return true;  // uncorrelated events are always kept
  if (sample_rate_ >= 1.0) return true;
  if (sample_rate_ <= 0.0) return false;
  // Keep iff the seeded hash lands below the rate threshold; the decision
  // depends only on (corr, seed), so a chain is sampled as a unit and reruns
  // with the same seed keep the same chains.
  const std::uint64_t h = mix64(corr ^ seed_);
  const double unit =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return unit < sample_rate_;
}

void JsonlTraceSink::emit(const TraceRecord& r) {
  if (!sampled(r.corr)) return;
  const char* type = "instant";
  switch (r.phase) {
    case TraceRecord::Phase::kBegin: type = "begin"; break;
    case TraceRecord::Phase::kEnd: type = "end"; break;
    case TraceRecord::Phase::kInstant: type = "instant"; break;
  }
  std::ostringstream out;
  out << "{\"type\":\"" << type << "\",\"cat\":\"" << json_escape(r.category)
      << "\",\"name\":\"" << json_escape(r.name) << "\",\"corr\":" << r.corr
      << ",\"sim_us\":" << r.sim_us << ",\"wall_ns\":" << r.wall_ns
      << ",\"args\":{" << r.args_json << "}}";
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(out.str());
}

bool JsonlTraceSink::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = true;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& line : lines_) {
    ok = ok && std::fwrite(line.data(), 1, line.size(), f) == line.size();
    ok = ok && std::fputc('\n', f) != EOF;
  }
  std::fclose(f);
  return ok;
}

// ---------------------------------------------------------------------------
// Tracer

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::add_sink(TraceSink* sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.push_back(sink);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::remove_sink(TraceSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase(sinks_, sink);
  enabled_.store(!sinks_.empty(), std::memory_order_relaxed);
}

void Tracer::clear_sinks() {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void Tracer::set_sim_clock(std::uint64_t (*fn)(const void*), const void* ctx) {
  clock_ctx_.store(ctx, std::memory_order_relaxed);
  clock_fn_.store(fn, std::memory_order_relaxed);
}

std::uint64_t Tracer::sim_now_us() const {
  auto* fn = clock_fn_.load(std::memory_order_relaxed);
  return fn != nullptr ? fn(clock_ctx_.load(std::memory_order_relaxed)) : 0;
}

void Tracer::span_begin(std::string_view category, std::string_view name,
                        CorrelationId corr, const TraceArgs& args) {
  if (!enabled()) return;
  dispatch(TraceRecord::Phase::kBegin, category, name, corr, args);
}

void Tracer::span_end(std::string_view category, std::string_view name,
                      CorrelationId corr, const TraceArgs& args) {
  if (!enabled()) return;
  dispatch(TraceRecord::Phase::kEnd, category, name, corr, args);
}

void Tracer::instant(std::string_view category, std::string_view name,
                     CorrelationId corr, const TraceArgs& args) {
  if (!enabled()) return;
  dispatch(TraceRecord::Phase::kInstant, category, name, corr, args);
}

namespace {

std::string trace_log_prefix() {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return {};
  char buf[64];
  std::snprintf(buf, sizeof buf, "[t=%lluus corr=%llx] ",
                static_cast<unsigned long long>(tracer.sim_now_us()),
                static_cast<unsigned long long>(current_correlation()));
  return buf;
}

}  // namespace

void install_log_decorator() { set_log_decorator(&trace_log_prefix); }

void uninstall_log_decorator() { set_log_decorator(nullptr); }

void Tracer::dispatch(TraceRecord::Phase phase, std::string_view category,
                      std::string_view name, CorrelationId corr,
                      const TraceArgs& args) {
  TraceRecord record;
  record.phase = phase;
  record.category = std::string(category);
  record.name = std::string(name);
  record.corr = corr;
  auto* fn = clock_fn_.load(std::memory_order_relaxed);
  record.sim_us =
      fn != nullptr ? fn(clock_ctx_.load(std::memory_order_relaxed)) : 0;
  record.wall_ns = wall_now_ns();
  record.args_json = args.render();
  std::lock_guard<std::mutex> lock(mutex_);
  for (TraceSink* sink : sinks_) sink->emit(record);
}

}  // namespace p2panon::obs
