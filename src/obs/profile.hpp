// Profiling scope timers: RAII wall-clock timers that feed an HdrHistogram.
//
// Gated by a single process-wide flag so engine hot paths can keep a timer
// in place permanently — when profiling is off the constructor is one
// relaxed load and the destructor a branch.
#pragma once

#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"

namespace p2panon::obs {

namespace detail {
inline std::atomic<bool> g_profiling{false};
}  // namespace detail

inline bool profiling_enabled() {
  return detail::g_profiling.load(std::memory_order_relaxed);
}

inline void set_profiling_enabled(bool on) {
  detail::g_profiling.store(on, std::memory_order_relaxed);
}

/// Records the scope's wall-clock duration (nanoseconds) into `hist` on
/// destruction, but only if profiling was enabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(HdrHistogram* hist)
      : hist_(profiling_enabled() ? hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  HdrHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace p2panon::obs
