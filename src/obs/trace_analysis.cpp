#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace p2panon::obs {

namespace {

// ---------------------------------------------------------------------------
// Parsing

bool phase_from_chrome(std::string_view ph, TraceRecord::Phase& out) {
  if (ph == "b") { out = TraceRecord::Phase::kBegin; return true; }
  if (ph == "e") { out = TraceRecord::Phase::kEnd; return true; }
  if (ph == "n") { out = TraceRecord::Phase::kInstant; return true; }
  return false;  // metadata ("M") and anything exotic
}

bool phase_from_jsonl(std::string_view type, TraceRecord::Phase& out) {
  if (type == "begin") { out = TraceRecord::Phase::kBegin; return true; }
  if (type == "end") { out = TraceRecord::Phase::kEnd; return true; }
  if (type == "instant") { out = TraceRecord::Phase::kInstant; return true; }
  return false;
}

bool record_from_chrome(const JsonValue& event, TraceRecord& out) {
  const JsonValue* ph = event.find("ph");
  if (ph == nullptr || !ph->is_string() ||
      !phase_from_chrome(ph->string, out.phase)) {
    return false;
  }
  const JsonValue* cat = event.find("cat");
  out.category = cat != nullptr ? std::string(cat->as_string()) : "";
  const JsonValue* name = event.find("name");
  out.name = name != nullptr ? std::string(name->as_string()) : "";
  // Async id is a hex string ("0x1a2b"); base 16 accepts the 0x prefix.
  const JsonValue* id = event.find("id");
  out.corr = (id != nullptr && id->is_string())
                 ? std::strtoull(id->string.c_str(), nullptr, 16)
                 : 0;
  const JsonValue* ts = event.find("ts");
  out.sim_us = ts != nullptr ? ts->as_u64() : 0;
  const JsonValue* args = event.find("args");
  const JsonValue* wall = args != nullptr ? args->find("wall_ns") : nullptr;
  out.wall_ns = wall != nullptr ? wall->as_u64() : 0;
  return true;
}

bool flow_from_jsonl(const JsonValue& line, LinkFlow& out) {
  const JsonValue* flow = line.find("flow");
  if (flow == nullptr || !flow->is_string()) return false;
  if (flow->string == "deliver") {
    out.deliver = true;
  } else if (flow->string == "send") {
    out.deliver = false;
  } else {
    return false;
  }
  const JsonValue* sim = line.find("sim_us");
  out.sim_us = sim != nullptr ? sim->as_u64() : 0;
  const JsonValue* from = line.find("from");
  out.from = from != nullptr ? static_cast<std::uint32_t>(from->as_u64()) : 0;
  const JsonValue* to = line.find("to");
  out.to = to != nullptr ? static_cast<std::uint32_t>(to->as_u64()) : 0;
  const JsonValue* bytes = line.find("bytes");
  out.bytes = bytes != nullptr ? bytes->as_u64() : 0;
  const JsonValue* chan = line.find("chan");
  out.channel = chan != nullptr ? chan->as_u64() : 0;
  const JsonValue* corr = line.find("corr");
  out.corr = corr != nullptr ? corr->as_u64() : 0;
  return true;
}

bool record_from_jsonl(const JsonValue& line, TraceRecord& out) {
  const JsonValue* type = line.find("type");
  if (type == nullptr || !type->is_string() ||
      !phase_from_jsonl(type->string, out.phase)) {
    return false;
  }
  const JsonValue* cat = line.find("cat");
  out.category = cat != nullptr ? std::string(cat->as_string()) : "";
  const JsonValue* name = line.find("name");
  out.name = name != nullptr ? std::string(name->as_string()) : "";
  const JsonValue* corr = line.find("corr");
  out.corr = corr != nullptr ? corr->as_u64() : 0;
  const JsonValue* sim = line.find("sim_us");
  out.sim_us = sim != nullptr ? sim->as_u64() : 0;
  const JsonValue* wall = line.find("wall_ns");
  out.wall_ns = wall != nullptr ? wall->as_u64() : 0;
  return true;
}

// ---------------------------------------------------------------------------
// Analysis

struct Span {
  std::string name;
  CorrelationId corr = 0;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t duration_us() const { return end_us - start_us; }
};

struct Chain {
  std::vector<std::size_t> spans;  // indices into the matched-span list
  std::uint64_t min_start = UINT64_MAX;
  std::uint64_t max_end = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t makespan() const {
    return max_end > min_start ? max_end - min_start : 0;
  }
};

/// Exact quantile of an ascending-sorted list: rank = ceil(q * n), 1-based.
std::uint64_t exact_percentile(const std::vector<std::uint64_t>& sorted,
                               double q) {
  if (sorted.empty()) return 0;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

std::string format_double(double v) {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed << v;
  return out.str();
}

std::string format_corr(CorrelationId corr) {
  std::ostringstream out;
  out << "0x" << std::hex << corr;
  return out.str();
}

/// count/total/mean/p50/p90/p99/max over a duration list (sorted in place).
void append_duration_stats(std::ostringstream& out,
                           std::vector<std::uint64_t>& durations) {
  std::sort(durations.begin(), durations.end());
  std::uint64_t total = 0;
  for (std::uint64_t d : durations) total += d;
  const double mean =
      durations.empty()
          ? 0.0
          : static_cast<double>(total) / static_cast<double>(durations.size());
  out << "\"count\":" << durations.size() << ",\"total_us\":" << total
      << ",\"mean_us\":" << format_double(mean)
      << ",\"p50_us\":" << exact_percentile(durations, 0.50)
      << ",\"p90_us\":" << exact_percentile(durations, 0.90)
      << ",\"p99_us\":" << exact_percentile(durations, 0.99)
      << ",\"max_us\":" << (durations.empty() ? 0 : durations.back());
}

/// Greedy critical path: walk the chain's timeline from its first start,
/// always extending along the live span that reaches furthest; stretches no
/// span covers become "(gap)" entries (queueing/timer wait). O(n^2) per
/// chain, and chains are short (one path construction or one message).
void append_critical_path(std::ostringstream& out, const Chain& chain,
                          const std::vector<Span>& spans) {
  std::vector<const Span*> members;
  members.reserve(chain.spans.size());
  for (std::size_t idx : chain.spans) members.push_back(&spans[idx]);
  std::sort(members.begin(), members.end(),
            [](const Span* a, const Span* b) {
              if (a->start_us != b->start_us) return a->start_us < b->start_us;
              if (a->end_us != b->end_us) return a->end_us > b->end_us;
              return a->name < b->name;
            });
  out << '[';
  std::uint64_t cursor = chain.min_start;
  bool first = true;
  while (cursor < chain.max_end) {
    const Span* best = nullptr;
    for (const Span* s : members) {
      if (s->start_us > cursor) break;  // sorted by start
      if (s->end_us > cursor && (best == nullptr || s->end_us > best->end_us)) {
        best = s;
      }
    }
    std::string name;
    std::uint64_t until = 0;
    if (best != nullptr) {
      name = best->name;
      until = best->end_us;
    } else {
      name = "(gap)";
      until = chain.max_end;
      for (const Span* s : members) {
        if (s->start_us > cursor) {
          until = s->start_us;
          break;
        }
      }
    }
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(name) << "\",\"start_us\":" << cursor
        << ",\"end_us\":" << until << ",\"duration_us\":" << until - cursor
        << '}';
    cursor = until;
  }
  out << ']';
}

}  // namespace

ParsedTrace parse_chrome_trace(std::string_view text) {
  ParsedTrace out;
  const auto doc = json_parse(text);
  if (doc == nullptr) return out;
  const JsonValue* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) return out;
  for (const JsonValue& event : events->array) {
    TraceRecord record;
    if (event.is_object() && record_from_chrome(event, record)) {
      out.records.push_back(std::move(record));
    } else {
      ++out.skipped;
    }
  }
  return out;
}

ParsedTrace parse_jsonl_trace(std::string_view text) {
  ParsedTrace out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    const auto value = json_parse(line);
    if (value == nullptr || !value->is_object()) {
      ++out.skipped;
      continue;
    }
    LinkFlow flow;
    if (flow_from_jsonl(*value, flow)) {
      out.flows.push_back(flow);
      continue;
    }
    TraceRecord record;
    if (record_from_jsonl(*value, record)) {
      out.records.push_back(std::move(record));
    } else {
      ++out.skipped;
    }
  }
  return out;
}

void parse_flows_jsonl(std::string_view text, ParsedTrace& trace) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    const auto value = json_parse(line);
    LinkFlow flow;
    if (value != nullptr && value->is_object() &&
        flow_from_jsonl(*value, flow)) {
      trace.flows.push_back(flow);
    } else {
      ++trace.skipped;
    }
  }
}

ParsedTrace parse_trace(std::string_view text) {
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first != std::string_view::npos && text[first] == '{' &&
      text.substr(first, 256).find("\"traceEvents\"") !=
          std::string_view::npos) {
    return parse_chrome_trace(text);
  }
  return parse_jsonl_trace(text);
}

std::string analyze_trace(const ParsedTrace& trace,
                          const AnalyzerOptions& options) {
  // -- Match begin/end pairs. FIFO per (corr, name): nested same-name spans
  // on one chain do not occur in this codebase, and FIFO keeps matching
  // deterministic even if a trace interleaves oddly.
  std::size_t begins = 0, ends = 0, instants = 0, unmatched_ends = 0;
  std::map<std::pair<CorrelationId, std::string>, std::deque<std::uint64_t>>
      open;
  std::vector<Span> spans;
  for (const TraceRecord& r : trace.records) {
    switch (r.phase) {
      case TraceRecord::Phase::kBegin:
        ++begins;
        open[{r.corr, r.name}].push_back(r.sim_us);
        break;
      case TraceRecord::Phase::kEnd: {
        ++ends;
        auto it = open.find({r.corr, r.name});
        if (it == open.end() || it->second.empty()) {
          ++unmatched_ends;
          break;
        }
        Span span;
        span.name = r.name;
        span.corr = r.corr;
        span.start_us = it->second.front();
        span.end_us = r.sim_us >= span.start_us ? r.sim_us : span.start_us;
        it->second.pop_front();
        spans.push_back(std::move(span));
        break;
      }
      case TraceRecord::Phase::kInstant:
        ++instants;
        break;
    }
  }
  std::size_t unmatched_begins = 0;
  for (const auto& [key, queue] : open) unmatched_begins += queue.size();

  // -- Per-span-name stats and causal chains (corr == 0 is uncorrelated
  // background, not a chain).
  std::map<std::string, std::vector<std::uint64_t>> by_name;
  std::map<CorrelationId, Chain> chains;
  std::uint64_t segments = 0, retransmits = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    by_name[s.name].push_back(s.duration_us());
    if (s.name == "segment") ++segments;
    if (s.name == "segment_retransmit") ++retransmits;
    if (s.corr == 0) continue;
    Chain& chain = chains[s.corr];
    chain.spans.push_back(i);
    chain.min_start = std::min(chain.min_start, s.start_us);
    chain.max_end = std::max(chain.max_end, s.end_us);
    if (s.name == "segment_retransmit") ++chain.retransmits;
  }

  // -- Per-hop latency: within each chain, the gaps between consecutive
  // hop_relay events, keyed by position along the path.
  std::map<std::size_t, std::vector<std::uint64_t>> hop_gaps;
  for (const auto& [corr, chain] : chains) {
    std::vector<std::uint64_t> hops;
    for (std::size_t idx : chain.spans) {
      if (spans[idx].name == "hop_relay") hops.push_back(spans[idx].start_us);
    }
    std::sort(hops.begin(), hops.end());
    for (std::size_t i = 1; i < hops.size(); ++i) {
      hop_gaps[i - 1].push_back(hops[i] - hops[i - 1]);
    }
  }

  std::size_t chains_with_retx = 0;
  std::uint64_t max_makespan = 0, total_makespan = 0;
  for (const auto& [corr, chain] : chains) {
    if (chain.retransmits > 0) ++chains_with_retx;
    max_makespan = std::max(max_makespan, chain.makespan());
    total_makespan += chain.makespan();
  }

  // -- Render. Key order, sorting, and float formatting are all fixed so the
  // report is byte-stable (the golden-trace test depends on this).
  std::ostringstream out;
  out << "{\"report\":\"trace_analyze\",\"events\":{\"total\":"
      << trace.records.size() << ",\"begins\":" << begins
      << ",\"ends\":" << ends << ",\"instants\":" << instants
      << ",\"skipped\":" << trace.skipped
      << ",\"unmatched_begins\":" << unmatched_begins
      << ",\"unmatched_ends\":" << unmatched_ends << '}';

  out << ",\"chains\":{\"count\":" << chains.size()
      << ",\"with_retransmit\":" << chains_with_retx
      << ",\"max_makespan_us\":" << max_makespan << ",\"mean_makespan_us\":"
      << format_double(chains.empty() ? 0.0
                                      : static_cast<double>(total_makespan) /
                                            static_cast<double>(chains.size()))
      << '}';

  out << ",\"span_stats\":[";
  bool first = true;
  for (auto& [name, durations] : by_name) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(name) << "\",";
    append_duration_stats(out, durations);
    out << '}';
  }
  out << ']';

  out << ",\"hop_latency\":[";
  first = true;
  for (auto& [hop, gaps] : hop_gaps) {
    if (!first) out << ',';
    first = false;
    out << "{\"hop\":" << hop << ',';
    append_duration_stats(out, gaps);
    out << '}';
  }
  out << ']';

  const double amplification =
      segments > 0 ? static_cast<double>(segments + retransmits) /
                         static_cast<double>(segments)
                   : 0.0;
  out << ",\"retransmission\":{\"segments\":" << segments
      << ",\"retransmits\":" << retransmits
      << ",\"amplification\":" << format_double(amplification)
      << ",\"chains_with_retransmit\":" << chains_with_retx << '}';

  // -- Slowest chains, makespan descending (corr ascending on ties).
  std::vector<const std::pair<const CorrelationId, Chain>*> ranked;
  ranked.reserve(chains.size());
  for (const auto& entry : chains) ranked.push_back(&entry);
  std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
    if (a->second.makespan() != b->second.makespan()) {
      return a->second.makespan() > b->second.makespan();
    }
    return a->first < b->first;
  });
  if (ranked.size() > options.top_n) ranked.resize(options.top_n);
  out << ",\"slowest_chains\":[";
  first = true;
  for (const auto* entry : ranked) {
    const Chain& chain = entry->second;
    if (!first) out << ',';
    first = false;
    out << "{\"corr\":\"" << format_corr(entry->first)
        << "\",\"start_us\":" << chain.min_start
        << ",\"end_us\":" << chain.max_end
        << ",\"makespan_us\":" << chain.makespan()
        << ",\"spans\":" << chain.spans.size()
        << ",\"retransmits\":" << chain.retransmits << ",\"critical_path\":";
    append_critical_path(out, chain, spans);
    out << '}';
  }
  out << ']';

  // -- Link-flow accounting, only when flows were ingested: the golden
  // span-only reports must stay byte-identical.
  if (!trace.flows.empty()) {
    std::uint64_t sends = 0, delivers = 0, flow_bytes = 0;
    std::uint64_t first_us = UINT64_MAX, last_us = 0;
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        by_channel;  // chan -> {count, bytes}
    std::uint64_t correlated = 0;
    std::set<CorrelationId> matched_chains;
    for (const LinkFlow& f : trace.flows) {
      (f.deliver ? delivers : sends) += 1;
      flow_bytes += f.bytes;
      first_us = std::min(first_us, f.sim_us);
      last_us = std::max(last_us, f.sim_us);
      auto& cell = by_channel[f.channel];
      ++cell.first;
      cell.second += f.bytes;
      if (f.corr != 0 && chains.count(f.corr) != 0) {
        ++correlated;
        matched_chains.insert(f.corr);
      }
    }
    out << ",\"flows\":{\"count\":" << trace.flows.size()
        << ",\"sends\":" << sends << ",\"delivers\":" << delivers
        << ",\"bytes_total\":" << flow_bytes
        << ",\"first_us\":" << (first_us == UINT64_MAX ? 0 : first_us)
        << ",\"last_us\":" << last_us << ",\"channels\":[";
    first = true;
    for (const auto& [chan, cell] : by_channel) {
      if (!first) out << ',';
      first = false;
      out << "{\"chan\":" << chan << ",\"count\":" << cell.first
          << ",\"bytes\":" << cell.second << '}';
    }
    out << "],\"correlated\":{\"flows\":" << correlated
        << ",\"chains\":" << matched_chains.size() << "}}";
  }

  out << '}';
  return out.str();
}

}  // namespace p2panon::obs
