#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <sstream>

#include "obs/json.hpp"

namespace p2panon::obs {

// ---------------------------------------------------------------------------
// HdrHistogram

std::size_t HdrHistogram::bucket_index(std::uint64_t value) {
  if (value < kExact) return static_cast<std::size_t>(value);
  // Exponent e = floor(log2(value)), e in [6, 63). The top sub-bucket split
  // uses the kSubBuckets bits just below the leading bit.
  const int e = 63 - std::countl_zero(value);
  const std::uint64_t sub =
      (value >> (e - 5)) & (kSubBuckets - 1);  // log2(kSubBuckets) == 5
  std::size_t index = kExact + static_cast<std::size_t>(e - 6) * kSubBuckets +
                      static_cast<std::size_t>(sub);
  if (index >= kBucketCount) index = kBucketCount - 1;
  return index;
}

std::uint64_t HdrHistogram::bucket_lower_bound(std::size_t index) {
  if (index < kExact) return index;
  const std::size_t rel = index - kExact;
  const int e = static_cast<int>(rel / kSubBuckets) + 6;
  const std::uint64_t sub = rel % kSubBuckets;
  return (std::uint64_t{1} << e) + (sub << (e - 5));
}

std::uint64_t HdrHistogram::bucket_upper_bound(std::size_t index) {
  if (index < kExact) return index;
  if (index + 1 >= kBucketCount) return UINT64_MAX;
  return bucket_lower_bound(index + 1) - 1;
}

void HdrHistogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t HdrHistogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t HdrHistogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double HdrHistogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t HdrHistogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      const std::uint64_t lo = bucket_lower_bound(i);
      const std::uint64_t hi = bucket_upper_bound(i);
      std::uint64_t rep = lo + (hi - lo) / 2;
      if (rep < min()) rep = min();
      if (rep > max()) rep = max();
      return rep;
    }
  }
  return max();
}

// ---------------------------------------------------------------------------
// Registry

Counter* Registry::counter(std::string name, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[Key{std::move(name), std::move(labels)}];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(std::string name, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[Key{std::move(name), std::move(labels)}];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

HdrHistogram* Registry::histogram(std::string name, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[Key{std::move(name), std::move(labels)}];
  if (!slot) slot = std::make_unique<HdrHistogram>();
  return slot.get();
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(Key{name, labels});
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t Registry::gauge_value(const std::string& name,
                                   const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(Key{name, labels});
  return it == gauges_.end() ? 0 : it->second->value();
}

std::uint64_t Registry::counter_total(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, counter] : counters_) {
    if (key.name == name) total += counter->value();
  }
  return total;
}

namespace {

void append_labels_json(std::ostringstream& out, const Labels& labels) {
  out << "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
  }
  out << '}';
}

std::string format_double(double v) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << v;
  return out.str();
}

}  // namespace

std::string Registry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\":[";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(key.name) << "\",";
    append_labels_json(out, key.labels);
    out << ",\"value\":" << counter->value() << '}';
  }
  out << "],\"gauges\":[";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(key.name) << "\",";
    append_labels_json(out, key.labels);
    out << ",\"value\":" << gauge->value() << '}';
  }
  out << "],\"histograms\":[";
  first = true;
  for (const auto& [key, hist] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(key.name) << "\",";
    append_labels_json(out, key.labels);
    out << ",\"count\":" << hist->count() << ",\"sum\":" << hist->sum()
        << ",\"min\":" << hist->min() << ",\"max\":" << hist->max()
        << ",\"mean\":" << format_double(hist->mean())
        << ",\"p50\":" << hist->percentile(0.50)
        << ",\"p90\":" << hist->percentile(0.90)
        << ",\"p99\":" << hist->percentile(0.99) << '}';
  }
  out << "]}";
  return out.str();
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, const Labels&,
                             const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, counter] : counters_) {
    fn(key.name, key.labels, *counter);
  }
}

void Registry::for_each_gauge(
    const std::function<void(const std::string&, const Labels&,
                             const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, gauge] : gauges_) {
    fn(key.name, key.labels, *gauge);
  }
}

void Registry::for_each_histogram(
    const std::function<void(const std::string&, const Labels&,
                             const HdrHistogram&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, hist] : histograms_) {
    fn(key.name, key.labels, *hist);
  }
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

}  // namespace p2panon::obs
