// Sim-time span tracer.
//
// Spans and instant events are stamped with BOTH clocks — the deterministic
// sim clock (microseconds, supplied by whatever Simulator is attached) and
// the host wall clock (nanoseconds) — and carry a correlation id that links
// every event caused by one message or session action.
//
// Correlation ids propagate through the event queue, not through protocol
// bytes: `current_correlation()` is a thread-local that EventQueue captures
// at schedule() time and Simulator restores (via CorrelationScope) around
// each callback. A send, the delivery it causes, the timer that delivery
// arms, and the retransmit that timer fires therefore all share the id of
// the original `send_message`, with zero change to wire formats or RNG use.
//
// Two sinks:
//   * ChromeTraceSink — Chrome trace-event JSON (legacy async phases
//     'b'/'e'/'n', async id = correlation id) that opens directly in
//     Perfetto / chrome://tracing.
//   * JsonlTraceSink — one JSON object per line, with deterministic
//     per-correlation-chain sampling (a chain is kept or dropped whole,
//     decided by a seeded hash of its correlation id).
//
// The tracer starts with NO sink installed; in that state `enabled()` is a
// single relaxed atomic load and every span call returns immediately, so the
// instrumented hot paths cost nothing in normal runs ("off means off").
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace p2panon::obs {

using CorrelationId = std::uint64_t;

/// The correlation id active on this thread (0 = none).
CorrelationId current_correlation() noexcept;

/// RAII: sets the thread's correlation id for the enclosed scope and
/// restores the previous one on exit. Passing 0 clears it.
class CorrelationScope {
 public:
  explicit CorrelationScope(CorrelationId corr) noexcept;
  ~CorrelationScope();
  CorrelationScope(const CorrelationScope&) = delete;
  CorrelationScope& operator=(const CorrelationScope&) = delete;

 private:
  CorrelationId prev_;
};

/// Small inline key/value bag rendered into the event's "args" object.
/// Build it only behind an `enabled()` check — construction allocates.
class TraceArgs {
 public:
  TraceArgs& add(std::string_view key, std::uint64_t value);
  TraceArgs& add(std::string_view key, std::int64_t value);
  TraceArgs& add(std::string_view key, double value);
  TraceArgs& add(std::string_view key, std::string_view value);
  bool empty() const { return fields_.empty(); }
  /// Renders `"k":v,...` (no surrounding braces).
  std::string render() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

struct TraceRecord {
  enum class Phase { kBegin, kEnd, kInstant };
  Phase phase = Phase::kInstant;
  std::string category;
  std::string name;
  CorrelationId corr = 0;
  std::uint64_t sim_us = 0;
  std::uint64_t wall_ns = 0;
  std::string args_json;  // rendered `"k":v,...` without braces, may be empty
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceRecord& record) = 0;
};

/// Accumulates Chrome trace-event JSON in memory. `json()` produces the full
/// `{"traceEvents":[...]}` document; `write_file()` saves it.
class ChromeTraceSink : public TraceSink {
 public:
  void emit(const TraceRecord& record) override;
  std::string json() const;
  bool write_file(const std::string& path) const;
  std::size_t event_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> events_;
};

/// JSONL causal log with deterministic sampling: a record is kept iff its
/// whole correlation chain is kept, decided by hashing corr with the seed.
/// corr == 0 (uncorrelated events) is always kept.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(double sample_rate = 1.0, std::uint64_t seed = 0);
  void emit(const TraceRecord& record) override;
  const std::vector<std::string>& lines() const { return lines_; }
  bool write_file(const std::string& path) const;
  bool sampled(CorrelationId corr) const;

 private:
  double sample_rate_;
  std::uint64_t seed_;
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

/// Process-wide tracer. Components call the span/instant methods directly;
/// with no sink installed each call is one relaxed load and a branch.
class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Installs a sink (not owned; caller keeps it alive until remove/clear).
  void add_sink(TraceSink* sink);
  void remove_sink(TraceSink* sink);
  void clear_sinks();

  /// Attaches the sim clock: `fn(ctx)` must return current sim time in µs.
  /// Pass nullptr to detach (events then carry sim_us = 0). The Environment
  /// attaches its Simulator for the duration of a run.
  void set_sim_clock(std::uint64_t (*fn)(const void*), const void* ctx);

  /// Current sim time per the attached clock, 0 when none is attached.
  std::uint64_t sim_now_us() const;

  void span_begin(std::string_view category, std::string_view name,
                  CorrelationId corr, const TraceArgs& args = {});
  void span_end(std::string_view category, std::string_view name,
                CorrelationId corr, const TraceArgs& args = {});
  void instant(std::string_view category, std::string_view name,
               CorrelationId corr, const TraceArgs& args = {});

 private:
  Tracer() = default;
  void dispatch(TraceRecord::Phase phase, std::string_view category,
                std::string_view name, CorrelationId corr,
                const TraceArgs& args);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceSink*> sinks_;
  std::atomic<std::uint64_t (*)(const void*)> clock_fn_{nullptr};
  std::atomic<const void*> clock_ctx_{nullptr};
};

/// splitmix64 — the sampling hash, exposed so tests can predict decisions.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// Routes common/logging through the tracer: installs a decorator that
/// prefixes every log line with `[t=<sim_us>us corr=<id>]` while the tracer
/// is enabled. While tracing is off the decorator returns "" and log output
/// is byte-identical to the undecorated logger.
void install_log_decorator();
void uninstall_log_decorator();

}  // namespace p2panon::obs
