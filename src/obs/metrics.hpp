// Runtime metrics registry: counters, gauges, and HDR-style histograms keyed
// by `name{label=value,...}`.
//
// Design goals, in order:
//   1. Hot-path cheap. A component looks its series up ONCE (at construction)
//      and keeps the returned handle; increments are then a single relaxed
//      atomic add with no hashing, locking, or allocation.
//   2. Thread-safe. Chaos and durability sweeps run whole experiments on
//      parallel_for workers, so handles must tolerate concurrent writers.
//      Registration takes a mutex; recording never does.
//   3. Exportable. `snapshot_json()` renders the whole registry as one JSON
//      document (tests and benches write it via the --json flag).
//
// A registry is usually per-Environment (per-run isolation keeps fingerprints
// deterministic under parallel sweeps); `Registry::global()` exists as the
// fallback for directly constructed components.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace p2panon::obs {

using Labels = std::map<std::string, std::string>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Zeroes the counter — only for warm-up resets between measurement
  /// phases (e.g. SimTransport::reset_counters), not for general use.
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, events/sec, ...). Signed so deltas work.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// HDR-style log-linear histogram over non-negative 64-bit values.
///
/// Values below 64 get exact buckets; above that, each power of two is split
/// into 32 linear sub-buckets, bounding relative error at ~3% while covering
/// the full uint64 range in 1888 fixed buckets. record() is lock-free
/// (relaxed atomic adds); percentile() is approximate but deterministic, and
/// its result is clamped to the observed [min, max].
class HdrHistogram {
 public:
  static constexpr std::size_t kExact = 64;        // values 0..63, one each
  static constexpr std::size_t kSubBuckets = 32;   // per power of two
  static constexpr std::size_t kBucketCount =
      kExact + (63 - 6) * kSubBuckets;             // exponents 6..62

  void record(std::uint64_t value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;  // 0 when empty
  std::uint64_t max() const;  // 0 when empty
  double mean() const;

  /// Value at quantile p in [0, 1]: the representative (bucket midpoint,
  /// clamped to [min, max]) of the first bucket whose cumulative count
  /// reaches ceil(p * count). Returns 0 when empty.
  std::uint64_t percentile(double p) const;

  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_lower_bound(std::size_t index);
  static std::uint64_t bucket_upper_bound(std::size_t index);  // inclusive

  /// Raw count of one bucket. The windowed sampler (obs/timeseries) diffs
  /// successive snapshots of the bucket array to compute percentiles over a
  /// single window rather than the whole run.
  std::uint64_t bucket_count(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Owns every series. Lookup registers on first use and returns a pointer
/// that stays valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(std::string name, Labels labels = {});
  Gauge* gauge(std::string name, Labels labels = {});
  HdrHistogram* histogram(std::string name, Labels labels = {});

  /// Current value of a counter series, 0 if never registered. Convenience
  /// for harness invariant checks that read rather than record.
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;
  std::int64_t gauge_value(const std::string& name,
                           const Labels& labels = {}) const;

  /// Sum over every counter series with this name, regardless of labels.
  std::uint64_t counter_total(const std::string& name) const;

  /// One JSON document: {"counters": [...], "gauges": [...],
  /// "histograms": [...]}, series sorted by key for deterministic output.
  std::string snapshot_json() const;

  /// Visits every series of one kind in deterministic (sorted-key) order,
  /// holding the registration lock for the duration. The series references
  /// stay valid for the registry's lifetime, so samplers may cache pointers
  /// — but the callbacks themselves must not register new series (deadlock).
  void for_each_counter(
      const std::function<void(const std::string& name, const Labels& labels,
                               const Counter& counter)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string& name, const Labels& labels,
                               const Gauge& gauge)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string& name, const Labels& labels,
                               const HdrHistogram& histogram)>& fn) const;

  /// Process-wide fallback registry for components constructed without one.
  static Registry& global();

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<HdrHistogram>> histograms_;
};

/// Renders `name{k1=v1,k2=v2}` (or just `name` with no labels) — the
/// canonical series key used in snapshots and docs.
std::string series_key(const std::string& name, const Labels& labels);

}  // namespace p2panon::obs
