#include "obs/timeseries.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace p2panon::obs {

namespace {

const char* kind_name(TimeseriesRecorder::Kind kind) {
  switch (kind) {
    case TimeseriesRecorder::Kind::kCounter:
      return "counter";
    case TimeseriesRecorder::Kind::kGauge:
      return "gauge";
    case TimeseriesRecorder::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string format_double(double v) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << v;
  return out.str();
}

/// Quantile over one window's bucket deltas. The representative is the
/// bucket midpoint (the window's own min/max are unknown, so unlike the
/// cumulative HdrHistogram::percentile there is nothing to clamp against).
std::uint64_t windowed_percentile(const std::vector<std::uint64_t>& deltas,
                                  std::uint64_t total, double p) {
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    seen += deltas[i];
    if (seen >= rank) {
      const std::uint64_t lo = HdrHistogram::bucket_lower_bound(i);
      const std::uint64_t hi = HdrHistogram::bucket_upper_bound(i);
      return lo + (hi - lo) / 2;
    }
  }
  return 0;
}

}  // namespace

std::string percentile_label(double quantile) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", quantile * 100.0);
  return std::string("p") + buf;
}

TimeseriesRecorder::TimeseriesRecorder(const Registry& registry,
                                       TimeseriesConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (config_.window_capacity == 0) config_.window_capacity = 1;
}

TimeseriesRecorder::State& TimeseriesRecorder::state_for(
    const std::string& key, Kind kind) {
  auto& state = series_[{key, static_cast<int>(kind)}];
  state.series.kind = kind;
  return state;
}

void TimeseriesRecorder::push_window(State& state, TimeseriesWindow window) {
  state.series.windows.push_back(std::move(window));
  while (state.series.windows.size() > config_.window_capacity) {
    state.series.windows.pop_front();
    ++state.series.evicted;
  }
}

void TimeseriesRecorder::sample(SimTime now) {
  const SimTime start = last_sample_us_;
  const double window_s =
      now > start ? static_cast<double>(now - start) /
                        static_cast<double>(kSecond)
                  : 0.0;

  registry_.for_each_counter([&](const std::string& name, const Labels& labels,
                                 const Counter& counter) {
    State& state = state_for(series_key(name, labels), Kind::kCounter);
    const double value = static_cast<double>(counter.value());
    TimeseriesWindow window;
    window.start_us = start;
    window.end_us = now;
    window.value = value;
    window.delta = value - state.prev_value;
    window.rate_per_s = window_s > 0.0 ? window.delta / window_s : 0.0;
    state.prev_value = value;
    push_window(state, std::move(window));
  });

  registry_.for_each_gauge([&](const std::string& name, const Labels& labels,
                               const Gauge& gauge) {
    State& state = state_for(series_key(name, labels), Kind::kGauge);
    const double value = static_cast<double>(gauge.value());
    TimeseriesWindow window;
    window.start_us = start;
    window.end_us = now;
    window.value = value;
    window.delta = value - state.prev_value;
    window.rate_per_s = window_s > 0.0 ? window.delta / window_s : 0.0;
    state.prev_value = value;
    push_window(state, std::move(window));
  });

  registry_.for_each_histogram([&](const std::string& name,
                                   const Labels& labels,
                                   const HdrHistogram& histogram) {
    State& state = state_for(series_key(name, labels), Kind::kHistogram);
    if (state.prev_buckets.size() != HdrHistogram::kBucketCount) {
      state.prev_buckets.assign(HdrHistogram::kBucketCount, 0);
    }
    std::vector<std::uint64_t> deltas(HdrHistogram::kBucketCount, 0);
    std::uint64_t in_window = 0;
    for (std::size_t i = 0; i < HdrHistogram::kBucketCount; ++i) {
      const std::uint64_t cur = histogram.bucket_count(i);
      deltas[i] = cur - state.prev_buckets[i];
      in_window += deltas[i];
      state.prev_buckets[i] = cur;
    }
    TimeseriesWindow window;
    window.start_us = start;
    window.end_us = now;
    window.value = static_cast<double>(histogram.count());
    window.delta = static_cast<double>(in_window);
    window.rate_per_s = window_s > 0.0 ? window.delta / window_s : 0.0;
    window.percentiles.reserve(config_.percentiles.size());
    for (double q : config_.percentiles) {
      window.percentiles.push_back(windowed_percentile(deltas, in_window, q));
    }
    push_window(state, std::move(window));
  });

  last_sample_us_ = now;
  ++sample_count_;
}

const TimeseriesRecorder::Series* TimeseriesRecorder::find(
    const std::string& key) const {
  for (const auto& [map_key, state] : series_) {
    if (map_key.first == key) return &state.series;
  }
  return nullptr;
}

std::string TimeseriesRecorder::to_csv() const {
  std::ostringstream out;
  out << "series,kind,start_us,end_us,value,delta,rate_per_s";
  for (double q : config_.percentiles) out << ',' << percentile_label(q);
  out << '\n';
  for (const auto& [map_key, state] : series_) {
    for (const TimeseriesWindow& w : state.series.windows) {
      out << '"' << map_key.first << "\"," << kind_name(state.series.kind)
          << ',' << w.start_us << ',' << w.end_us << ','
          << format_double(w.value) << ',' << format_double(w.delta) << ','
          << format_double(w.rate_per_s);
      for (std::size_t i = 0; i < config_.percentiles.size(); ++i) {
        out << ',';
        if (i < w.percentiles.size()) out << w.percentiles[i];
      }
      out << '\n';
    }
  }
  return out.str();
}

std::string TimeseriesRecorder::to_jsonl() const {
  std::ostringstream out;
  for (const auto& [map_key, state] : series_) {
    for (const TimeseriesWindow& w : state.series.windows) {
      out << "{\"series\":\"" << json_escape(map_key.first) << "\",\"kind\":\""
          << kind_name(state.series.kind) << "\",\"start_us\":" << w.start_us
          << ",\"end_us\":" << w.end_us
          << ",\"value\":" << format_double(w.value)
          << ",\"delta\":" << format_double(w.delta)
          << ",\"rate_per_s\":" << format_double(w.rate_per_s);
      if (state.series.kind == Kind::kHistogram) {
        out << ",\"percentiles\":{";
        for (std::size_t i = 0; i < w.percentiles.size(); ++i) {
          if (i) out << ',';
          out << '"' << percentile_label(config_.percentiles[i])
              << "\":" << w.percentiles[i];
        }
        out << '}';
      }
      out << "}\n";
    }
  }
  return out.str();
}

bool TimeseriesRecorder::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

bool TimeseriesRecorder::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_jsonl();
  return static_cast<bool>(out);
}

}  // namespace p2panon::obs
