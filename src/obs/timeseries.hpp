// Sim-time-aligned windowed sampling over a metrics Registry.
//
// The Registry (obs/metrics) answers "what happened since the run started";
// this layer answers "what happened in the last N seconds of sim time" — the
// shape resilience claims actually live on: drop-rate spikes during a churn
// storm, per-window RTT percentiles while a partition heals, queue depth
// over a flash crowd.
//
// A TimeseriesRecorder snapshots every series in a registry each time
// `sample(now)` is called (typically from a sim::PeriodicTask), closing one
// Window per series:
//   counters   — cumulative value, in-window delta, and delta/seconds rate
//   gauges     — point-in-time level plus delta/rate of change
//   histograms — in-window recording count/rate plus percentiles computed
//                from BUCKET DELTAS between snapshots, i.e. the p50/p90/p99
//                of only the values recorded inside the window
//
// Windows live in a bounded ring per series (oldest evicted, eviction
// counted), so a recorder attached to a week-long run stays O(capacity).
// Export is CSV (one row per window, series sorted) or JSONL — both
// deterministic byte-for-byte for a given run.
//
// Default OFF: nothing in the simulator or harness constructs a recorder
// unless a config explicitly wires one in, and sampling never mutates the
// registry, so an enabled recorder perturbs no counter a fingerprint reads.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace p2panon::obs {

struct TimeseriesConfig {
  /// Max windows retained per series; older windows are evicted (and
  /// counted) once a series exceeds this.
  std::size_t window_capacity = 512;
  /// Quantiles computed per histogram window, ascending. Rendered as
  /// p<percent> columns (0.5 -> p50, 0.999 -> p99.9).
  std::vector<double> percentiles = {0.5, 0.9, 0.99};
};

/// One closed sampling window for one series.
struct TimeseriesWindow {
  SimTime start_us = 0;
  SimTime end_us = 0;
  double value = 0.0;       // cumulative (counter/histogram-count) or level
  double delta = 0.0;       // change across the window
  double rate_per_s = 0.0;  // delta / window length (0 for empty windows)
  /// Histogram series only: one value per configured quantile, computed
  /// from this window's bucket deltas. Empty for counters/gauges.
  std::vector<std::uint64_t> percentiles;
};

class TimeseriesRecorder {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Kind kind = Kind::kCounter;
    std::deque<TimeseriesWindow> windows;
    std::uint64_t evicted = 0;  // windows dropped to honour window_capacity
  };

  /// The registry must outlive the recorder. Sampling only reads it.
  explicit TimeseriesRecorder(const Registry& registry,
                              TimeseriesConfig config = {});

  /// Closes the window [previous sample time, now] for every series
  /// currently registered. The first call closes [0, now]; series that
  /// appear later get their first window when first seen (prior value 0).
  /// `now` must be monotonically non-decreasing across calls.
  void sample(SimTime now);

  std::size_t sample_count() const { return sample_count_; }
  SimTime last_sample_us() const { return last_sample_us_; }
  std::size_t series_count() const { return series_.size(); }

  /// Series state for one `series_key(name, labels)`, nullptr if that key
  /// has never been sampled. Test/inspection hook.
  const Series* find(const std::string& key) const;

  /// CSV: header then one row per (series, window), series sorted by key.
  /// Percentile cells are blank for non-histogram series.
  std::string to_csv() const;
  /// JSONL: one object per (series, window) in the same order as the CSV.
  std::string to_jsonl() const;
  bool write_csv(const std::string& path) const;
  bool write_jsonl(const std::string& path) const;

  const TimeseriesConfig& config() const { return config_; }

 private:
  struct State {
    Series series;
    double prev_value = 0.0;
    std::vector<std::uint64_t> prev_buckets;  // histograms only
  };

  void push_window(State& state, TimeseriesWindow window);
  State& state_for(const std::string& key, Kind kind);

  const Registry& registry_;
  TimeseriesConfig config_;
  // Keyed by (series key, kind): a counter and a gauge may legally share a
  // name, and sorted iteration keeps every export deterministic.
  std::map<std::pair<std::string, int>, State> series_;
  SimTime last_sample_us_ = 0;
  std::size_t sample_count_ = 0;
};

/// "p50", "p99.9", ... — the column label for a quantile in [0, 1].
std::string percentile_label(double quantile);

}  // namespace p2panon::obs
