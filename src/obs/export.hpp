// Shared `--json <path>` machinery for bench binaries.
//
// Every table/figure bench registers the flag through `add_json_flag`, fills
// a BenchReport with its headline numbers (and optionally the rendered
// tables as JSON sections), and calls `write_if_requested` at the end. The
// output document is
//
//   {"bench": "<name>",
//    "values": {"<key>": <number>, ...},
//    "sections": {"<name>": <raw json>, ...},
//    "provenance": {"git_sha": ..., "gf256_kernel": ..., "bench_scale": ...,
//                   "resources": {"max_rss_kb": ..., "user_sec": ..., ...},
//                   "flags": {...}},           // run manifest, always present
//    "metrics": <Registry::snapshot_json()>}   // only when a registry is given
//
// so BENCH_*.json files from successive runs diff cleanly and committed
// baselines are self-describing (the manifest records the revision, the
// dispatched GF(256) kernel, any CI scale-down, the process resource cost
// — peak RSS, user/sys CPU via getrusage — and the full flag set that
// produced them).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace p2panon {
class FlagSet;
}  // namespace p2panon

namespace p2panon::obs {

class Registry;

/// Registers `--json` ("" = disabled) on `flags`; returns the bound path.
std::string& add_json_flag(FlagSet& flags);

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(const std::string& key, double value);
  void add(const std::string& key, std::uint64_t value);
  void add_text(const std::string& key, const std::string& value);
  /// Attaches a pre-rendered JSON value (e.g. metrics::Table::to_json()).
  void add_section(const std::string& name, std::string raw_json);

  std::string document(const Registry* registry = nullptr) const;

  /// No-op (returns true) when `path` is empty; otherwise writes the
  /// document and reports failures on stderr.
  bool write_if_requested(const std::string& path,
                          const Registry* registry = nullptr) const;

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> values_;  // key -> raw JSON
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace p2panon::obs
