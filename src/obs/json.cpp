#include "obs/json.hpp"

#include <cctype>
#include <cstdio>

namespace p2panon::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Hand-rolled validating parser; no allocation, no value materialization.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 512;

  bool value(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit()) return false;
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool digit() const {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Checker(text).run(); }

}  // namespace p2panon::obs
