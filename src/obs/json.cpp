#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace p2panon::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Hand-rolled validating parser; no allocation, no value materialization.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 512;

  bool value(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit()) return false;
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool digit() const {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Checker(text).run(); }

// ---------------------------------------------------------------------------
// DOM parser

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber) return 0;
  return std::strtoull(raw_number.c_str(), nullptr, 10);
}

std::int64_t JsonValue::as_i64() const {
  if (kind != Kind::kNumber) return 0;
  return std::strtoll(raw_number.c_str(), nullptr, 10);
}

double JsonValue::as_double() const {
  if (kind != Kind::kNumber) return 0.0;
  return std::strtod(raw_number.c_str(), nullptr);
}

std::string_view JsonValue::as_string(std::string_view fallback) const {
  return kind == Kind::kString ? std::string_view(string) : fallback;
}

namespace {

/// Materializing parser; same grammar and depth cap as Checker.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<JsonValue> run() {
    auto root = std::make_unique<JsonValue>();
    skip_ws();
    if (!value(*root, 0)) return nullptr;
    skip_ws();
    if (pos_ != text_.size()) return nullptr;
    return root;
  }

 private:
  static constexpr int kMaxDepth = 512;

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return number(out);
    }
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      JsonValue element;
      if (!value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            if (!hex4(cp)) return false;
            // Combine a surrogate pair when a low surrogate follows.
            if (cp >= 0xD800 && cp <= 0xDBFF &&
                text_.substr(pos_ + 1, 2) == "\\u") {
              const std::size_t save = pos_;
              pos_ += 2;
              unsigned lo = 0;
              if (hex4(lo) && lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                pos_ = save;
              }
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return false;
        }
      } else {
        out += static_cast<char>(c);
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  /// Reads the 4 hex digits of a \uXXXX escape; leaves pos_ on the last one.
  bool hex4(unsigned& cp) {
    cp = 0;
    for (int i = 0; i < 4; ++i) {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      const char h = text_[pos_];
      cp = cp * 16 +
           static_cast<unsigned>(h <= '9'   ? h - '0'
                                 : h <= 'F' ? h - 'A' + 10
                                            : h - 'a' + 10);
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit()) return false;
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.raw_number.assign(text_.substr(start, pos_ - start));
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool digit() const {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<JsonValue> json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace p2panon::obs
