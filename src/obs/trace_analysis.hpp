// Offline causal-trace analysis.
//
// The tracer (obs/trace) writes what happened; this module answers why it
// was slow. It ingests either sink format — the Chrome trace-event document
// (`{"traceEvents":[...]}`, async phases b/e/n, id = hex correlation id) or
// the JSONL causal log (one object per line) — reconstructs the span tree
// per correlation chain, and renders one deterministic JSON report:
//
//   events          parse/matching accounting (skipped lines, unmatched
//                   begins/ends) so a truncated trace is visible, not silent
//   span_stats      per-span-name duration percentiles ("per-phase"):
//                   count / total / mean / p50 / p90 / p99 / max, exact
//                   (computed from the full sorted duration list, not
//                   histogram buckets)
//   hop_latency     per-hop-transition latency inside each chain: the gap
//                   between consecutive hop_relay events is the per-hop
//                   forwarding cost of the onion path, indexed by position
//   retransmission  segment vs segment_retransmit amplification — how many
//                   sends the loss/RTO machinery added per useful segment
//   slowest_chains  top-N chains by makespan, each with a greedy critical
//                   path (the chain's timeline covered by the longest-
//                   extending spans, uncovered stretches reported as gaps)
//   flows           only when link-record JSONL was ingested (--flows or
//                   flow lines mixed into the trace): wire accounting per
//                   direction and channel, plus the cross-reference count
//                   of flows whose correlation id matches a span chain —
//                   the join between what the wire saw and why
//
// Everything is computed from sim_us only. wall_ns is host noise and using
// it would make the report non-reproducible across machines; it is parsed
// and discarded.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace p2panon::obs {

/// One link-record line from an adversary FlowLog JSONL dump
/// (src/adversary/link_observer — lines shaped
/// {"flow":"send","sim_us":...,"from":...,"to":...,"bytes":...,
///  "chan":...,"corr":...}).
struct LinkFlow {
  bool deliver = false;  // "flow":"deliver" vs "send"
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sim_us = 0;
  std::uint64_t corr = 0;
  std::uint64_t channel = 0;
};

/// Records recovered from a trace file, in file order.
struct ParsedTrace {
  std::vector<TraceRecord> records;
  std::vector<LinkFlow> flows;  // link records, if any were ingested
  std::size_t skipped = 0;  // metadata events + unparseable lines
};

/// Chrome trace-event document (the ChromeTraceSink format).
ParsedTrace parse_chrome_trace(std::string_view text);
/// JSONL causal log (the JsonlTraceSink format). Unparseable lines are
/// counted in `skipped`, not fatal — traces from killed runs stay usable.
/// Lines carrying a "flow" key are link records and land in `flows`.
ParsedTrace parse_jsonl_trace(std::string_view text);
/// Link-record JSONL only (a FlowLog dump); appends to `trace.flows` and
/// counts unparseable lines in `trace.skipped`. Used by trace_analyze
/// --flows to join a flow capture onto a span trace by correlation id.
void parse_flows_jsonl(std::string_view text, ParsedTrace& trace);
/// Sniffs the format: a document whose first value is an object containing
/// "traceEvents" parses as Chrome, anything else line-by-line as JSONL.
ParsedTrace parse_trace(std::string_view text);

struct AnalyzerOptions {
  std::size_t top_n = 10;  // slowest chains to list in full
};

/// Renders the analysis report as one JSON document. Deterministic: same
/// trace bytes + options -> same report bytes, on any host.
std::string analyze_trace(const ParsedTrace& trace,
                          const AnalyzerOptions& options = {});

}  // namespace p2panon::obs
