#include "metrics/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace p2panon::metrics {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets >= 1");
  }
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++count_;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return lo_;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac =
          (target - cumulative) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cumulative = next;
  }
  return hi_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + static_cast<double>(i + 1) * width_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak ? static_cast<std::size_t>(
                   static_cast<double>(counts_[i]) /
                   static_cast<double>(peak) * static_cast<double>(width))
             : 0;
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace p2panon::metrics
