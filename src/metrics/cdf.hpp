// Empirical CDF over an explicit sample set. Used to regenerate the paper's
// Figure 1 (lifetime CDF) and for distribution comparisons via the
// Kolmogorov–Smirnov statistic.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace p2panon::metrics {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void add(double x);
  std::size_t size() const { return samples_.size(); }

  /// F(x) = fraction of samples <= x.
  double at(double x) const;

  /// Inverse CDF (quantile), p in [0, 1].
  double quantile(double p) const;

  /// Max |F_empirical(x) - reference(x)| over the sample points
  /// (one-sample Kolmogorov–Smirnov statistic).
  double ks_distance(const std::function<double(double)>& reference) const;

  /// Max |F_a(x) - F_b(x)| over the union of sample points (two-sample KS).
  static double ks_distance(const EmpiricalCdf& a, const EmpiricalCdf& b);

  /// Evaluation points for plotting: `points` evenly spaced x values over
  /// [min, max] with their CDF values.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

  const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace p2panon::metrics
