// Fixed-bucket histogram with percentile queries (linear interpolation
// within the bucket). Values beyond the range land in saturating edge
// buckets so the total count is always exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p2panon::metrics {

class Histogram {
 public:
  /// Buckets of equal width over [lo, hi); `buckets` >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t count() const { return count_; }

  /// p in [0, 1]; empirical quantile with within-bucket interpolation.
  double percentile(double p) const;
  double median() const { return percentile(0.5); }

  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t num_buckets() const { return counts_.size(); }

  /// ASCII rendering, `width` columns for the largest bucket.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
};

}  // namespace p2panon::metrics
