#include "metrics/bootstrap.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"

namespace p2panon::metrics {

std::string ConfidenceInterval::to_string(int digits) const {
  std::ostringstream out;
  out << format_double(mean, digits) << " [" << format_double(lo, digits)
      << ", " << format_double(hi, digits) << "]";
  return out.str();
}

namespace {
double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double total = 0.0;
  for (double x : v) total += x;
  return total / static_cast<double>(v.size());
}

double resampled_mean(const std::vector<double>& samples, Rng& rng) {
  double total = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    total += samples[rng.next_below(samples.size())];
  }
  return total / static_cast<double>(samples.size());
}
}  // namespace

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     double level, std::size_t resamples,
                                     std::uint64_t seed) {
  ConfidenceInterval ci;
  ci.level = level;
  ci.mean = mean_of(samples);
  if (samples.size() < 2) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  Rng rng(seed);
  std::vector<double> means(resamples);
  for (auto& m : means) m = resampled_mean(samples, rng);
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - level) / 2.0;
  const auto index = [&](double p) {
    const double idx = p * static_cast<double>(means.size() - 1);
    return means[static_cast<std::size_t>(idx)];
  };
  ci.lo = index(alpha);
  ci.hi = index(1.0 - alpha);
  return ci;
}

double bootstrap_probability_greater(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     std::size_t resamples,
                                     std::uint64_t seed) {
  if (a.empty() || b.empty()) return 0.5;
  Rng rng(seed);
  std::size_t wins = 0;
  std::size_t ties = 0;
  for (std::size_t r = 0; r < resamples; ++r) {
    const double ma = resampled_mean(a, rng);
    const double mb = resampled_mean(b, rng);
    if (ma > mb) {
      ++wins;
    } else if (ma == mb) {
      ++ties;
    }
  }
  return (static_cast<double>(wins) + 0.5 * static_cast<double>(ties)) /
         static_cast<double>(resamples);
}

}  // namespace p2panon::metrics
