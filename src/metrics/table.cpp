#include "metrics/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/strings.hpp"
#include "obs/json.hpp"

namespace p2panon::metrics {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_json() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out << ",";
    out << "{";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c > 0) out << ",";
      out << "\"" << obs::json_escape(header_[c]) << "\":\""
          << obs::json_escape(rows_[r][c]) << "\"";
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

Series::Series(std::string x_label, std::vector<std::string> y_labels)
    : x_label_(std::move(x_label)), y_labels_(std::move(y_labels)) {}

void Series::add(double x, std::vector<double> ys) {
  if (ys.size() != y_labels_.size()) {
    throw std::invalid_argument("Series::add: series count mismatch");
  }
  points_.emplace_back(x, std::move(ys));
}

std::string Series::render(int digits) const {
  std::ostringstream out;
  out << "# " << x_label_;
  for (const auto& label : y_labels_) out << "\t" << label;
  out << "\n";
  for (const auto& [x, ys] : points_) {
    out << format_double(x, digits);
    for (double y : ys) out << "\t" << format_double(y, digits);
    out << "\n";
  }
  return out.str();
}

std::string Series::to_json() const {
  std::ostringstream out;
  out.precision(10);
  out << "[";
  for (std::size_t p = 0; p < points_.size(); ++p) {
    if (p > 0) out << ",";
    out << "{\"" << obs::json_escape(x_label_) << "\":" << points_[p].first;
    for (std::size_t c = 0; c < y_labels_.size(); ++c) {
      out << ",\"" << obs::json_escape(y_labels_[c])
          << "\":" << points_[p].second[c];
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

std::string pair_cell(double random_value, double biased_value, int digits) {
  return "[" + format_double(random_value, digits) + ", " +
         format_double(biased_value, digits) + "]";
}

}  // namespace p2panon::metrics
