#include "metrics/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2panon::metrics {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("EmpiricalCdf::quantile on empty CDF");
  }
  ensure_sorted();
  p = std::clamp(p, 0.0, 1.0);
  const double idx = p * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalCdf::ks_distance(
    const std::function<double(double)>& reference) const {
  ensure_sorted();
  double max_gap = 0.0;
  const double n = static_cast<double>(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double ref = reference(samples_[i]);
    const double above = static_cast<double>(i + 1) / n - ref;
    const double below = ref - static_cast<double>(i) / n;
    max_gap = std::max({max_gap, above, below});
  }
  return max_gap;
}

double EmpiricalCdf::ks_distance(const EmpiricalCdf& a,
                                 const EmpiricalCdf& b) {
  a.ensure_sorted();
  b.ensure_sorted();
  double max_gap = 0.0;
  for (double x : a.samples_) max_gap = std::max(max_gap, std::fabs(a.at(x) - b.at(x)));
  for (double x : b.samples_) max_gap = std::max(max_gap, std::fabs(a.at(x) - b.at(x)));
  return max_gap;
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

const std::vector<double>& EmpiricalCdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

}  // namespace p2panon::metrics
