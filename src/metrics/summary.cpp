#include "metrics/summary.hpp"

#include <cmath>
#include <sstream>

namespace p2panon::metrics {

void Summary::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Summary::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::to_string(int digits) const {
  std::ostringstream out;
  out.precision(digits);
  out << std::fixed;
  out << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
      << " min=" << min() << " max=" << max();
  return out.str();
}

}  // namespace p2panon::metrics
