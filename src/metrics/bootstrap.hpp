// Bootstrap confidence intervals.
//
// Durability under Pareto churn has heavy-tailed per-run values; a mean
// over 10 seeds needs an uncertainty estimate or comparisons are
// meaningless. Percentile bootstrap: resample the runs with replacement,
// recompute the mean, take empirical quantiles of the resampled means.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace p2panon::metrics {

struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;   // lower bound
  double hi = 0.0;   // upper bound
  double level = 0.95;

  std::string to_string(int digits = 1) const;
};

/// Percentile bootstrap CI of the mean. `resamples` ~ 2000 is plenty for
/// 95%. Degenerates gracefully: empty -> zeros, single sample -> point.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     double level = 0.95,
                                     std::size_t resamples = 2000,
                                     std::uint64_t seed = 0x9e3779b9);

/// Bootstrap probability that mean(a) > mean(b) (one-sided comparison of
/// two independent run sets) — the right tool for "is biased really better
/// than random over these seeds?".
double bootstrap_probability_greater(const std::vector<double>& a,
                                     const std::vector<double>& b,
                                     std::size_t resamples = 4000,
                                     std::uint64_t seed = 0x51ed270b);

}  // namespace p2panon::metrics
