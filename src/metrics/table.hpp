// Paper-style table and series printers. Bench binaries use these so their
// stdout mirrors the rows/series of the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace p2panon::metrics {

/// Fixed-column text table: header row plus data rows, auto-sized columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::string render() const;

  /// JSON array of row objects keyed by the header cells — what bench
  /// `--json` reports embed so downstream tooling never parses the
  /// rendered text.
  std::string to_json() const;

  std::size_t columns() const { return header_.size(); }
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// (x, y) series printer for figure benches: one "x<TAB>y1<TAB>y2..." line
/// per x, with a labelled header — directly gnuplot-able.
class Series {
 public:
  explicit Series(std::string x_label, std::vector<std::string> y_labels);

  void add(double x, std::vector<double> ys);
  std::string render(int digits = 4) const;

  /// JSON array of point objects: {"<x_label>": x, "<y_label>": y, ...}.
  std::string to_json() const;

 private:
  std::string x_label_;
  std::vector<std::string> y_labels_;
  std::vector<std::pair<double, std::vector<double>>> points_;
};

/// Formats the paper's "[random, biased]" pair cells.
std::string pair_cell(double random_value, double biased_value, int digits = 0);

}  // namespace p2panon::metrics
