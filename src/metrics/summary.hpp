// Streaming summary statistics (count / mean / variance / min / max) using
// Welford's online algorithm, plus a ratio counter for success rates.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace p2panon::metrics {

class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  std::string to_string(int digits = 2) const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counts successes over trials; rate() in [0, 1].
class Ratio {
 public:
  void record(bool success) {
    ++trials_;
    if (success) ++successes_;
  }
  void merge(const Ratio& other) {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }
  std::uint64_t trials() const { return trials_; }
  std::uint64_t successes() const { return successes_; }
  double rate() const {
    return trials_ ? static_cast<double>(successes_) / static_cast<double>(trials_) : 0.0;
  }
  double percent() const { return 100.0 * rate(); }

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

}  // namespace p2panon::metrics
