// Fault-injecting Transport decorator.
//
// Wraps any Transport (SimTransport for simulated runs, LoopbackTransport
// for in-process protocol tests) and applies a FaultPlan's rules to every
// datagram handed to send(): crash drops, partition drops, spike loss,
// extra delay (via the simulator when one is provided; delay rules are
// ignored without it), duplication, bounded reordering, and byte
// corruption of forward-channel onions.
//
// Determinism contract: the decorator keeps its own RNG stream, and rules
// are only consulted (and the RNG only advanced) when the plan actually
// has rules of that class — so an empty plan forwards every datagram
// untouched, draws nothing, and leaves all seed-test results byte-
// identical to running without the decorator.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace p2panon::fault {

class FaultyTransport final : public net::Transport {
 public:
  /// Per-cause accounting; `injected` rules (duplicate/delay/corrupt/
  /// stale/inflate) do not drop the datagram and are counted separately
  /// from drops. The membership-plane fields are NOT part of
  /// ChaosResult::fingerprint() — its string format predates them and must
  /// stay byte-stable — they surface through the registry and the
  /// membership-sweep tables instead.
  struct Counters {
    std::uint64_t dropped_crash = 0;
    std::uint64_t dropped_partition = 0;
    std::uint64_t dropped_loss = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t dropped_gossip_blackout = 0;
    std::uint64_t dropped_gossip_loss = 0;
    std::uint64_t stale_injected = 0;
    std::uint64_t claims_inflated = 0;
    std::uint64_t total_dropped() const {
      return dropped_crash + dropped_partition + dropped_loss +
             dropped_gossip_blackout + dropped_gossip_loss;
    }
  };

  /// `simulator` enables the delay/reorder rules (and supplies the clock
  /// the time windows are evaluated against); without one, time is pinned
  /// to 0 so only rules whose window covers t=0 apply, and delays are
  /// ignored (LoopbackTransport has no time axis). Injections are mirrored
  /// into `metrics` (nullptr = global registry) as
  /// `fault_injections_total{kind=...}` plus the `fault_extra_delay_us`
  /// histogram of injected delay spikes.
  FaultyTransport(net::Transport& inner, const FaultPlan& plan,
                  std::uint64_t seed, sim::Simulator* simulator = nullptr,
                  obs::Registry* metrics = nullptr);

  void send(NodeId from, NodeId to, Bytes payload) override;
  void register_handler(NodeId node, Handler handler) override;

  std::uint64_t bytes_sent() const override { return bytes_sent_; }
  std::uint64_t messages_sent() const override { return messages_sent_; }

  const Counters& counters() const { return counters_; }
  net::Transport& inner() { return inner_; }

  /// Per-sender corruption injections, keyed by the node whose outgoing
  /// datagram was flipped — the "which relay is lying" ground truth the
  /// suspicion layer's verdicts are scored against.
  const std::unordered_map<NodeId, std::uint64_t>& corruptions_by_node() const {
    return corrupted_by_node_;
  }

 private:
  SimTime now() const { return simulator_ != nullptr ? simulator_->now() : 0; }
  void dispatch(NodeId from, NodeId to, Bytes payload, SimDuration extra);

  /// Applies gossip-channel rules (blackout/loss drops, record mutation) to
  /// a membership datagram. Returns false when the datagram is dropped.
  bool apply_membership_rules(NodeId from, NodeId to, Bytes& payload,
                              SimTime when);

  void record_injection(const char* kind, obs::Counter* mirror, NodeId from,
                        NodeId to);

  net::Transport& inner_;
  const FaultPlan& plan_;
  sim::Simulator* simulator_;
  obs::Registry* metrics_;
  Rng rng_;
  Counters counters_;
  // Lazily-registered per-sender corruption series: a clean run (or a plan
  // with no corrupt rules) registers nothing, keeping metric dumps and
  // fingerprints identical to the pre-feature baseline.
  std::unordered_map<NodeId, std::uint64_t> corrupted_by_node_;
  std::unordered_map<NodeId, obs::Counter*> corrupt_node_ctrs_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  obs::Counter* inj_crash_;
  obs::Counter* inj_partition_;
  obs::Counter* inj_loss_;
  obs::Counter* inj_duplicated_;
  obs::Counter* inj_delayed_;
  obs::Counter* inj_corrupted_;
  // Membership-plane mirrors, registered lazily on first injection so a
  // plan without membership rules leaves the registry byte-identical to the
  // pre-feature baseline.
  obs::Counter* inj_gossip_blackout_ = nullptr;
  obs::Counter* inj_gossip_loss_ = nullptr;
  obs::Counter* inj_stale_ = nullptr;
  obs::Counter* inj_inflate_ = nullptr;
  obs::HdrHistogram* extra_delay_us_;
};

}  // namespace p2panon::fault
