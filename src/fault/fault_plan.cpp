#include "fault/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace p2panon::fault {

namespace {

bool in_window(SimTime start, SimTime end, SimTime now) {
  return now >= start && now < end;
}

bool contains(const std::vector<NodeId>& nodes, NodeId node) {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " probability must be in [0, 1]");
  }
}

}  // namespace

FaultPlan& FaultPlan::crash(NodeId node, SimTime at, SimTime recover_at) {
  if (recover_at <= at) {
    throw std::invalid_argument("FaultPlan::crash: recover_at must be > at");
  }
  crashes_.push_back(CrashEvent{node, at, recover_at});
  return *this;
}

FaultPlan& FaultPlan::partition(std::vector<NodeId> side_a,
                                std::vector<NodeId> side_b, SimTime start,
                                SimTime end) {
  if (side_a.empty()) {
    throw std::invalid_argument("FaultPlan::partition: side_a is empty");
  }
  partitions_.push_back(
      PartitionRule{std::move(side_a), std::move(side_b), start, end});
  return *this;
}

FaultPlan& FaultPlan::link_spike(LinkSpikeRule rule) {
  check_probability(rule.loss_rate, "link_spike loss");
  link_spikes_.push_back(std::move(rule));
  return *this;
}

FaultPlan& FaultPlan::duplicate(double probability, SimTime start,
                                SimTime end) {
  check_probability(probability, "duplicate");
  duplicates_.push_back(DuplicateRule{probability, start, end});
  return *this;
}

FaultPlan& FaultPlan::reorder(double probability, SimDuration max_extra_delay,
                              SimTime start, SimTime end) {
  check_probability(probability, "reorder");
  reorders_.push_back(ReorderRule{probability, max_extra_delay, start, end});
  return *this;
}

FaultPlan& FaultPlan::corrupt(double probability, SimTime start, SimTime end,
                              std::vector<NodeId> at_nodes) {
  check_probability(probability, "corrupt");
  corrupts_.push_back(CorruptRule{probability, start, end,
                                  std::move(at_nodes)});
  return *this;
}

FaultPlan& FaultPlan::gossip_blackout(SimTime start, SimTime end,
                                      std::vector<NodeId> endpoints) {
  gossip_blackouts_.push_back(
      GossipBlackoutRule{start, end, std::move(endpoints)});
  return *this;
}

FaultPlan& FaultPlan::gossip_loss(double loss_rate, SimTime start, SimTime end,
                                  std::vector<NodeId> endpoints) {
  check_probability(loss_rate, "gossip_loss");
  gossip_losses_.push_back(
      GossipLossRule{loss_rate, start, end, std::move(endpoints)});
  return *this;
}

FaultPlan& FaultPlan::stale_inject(double probability,
                                   SimDuration extra_staleness, SimTime start,
                                   SimTime end, std::vector<NodeId> at_nodes) {
  check_probability(probability, "stale_inject");
  stale_injects_.push_back(StaleInjectRule{probability, extra_staleness, start,
                                           end, std::move(at_nodes)});
  return *this;
}

FaultPlan& FaultPlan::claim_inflate(double probability, double factor,
                                    SimDuration boost, SimTime start,
                                    SimTime end, std::vector<NodeId> at_nodes) {
  check_probability(probability, "claim_inflate");
  if (factor < 1.0) {
    throw std::invalid_argument(
        "FaultPlan::claim_inflate: factor must be >= 1");
  }
  claim_inflates_.push_back(ClaimInflateRule{probability, factor, boost, start,
                                             end, std::move(at_nodes)});
  return *this;
}

bool FaultPlan::empty() const {
  return crashes_.empty() && partitions_.empty() && !has_link_rules() &&
         !has_membership_rules();
}

bool FaultPlan::is_crashed(NodeId node, SimTime now) const {
  for (const CrashEvent& crash : crashes_) {
    if (crash.node == node && now >= crash.at && now < crash.recover_at) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::partitioned(NodeId from, NodeId to, SimTime now) const {
  for (const PartitionRule& rule : partitions_) {
    if (!in_window(rule.start, rule.end, now)) continue;
    const bool from_a = contains(rule.side_a, from);
    const bool to_a = contains(rule.side_a, to);
    if (from_a == to_a) continue;  // same side of the cut
    // The endpoint not in side_a must be in side_b (empty side_b = rest of
    // the network, which always matches).
    if (rule.side_b.empty()) return true;
    const NodeId other = from_a ? to : from;
    if (contains(rule.side_b, other)) return true;
  }
  return false;
}

}  // namespace p2panon::fault
