#include "fault/faulty_transport.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "net/demux.hpp"
#include "obs/trace.hpp"

namespace p2panon::fault {

namespace {

bool in_window(SimTime start, SimTime end, SimTime now) {
  return now >= start && now < end;
}

bool matches(const std::vector<NodeId>& nodes, NodeId node) {
  return nodes.empty() ||
         std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

// Gossip record wire layout, mirrored from membership/gossip.cpp. The fault
// layer deliberately does not link against p2panon_membership (it sits below
// it in the dependency order), so the offsets are hard-coded here and
// cross-checked against membership::kRecordWireSize by membership_chaos_test.
//
// Datagram: [channel u8][kind u8][count u16be][record 0][record 1]...
// Record:   [subject u32be][flags u8][dt_alive u64be][dt_since u64be] = 21 B
constexpr std::size_t kGossipRecordSize = 21;
constexpr std::size_t kGossipHeaderSize = 4;  // channel + kind + count
constexpr std::size_t kSubjectOffset = 0;
constexpr std::size_t kDtAliveOffset = 5;
constexpr std::size_t kDtSinceOffset = 13;

void store_u64be(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
  }
}

// True when the payload is structurally a record-bearing gossip message:
// the declared record count exactly accounts for every byte past the
// header. Digest/repair-control messages (whose bodies are bucket hashes,
// not 21-byte records) never satisfy this, so mutation rules skip them.
bool is_record_bearing(const Bytes& payload) {
  if (payload.size() < kGossipHeaderSize + kGossipRecordSize) return false;
  const std::size_t count = get_u16be(payload, 2);
  return count > 0 &&
         kGossipHeaderSize + count * kGossipRecordSize == payload.size();
}

}  // namespace

FaultyTransport::FaultyTransport(net::Transport& inner, const FaultPlan& plan,
                                 std::uint64_t seed, sim::Simulator* simulator,
                                 obs::Registry* metrics)
    : inner_(inner),
      plan_(plan),
      simulator_(simulator),
      metrics_(metrics != nullptr ? metrics : &obs::Registry::global()),
      rng_(seed) {
  obs::Registry* reg = metrics_;
  inj_crash_ =
      reg->counter("fault_injections_total", {{"kind", "dropped_crash"}});
  inj_partition_ =
      reg->counter("fault_injections_total", {{"kind", "dropped_partition"}});
  inj_loss_ =
      reg->counter("fault_injections_total", {{"kind", "dropped_loss"}});
  inj_duplicated_ =
      reg->counter("fault_injections_total", {{"kind", "duplicated"}});
  inj_delayed_ = reg->counter("fault_injections_total", {{"kind", "delayed"}});
  inj_corrupted_ =
      reg->counter("fault_injections_total", {{"kind", "corrupted"}});
  extra_delay_us_ = reg->histogram("fault_extra_delay_us");
}

void FaultyTransport::record_injection(const char* kind, obs::Counter* mirror,
                                       NodeId from, NodeId to) {
  mirror->inc();
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    obs::TraceArgs args;
    args.add("kind", kind)
        .add("from", static_cast<std::uint64_t>(from))
        .add("to", static_cast<std::uint64_t>(to));
    tracer.instant("fault", "inject", obs::current_correlation(), args);
  }
}

void FaultyTransport::register_handler(NodeId node, Handler handler) {
  inner_.register_handler(node, std::move(handler));
}

void FaultyTransport::send(NodeId from, NodeId to, Bytes payload) {
  ++messages_sent_;
  bytes_sent_ += payload.size();

  const SimTime when = now();

  // Crash windows: the plan is also bridged into the liveness oracle (so
  // in-flight messages die at delivery time), but dropping here keeps the
  // semantics under transports with no oracle (LoopbackTransport) and
  // attributes the drop to its cause.
  if (!plan_.crashes().empty() &&
      (plan_.is_crashed(from, when) || plan_.is_crashed(to, when))) {
    ++counters_.dropped_crash;
    record_injection("dropped_crash", inj_crash_, from, to);
    return;
  }

  if (!plan_.partitions().empty() && plan_.partitioned(from, to, when)) {
    ++counters_.dropped_partition;
    record_injection("dropped_partition", inj_partition_, from, to);
    return;
  }

  // Membership-plane rules apply only to gossip-channel datagrams, and only
  // when such rules exist — a data-plane-only plan never inspects payloads
  // or advances the RNG here.
  if (plan_.has_membership_rules() && !payload.empty() &&
      payload[0] == static_cast<std::uint8_t>(net::Channel::kGossip)) {
    if (!apply_membership_rules(from, to, payload, when)) {
      return;  // dropped by blackout or gossip loss
    }
  }

  // Everything below draws from the decorator's own RNG stream; gated on
  // rule presence so a plan without link rules advances nothing.
  SimDuration extra_delay = 0;
  for (const LinkSpikeRule& rule : plan_.link_spikes()) {
    if (!in_window(rule.start, rule.end, when)) continue;
    if (!matches(rule.endpoints, from) && !matches(rule.endpoints, to)) {
      continue;
    }
    if (rule.loss_rate > 0.0 && rng_.bernoulli(rule.loss_rate)) {
      ++counters_.dropped_loss;
      record_injection("dropped_loss", inj_loss_, from, to);
      return;
    }
    if (rule.extra_delay_max > 0) {
      extra_delay += static_cast<SimDuration>(
          rng_.next_below(static_cast<std::uint64_t>(rule.extra_delay_max) + 1));
    }
  }

  // Byzantine corruption: flip one byte of a forward-channel datagram past
  // the channel id, so a relay's AEAD peel (or the responder's sealed-core
  // open) rejects it and the drop shows up in peel-failure accounting.
  for (const CorruptRule& rule : plan_.corrupts()) {
    if (!in_window(rule.start, rule.end, when)) continue;
    if (!matches(rule.at_nodes, from)) continue;
    if (payload.size() < 2 ||
        payload[0] != static_cast<std::uint8_t>(net::Channel::kAnonForward)) {
      continue;
    }
    if (rng_.bernoulli(rule.probability)) {
      const std::size_t index = 1 + rng_.next_below(payload.size() - 1);
      payload[index] ^= static_cast<std::uint8_t>(1 + rng_.next_below(255));
      ++counters_.corrupted;
      ++corrupted_by_node_[from];
      obs::Counter*& node_ctr = corrupt_node_ctrs_[from];
      if (node_ctr == nullptr) {
        node_ctr = metrics_->counter("fault_corruptions_total",
                                     {{"node", std::to_string(from)}});
      }
      node_ctr->inc();
      record_injection("corrupted", inj_corrupted_, from, to);
      break;  // one flip is enough to invalidate the AEAD tag
    }
  }

  bool duplicate = false;
  for (const DuplicateRule& rule : plan_.duplicates()) {
    if (!in_window(rule.start, rule.end, when)) continue;
    if (rng_.bernoulli(rule.probability)) {
      duplicate = true;
      break;
    }
  }

  for (const ReorderRule& rule : plan_.reorders()) {
    if (!in_window(rule.start, rule.end, when)) continue;
    if (rule.max_extra_delay > 0 && rng_.bernoulli(rule.probability)) {
      extra_delay += static_cast<SimDuration>(rng_.next_below(
          static_cast<std::uint64_t>(rule.max_extra_delay) + 1));
      ++counters_.delayed;
      record_injection("delayed", inj_delayed_, from, to);
    }
  }
  if (extra_delay > 0) {
    extra_delay_us_->record(static_cast<std::uint64_t>(extra_delay));
  }

  if (duplicate) {
    ++counters_.duplicated;
    record_injection("duplicated", inj_duplicated_, from, to);
    dispatch(from, to, payload, extra_delay);
  }
  dispatch(from, to, std::move(payload), extra_delay);
}

bool FaultyTransport::apply_membership_rules(NodeId from, NodeId to,
                                             Bytes& payload, SimTime when) {
  for (const GossipBlackoutRule& rule : plan_.gossip_blackouts()) {
    if (!in_window(rule.start, rule.end, when)) continue;
    if (!matches(rule.endpoints, from) && !matches(rule.endpoints, to)) {
      continue;
    }
    ++counters_.dropped_gossip_blackout;
    if (inj_gossip_blackout_ == nullptr) {
      inj_gossip_blackout_ = metrics_->counter("fault_injections_total",
                                               {{"kind", "gossip_blackout"}});
    }
    record_injection("gossip_blackout", inj_gossip_blackout_, from, to);
    return false;
  }

  for (const GossipLossRule& rule : plan_.gossip_losses()) {
    if (!in_window(rule.start, rule.end, when)) continue;
    if (!matches(rule.endpoints, from) && !matches(rule.endpoints, to)) {
      continue;
    }
    if (rule.loss_rate > 0.0 && rng_.bernoulli(rule.loss_rate)) {
      ++counters_.dropped_gossip_loss;
      if (inj_gossip_loss_ == nullptr) {
        inj_gossip_loss_ = metrics_->counter("fault_injections_total",
                                             {{"kind", "gossip_loss"}});
      }
      record_injection("gossip_loss", inj_gossip_loss_, from, to);
      return false;
    }
  }

  // Record mutation applies only to structurally record-bearing messages;
  // anti-entropy digests and other control shapes pass through untouched.
  const bool mutate = (!plan_.stale_injects().empty() ||
                       !plan_.claim_inflates().empty()) &&
                      is_record_bearing(payload);
  if (!mutate) return true;
  const std::size_t count = get_u16be(payload, 2);

  for (const StaleInjectRule& rule : plan_.stale_injects()) {
    if (!in_window(rule.start, rule.end, when)) continue;
    if (!matches(rule.at_nodes, from)) continue;
    for (std::size_t i = 0; i < count; ++i) {
      if (!rng_.bernoulli(rule.probability)) continue;
      const std::size_t base = kGossipHeaderSize + i * kGossipRecordSize;
      const std::uint64_t dt_since = get_u64be(payload, base + kDtSinceOffset);
      store_u64be(payload.data() + base + kDtSinceOffset,
                  dt_since + static_cast<std::uint64_t>(rule.extra_staleness));
      ++counters_.stale_injected;
      if (inj_stale_ == nullptr) {
        inj_stale_ = metrics_->counter("fault_injections_total",
                                       {{"kind", "stale_injected"}});
      }
      record_injection("stale_injected", inj_stale_, from, to);
    }
  }

  for (const ClaimInflateRule& rule : plan_.claim_inflates()) {
    if (!in_window(rule.start, rule.end, when)) continue;
    if (!matches(rule.at_nodes, from)) continue;
    // Only the sender's own first-person record (always record 0 when
    // present) is inflated — the attack is a node lying about itself.
    const std::size_t base = kGossipHeaderSize;
    if (get_u32be(payload, base + kSubjectOffset) != from) continue;
    if (!rng_.bernoulli(rule.probability)) continue;
    const std::uint64_t dt_alive = get_u64be(payload, base + kDtAliveOffset);
    const double inflated = static_cast<double>(dt_alive) * rule.factor +
                            static_cast<double>(rule.boost);
    store_u64be(payload.data() + base + kDtAliveOffset,
                static_cast<std::uint64_t>(inflated));
    ++counters_.claims_inflated;
    if (inj_inflate_ == nullptr) {
      inj_inflate_ = metrics_->counter("fault_injections_total",
                                       {{"kind", "claim_inflated"}});
    }
    record_injection("claim_inflated", inj_inflate_, from, to);
  }
  return true;
}

void FaultyTransport::dispatch(NodeId from, NodeId to, Bytes payload,
                               SimDuration extra) {
  if (extra > 0 && simulator_ != nullptr) {
    static const auto kRedeliverEvent =
        obs::capacity::event_type("fault.redeliver");
    simulator_->schedule_after(
        extra,
        [this, from, to, data = std::move(payload)]() mutable {
          inner_.send(from, to, std::move(data));
        },
        kRedeliverEvent);
    return;
  }
  inner_.send(from, to, std::move(payload));
}

}  // namespace p2panon::fault
