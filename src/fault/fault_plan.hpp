// Deterministic, scriptable fault schedule.
//
// A FaultPlan is a passive description of *when* and *where* the network
// misbehaves: node crashes with optional recovery, bidirectional partitions
// between node sets, per-link loss/delay spikes over time windows, message
// duplication, bounded reordering, and byzantine corruption of forward-
// channel datagrams. It is consumed by two parties:
//
//   - FaultyTransport, a Transport decorator that applies the loss /
//     partition / duplication / reordering / corruption rules to every
//     datagram (with its own RNG stream, so an empty plan perturbs
//     nothing);
//   - the liveness oracle: crash windows are bridged into the churn
//     model's is_up view (Environment composes `churn.is_up(n) &&
//     !plan.is_crashed(n, now)`), so delivery-time death of a crashed
//     receiver behaves exactly like churn-induced death.
//
// All rules are plain data; queries are pure functions of (plan, time), so
// two runs over the same plan and seeds are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace p2panon::fault {

/// Node is dead during [at, recover_at); kNeverTime means it never comes
/// back.
struct CrashEvent {
  NodeId node = kInvalidNode;
  SimTime at = 0;
  SimTime recover_at = kNeverTime;
};

/// No datagram crosses between side_a and side_b (either direction) during
/// [start, end). An empty side_b means "everyone not in side_a".
struct PartitionRule {
  std::vector<NodeId> side_a;
  std::vector<NodeId> side_b;  // empty = rest of the network
  SimTime start = 0;
  SimTime end = kNeverTime;
};

/// During [start, end), datagrams on matching links are dropped i.i.d.
/// with `loss_rate`, and (when extra_delay_max > 0) delayed by an extra
/// uniform [0, extra_delay_max]. A link matches when either endpoint is in
/// `endpoints`; an empty list matches every link.
struct LinkSpikeRule {
  double loss_rate = 0.0;
  SimDuration extra_delay_max = 0;
  SimTime start = 0;
  SimTime end = kNeverTime;
  std::vector<NodeId> endpoints;  // empty = all links
};

/// During [start, end), each datagram is sent twice with probability
/// `probability` (the copy takes the same path through the remaining
/// rules' delay, so it may arrive before or after the original).
struct DuplicateRule {
  double probability = 0.0;
  SimTime start = 0;
  SimTime end = kNeverTime;
};

/// During [start, end), each datagram is held back by an extra uniform
/// [0, max_extra_delay] with probability `probability` — bounded
/// reordering relative to unaffected traffic.
struct ReorderRule {
  double probability = 0.0;
  SimDuration max_extra_delay = 0;
  SimTime start = 0;
  SimTime end = kNeverTime;
};

/// During [start, end), forward-channel (kAnonForward) datagrams sent by a
/// node in `at_nodes` (empty = any sender) have one byte flipped with
/// probability `probability` — a byzantine relay tampering with onions,
/// exercising AEAD rejection and peel-failure accounting downstream.
struct CorruptRule {
  double probability = 0.0;
  SimTime start = 0;
  SimTime end = kNeverTime;
  std::vector<NodeId> at_nodes;  // empty = any sender
};

/// During [start, end), every gossip-channel (kGossip) datagram on a
/// matching link is dropped — a total membership-dissemination blackout.
/// Data-plane traffic is untouched, which is exactly what makes this fault
/// interesting: routing keeps working while liveness knowledge rots. A link
/// matches when either endpoint is in `endpoints`; empty matches every link.
struct GossipBlackoutRule {
  SimTime start = 0;
  SimTime end = kNeverTime;
  std::vector<NodeId> endpoints;  // empty = all links
};

/// During [start, end), gossip-channel datagrams on matching links are
/// dropped i.i.d. with `loss_rate` — lossy dissemination without a full
/// blackout.
struct GossipLossRule {
  double loss_rate = 0.0;
  SimTime start = 0;
  SimTime end = kNeverTime;
  std::vector<NodeId> endpoints;  // empty = all links
};

/// During [start, end), each liveness record inside a gossip datagram sent
/// by a node in `at_nodes` (empty = any sender) has `extra_staleness` added
/// to its dt_since field with probability `probability` — in-flight record
/// aging that makes receivers believe their information is older (or the
/// subject deader) than it really is.
struct StaleInjectRule {
  double probability = 0.0;
  SimDuration extra_staleness = 0;
  SimTime start = 0;
  SimTime end = kNeverTime;
  std::vector<NodeId> at_nodes;  // empty = any sender
};

/// During [start, end), a sender in `at_nodes` inflates its own first-person
/// liveness record (dt_alive *= factor, += boost) with probability
/// `probability` — the bounded liveness-claim attack from the paper's threat
/// model: a node advertising a longer uptime than it has earned to attract
/// biased selection. Only the self-record (record 0, subject == sender) is
/// touched; relayed third-party records are left alone.
struct ClaimInflateRule {
  double probability = 0.0;
  double factor = 1.0;
  SimDuration boost = 0;
  SimTime start = 0;
  SimTime end = kNeverTime;
  std::vector<NodeId> at_nodes;  // empty = any sender
};

class FaultPlan {
 public:
  // --- builders (chainable) ---
  FaultPlan& crash(NodeId node, SimTime at, SimTime recover_at = kNeverTime);
  FaultPlan& partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b,
                       SimTime start, SimTime end);
  FaultPlan& link_spike(LinkSpikeRule rule);
  FaultPlan& duplicate(double probability, SimTime start, SimTime end);
  FaultPlan& reorder(double probability, SimDuration max_extra_delay,
                     SimTime start, SimTime end);
  FaultPlan& corrupt(double probability, SimTime start, SimTime end,
                     std::vector<NodeId> at_nodes = {});
  FaultPlan& gossip_blackout(SimTime start, SimTime end,
                             std::vector<NodeId> endpoints = {});
  FaultPlan& gossip_loss(double loss_rate, SimTime start, SimTime end,
                         std::vector<NodeId> endpoints = {});
  FaultPlan& stale_inject(double probability, SimDuration extra_staleness,
                          SimTime start, SimTime end,
                          std::vector<NodeId> at_nodes = {});
  FaultPlan& claim_inflate(double probability, double factor,
                           SimDuration boost, SimTime start, SimTime end,
                           std::vector<NodeId> at_nodes = {});

  bool empty() const;

  // --- queries ---
  bool is_crashed(NodeId node, SimTime now) const;
  bool partitioned(NodeId from, NodeId to, SimTime now) const;

  /// True when any loss / delay / duplicate / reorder / corrupt rule could
  /// ever fire (cheap gate so a crash-only plan draws no transport RNG).
  bool has_link_rules() const {
    return !link_spikes_.empty() || !duplicates_.empty() ||
           !reorders_.empty() || !corrupts_.empty();
  }

  /// True when any membership-plane rule exists. Gated separately from
  /// has_link_rules() so a plan with only data-plane rules inspects no
  /// gossip payloads (and vice versa) — keeping RNG draw sequences, and
  /// therefore run fingerprints, independent between the two families.
  bool has_membership_rules() const {
    return !gossip_blackouts_.empty() || !gossip_losses_.empty() ||
           !stale_injects_.empty() || !claim_inflates_.empty();
  }

  const std::vector<CrashEvent>& crashes() const { return crashes_; }
  const std::vector<PartitionRule>& partitions() const { return partitions_; }
  const std::vector<LinkSpikeRule>& link_spikes() const {
    return link_spikes_;
  }
  const std::vector<DuplicateRule>& duplicates() const { return duplicates_; }
  const std::vector<ReorderRule>& reorders() const { return reorders_; }
  const std::vector<CorruptRule>& corrupts() const { return corrupts_; }
  const std::vector<GossipBlackoutRule>& gossip_blackouts() const {
    return gossip_blackouts_;
  }
  const std::vector<GossipLossRule>& gossip_losses() const {
    return gossip_losses_;
  }
  const std::vector<StaleInjectRule>& stale_injects() const {
    return stale_injects_;
  }
  const std::vector<ClaimInflateRule>& claim_inflates() const {
    return claim_inflates_;
  }

 private:
  std::vector<CrashEvent> crashes_;
  std::vector<PartitionRule> partitions_;
  std::vector<LinkSpikeRule> link_spikes_;
  std::vector<DuplicateRule> duplicates_;
  std::vector<ReorderRule> reorders_;
  std::vector<CorruptRule> corrupts_;
  std::vector<GossipBlackoutRule> gossip_blackouts_;
  std::vector<GossipLossRule> gossip_losses_;
  std::vector<StaleInjectRule> stale_injects_;
  std::vector<ClaimInflateRule> claim_inflates_;
};

}  // namespace p2panon::fault
