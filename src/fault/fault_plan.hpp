// Deterministic, scriptable fault schedule.
//
// A FaultPlan is a passive description of *when* and *where* the network
// misbehaves: node crashes with optional recovery, bidirectional partitions
// between node sets, per-link loss/delay spikes over time windows, message
// duplication, bounded reordering, and byzantine corruption of forward-
// channel datagrams. It is consumed by two parties:
//
//   - FaultyTransport, a Transport decorator that applies the loss /
//     partition / duplication / reordering / corruption rules to every
//     datagram (with its own RNG stream, so an empty plan perturbs
//     nothing);
//   - the liveness oracle: crash windows are bridged into the churn
//     model's is_up view (Environment composes `churn.is_up(n) &&
//     !plan.is_crashed(n, now)`), so delivery-time death of a crashed
//     receiver behaves exactly like churn-induced death.
//
// All rules are plain data; queries are pure functions of (plan, time), so
// two runs over the same plan and seeds are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace p2panon::fault {

/// Node is dead during [at, recover_at); kNeverTime means it never comes
/// back.
struct CrashEvent {
  NodeId node = kInvalidNode;
  SimTime at = 0;
  SimTime recover_at = kNeverTime;
};

/// No datagram crosses between side_a and side_b (either direction) during
/// [start, end). An empty side_b means "everyone not in side_a".
struct PartitionRule {
  std::vector<NodeId> side_a;
  std::vector<NodeId> side_b;  // empty = rest of the network
  SimTime start = 0;
  SimTime end = kNeverTime;
};

/// During [start, end), datagrams on matching links are dropped i.i.d.
/// with `loss_rate`, and (when extra_delay_max > 0) delayed by an extra
/// uniform [0, extra_delay_max]. A link matches when either endpoint is in
/// `endpoints`; an empty list matches every link.
struct LinkSpikeRule {
  double loss_rate = 0.0;
  SimDuration extra_delay_max = 0;
  SimTime start = 0;
  SimTime end = kNeverTime;
  std::vector<NodeId> endpoints;  // empty = all links
};

/// During [start, end), each datagram is sent twice with probability
/// `probability` (the copy takes the same path through the remaining
/// rules' delay, so it may arrive before or after the original).
struct DuplicateRule {
  double probability = 0.0;
  SimTime start = 0;
  SimTime end = kNeverTime;
};

/// During [start, end), each datagram is held back by an extra uniform
/// [0, max_extra_delay] with probability `probability` — bounded
/// reordering relative to unaffected traffic.
struct ReorderRule {
  double probability = 0.0;
  SimDuration max_extra_delay = 0;
  SimTime start = 0;
  SimTime end = kNeverTime;
};

/// During [start, end), forward-channel (kAnonForward) datagrams sent by a
/// node in `at_nodes` (empty = any sender) have one byte flipped with
/// probability `probability` — a byzantine relay tampering with onions,
/// exercising AEAD rejection and peel-failure accounting downstream.
struct CorruptRule {
  double probability = 0.0;
  SimTime start = 0;
  SimTime end = kNeverTime;
  std::vector<NodeId> at_nodes;  // empty = any sender
};

class FaultPlan {
 public:
  // --- builders (chainable) ---
  FaultPlan& crash(NodeId node, SimTime at, SimTime recover_at = kNeverTime);
  FaultPlan& partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b,
                       SimTime start, SimTime end);
  FaultPlan& link_spike(LinkSpikeRule rule);
  FaultPlan& duplicate(double probability, SimTime start, SimTime end);
  FaultPlan& reorder(double probability, SimDuration max_extra_delay,
                     SimTime start, SimTime end);
  FaultPlan& corrupt(double probability, SimTime start, SimTime end,
                     std::vector<NodeId> at_nodes = {});

  bool empty() const;

  // --- queries ---
  bool is_crashed(NodeId node, SimTime now) const;
  bool partitioned(NodeId from, NodeId to, SimTime now) const;

  /// True when any loss / delay / duplicate / reorder / corrupt rule could
  /// ever fire (cheap gate so a crash-only plan draws no transport RNG).
  bool has_link_rules() const {
    return !link_spikes_.empty() || !duplicates_.empty() ||
           !reorders_.empty() || !corrupts_.empty();
  }

  const std::vector<CrashEvent>& crashes() const { return crashes_; }
  const std::vector<PartitionRule>& partitions() const { return partitions_; }
  const std::vector<LinkSpikeRule>& link_spikes() const {
    return link_spikes_;
  }
  const std::vector<DuplicateRule>& duplicates() const { return duplicates_; }
  const std::vector<ReorderRule>& reorders() const { return reorders_; }
  const std::vector<CorruptRule>& corrupts() const { return corrupts_; }

 private:
  std::vector<CrashEvent> crashes_;
  std::vector<PartitionRule> partitions_;
  std::vector<LinkSpikeRule> link_spikes_;
  std::vector<DuplicateRule> duplicates_;
  std::vector<ReorderRule> reorders_;
  std::vector<CorruptRule> corrupts_;
};

}  // namespace p2panon::fault
