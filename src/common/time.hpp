// Simulation time types.
//
// All simulation timestamps are integer microseconds since simulation start
// (`SimTime`); intervals are `SimDuration`. Integer time keeps event ordering
// exact and runs identically across platforms. Helper constructors accept
// seconds/milliseconds as doubles for convenience in experiment configs.
#pragma once

#include <cstdint>

namespace p2panon {

using SimTime = std::int64_t;      // microseconds since simulation start
using SimDuration = std::int64_t;  // microseconds

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;

constexpr SimTime kNeverTime = INT64_MAX;

constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr SimDuration from_millis(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Abstract clock; protocol code reads time through this so it is agnostic
/// to whether it runs under the simulator or in real time.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime now() const = 0;
};

}  // namespace p2panon
