// Identifier types shared across substrates.
#pragma once

#include <cstdint>
#include <limits>

namespace p2panon {

/// Dense node index in [0, N). The simulator, latency matrix, churn model
/// and membership layer all address nodes by this index.
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Per-hop stream identifier (the paper's `sid`), chosen randomly by each
/// relay when a path is constructed.
using StreamId = std::uint64_t;

/// End-to-end message identifier (the paper's `MID`); lets the responder
/// correlate erasure-coded segments of the same message.
using MessageId = std::uint64_t;

}  // namespace p2panon
