// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// `Rng` so that experiments are reproducible bit-for-bit. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64 per the authors'
// recommendation. It satisfies the C++ UniformRandomBitGenerator concept, so
// it composes with <random> distributions, but the common draws (uniform,
// exponential, Pareto) have dedicated methods to keep results independent of
// standard-library implementation details.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace p2panon {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in (0, 1] — never returns 0, for use inside logs.
  double next_double_open();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Classic Pareto: support [scale, inf), CDF 1 - (scale/x)^shape.
  double pareto(double shape, double scale);

  bool bernoulli(double p);

  /// Fills a buffer with random octets.
  void fill(std::uint8_t* out, std::size_t n);

  /// Derives an independent child generator (for per-node streams).
  Rng fork();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) uniformly (count <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t count);

 private:
  std::uint64_t s_[4];
};

}  // namespace p2panon
