// Heap-allocation probe for zero-allocation assertions and per-subsystem
// memory accounting.
//
// Production binaries link only the weak no-op definitions (via
// p2panon_common) and pay nothing. Tests and benches that want to assert
// "this path performs zero heap allocations" or attribute live/peak bytes
// to subsystems add `src/common/alloc_probe_hooks.cpp` to their own
// sources (`target_sources(<target> PRIVATE ...)`), which provides strong
// definitions plus counting global operator new/delete overrides — all
// forms, including the aligned and nothrow variants, so accounting cannot
// be bypassed by over-aligned allocations — for the whole binary.
//
// Two layers of accounting:
//   * process totals: allocations / deallocations / bytes, live and peak;
//   * scope tags: a thread-local subsystem tag set by `MemScope`, stamped
//     into every allocation at new() time and read back at delete() time,
//     so frees are attributed to the scope that allocated (not the scope
//     that happened to be active at free time). Each tag accumulates
//     live/peak/total bytes and alloc/free counts.
//
// Measure a region by differencing allocations()/live_bytes() around it,
// or a subsystem by differencing scope_stats() around a MemScope.
#pragma once

#include <cstdint>

namespace p2panon::alloc_probe {

/// True when the counting hooks are linked into this binary.
bool active();

/// Heap allocations (operator new calls) observed so far; 0 when inactive.
std::uint64_t allocations();

/// Heap deallocations (operator delete calls on live pointers) so far.
std::uint64_t deallocations();

/// Cumulative requested bytes over every allocation so far.
std::uint64_t total_bytes();

/// Requested bytes currently live (allocated, not yet freed).
std::uint64_t live_bytes();

/// High-water mark of live_bytes() over the process lifetime.
std::uint64_t peak_bytes();

/// Fixed tag table: tag 0 is the implicit "untagged" scope; scope_id()
/// interning beyond the table falls back to 0 rather than failing.
constexpr std::uint32_t kMaxScopes = 64;
constexpr std::uint32_t kMaxScopeName = 47;

struct ScopeStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t total_bytes = 0;  // cumulative requested bytes
  std::uint64_t live_bytes = 0;   // allocated under this tag, not yet freed
  std::uint64_t peak_bytes = 0;   // high-water mark of live_bytes
};

/// Interns `name` (copied, truncated to kMaxScopeName chars) and returns
/// its tag id; repeated calls with the same name return the same id.
/// Returns 0 (untagged) when inactive or when the table is full.
std::uint32_t scope_id(const char* name);

/// Sets this thread's current tag; returns the previous one.
std::uint32_t set_scope(std::uint32_t id);

/// This thread's current tag (0 = untagged).
std::uint32_t current_scope();

/// Number of interned tags, the untagged slot included (>= 1 when active).
std::uint32_t scope_count();

/// Name of a tag id ("untagged" for 0, "" for out-of-range ids).
const char* scope_name(std::uint32_t id);

/// Accounting for one tag; zeroes when inactive or out of range.
ScopeStats scope_stats(std::uint32_t id);

/// Convenience: scope_stats(scope_id(name)) without interning a new tag
/// when `name` was never used.
ScopeStats scope_stats_by_name(const char* name);

/// RAII subsystem tag: every heap allocation on this thread inside the
/// scope is attributed to `name`. Nests — the destructor restores the
/// enclosing tag. Free of the probe entirely when the hooks are not
/// linked (scope_id and set_scope collapse to returning 0).
class MemScope {
 public:
  explicit MemScope(const char* name) : prev_(set_scope(scope_id(name))) {}
  ~MemScope() { set_scope(prev_); }
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

 private:
  std::uint32_t prev_;
};

}  // namespace p2panon::alloc_probe
