// Heap-allocation probe for zero-allocation assertions.
//
// Production binaries link only the weak no-op definitions below (via
// p2panon_common) and pay nothing. Tests and benches that want to assert
// "this path performs zero heap allocations" add
// `src/common/alloc_probe_hooks.cpp` to their own sources
// (`target_sources(<target> PRIVATE ...)`), which provides strong
// definitions plus counting global operator new/delete overrides for the
// whole binary. Measure a region by differencing allocations() around it.
#pragma once

#include <cstdint>

namespace p2panon::alloc_probe {

/// True when the counting hooks are linked into this binary.
bool active();

/// Heap allocations (operator new calls) observed so far; 0 when inactive.
std::uint64_t allocations();

}  // namespace p2panon::alloc_probe
