#include "common/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/strings.hpp"

namespace p2panon {

std::int64_t& FlagSet::add_int(const std::string& name, std::int64_t def,
                               const std::string& help) {
  Flag& f = flags_[name];
  f.kind = Kind::Int;
  f.help = help;
  f.int_value = def;
  return f.int_value;
}

double& FlagSet::add_double(const std::string& name, double def,
                            const std::string& help) {
  Flag& f = flags_[name];
  f.kind = Kind::Double;
  f.help = help;
  f.double_value = def;
  return f.double_value;
}

bool& FlagSet::add_bool(const std::string& name, bool def,
                        const std::string& help) {
  Flag& f = flags_[name];
  f.kind = Kind::Bool;
  f.help = help;
  f.bool_value = def;
  return f.bool_value;
}

std::string& FlagSet::add_string(const std::string& name,
                                 const std::string& def,
                                 const std::string& help) {
  Flag& f = flags_[name];
  f.kind = Kind::String;
  f.help = help;
  f.string_value = def;
  return f.string_value;
}

void FlagSet::set_from_string(Flag& flag, const std::string& name,
                              const std::string& value) {
  try {
    switch (flag.kind) {
      case Kind::Int:
        flag.int_value = std::stoll(value);
        break;
      case Kind::Double:
        flag.double_value = std::stod(value);
        break;
      case Kind::Bool: {
        const std::string lower = to_lower(value);
        if (lower == "true" || lower == "1" || lower == "yes") {
          flag.bool_value = true;
        } else if (lower == "false" || lower == "0" || lower == "no") {
          flag.bool_value = false;
        } else {
          throw std::invalid_argument("not a bool");
        }
        break;
      }
      case Kind::String:
        flag.string_value = value;
        break;
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("bad value for --" + name + ": " + value);
  }
}

namespace {

std::map<std::string, std::string>& mutable_last_parsed_flags() {
  static std::map<std::string, std::string> flags;
  return flags;
}

}  // namespace

const std::map<std::string, std::string>& last_parsed_flags() {
  return mutable_last_parsed_flags();
}

void FlagSet::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage(argv[0]).c_str());
      std::exit(0);
    }
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::Bool) {
        it->second.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value for --" + name);
      }
      value = argv[++i];
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
    set_from_string(it->second, name, value);
  }
  auto& snapshot = mutable_last_parsed_flags();
  snapshot.clear();
  for (const auto& [name, flag] : flags_) {
    std::ostringstream value;
    switch (flag.kind) {
      case Kind::Int: value << flag.int_value; break;
      case Kind::Double: value << flag.double_value; break;
      case Kind::Bool: value << (flag.bool_value ? "true" : "false"); break;
      case Kind::String: value << flag.string_value; break;
    }
    snapshot[name] = value.str();
  }
}

std::string FlagSet::usage(const std::string& program) const {
  std::ostringstream out;
  out << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << "  (";
    switch (flag.kind) {
      case Kind::Int: out << "int, default " << flag.int_value; break;
      case Kind::Double: out << "double, default " << flag.double_value; break;
      case Kind::Bool: out << "bool, default " << (flag.bool_value ? "true" : "false"); break;
      case Kind::String: out << "string, default \"" << flag.string_value << "\""; break;
    }
    out << ") " << flag.help << "\n";
  }
  return out.str();
}

double bench_scale() {
  const char* env = std::getenv("P2PANON_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  if (v <= 0.0 || v > 1.0) return 1.0;
  return v;
}

}  // namespace p2panon
