#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace p2panon {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("next_below: bound must be > 0");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double_open() {
  return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential: mean must be > 0");
  return -mean * std::log(next_double_open());
}

double Rng::pareto(double shape, double scale) {
  if (shape <= 0 || scale <= 0) {
    throw std::invalid_argument("pareto: shape and scale must be > 0");
  }
  // Inverse-CDF: x = scale * U^{-1/shape}, U in (0, 1].
  return scale * std::pow(next_double_open(), -1.0 / shape);
}

bool Rng::bernoulli(double p) {
  return next_double() < p;
}

void Rng::fill(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t v = next_u64();
    for (int b = 0; b < 8; ++b) {
      out[i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(v >> (8 * b));
    }
    i += 8;
  }
  if (i < n) {
    const std::uint64_t v = next_u64();
    for (int b = 0; i < n; ++i, ++b) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

Rng Rng::fork() {
  return Rng(next_u64());
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t count) {
  if (count > n) {
    throw std::invalid_argument("sample_without_replacement: count > n");
  }
  // Dense Fisher–Yates when we sample a large fraction; Floyd's algorithm
  // otherwise to avoid materializing [0, n).
  if (count * 4 >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(count);
    return all;
  }
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t j = n - count; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(next_below(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace p2panon
