#include "common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace p2panon {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 3) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

}  // namespace p2panon
