// Small string helpers used by the config parser and table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace p2panon {

/// Splits on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Lowercases ASCII.
std::string to_lower(std::string_view s);

/// Formats a double with `digits` fractional digits ("%.*f").
std::string format_double(double v, int digits);

/// Human-readable byte count ("1.5 KB").
std::string format_bytes(double bytes);

}  // namespace p2panon
