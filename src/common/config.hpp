// Tiny command-line flag parser for bench and example binaries.
//
// Usage:
//   FlagSet flags;
//   auto& seed = flags.add_int("seed", 1, "RNG seed");
//   auto& nodes = flags.add_int("nodes", 1024, "network size");
//   flags.parse(argc, argv);   // accepts --name=value and --name value
//
// Unknown flags are an error; `--help` prints usage and exits(0). Scale-down
// for CI is supported uniformly through the P2PANON_BENCH_SCALE environment
// variable, exposed by `bench_scale()`.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace p2panon {

class FlagSet {
 public:
  std::int64_t& add_int(const std::string& name, std::int64_t def,
                        const std::string& help);
  double& add_double(const std::string& name, double def,
                     const std::string& help);
  bool& add_bool(const std::string& name, bool def, const std::string& help);
  std::string& add_string(const std::string& name, const std::string& def,
                          const std::string& help);

  /// Parses argv; on --help prints usage and std::exit(0); throws
  /// std::invalid_argument on unknown flags or malformed values.
  void parse(int argc, char** argv);

  std::string usage(const std::string& program) const;

 private:
  enum class Kind { Int, Double, Bool, String };
  struct Flag {
    Kind kind;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
  };
  void set_from_string(Flag& flag, const std::string& name,
                       const std::string& value);
  std::map<std::string, Flag> flags_;
};

/// Scale factor in (0, 1] read from P2PANON_BENCH_SCALE; benches multiply
/// their event counts / durations by this so CI can run them quickly.
double bench_scale();

/// Every flag of the most recently parse()d FlagSet in this process,
/// rendered name -> final value (defaults included). The --json bench
/// exporter embeds this in each report's provenance manifest so a committed
/// baseline records exactly the run configuration that produced it. Empty
/// until the first parse().
const std::map<std::string, std::string>& last_parsed_flags();

}  // namespace p2panon
