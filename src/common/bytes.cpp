#include "common/bytes.hpp"

#include <cstring>
#include <stdexcept>

namespace p2panon {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string string_of(ByteView data) {
  return std::string(data.begin(), data.end());
}

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) append(out, p);
  return out;
}

bool constant_time_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void put_u16be(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32be(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64be(Bytes& out, std::uint64_t v) {
  put_u32be(out, static_cast<std::uint32_t>(v >> 32));
  put_u32be(out, static_cast<std::uint32_t>(v));
}

namespace {
void check_range(ByteView in, std::size_t offset, std::size_t n) {
  if (offset + n > in.size()) {
    throw std::out_of_range("byte read past end of buffer");
  }
}
}  // namespace

std::uint16_t get_u16be(ByteView in, std::size_t offset) {
  check_range(in, offset, 2);
  return static_cast<std::uint16_t>((in[offset] << 8) | in[offset + 1]);
}

std::uint32_t get_u32be(ByteView in, std::size_t offset) {
  check_range(in, offset, 4);
  return (static_cast<std::uint32_t>(in[offset]) << 24) |
         (static_cast<std::uint32_t>(in[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(in[offset + 2]) << 8) |
         static_cast<std::uint32_t>(in[offset + 3]);
}

std::uint64_t get_u64be(ByteView in, std::size_t offset) {
  check_range(in, offset, 8);
  return (static_cast<std::uint64_t>(get_u32be(in, offset)) << 32) |
         get_u32be(in, offset + 4);
}

void secure_wipe(MutableByteView buf) {
  volatile std::uint8_t* p = buf.data();
  for (std::size_t i = 0; i < buf.size(); ++i) p[i] = 0;
}

}  // namespace p2panon
