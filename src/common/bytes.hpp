// Byte-buffer utilities shared by the crypto, erasure and wire-format layers.
//
// The whole codebase passes raw octet strings as `Bytes` (an owning vector)
// or `ByteView` (a non-owning span). Helpers here cover hex round-trips,
// big-endian integer packing for wire formats, and constant-time comparison
// for MAC verification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace p2panon {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;
using MutableByteView = std::span<std::uint8_t>;

/// Encodes `data` as lowercase hex ("deadbeef").
std::string to_hex(ByteView data);

/// Decodes a hex string (upper or lower case, even length) into bytes.
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Builds a Bytes from a string's raw octets (no encoding applied).
Bytes bytes_of(std::string_view s);

/// Interprets bytes as a std::string (raw octets).
std::string string_of(ByteView data);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Concatenates any number of byte views.
Bytes concat(std::initializer_list<ByteView> parts);

/// Constant-time equality; safe for comparing MACs. Returns false on length
/// mismatch without early exit on content.
bool constant_time_equal(ByteView a, ByteView b);

// --- Big-endian integer packing (wire formats) ------------------------------

void put_u16be(Bytes& out, std::uint16_t v);
void put_u32be(Bytes& out, std::uint32_t v);
void put_u64be(Bytes& out, std::uint64_t v);

std::uint16_t get_u16be(ByteView in, std::size_t offset);
std::uint32_t get_u32be(ByteView in, std::size_t offset);
std::uint64_t get_u64be(ByteView in, std::size_t offset);

// --- Little-endian loads/stores (crypto kernels) -----------------------------

inline std::uint32_t load_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint64_t load_u64le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32le(p)) |
         (static_cast<std::uint64_t>(load_u32le(p + 4)) << 32);
}

inline void store_u64le(std::uint8_t* p, std::uint64_t v) {
  store_u32le(p, static_cast<std::uint32_t>(v));
  store_u32le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/// Overwrites a buffer with zeros in a way the optimizer may not elide;
/// used to scrub key material.
void secure_wipe(MutableByteView buf);

}  // namespace p2panon
