// Minimal leveled logger.
//
// The simulator and protocols log through this to stderr; experiments run
// with level Warn by default so harness output stays clean. Not thread-safe
// by design: the simulator is single-threaded, and the parallel experiment
// runner gives each worker its own silent context.
#pragma once

#include <sstream>
#include <string>

namespace p2panon {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

LogLevel global_log_level();
void set_global_log_level(LogLevel level);

/// Optional line decorator. When set, its return value is inserted between
/// the level tag and the message of every emitted line (the obs layer
/// installs one that renders sim time and the active correlation id; it
/// returns "" while tracing is off, so output is unchanged). nullptr clears.
using LogDecorator = std::string (*)();
void set_log_decorator(LogDecorator fn);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit_log(LogLevel level, const std::string& message);
}

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit_log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace p2panon

#define P2PANON_LOG(level)                                    \
  if (static_cast<int>(level) <                               \
      static_cast<int>(::p2panon::global_log_level())) {      \
  } else                                                      \
    ::p2panon::LogLine(level)

#define LOG_TRACE P2PANON_LOG(::p2panon::LogLevel::Trace)
#define LOG_DEBUG P2PANON_LOG(::p2panon::LogLevel::Debug)
#define LOG_INFO P2PANON_LOG(::p2panon::LogLevel::Info)
#define LOG_WARN P2PANON_LOG(::p2panon::LogLevel::Warn)
#define LOG_ERROR P2PANON_LOG(::p2panon::LogLevel::Error)
