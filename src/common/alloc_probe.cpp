#include "common/alloc_probe.hpp"

// Weak no-op fallbacks: binaries that do not opt into the counting hooks
// (src/common/alloc_probe_hooks.cpp) see an inactive probe. The hooks file
// provides strong definitions that win at link time.

namespace p2panon::alloc_probe {

__attribute__((weak)) bool active() { return false; }

__attribute__((weak)) std::uint64_t allocations() { return 0; }

}  // namespace p2panon::alloc_probe
