#include "common/alloc_probe.hpp"

// Weak no-op fallbacks: binaries that do not opt into the counting hooks
// (src/common/alloc_probe_hooks.cpp) see an inactive probe — every query
// returns zero and MemScope costs two calls that collapse to constants.
// The hooks file provides strong definitions that win at link time.

namespace p2panon::alloc_probe {

__attribute__((weak)) bool active() { return false; }

__attribute__((weak)) std::uint64_t allocations() { return 0; }

__attribute__((weak)) std::uint64_t deallocations() { return 0; }

__attribute__((weak)) std::uint64_t total_bytes() { return 0; }

__attribute__((weak)) std::uint64_t live_bytes() { return 0; }

__attribute__((weak)) std::uint64_t peak_bytes() { return 0; }

__attribute__((weak)) std::uint32_t scope_id(const char*) { return 0; }

__attribute__((weak)) std::uint32_t set_scope(std::uint32_t) { return 0; }

__attribute__((weak)) std::uint32_t current_scope() { return 0; }

__attribute__((weak)) std::uint32_t scope_count() { return 0; }

__attribute__((weak)) const char* scope_name(std::uint32_t) { return ""; }

__attribute__((weak)) ScopeStats scope_stats(std::uint32_t) { return {}; }

__attribute__((weak)) ScopeStats scope_stats_by_name(const char*) {
  return {};
}

}  // namespace p2panon::alloc_probe
