#include "common/logging.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace p2panon {

namespace {
LogLevel g_level = LogLevel::Warn;
LogDecorator g_decorator = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel global_log_level() { return g_level; }

void set_global_log_level(LogLevel level) { g_level = level; }

void set_log_decorator(LogDecorator fn) { g_decorator = fn; }

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off") return LogLevel::Off;
  throw std::invalid_argument("unknown log level: " + name);
}

namespace detail {
void emit_log(LogLevel level, const std::string& message) {
  if (g_decorator != nullptr) {
    const std::string prefix = g_decorator();
    if (!prefix.empty()) {
      std::fprintf(stderr, "[%s] %s%s\n", level_name(level), prefix.c_str(),
                   message.c_str());
      return;
    }
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace p2panon
