// Counting allocation hooks, opted into per-binary with
// `target_sources(<target> PRIVATE .../alloc_probe_hooks.cpp)`. Provides
// the strong definitions of the alloc_probe API plus global operator
// new/delete overrides that count every heap allocation in the process.
// Never part of a library: linking it from an object file guarantees the
// strong symbols are present without relying on archive member selection.
#include <atomic>
#include <cstdlib>
#include <new>

#include "common/alloc_probe.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_malloc(std::size_t size) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned(std::size_t size, std::size_t align) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded != 0 ? rounded : align);
}

}  // namespace

namespace p2panon::alloc_probe {

bool active() { return true; }

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace p2panon::alloc_probe

void* operator new(std::size_t size) {
  void* p = counted_malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
