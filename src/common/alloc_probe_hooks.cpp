// Counting allocation hooks, opted into per-binary with
// `target_sources(<target> PRIVATE .../alloc_probe_hooks.cpp)`. Provides
// the strong definitions of the alloc_probe API plus global operator
// new/delete overrides that account for every heap allocation in the
// process — every standard form, including the aligned and nothrow
// variants, so neither the zero-alloc relay gate nor the byte accounting
// can be bypassed by an over-aligned or nothrow allocation path.
// Never part of a library: linking it from an object file guarantees the
// strong symbols are present without relying on archive member selection.
//
// Accounting scheme: each allocation is padded with a 32-byte header that
// records the malloc base pointer, the requested size, and the thread's
// current scope tag at allocation time. delete() reads the header back,
// so frees decrement the tag that allocated — correct even when a
// structure built inside `MemScope{"gossip"}` is destroyed from an
// untagged destructor. The header keeps the user pointer 16-byte aligned
// for plain news; over-aligned news pad further and re-align. All state
// below is constant-initialized so allocations during static init are
// accounted too.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/alloc_probe.hpp"

namespace {

using p2panon::alloc_probe::kMaxScopeName;
using p2panon::alloc_probe::kMaxScopes;

constexpr std::uint32_t kMagic = 0x70A10CEDu;
constexpr std::size_t kHeaderSlot = 32;  // keeps 16-byte user alignment

struct Header {
  void* base;          // pointer returned by malloc
  std::uint64_t size;  // requested bytes
  std::uint32_t tag;
  std::uint32_t magic;
};
static_assert(sizeof(Header) <= kHeaderSlot, "header must fit its slot");

struct TagSlot {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> total_bytes{0};
  std::atomic<std::uint64_t> live_bytes{0};
  std::atomic<std::uint64_t> peak_bytes{0};
  char name[kMaxScopeName + 1] = {};
};

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_deallocations{0};
std::atomic<std::uint64_t> g_total_bytes{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_bytes{0};

TagSlot g_tags[kMaxScopes];
std::atomic<std::uint32_t> g_tag_count{1};  // slot 0 = untagged
std::atomic_flag g_tag_lock = ATOMIC_FLAG_INIT;

thread_local std::uint32_t t_current_tag = 0;

void raise_peak(std::atomic<std::uint64_t>& peak, std::uint64_t live) {
  std::uint64_t seen = peak.load(std::memory_order_relaxed);
  while (live > seen &&
         !peak.compare_exchange_weak(seen, live, std::memory_order_relaxed)) {
  }
}

void note_alloc(std::uint32_t tag, std::uint64_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_total_bytes.fetch_add(size, std::memory_order_relaxed);
  const std::uint64_t live =
      g_live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  raise_peak(g_peak_bytes, live);
  TagSlot& slot = g_tags[tag];
  slot.allocs.fetch_add(1, std::memory_order_relaxed);
  slot.total_bytes.fetch_add(size, std::memory_order_relaxed);
  const std::uint64_t tag_live =
      slot.live_bytes.fetch_add(size, std::memory_order_relaxed) + size;
  raise_peak(slot.peak_bytes, tag_live);
}

void note_free(std::uint32_t tag, std::uint64_t size) {
  g_deallocations.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_sub(size, std::memory_order_relaxed);
  TagSlot& slot = g_tags[tag];
  slot.frees.fetch_add(1, std::memory_order_relaxed);
  slot.live_bytes.fetch_sub(size, std::memory_order_relaxed);
}

/// One allocation path for every operator-new form. `align` must be a
/// power of two >= 1; plain news pass alignof(std::max_align_t).
void* tracked_alloc(std::size_t size, std::size_t align) noexcept {
  if (align < 16) align = 16;
  const std::size_t extra = align > 16 ? align : 0;
  const std::size_t padded = size + kHeaderSlot + extra;
  if (padded < size) return nullptr;  // overflow
  void* base = std::malloc(padded != 0 ? padded : 1);
  if (base == nullptr) return nullptr;
  std::uintptr_t p = reinterpret_cast<std::uintptr_t>(base) + kHeaderSlot;
  p = (p + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
  Header* h = reinterpret_cast<Header*>(p - kHeaderSlot);
  h->base = base;
  h->size = size;
  h->tag = t_current_tag < kMaxScopes ? t_current_tag : 0;
  h->magic = kMagic;
  note_alloc(h->tag, size);
  return reinterpret_cast<void*>(p);
}

void tracked_free(void* p) noexcept {
  if (p == nullptr) return;
  Header* h = reinterpret_cast<Header*>(static_cast<char*>(p) - kHeaderSlot);
  if (h->magic != kMagic) {
    // Not one of ours (new/delete mismatch across an uninstrumented
    // boundary). Hand it straight to free, uncounted, as before.
    std::free(p);
    return;
  }
  h->magic = 0;  // double-delete of this block won't double-count
  note_free(h->tag < kMaxScopes ? h->tag : 0, h->size);
  std::free(h->base);
}

bool name_equals(const char* a, const char* b) {
  std::uint32_t i = 0;
  for (; a[i] != '\0' && b[i] != '\0'; ++i) {
    if (a[i] != b[i]) return false;
  }
  return a[i] == b[i];
}

std::uint32_t find_tag(const char* name) {
  const std::uint32_t count = g_tag_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 1; i < count; ++i) {
    if (name_equals(g_tags[i].name, name)) return i;
  }
  return 0;
}

}  // namespace

namespace p2panon::alloc_probe {

bool active() { return true; }

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

std::uint64_t deallocations() {
  return g_deallocations.load(std::memory_order_relaxed);
}

std::uint64_t total_bytes() {
  return g_total_bytes.load(std::memory_order_relaxed);
}

std::uint64_t live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

std::uint64_t peak_bytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

std::uint32_t scope_id(const char* name) {
  if (name == nullptr || name[0] == '\0') return 0;
  const std::uint32_t found = find_tag(name);
  if (found != 0) return found;
  while (g_tag_lock.test_and_set(std::memory_order_acquire)) {
  }
  std::uint32_t id = find_tag(name);  // re-check under the lock
  if (id == 0) {
    const std::uint32_t count = g_tag_count.load(std::memory_order_relaxed);
    if (count < kMaxScopes) {
      TagSlot& slot = g_tags[count];
      std::uint32_t i = 0;
      for (; i < kMaxScopeName && name[i] != '\0'; ++i) slot.name[i] = name[i];
      slot.name[i] = '\0';
      g_tag_count.store(count + 1, std::memory_order_release);
      id = count;
    }
  }
  g_tag_lock.clear(std::memory_order_release);
  return id;
}

std::uint32_t set_scope(std::uint32_t id) {
  const std::uint32_t prev = t_current_tag;
  t_current_tag = id < kMaxScopes ? id : 0;
  return prev;
}

std::uint32_t current_scope() { return t_current_tag; }

std::uint32_t scope_count() {
  return g_tag_count.load(std::memory_order_acquire);
}

const char* scope_name(std::uint32_t id) {
  if (id == 0) return "untagged";
  if (id >= g_tag_count.load(std::memory_order_acquire)) return "";
  return g_tags[id].name;
}

ScopeStats scope_stats(std::uint32_t id) {
  ScopeStats out;
  if (id >= g_tag_count.load(std::memory_order_acquire)) return out;
  const TagSlot& slot = g_tags[id];
  out.allocs = slot.allocs.load(std::memory_order_relaxed);
  out.frees = slot.frees.load(std::memory_order_relaxed);
  out.total_bytes = slot.total_bytes.load(std::memory_order_relaxed);
  out.live_bytes = slot.live_bytes.load(std::memory_order_relaxed);
  out.peak_bytes = slot.peak_bytes.load(std::memory_order_relaxed);
  return out;
}

ScopeStats scope_stats_by_name(const char* name) {
  if (name == nullptr || name[0] == '\0') return scope_stats(0);
  const std::uint32_t id = find_tag(name);
  return id != 0 ? scope_stats(id) : ScopeStats{};
}

}  // namespace p2panon::alloc_probe

void* operator new(std::size_t size) {
  void* p = tracked_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = tracked_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tracked_alloc(size, alignof(std::max_align_t));
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tracked_alloc(size, alignof(std::max_align_t));
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = tracked_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = tracked_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return tracked_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return tracked_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { tracked_free(p); }
void operator delete[](void* p) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  tracked_free(p);
}
