#include "membership/onehop.hpp"

#include <algorithm>

#include "membership/gossip.hpp"  // record wire helpers

namespace p2panon::membership {

namespace {
constexpr std::uint8_t kKindEventToLeader = 1;     // observer -> own leader
constexpr std::uint8_t kKindEventInterLeader = 2;  // leader -> other leaders
constexpr std::uint8_t kKindKeepalive = 3;         // leader -> unit members
}  // namespace

OneHopMembership::OneHopMembership(sim::Simulator& simulator,
                                   net::Demux& demux,
                                   churn::ChurnModel& churn_model,
                                   OneHopConfig config, Rng rng)
    : simulator_(simulator),
      demux_(demux),
      churn_(churn_model),
      config_(config),
      rng_(rng) {
  const std::size_t n = churn_.num_nodes();
  config_.units = std::max<std::size_t>(1, std::min(config_.units, n));
  caches_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) caches_.emplace_back(n);
  pending_unit_events_.resize(config_.units);
}

std::size_t OneHopMembership::unit_of(NodeId node) const {
  const std::size_t n = caches_.size();
  const std::size_t unit_size = (n + config_.units - 1) / config_.units;
  return std::min<std::size_t>(node / unit_size, config_.units - 1);
}

NodeId OneHopMembership::unit_leader(std::size_t unit) const {
  const std::size_t n = caches_.size();
  const std::size_t unit_size = (n + config_.units - 1) / config_.units;
  const std::size_t begin = unit * unit_size;
  const std::size_t end = std::min(n, begin + unit_size);
  for (std::size_t node = begin; node < end; ++node) {
    if (churn_.is_up(static_cast<NodeId>(node))) {
      return static_cast<NodeId>(node);
    }
  }
  return kInvalidNode;
}

void OneHopMembership::start() {
  if (config_.seed_full_membership) {
    const SimTime now = simulator_.now();
    const std::size_t n = caches_.size();
    for (NodeId owner = 0; owner < n; ++owner) {
      for (NodeId subject = 0; subject < n; ++subject) {
        if (subject == owner) continue;
        if (churn_.is_up(subject)) {
          caches_[owner].heard_directly(subject, 0, now);
        } else {
          caches_[owner].heard_left_directly(subject, now);
        }
      }
    }
  }

  demux_.set_handler(net::Channel::kGossip,
                     [this](NodeId from, NodeId to, ByteView payload) {
                       handle_message(from, to, payload);
                     });

  churn_.subscribe([this](NodeId node, bool up, SimTime when) {
    on_churn(node, up, when);
  });

  keepalive_tasks_.reserve(config_.units);
  for (std::size_t unit = 0; unit < config_.units; ++unit) {
    auto task = std::make_unique<sim::PeriodicTask>(
        simulator_, config_.keepalive_interval,
        [this, unit] { keepalive_tick(unit); });
    task->start_at(simulator_.now() +
                   static_cast<SimDuration>(rng_.next_below(
                       static_cast<std::uint64_t>(config_.keepalive_interval))));
    keepalive_tasks_.push_back(std::move(task));
  }
}

SimDuration OneHopMembership::own_uptime(NodeId node) const {
  return from_seconds(churn_.alive_seconds(node, simulator_.now()));
}

void OneHopMembership::send_snapshot(NodeId leader, NodeId joiner) {
  const SimTime now = simulator_.now();
  const auto known = caches_[leader].known_nodes();
  Bytes msg;
  std::vector<std::pair<NodeId, LivenessInfo>> records;
  for (NodeId subject : known) {
    if (subject == joiner) continue;
    const auto obs = caches_[leader].observation(subject, now);
    if (obs.has_value()) records.emplace_back(subject, *obs);
    if (records.size() == 512) {
      // Chunk very large snapshots.
      msg.clear();
      msg.push_back(kKindKeepalive);
      put_u16be(msg, static_cast<std::uint16_t>(records.size()));
      for (const auto& [s, info] : records) encode_record(msg, s, info);
      demux_.send(net::Channel::kGossip, leader, joiner, msg);
      ++messages_sent_;
      bytes_sent_ += msg.size();
      records.clear();
    }
  }
  if (!records.empty()) {
    msg.clear();
    msg.push_back(kKindKeepalive);
    put_u16be(msg, static_cast<std::uint16_t>(records.size()));
    for (const auto& [s, info] : records) encode_record(msg, s, info);
    demux_.send(net::Channel::kGossip, leader, joiner, msg);
    ++messages_sent_;
    bytes_sent_ += msg.size();
  }
}

void OneHopMembership::send_event(NodeId from, NodeId to, std::uint8_t kind,
                                  NodeId subject, const LivenessInfo& info) {
  Bytes msg;
  msg.reserve(1 + kRecordWireSize);
  msg.push_back(kind);
  put_u16be(msg, 1);
  encode_record(msg, subject, info);
  demux_.send(net::Channel::kGossip, from, to, msg);
  ++messages_sent_;
  bytes_sent_ += msg.size();
}

void OneHopMembership::on_churn(NodeId node, bool up, SimTime when) {
  (void)when;
  if (up) {
    // The joiner reports to its unit leader directly.
    deliver_event(node, node);
    return;
  }
  // A leave is noticed by the unit leader's keepalive machinery after a
  // short detection delay.
  const SimDuration delay =
      config_.detection_delay_min +
      static_cast<SimDuration>(rng_.next_below(static_cast<std::uint64_t>(
          config_.detection_delay_max - config_.detection_delay_min + 1)));
  simulator_.schedule_after(delay, [this, node] {
    if (churn_.is_up(node)) return;
    const NodeId leader = unit_leader(unit_of(node));
    if (leader == kInvalidNode) return;
    caches_[leader].heard_left_directly(node, simulator_.now());
    deliver_event(leader, node);
  });
}

void OneHopMembership::deliver_event(NodeId observer, NodeId subject) {
  const NodeId leader = unit_leader(unit_of(observer));
  if (leader == kInvalidNode) return;
  LivenessInfo info;
  if (observer == subject) {
    info.alive = true;
    info.dt_alive = own_uptime(subject);
    info.dt_since = 0;
  } else {
    const auto obs = caches_[observer].observation(subject, simulator_.now());
    if (!obs.has_value()) return;
    info = *obs;
  }
  if (leader == observer) {
    // Already at the leader: fan out to other unit leaders.
    for (std::size_t unit = 0; unit < config_.units; ++unit) {
      const NodeId other = unit_leader(unit);
      if (other == kInvalidNode || other == leader) continue;
      send_event(leader, other, kKindEventInterLeader, subject, info);
    }
    pending_unit_events_[unit_of(leader)].push_back(subject);
  } else {
    send_event(observer, leader, kKindEventToLeader, subject, info);
  }
}

void OneHopMembership::keepalive_tick(std::size_t unit) {
  const NodeId leader = unit_leader(unit);
  if (leader == kInvalidNode) return;
  auto& pending = pending_unit_events_[unit];
  if (pending.empty()) return;
  std::sort(pending.begin(), pending.end());
  pending.erase(std::unique(pending.begin(), pending.end()), pending.end());

  const SimTime now = simulator_.now();
  const std::size_t n = caches_.size();
  const std::size_t unit_size = (n + config_.units - 1) / config_.units;
  const std::size_t begin = unit * unit_size;
  const std::size_t end = std::min(n, begin + unit_size);

  Bytes msg;
  msg.push_back(kKindKeepalive);
  std::vector<std::pair<NodeId, LivenessInfo>> records;
  records.reserve(pending.size() + 1);
  LivenessInfo own;
  own.alive = true;
  own.dt_alive = own_uptime(leader);
  own.dt_since = 0;
  records.emplace_back(leader, own);
  for (NodeId subject : pending) {
    const auto obs = caches_[leader].observation(subject, now);
    if (obs.has_value()) records.emplace_back(subject, *obs);
  }
  put_u16be(msg, static_cast<std::uint16_t>(records.size()));
  for (const auto& [subject, info] : records) {
    encode_record(msg, subject, info);
  }

  for (std::size_t member = begin; member < end; ++member) {
    const NodeId id = static_cast<NodeId>(member);
    if (id == leader || !churn_.is_up(id)) continue;
    demux_.send(net::Channel::kGossip, leader, id, msg);
    ++messages_sent_;
    bytes_sent_ += msg.size();
  }
  pending.clear();
}

void OneHopMembership::handle_message(NodeId from, NodeId to,
                                      ByteView payload) {
  if (!churn_.is_up(to) || payload.size() < 3) return;
  const std::uint8_t kind = payload[0];
  const std::size_t count = get_u16be(payload, 1);
  std::vector<DecodedRecord> records;
  if (!decode_records(payload, 3, count, records)) return;
  const SimTime now = simulator_.now();

  NodeCache& cache = caches_[to];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& rec = records[i];
    if (rec.subject == to) continue;
    if (i == 0 && rec.subject == from && rec.info.dt_since == 0) {
      cache.heard_directly(from, rec.info.dt_alive, now);
    } else {
      cache.merge_indirect(rec.subject, rec.info, now);
    }
    if (kind == kKindEventToLeader || kind == kKindEventInterLeader) {
      // Leaders queue accepted events for their unit keepalive; an event
      // arriving from another unit's observer also fans out inter-leader
      // when we are the first leader to see it.
      pending_unit_events_[unit_of(to)].push_back(rec.subject);
      if (kind == kKindEventToLeader) {
        const auto obs = cache.observation(rec.subject, now);
        if (obs.has_value()) {
          for (std::size_t unit = 0; unit < config_.units; ++unit) {
            const NodeId other = unit_leader(unit);
            if (other == kInvalidNode || other == to) continue;
            send_event(to, other, kKindEventInterLeader, rec.subject, *obs);
          }
        }
        // A join announcement (the subject reporting itself): hand the
        // joiner a fresh membership snapshot, as OneHop's join protocol
        // downloads the membership table from a neighbor.
        if (rec.subject == from && rec.info.alive) {
          send_snapshot(to, from);
        }
      }
    }
  }
}

double OneHopMembership::belief_accuracy() const {
  const std::size_t n = caches_.size();
  std::uint64_t correct = 0;
  std::uint64_t total = 0;
  for (NodeId owner = 0; owner < n; ++owner) {
    if (!churn_.is_up(owner)) continue;
    for (NodeId subject = 0; subject < n; ++subject) {
      if (subject == owner) continue;
      const auto* entry = caches_[owner].find(subject);
      const bool believed_alive = entry != nullptr && entry->alive;
      ++total;
      if (believed_alive == churn_.is_up(subject)) ++correct;
    }
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total)
               : 0.0;
}

}  // namespace p2panon::membership
